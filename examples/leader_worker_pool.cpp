// leader_worker_pool — the lease-based election service under crash storms.
//
// The paper's motivating scenario, upgraded from a one-shot election to a
// long-lived service: a pool of workers needs exactly one *leader* at any
// moment to seal epochs, and the leader may crash at any point.  The lease
// protocol (DESIGN.md §10) runs here on BOTH backends:
//
//   1. sim: every seed drives a RandomScheduler plus a FaultPlan::random
//      crash-restart storm through the deterministic simulator with virtual
//      time — timer firings, crashes, restarts and spurious SC failures are
//      all explicit schedule decisions;
//   2. threads: run_thread_lease_storm() runs the same protocol template on
//      real std::thread + atomics with scripted aborts (run this binary
//      under ASan/TSan to check the memory-model story).
//
// Every run's lease ledger is checked for the safety property "no two
// processes ever hold overlapping valid leases".  With --out PATH the run
// emits a bss-runreport v1 with the service.* stat family, schema-gated by
// the same validator CI uses (tools/report_check).  With --status PATH (or
// BSS_STATUS) a live bss-status v1 heartbeat tracks the soak: one storm
// counts as one schedule, the planned storm total is the bound, so
// tools/bss_top shows progress and an ETA while the soak runs.
//
//   ./leader_worker_pool [--soak] [--seed N] [--out PATH]
//                        [--status PATH] [--status-every MS]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "obs/obs.h"
#include "obs/runreport.h"
#include "obs/status.h"
#include "runtime/fault_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"
#include "service/lease_config.h"
#include "service/lease_ledger.h"
#include "service/lease_service.h"
#include "service/sim_platform.h"
#include "service/thread_platform.h"
#include "util/rng.h"

namespace {

using bss::service::LeaseConfig;
using bss::service::LeaseLedger;
using bss::service::LeaseStats;

LeaseConfig pool_config() {
  LeaseConfig config;
  config.n = 4;
  config.renewals = 1;
  config.acquire_attempts = 3;
  config.sc_retries = 1;
  return config;
}

/// One seeded sim storm: random schedule, random crash-restart-spurious
/// plan, ledger checked after the run.  Returns nullopt when safe.
std::optional<std::string> run_sim_storm(const LeaseConfig& config,
                                         std::uint64_t seed,
                                         LeaseStats& stats, int& restarts,
                                         bss::obs::Telemetry* telemetry) {
  bss::service::LeaseSharedState state(config);
  LeaseLedger ledger;
  ledger.set_obs_sink(telemetry);
  bss::sim::SimEnv env;
  for (int pid = 0; pid < config.n; ++pid) {
    const auto program = [&, pid](bss::sim::Ctx& ctx) {
      (void)pid;
      bss::service::SimLeasePlatform plat(ctx, state);
      bss::service::run_lease_session(plat, ledger, config);
    };
    env.add_process(program, program);  // the session is its own restart hook
  }
  bss::Rng rng(seed);
  const bss::sim::FaultPlan plan = bss::sim::FaultPlan::random(
      config.n, /*crash_p=*/0.25, /*restart_p=*/0.5, /*sc_p=*/0.25,
      /*max_op=*/24, rng);
  bss::sim::RandomScheduler scheduler(seed * 0x9e3779b97f4a7c15ULL + 1);
  const bss::sim::RunReport report = env.run(scheduler, plan);
  for (int pid = 0; pid < config.n; ++pid) {
    const auto i = static_cast<std::size_t>(pid);
    restarts += report.restarts_by_pid[i];
    if (report.outcomes[i] == bss::sim::ProcOutcome::kFailed) {
      return "seed " + std::to_string(seed) + ": p" + std::to_string(pid) +
             " failed: " + report.errors[i];
    }
  }
  stats.merge_from(ledger.stats());
  if (const auto violation = ledger.check(); violation.has_value()) {
    return "seed " + std::to_string(seed) + ": " + *violation;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  bool soak = false;
  std::uint64_t base_seed = 1;
  std::string out_path;
  std::string status_path;
  std::uint64_t status_every = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--soak") {
      soak = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--status" && i + 1 < argc) {
      status_path = argv[++i];
    } else if (arg == "--status-every" && i + 1 < argc) {
      status_every = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--soak] [--seed N] [--out PATH]"
                   " [--status PATH] [--status-every MS]\n",
                   argv[0]);
      return 2;
    }
  }

  const LeaseConfig config = pool_config();
  const int sim_runs = soak ? 400 : 40;
  const int thread_runs = soak ? 200 : 20;

  // --- heartbeat: one storm == one "schedule", bounded by the plan -------
  bss::obs::StatusWriter status_writer(status_path, status_every);
  const std::uint64_t planned =
      static_cast<std::uint64_t>(sim_runs + thread_runs);
  int violations = 0;
  std::uint64_t storms_done = 0;
  const auto heartbeat = [&](std::uint64_t backend_index, std::string state) {
    if (!status_writer.enabled()) return;
    bss::obs::Status s;
    s.producer = "leader_worker_pool";
    s.system = "lease[n=" + std::to_string(config.n) + "]";
    s.state = std::move(state);
    s.schedules = storms_done;
    s.violations = static_cast<std::uint64_t>(violations);
    s.frontier = planned - storms_done;
    s.max_schedules = planned;
    s.passes = backend_index;  // 0 = sim backend, 1 = thread backend
    s.jobs = 1;
    status_writer.write(std::move(s));
  };
  heartbeat(0, "running");  // seq 0: the soak is visible immediately

  // --- sim backend: seeded random storms through the simulator -----------
  bss::obs::Telemetry telemetry;  // lifecycle events from the FIRST run only
  LeaseStats sim_stats;
  int sim_restarts = 0;
  for (int run = 0; run < sim_runs; ++run) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(run);
    const auto verdict = run_sim_storm(config, seed, sim_stats, sim_restarts,
                                       run == 0 ? &telemetry : nullptr);
    if (verdict.has_value()) {
      std::fprintf(stderr, "sim VIOLATION: %s\n", verdict->c_str());
      ++violations;
    }
    ++storms_done;
    if (status_writer.due()) heartbeat(0, "running");
  }
  std::printf("sim    %4d seeded storms  n=%d  restarts=%d  acquired=%llu  "
              "takeovers=%llu  step-downs=%llu  violations=%d\n",
              sim_runs, config.n, sim_restarts,
              static_cast<unsigned long long>(sim_stats.leases_acquired),
              static_cast<unsigned long long>(sim_stats.takeovers),
              static_cast<unsigned long long>(sim_stats.step_downs),
              violations);

  // --- thread backend: the same protocol on real atomics -----------------
  LeaseStats thread_stats;
  int thread_restarts = 0;
  int thread_spurious = 0;
  for (int run = 0; run < thread_runs; ++run) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(run);
    const auto report =
        bss::service::run_thread_lease_storm(config, seed, /*max_crashes=*/2);
    thread_stats.merge_from(report.stats);
    thread_restarts += report.restarts;
    thread_spurious += report.spurious_delivered;
    if (report.violation.has_value()) {
      std::fprintf(stderr, "thread VIOLATION: seed %llu: %s\n",
                   static_cast<unsigned long long>(seed),
                   report.violation->c_str());
      ++violations;
    }
    ++storms_done;
    if (status_writer.due()) heartbeat(1, "running");
  }
  heartbeat(1, "complete");  // terminal: unconditional, final totals
  std::printf("thread %4d seeded storms  n=%d  restarts=%d  spurious-sc=%d  "
              "acquired=%llu  step-downs=%llu  violations=%d\n",
              thread_runs, config.n, thread_restarts, thread_spurious,
              static_cast<unsigned long long>(thread_stats.leases_acquired),
              static_cast<unsigned long long>(thread_stats.step_downs),
              violations);
  std::printf("telemetry: %llu lifecycle events from the showcase run "
              "(service.acquire/renew/step_down/give_up)\n",
              static_cast<unsigned long long>(
                  telemetry.event_log().emitted()));

  // --- runreport: the service.* stat family, schema-gated ----------------
  if (!out_path.empty()) {
    LeaseStats total;
    total.merge_from(sim_stats);
    total.merge_from(thread_stats);
    bss::obs::ReportBuilder report("service_storm", "leader_worker_pool");
    report.set_system("lease[n=" + std::to_string(config.n) + "]");
    report.option("soak", soak);
    report.option("base_seed", static_cast<double>(base_seed));
    report.stat("sim_runs", static_cast<std::uint64_t>(sim_runs));
    report.stat("thread_runs", static_cast<std::uint64_t>(thread_runs));
    report.stat("restarts",
                static_cast<std::uint64_t>(sim_restarts + thread_restarts));
    report.stat("violations", static_cast<std::uint64_t>(violations));
    report.stat("service.leases_acquired", total.leases_acquired);
    report.stat("service.takeovers", total.takeovers);
    report.stat("service.renewals", total.renewals);
    report.stat("service.renew_failures", total.renew_failures);
    report.stat("service.retries", total.retries);
    report.stat("service.step_downs", total.step_downs);
    report.stat("service.expirations", total.expirations);
    report.stat("service.give_ups", total.give_ups);
    report.stat("service.actions", total.actions);
    const std::string text = report.to_json();
    const auto errors = bss::obs::validate_runreport(text);
    if (!errors.empty()) {
      std::fprintf(stderr, "runreport invalid: %s\n", errors.front().c_str());
      return 1;
    }
    std::ofstream(out_path) << text;
    std::printf("runreport -> %s (validator clean)\n", out_path.c_str());
  }

  return violations == 0 ? 0 : 1;
}
