// Leader-coordinated worker pool on bounded synchronization.
//
// The scenario the paper's introduction motivates: multiprocessors expose
// strong-but-small synchronization primitives (compare&swap words).  Here a
// pool of workers processes tasks in epochs; at each epoch boundary exactly
// one worker must become the *sealer* that publishes the epoch's checkpoint.
// Election uses one compare&swap-(5) per epoch — 24 workers coordinated
// through a 5-valued word, with crash-tolerant helping: even if the "obvious"
// winner stalls, everyone still agrees on the same sealer.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/concurrent_election.h"

namespace {

constexpr int kK = 5;
constexpr int kWorkers = 24;  // (kK-1)!
constexpr int kEpochs = 8;
constexpr int kTasksPerEpoch = 480;

struct Epoch {
  std::atomic<int> next_task{0};
  std::atomic<int> completed{0};
  bss::core::AtomicElectionMemory election{kK};
  std::atomic<long long> checkpoint{-1};
};

}  // namespace

int main() {
  std::vector<std::unique_ptr<Epoch>> epochs;
  for (int e = 0; e < kEpochs; ++e) epochs.push_back(std::make_unique<Epoch>());

  std::atomic<long long> total_work{0};
  std::vector<int> seals_by_worker(kWorkers, 0);

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int e = 0; e < kEpochs; ++e) {
        Epoch& epoch = *epochs[static_cast<std::size_t>(e)];
        // Grab and "process" tasks until the epoch drains.
        for (;;) {
          const int task = epoch.next_task.fetch_add(1);
          if (task >= kTasksPerEpoch) break;
          total_work.fetch_add(task % 7 + 1, std::memory_order_relaxed);
          epoch.completed.fetch_add(1);
        }
        // Everyone runs the election; exactly one identity wins.  The
        // election is wait-free: no worker blocks on another.
        const auto outcome = bss::core::fvt_elect(
            epoch.election, static_cast<std::uint64_t>(w), 1000 + w);
        const int sealer = static_cast<int>(outcome.leader - 1000);
        if (sealer == w) {
          // The sealer publishes the checkpoint once the epoch drained.
          while (epoch.completed.load() < kTasksPerEpoch) {
            std::this_thread::yield();
          }
          epoch.checkpoint.store(total_work.load());
          ++seals_by_worker[static_cast<std::size_t>(w)];
        } else {
          // Non-sealers move on immediately; they only needed agreement on
          // WHO seals (reading the checkpoint can happen any time later).
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  std::printf("epoch  sealer-checkpoint\n");
  bool all_sealed = true;
  for (int e = 0; e < kEpochs; ++e) {
    const long long checkpoint =
        epochs[static_cast<std::size_t>(e)]->checkpoint.load();
    all_sealed = all_sealed && checkpoint >= 0;
    std::printf("%5d  %lld\n", e, checkpoint);
  }
  int sealers = 0;
  for (const int count : seals_by_worker) sealers += count;
  std::printf(
      "\n%d epochs, %d seal actions total (exactly one per epoch: %s)\n",
      kEpochs, sealers, sealers == kEpochs && all_sealed ? "yes" : "NO");
  std::printf("coordination cost: one 5-valued word per epoch for %d workers\n",
              kWorkers);
  return sealers == kEpochs && all_sealed ? 0 : 1;
}
