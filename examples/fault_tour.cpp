// fault_tour — end-to-end tour of the crash-recovery fault model.
//
// With no arguments, the tour runs four acts and prints what happens:
//
//   1. A single crash-restart injected into a recoverable FirstValueTree
//      election: the victim loses all private state, re-enters through its
//      restart hook, and the election still satisfies every invariant.
//   2. A randomized crash-restart storm (100 seeds), validated seed by seed.
//   3. An exhaustive single-fault sweep over the restartable one-shot
//      election: every crash and restart point, zero violations.
//   4. The seeded recovery-UNSAFE mutant (each incarnation rejoins as a
//      brand-new participant): the fault explorer refutes it and prints the
//      minimized `bss-counterexample v2` artifact to stdout.
//
// Save the artifact and pass it back as a file argument to replay the
// faulty schedule verbatim:
//
//   ./fault_tour > mutant.bss-cex
//   ./fault_tour mutant.bss-cex
//
// The replay exits 0 only when the violation reproduced with zero
// divergences — schedule AND faults re-executed from the tape.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/election_validator.h"
#include "core/recoverable_election.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "runtime/fault_plan.h"
#include "runtime/scheduler.h"
#include "util/rng.h"

namespace {

bss::explore::RecoverableFvtSystem make_mutant() {
  return bss::explore::RecoverableFvtSystem(
      3, 2, bss::core::RestartBehavior::kFreshClaim);
}

bss::explore::ExploreOptions mutant_options() {
  bss::explore::ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;  // the bug needs a restart, not a death
  return options;
}

int replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto cex = bss::explore::Counterexample::from_artifact(text.str());
  if (!cex) {
    std::cerr << "not a bss-counterexample artifact: " << path << "\n";
    return 2;
  }
  const auto system = make_mutant();
  const auto outcome =
      bss::explore::replay_counterexample(system, *cex, mutant_options());
  std::cerr << "replayed " << cex->decisions.size() << " decisions ("
            << cex->fault_count() << " faults), divergences="
            << outcome.divergences << "\n";
  if (!outcome.violated || outcome.divergences != 0) {
    std::cerr << "replay did NOT reproduce the violation verbatim\n";
    return 1;
  }
  std::cerr << "reproduced: " << outcome.violation << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return replay(argv[1]);

  // Act 1: one surgical crash-restart.
  {
    bss::sim::FaultPlan plan;
    plan.restart_before_op(0, 4);  // p0 dies mid-protocol and comes back
    bss::sim::RoundRobinScheduler scheduler;
    const auto report =
        bss::core::run_recoverable_sim_election(3, 2, scheduler, plan);
    const auto verdict = bss::core::verify_election(report.election);
    std::cerr << "[1] restart p0 before its op 4: restarts="
              << report.restarts_by_pid[0] << ", invariants "
              << (verdict.ok() ? "hold" : verdict.diagnosis) << "\n";
  }

  // Act 2: a hundred random storms.
  {
    int bad = 0;
    int restarted = 0;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
      bss::Rng rng(seed);
      const auto plan = bss::sim::FaultPlan::random(6, 0.2, 0.5, 0.0, 30, rng);
      bss::sim::RandomScheduler scheduler(seed * 31 + 7);
      const auto report =
          bss::core::run_recoverable_sim_election(4, 6, scheduler, plan);
      if (!bss::core::verify_election(report.election).ok()) ++bad;
      if (report.election.run.restarted_count() > 0) ++restarted;
    }
    std::cerr << "[2] 100-seed crash-restart storm: " << restarted
              << " runs saw restarts, " << bad << " violations\n";
  }

  // Act 3: exhaustive single-fault sweep of a correct election.
  {
    bss::explore::OneShotSystem system(4, 2, bss::core::OneShotMutant::kNone,
                                       /*restartable=*/true);
    bss::explore::ExploreOptions options;
    options.fault_bound = 1;
    options.iterative = true;
    const auto result = bss::explore::explore(system, options);
    std::cerr << "[3] exhaustive single-fault sweep: " << result.summary()
              << "\n";
  }

  // Act 4: refute the recovery-unsafe mutant, emit the v2 artifact.
  const auto system = make_mutant();
  const auto result = bss::explore::explore(system, mutant_options());
  if (result.ok()) {
    std::cerr << "[4] mutant unexpectedly survived: " << result.summary()
              << "\n";
    return 1;
  }
  const auto& cex = result.violations.front();
  std::cerr << "[4] refuted " << system.name() << " with "
            << cex.decisions.size() << " decisions (" << cex.fault_count()
            << " faults, shrunk from " << cex.shrunk_from
            << "); artifact on stdout\n";
  std::cout << cex.to_artifact();
  return 0;
}
