// report_tour — the telemetry layer end to end (DESIGN.md §9).
//
// Explores a seeded election mutant with a full Telemetry sink attached —
// metrics, structured events and worker timelines — then walks through
// every artifact the run produced:
//
//   1. the bss-runreport v1 document (deterministic channel + quarantined
//      timing), re-parsed through the version gate,
//   2. the merged metrics snapshot and where its numbers come from,
//   3. the structured event log as JSONL, split by channel,
//   4. the Chrome trace (load the printed file in Perfetto or
//      chrome://tracing to see one track per worker plus the merge).
//
// The exploration itself is byte-identical with and without the sink —
// the tour re-runs it bare and checks that on the spot.
#include <cstdio>
#include <string>

#include "core/mutant_elections.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "obs/obs.h"

int main() {
  const bss::explore::OneShotSystem system(
      4, 3, bss::core::OneShotMutant::kClaimAfterCas);

  bss::obs::Telemetry::Options sink_options;
  sink_options.timeline = true;
  sink_options.trace_path = "report_tour.trace.json";
  bss::obs::Telemetry telemetry(sink_options);

  bss::explore::ExploreOptions options;
  options.jobs = 4;
  options.telemetry = &telemetry;
  std::printf("== exploring %s on 4 workers, telemetry on ==\n%s\n",
              system.name().c_str(),
              bss::explore::explore(system, options).summary().c_str());

  // --- 1. the runreport, through the same gate CI uses -------------------
  const std::string& report_text = telemetry.last_report();
  std::string error;
  const auto report = bss::obs::RunReport::parse(report_text, &error);
  if (!report.has_value()) {
    std::fprintf(stderr, "runreport rejected: %s\n", error.c_str());
    return 1;
  }
  std::printf("\n== bss-runreport v1 (%zu bytes, schema-gated parse OK) ==\n",
              report_text.size());
  std::printf("kind=%s producer=%s system=%s schedules=%llu violations=%llu\n",
              report->kind().c_str(), report->producer().c_str(),
              report->system().c_str(),
              static_cast<unsigned long long>(report->stat("schedules")),
              static_cast<unsigned long long>(report->stat("violations")));
  // A consumer from the future is rejected, not misread:
  if (!bss::obs::RunReport::parse(
          R"({"schema": "bss-runreport v99", "kind": "explore"})", &error)) {
    std::printf("version gate works: %s\n", error.c_str());
  }

  // --- 2. merged metrics -------------------------------------------------
  const auto snapshot = telemetry.metrics_snapshot();
  std::printf("\n== metrics (merged across worker shards, name-sorted) ==\n");
  for (const auto& [name, value] : snapshot.counters) {
    std::printf("  counter %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::printf("  gauge   %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }

  // --- 3. the event log, one JSON object per line ------------------------
  const auto& log = telemetry.event_log();
  std::printf("\n== events (%llu emitted, %llu dropped), first lines ==\n",
              static_cast<unsigned long long>(log.emitted()),
              static_cast<unsigned long long>(log.dropped()));
  const std::string jsonl = log.to_jsonl();
  std::size_t printed = 0;
  std::size_t begin = 0;
  while (printed < 6 && begin < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', begin);
    std::printf("  %s\n", jsonl.substr(begin, end - begin).c_str());
    begin = end + 1;
    ++printed;
  }
  std::printf("  ... (everything under \"timing\" is wall-clock and may\n"
              "       differ run to run; everything else must not)\n");

  // --- 4. the Perfetto trace ---------------------------------------------
  std::printf("\n== timeline: %zu spans -> %s ==\n",
              telemetry.timeline().spans().size(),
              sink_options.trace_path.c_str());
  std::printf("load it in https://ui.perfetto.dev — one track per worker,\n"
              "plus the enumerate+merge coordinator track.\n");

  // --- passivity spot-check ----------------------------------------------
  bss::explore::ExploreOptions bare = options;
  bare.telemetry = nullptr;
  const bool identical =
      bss::explore::explore(system, bare).stats.summary() ==
      bss::explore::explore(system, options).stats.summary();
  std::printf("\ntelemetry passive (bare rerun identical): %s\n",
              identical ? "yes" : "NO — BUG");
  return identical ? 0 : 1;
}
