// Quickstart: elect a leader among 24 real threads using ONE 5-valued
// compare&swap register (plus plain shared words).
//
// A compare&swap-(k) holds only k distinct values — here k = 5 — yet with
// read/write registers on the side it elects a leader among (k-1)! = 24
// processes, wait-free (Afek & Stupp '94 / FOCS '93).  Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/concurrent_election.h"

int main() {
  constexpr int kK = 5;        // register holds 5 values: ⊥,1,2,3,4
  constexpr int kThreads = 24; // == (kK-1)! — the algorithm's full capacity

  const bss::core::ConcurrentElectionReport report =
      bss::core::run_concurrent_election(kK, kThreads);

  std::printf("elected leader: id %lld (thread %lld)\n",
              static_cast<long long>(report.leader),
              static_cast<long long>(report.leader - 1000));
  std::printf("all %d threads agree: %s\n", kThreads,
              report.consistent ? "yes" : "NO");

  int max_cas = 0;
  for (const auto& outcome : report.outcomes) {
    if (outcome.cas_accesses > max_cas) max_cas = outcome.cas_accesses;
  }
  std::printf(
      "hardest-working thread touched the compare&swap %d times "
      "(bounded wait-free: <= %d for k=%d)\n",
      max_cas, bss::core::max_iterations(kK), kK);

  // The winning thread can print its own label — the order in which fresh
  // symbols entered the register, which uniquely names the winner.
  std::printf("winning label:");
  for (const int symbol : report.outcomes.front().label) {
    std::printf(" %d", symbol);
  }
  std::printf("\n");
  return report.consistent ? 0 : 1;
}
