// A narrated run of the Section 3 reduction at k = 3.
//
// Watch two emulators — armed with only read/write memory — cooperatively
// construct runs of the FirstValueTree election (which uses a
// compare&swap-(3)), split into first-value groups, and come out with a
// 2-set consensus: at most (k-1)! = 2 distinct decisions.  Then watch the
// operational face of Theorem 1: algorithm A simply does not have enough
// process slots to feed (k-1)!+1 = 3 emulators.
#include <cstdio>

#include "emulation/driver.h"
#include "emulation/reduction_check.h"
#include "util/checked.h"

namespace {

const char* event_name(bss::emu::EmuEventKind kind) {
  switch (kind) {
    case bss::emu::EmuEventKind::kSuspend:
      return "suspend";
    case bss::emu::EmuEventKind::kRelease:
      return "release";
    case bss::emu::EmuEventKind::kInstall:
      return "install";
    case bss::emu::EmuEventKind::kSplit:
      return "split  ";
    case bss::emu::EmuEventKind::kMigrate:
      return "migrate";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf(
      "Reduction walkthrough (k=3): 2 emulators, 1 v-process each, A = "
      "FirstValueTree\n"
      "=========================================================================\n\n");
  bss::emu::EmuParams params;
  params.k = 3;
  params.m = 2;
  params.vps_per_emulator = 1;
  bss::emu::EmulationDriver driver(params, bss::emu::fvt_vp_factory());
  const bss::emu::EmuStats stats = driver.run();

  std::printf("--- emulator events ---\n");
  for (const auto& event : driver.events()) {
    std::printf("  e%d [%s] %s  %s\n", event.emulator,
                bss::emu::label_string(event.label).c_str(),
                event_name(event.kind), event.detail.c_str());
  }

  std::printf("\n--- virtual operations (the constructed runs) ---\n");
  for (const auto& step : driver.step_log()) {
    std::printf("  vp%d (e%d, label %-8s) %s.%s(%lld,%lld)", step.vp,
                step.emulator, bss::emu::label_string(step.label).c_str(),
                step.desc.object.c_str(), step.desc.op.c_str(),
                static_cast<long long>(step.desc.arg0),
                static_cast<long long>(step.desc.arg1));
    if (step.has_result) {
      std::printf(" -> %lld", static_cast<long long>(step.result));
    }
    std::printf("\n");
  }

  std::printf("\n--- histories per group ---\n");
  for (const auto& label : driver.forest().active_labels()) {
    std::printf("  t_%-8s h = %s\n", bss::emu::label_string(label).c_str(),
                bss::emu::label_string(
                    driver.forest().compute_history(label))
                    .c_str());
  }

  std::printf("\n--- outcome ---\n");
  for (std::size_t id = 0; id < stats.decisions.size(); ++id) {
    if (stats.decisions[id].has_value()) {
      std::printf("  emulator %zu decided %lld (group %s)\n", id,
                  static_cast<long long>(*stats.decisions[id]),
                  bss::emu::label_string(stats.final_labels[id]).c_str());
    }
  }
  std::printf("  distinct decisions: %d  — the (k-1)! = 2 set-consensus "
              "bound, tight.\n",
              stats.distinct_decisions);
  const auto verdict = bss::emu::verify_reduction(driver, stats);
  std::printf("  run legality (Lemma 1.2 checks): %s%s\n",
              verdict.ok() ? "all pass" : "FAIL: ",
              verdict.ok() ? "" : verdict.diagnosis.c_str());

  std::printf(
      "\n--- and the theorem ---\n"
      "  feeding (k-1)!+1 = 3 emulators needs 3 v-processes, but A has only\n"
      "  (k-1)! = 2 slots: ");
  try {
    bss::emu::EmuParams impossible = params;
    impossible.m = 3;
    bss::emu::EmulationDriver third(impossible, bss::emu::fvt_vp_factory());
    third.run();
    std::printf("UNEXPECTEDLY RAN\n");
    return 1;
  } catch (const bss::InvariantError& error) {
    std::printf("rejected —\n  \"%s\"\n", error.what());
  }
  std::printf(
      "  were an election for more processes to exist, this reduction would\n"
      "  hand (k-1)!+1 read/write processes an impossible (k-1)!-set\n"
      "  consensus.  Hence n_k is bounded: Theorem 1.\n");
  return 0;
}
