// A guided tour of Herlihy's hierarchy — every claim machine-checked as you
// watch.
//
// The paper refines the hierarchy's top level by object SIZE; this tour
// walks the levels below it with the exhaustive checker: read/write
// registers can't do 2-consensus, test&set does exactly 2, a
// compare&swap-(k) without helpers tops out at k-1, and sticky registers
// (or unbounded c&s) go all the way up — at the price of unbounded supply,
// which the universal construction makes concrete.
#include <cstdio>

#include "checker/bivalence.h"
#include "checker/consensus_check.h"
#include "checker/protocols.h"
#include "hierarchy/universal.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace {

const std::vector<int> kBinary{0, 1};

void show(const bss::check::Protocol& protocol, const char* story) {
  const auto inputs =
      bss::check::all_input_vectors(protocol.process_count(), kBinary);
  const auto result = bss::check::check_consensus(protocol, inputs);
  std::printf("%-14s n=%d: %s\n", protocol.name().c_str(),
              protocol.process_count(),
              result.solves ? "SOLVES consensus" : "fails");
  if (!result.solves) {
    std::printf("   counterexample (%s): schedule", result.detail.c_str());
    for (const int pid : result.schedule) std::printf(" p%d", pid);
    std::printf("  under inputs");
    for (const int input : result.inputs) std::printf(" %d", input);
    std::printf("\n");
  }
  std::printf("   %s\n\n", story);
}

}  // namespace

int main() {
  std::printf("=== level 1: read/write registers ===\n");
  bss::check::RwWriteReadConsensus rw;
  show(rw,
       "the natural write-then-read protocol disagrees: FLP/Loui-Abu-Amara, "
       "as a concrete schedule.");
  bss::check::RwSpinConsensus rw_spin;
  show(rw_spin,
       "a 'safe' variant never disagrees - but then it must WAIT, and the "
       "checker schedules the waiter forever: no wait-free consensus from "
       "registers.");

  std::printf("=== level 2: test&set ===\n");
  bss::check::TasConsensus2 tas2;
  show(tas2, "two processes: the bit decides, the loser deduces the winner.");
  bss::check::TasSpinConsensus3 tas3;
  show(tas3,
       "three processes: a loser cannot tell WHICH of the other two won - "
       "it must wait. Consensus number of test&set: exactly 2.");

  std::printf("=== the top level, refined by size (the paper) ===\n");
  bss::check::CasConsensusK cas_ok(3, 4);
  show(cas_ok, "a compare&swap-(4): three processes claim distinct symbols.");
  bss::check::CasConsensusK cas_overloaded(4, 4);
  show(cas_overloaded,
       "the same object with four processes: two must share a symbol, and "
       "sharing breaks agreement - BOUNDED SIZE LIMITS POWER. The paper "
       "quantifies exactly this: n_k = O(k^(k^2+3)), and (k-1)! is "
       "achievable with read/write helpers.");

  std::printf("=== valency, counted ===\n");
  const auto valency = bss::check::analyze_valency(tas2, {0, 1});
  std::printf("tas-2 on inputs {0,1}: %s\n\n", valency.summary().c_str());

  std::printf("=== universality (Herlihy [10]) ===\n");
  bss::hierarchy::UniversalObject queue("queue", bss::hierarchy::queue_spec(),
                                        3, 24);
  bss::sim::SimEnv env;
  std::vector<long long> got(3, -2);
  for (int pid = 0; pid < 3; ++pid) {
    env.add_process([&, pid](bss::sim::Ctx& ctx) {
      queue.invoke(ctx, 1 + pid);              // enqueue pid
      got[static_cast<std::size_t>(pid)] = queue.invoke(ctx, 0);  // dequeue
    });
  }
  bss::sim::RandomScheduler scheduler(42);
  env.run(scheduler);
  std::printf(
      "a wait-free FIFO queue built from consensus cells: dequeues = "
      "%lld %lld %lld (distinct, all enqueued)\n",
      got[0], got[1], got[2]);
  std::printf(
      "...but it consumed %d consensus cells for 6 operations: universality "
      "eats an unbounded supply. A single bounded object cannot do that - "
      "which is the paper's question, answered.\n",
      queue.log_length());
  return 0;
}
