// explore_counterexample — end-to-end tour of the schedule explorer.
//
// With no arguments: explores a seeded one-shot election mutant (split-cas,
// a classic read-then-write TOCTOU race), prints the minimized
// counterexample artifact to stdout and diagnostics to stderr.  Save the
// artifact and pass it back as a file argument to replay it verbatim:
//
//   ./explore_counterexample > cex.txt
//   ./explore_counterexample cex.txt
//
// The replay exits 0 only when ReplayScheduler reproduced the violation
// with zero divergences, i.e. the artifact still drives this build of the
// code end to end.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/mutant_elections.h"
#include "explore/election_systems.h"
#include "explore/explore.h"

namespace {

bss::explore::OneShotSystem make_system() {
  return bss::explore::OneShotSystem(4, 2,
                                     bss::core::OneShotMutant::kSplitCas);
}

int explore_and_print() {
  const bss::explore::OneShotSystem system = make_system();
  std::cerr << "exploring " << system.name() << " ...\n";
  const bss::explore::ExploreResult result = bss::explore::explore(system);
  std::cerr << result.summary() << "\n";
  if (result.ok()) {
    std::cerr << "no violation found (did someone fix the mutant?)\n";
    return 1;
  }
  const bss::explore::Counterexample& cex = result.violations.front();
  std::cerr << "violation: " << cex.violation << "\n"
            << "minimized " << cex.shrunk_from << " -> "
            << cex.decisions.size() << " decisions\n";
  std::cout << cex.to_artifact();
  return 0;
}

int replay_from_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto cex = bss::explore::Counterexample::from_artifact(buffer.str());
  if (!cex) {
    std::cerr << path << " is not a bss-counterexample artifact\n";
    return 1;
  }
  const bss::explore::OneShotSystem system = make_system();
  if (cex->system != system.name()) {
    std::cerr << "artifact is for " << cex->system << ", this binary replays "
              << system.name() << "\n";
    return 1;
  }
  const bss::explore::ReplayOutcome outcome =
      bss::explore::replay_counterexample(system, *cex);
  std::cerr << "replayed " << cex->decisions.size() << " decisions, "
            << outcome.divergences << " divergences\n";
  if (!outcome.violated) {
    std::cerr << "violation did not reproduce\n";
    return 1;
  }
  std::cerr << "reproduced: " << outcome.violation << "\n";
  return outcome.divergences == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::cerr << "usage: " << argv[0] << " [artifact-file]\n";
    return 2;
  }
  return argc == 2 ? replay_from_file(argv[1]) : explore_and_print();
}
