// F1b — who wins? The adversary's grip on the election outcome.
//
// Consistency says everyone agrees on A winner; nothing says WHICH.  This
// series runs the election across seeds per scheduler and histograms the
// winning slot — showing that the schedule (the adversary) fully controls
// the outcome, while validity and consistency never budge.  Shape: solo
// always elects slot 0 (it runs alone to completion); random spreads wins
// across early-path slots; the cas-convoy adversary produces the broadest
// spread (maximal contention = maximal nondeterminism).
#include <cstdio>
#include <map>
#include <memory>

#include "bench_flags.h"
#include "bench_report.h"
#include "core/election_validator.h"
#include "core/sim_election.h"
#include "util/checked.h"

namespace {

void histogram(const char* name,
               const std::function<std::unique_ptr<bss::sim::Scheduler>(
                   std::uint64_t)>& make,
               int k, int n, int trials,
               bss::bench::BenchReport& bench_report) {
  std::map<std::int64_t, int> wins;
  int violations = 0;
  for (int trial = 0; trial < trials; ++trial) {
    auto scheduler = make(static_cast<std::uint64_t>(trial));
    const auto report = bss::core::run_sim_election(k, n, *scheduler);
    if (!bss::core::verify_election(report).ok()) ++violations;
    ++wins[report.outcomes[0]->leader - 1000];
  }
  bss::obs::json::Object object;
  object.emplace("scheduler", name);
  object.emplace("trials", trials);
  object.emplace("distinct_winners", static_cast<std::uint64_t>(wins.size()));
  object.emplace("violations", violations);
  bench_report.row(std::move(object));
  std::printf("%-12s distinct-winners=%2zu violations=%d  top:", name,
              wins.size(), violations);
  // Print the three most frequent winners.
  for (int rank = 0; rank < 3; ++rank) {
    std::int64_t best = -1;
    int best_count = 0;
    for (const auto& [slot, count] : wins) {
      if (count > best_count) {
        best = slot;
        best_count = count;
      }
    }
    if (best < 0) break;
    std::printf("  slot%lld x%d", static_cast<long long>(best), best_count);
    wins.erase(best);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/false, /*accepts_json=*/false);
  bss::bench::BenchReport report(flags, "bench_fairness");
  constexpr int kK = 5;
  constexpr int kN = 24;
  constexpr int kTrials = 200;
  std::printf(
      "F1b — winner distribution, k=%d n=%d, %d seeds per scheduler\n\n", kK,
      kN, kTrials);
  histogram("solo", [](std::uint64_t) {
    return std::make_unique<bss::sim::SoloScheduler>();
  }, kK, kN, 1, report);
  histogram("round-robin", [](std::uint64_t) {
    return std::make_unique<bss::sim::RoundRobinScheduler>();
  }, kK, kN, 1, report);
  histogram("random", [](std::uint64_t seed) {
    return std::make_unique<bss::sim::RandomScheduler>(seed);
  }, kK, kN, kTrials, report);
  histogram("cas-convoy", [](std::uint64_t seed) {
    return std::make_unique<bss::sim::CasConvoyScheduler>(seed);
  }, kK, kN, kTrials, report);
  std::printf(
      "\nshape: zero violations everywhere; the adversary picks the winner\n"
      "but can never manufacture disagreement — which is the whole point of\n"
      "a wait-free election.\n");
  report.finalize();
  return 0;
}
