// bench_audit — overhead table for the access-ledger soundness auditor
// (DESIGN.md "Soundness auditing").
//
// For each system we explore the schedule space three times — audit off,
// audit on with the default commutation sample (1/16 schedules), and audit
// on cross-checking every schedule — and report wall-clock, schedules/sec,
// the relative overhead against the unaudited run, and the audit counters
// (windows, accesses, swap replays).  The explorer's own output must be
// identical across the three runs (the audit layer is passive); the bench
// asserts that on the spot, so a determinism regression fails here before
// it confuses the EXPERIMENTS.md table.
//
// `--json` prints the same rows as a JSON array.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "bench_report.h"
#include "explore/election_systems.h"
#include "explore/explore.h"

namespace {

using bss::explore::ExplorableSystem;
using bss::explore::ExploreOptions;
using bss::explore::ExploreResult;

struct Row {
  std::string system;
  std::string mode;  ///< "off", "on/16", "on/1"
  ExploreResult result;
  double seconds = 0;
  double overhead = 0;  ///< seconds relative to the audit-off run
};

Row timed_explore(std::string system_label, std::string mode,
                  const ExplorableSystem& system,
                  const ExploreOptions& options) {
  Row row;
  row.system = std::move(system_label);
  row.mode = std::move(mode);
  const auto start = std::chrono::steady_clock::now();
  row.result = bss::explore::explore(system, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

double rate_of(const Row& row) {
  return row.seconds > 0
             ? static_cast<double>(row.result.stats.schedules) / row.seconds
             : 0;
}

std::vector<Row> bench_system(const std::string& label,
                              const ExplorableSystem& system,
                              ExploreOptions options) {
  std::vector<Row> rows;
  options.audit = false;
  rows.push_back(timed_explore(label, "off", system, options));
  options.audit = true;
  options.audit_commute_sample = 16;
  rows.push_back(timed_explore(label, "on/16", system, options));
  options.audit_commute_sample = 1;
  rows.push_back(timed_explore(label, "on/1", system, options));
  const Row& base = rows[0];
  for (Row& row : rows) {
    row.overhead = base.seconds > 0 ? row.seconds / base.seconds : 1.0;
    // The audit layer must be passive: identical explorer output in every
    // mode.  A mismatch here is a determinism regression, not noise.
    if (row.result.stats.summary() != base.result.stats.summary() ||
        row.result.violations.size() != base.result.violations.size()) {
      std::fprintf(stderr,
                   "FATAL: audit mode changed explorer results on %s (%s)\n",
                   label.c_str(), row.mode.c_str());
      std::exit(1);
    }
  }
  return rows;
}

void print_table(const std::vector<Row>& rows) {
  std::printf("%-18s %-6s %9s %10s %9s %9s %9s %8s %9s\n", "system", "audit",
              "schedules", "sched/s", "windows", "accesses", "swaps",
              "seconds", "overhead");
  for (const Row& row : rows) {
    const auto& stats = row.result.stats;
    const auto& audit = row.result.audit;
    std::printf("%-18s %-6s %9llu %10.0f %9llu %9llu %9llu %8.3f %8.2fx\n",
                row.system.c_str(), row.mode.c_str(),
                static_cast<unsigned long long>(stats.schedules), rate_of(row),
                static_cast<unsigned long long>(audit.windows),
                static_cast<unsigned long long>(audit.accesses),
                static_cast<unsigned long long>(audit.swaps_replayed),
                row.seconds, row.overhead);
  }
}

void print_json(const std::vector<Row>& rows) {
  std::printf("[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& stats = rows[i].result.stats;
    const auto& audit = rows[i].result.audit;
    std::printf(
        "  {\"system\": \"%s\", \"audit\": \"%s\", \"schedules\": %llu, "
        "\"schedules_per_sec\": %.0f, \"windows\": %llu, \"accesses\": %llu, "
        "\"swaps_replayed\": %llu, \"commute_mismatches\": %llu, "
        "\"seconds\": %.6f, \"overhead\": %.4f}%s\n",
        rows[i].system.c_str(), rows[i].mode.c_str(),
        static_cast<unsigned long long>(stats.schedules), rate_of(rows[i]),
        static_cast<unsigned long long>(audit.windows),
        static_cast<unsigned long long>(audit.accesses),
        static_cast<unsigned long long>(audit.swaps_replayed),
        static_cast<unsigned long long>(audit.commute_mismatches),
        rows[i].seconds, rows[i].overhead,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags =
      bss::bench::parse_flags(argc, argv, /*accepts_jobs=*/false);

  std::vector<Row> rows;
  const auto add = [&](const std::string& label,
                       const ExplorableSystem& system,
                       const ExploreOptions& options) {
    for (Row& row : bench_system(label, system, options)) {
      rows.push_back(std::move(row));
    }
  };

  add("one-shot[4,2]", bss::explore::OneShotSystem(4, 2), {});
  add("one-shot[4,3]", bss::explore::OneShotSystem(4, 3), {});
  {
    ExploreOptions options;
    options.preemption_bound = 2;
    add("llsc[3,2]", bss::explore::LlScSystem(3, 2), options);
    add("fvt[3,2]", bss::explore::FvtSystem(3, 2), options);
  }

  bss::bench::BenchReport report(flags, "bench_audit");
  for (const Row& row : rows) {
    bss::obs::json::Object object;
    object.emplace("system", bss::obs::json::Value(row.system));
    object.emplace("audit", bss::obs::json::Value(row.mode));
    object.emplace("schedules",
                   bss::obs::json::Value(row.result.stats.schedules));
    object.emplace("windows", bss::obs::json::Value(row.result.audit.windows));
    object.emplace("accesses",
                   bss::obs::json::Value(row.result.audit.accesses));
    object.emplace("swaps_replayed",
                   bss::obs::json::Value(row.result.audit.swaps_replayed));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    object.emplace("overhead", bss::obs::json::Value(row.overhead));
    report.row(std::move(object));
  }

  if (flags.json) {
    print_json(rows);
  } else {
    print_table(rows);
  }
  report.finalize();
  return 0;
}
