// bench_faults — cost curves of the crash-recovery fault machinery
// (DESIGN.md §4c).
//
// Two experiments:
//
//  1. Fault-space exploration throughput: the single-fault and double-fault
//     DFS sweeps over the restartable one-shot election and the recoverable
//     FirstValueTree election, reporting schedules/sec, faults injected,
//     distinct fault points covered, and whether the sweep was exhaustive.
//     The shape to see: fault budget b multiplies the space roughly by the
//     number of fault points per schedule, while POR keeps the per-schedule
//     cost flat.
//
//  2. Randomized crash-restart storm throughput: full recoverable sim
//     elections per second under FaultPlan::random — the price of restarts
//     (re-executed prefixes) relative to the fault-free baseline.
//
// `--json` prints the same rows as a JSON array instead of the tables;
// `--jobs N` runs the fault sweeps on N explorer workers (identical
// results, sweep rates scale with cores).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "bench_report.h"
#include "core/recoverable_election.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "runtime/fault_plan.h"
#include "runtime/scheduler.h"
#include "util/rng.h"

namespace {

using bss::explore::ExplorableSystem;
using bss::explore::ExploreOptions;
using bss::explore::ExploreResult;

struct ExploreRow {
  std::string label;
  ExploreResult result;
  double seconds = 0;
};

ExploreRow timed_explore(std::string label, const ExplorableSystem& system,
                         const ExploreOptions& options) {
  ExploreRow row;
  row.label = std::move(label);
  const auto start = std::chrono::steady_clock::now();
  row.result = bss::explore::explore(system, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

struct StormRow {
  std::string label;
  int runs = 0;
  int restarted_runs = 0;
  double seconds = 0;
};

StormRow timed_storm(std::string label, int k, int n, double crash_p,
                     double restart_p, int runs) {
  StormRow row;
  row.label = std::move(label);
  row.runs = runs;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) {
    bss::Rng rng(static_cast<std::uint64_t>(i));
    const auto plan = bss::sim::FaultPlan::random(n, crash_p, restart_p, 0.0,
                                                  30, rng);
    bss::sim::RandomScheduler scheduler(static_cast<std::uint64_t>(i) * 31);
    const auto report =
        bss::core::run_recoverable_sim_election(k, n, scheduler, plan);
    if (report.election.run.restarted_count() > 0) ++row.restarted_runs;
  }
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

void print_tables(const std::vector<ExploreRow>& sweeps,
                  const std::vector<StormRow>& storms) {
  std::printf("%-34s %9s %8s %8s %7s %10s %s\n", "fault sweep", "schedules",
              "sched/s", "faults", "points", "flt-prune", "coverage");
  for (const auto& row : sweeps) {
    const auto& stats = row.result.stats;
    const double rate =
        row.seconds > 0 ? static_cast<double>(stats.schedules) / row.seconds
                        : 0;
    std::printf("%-34s %9llu %8.0f %8llu %7llu %10llu %s\n",
                row.label.c_str(),
                static_cast<unsigned long long>(stats.schedules), rate,
                static_cast<unsigned long long>(stats.faults_injected),
                static_cast<unsigned long long>(stats.fault_points),
                static_cast<unsigned long long>(stats.fault_prunes),
                row.result.exhausted ? "exhaustive" : "bounded");
  }
  std::printf("\n%-34s %6s %10s %10s\n", "restart storm", "runs", "restarted",
              "runs/s");
  for (const auto& row : storms) {
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.runs) / row.seconds : 0;
    std::printf("%-34s %6d %10d %10.0f\n", row.label.c_str(), row.runs,
                row.restarted_runs, rate);
  }
}

void print_json(const std::vector<ExploreRow>& sweeps,
                const std::vector<StormRow>& storms) {
  std::printf("[\n");
  bool first = true;
  for (const auto& row : sweeps) {
    const auto& stats = row.result.stats;
    const double rate =
        row.seconds > 0 ? static_cast<double>(stats.schedules) / row.seconds
                        : 0;
    std::printf(
        "%s  {\"kind\": \"sweep\", \"label\": \"%s\", \"schedules\": %llu, "
        "\"schedules_per_sec\": %.0f, \"faults_injected\": %llu, "
        "\"fault_points\": %llu, \"fault_prunes\": %llu, \"exhausted\": %s}",
        first ? "" : ",\n", row.label.c_str(),
        static_cast<unsigned long long>(stats.schedules), rate,
        static_cast<unsigned long long>(stats.faults_injected),
        static_cast<unsigned long long>(stats.fault_points),
        static_cast<unsigned long long>(stats.fault_prunes),
        row.result.exhausted ? "true" : "false");
    first = false;
  }
  for (const auto& row : storms) {
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.runs) / row.seconds : 0;
    std::printf(
        "%s  {\"kind\": \"storm\", \"label\": \"%s\", \"runs\": %d, "
        "\"restarted_runs\": %d, \"runs_per_sec\": %.0f}",
        first ? "" : ",\n", row.label.c_str(), row.runs, row.restarted_runs,
        rate);
    first = false;
  }
  std::printf("\n]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags =
      bss::bench::parse_flags(argc, argv, /*accepts_jobs=*/true);
  const bool json = flags.json;

  std::vector<ExploreRow> sweeps;
  {
    bss::explore::OneShotSystem system(4, 2, bss::core::OneShotMutant::kNone,
                                       /*restartable=*/true);
    for (int fb = 0; fb <= 2; ++fb) {
      ExploreOptions options;
      options.fault_bound = fb;
      options.iterative = true;
      options.jobs = flags.jobs;
      sweeps.push_back(timed_explore(
          "one_shot[n=2,restartable] fb=" + std::to_string(fb), system,
          options));
    }
  }
  {
    bss::explore::RecoverableFvtSystem system(3, 2);
    ExploreOptions crash_only;
    crash_only.fault_bound = 1;
    crash_only.iterative = true;
    crash_only.explore_restarts = false;
    crash_only.jobs = flags.jobs;
    sweeps.push_back(
        timed_explore("rfvt[k=3,n=2] crashes fb=1", system, crash_only));
    ExploreOptions restarts;
    restarts.fault_bound = 1;
    restarts.iterative = true;
    restarts.explore_crashes = false;
    restarts.preemption_bound = 1;
    restarts.jobs = flags.jobs;
    sweeps.push_back(
        timed_explore("rfvt[k=3,n=2] restarts fb=1 b=1", system, restarts));
  }

  std::vector<StormRow> storms;
  storms.push_back(timed_storm("rfvt[k=4,n=6] fault-free", 4, 6, 0.0, 0.0,
                               200));
  storms.push_back(timed_storm("rfvt[k=4,n=6] crash+restart", 4, 6, 0.2, 0.5,
                               200));

  bss::bench::BenchReport report(flags, "bench_faults");
  for (const auto& row : sweeps) {
    bss::obs::json::Object object;
    object.emplace("kind", bss::obs::json::Value(std::string("sweep")));
    object.emplace("label", bss::obs::json::Value(row.label));
    object.emplace("schedules",
                   bss::obs::json::Value(row.result.stats.schedules));
    object.emplace("faults_injected",
                   bss::obs::json::Value(row.result.stats.faults_injected));
    object.emplace("fault_points",
                   bss::obs::json::Value(row.result.stats.fault_points));
    object.emplace("exhausted", bss::obs::json::Value(row.result.exhausted));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    report.row(std::move(object));
  }
  for (const auto& row : storms) {
    bss::obs::json::Object object;
    object.emplace("kind", bss::obs::json::Value(std::string("storm")));
    object.emplace("label", bss::obs::json::Value(row.label));
    object.emplace("runs", bss::obs::json::Value(row.runs));
    object.emplace("restarted_runs",
                   bss::obs::json::Value(row.restarted_runs));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    report.row(std::move(object));
  }

  if (json) {
    print_json(sweeps, storms);
  } else {
    print_tables(sweeps, storms);
  }
  report.finalize();
  return 0;
}
