// T3 — Herlihy's hierarchy, measured, plus the universal construction.
//
// Every consensus-number cell is recomputed by the exhaustive checker
// (certified protocols below the number, refuted natural attempts above),
// and the universal construction's throughput/helping behaviour is measured
// — the "strong objects are universal [10]" premise the paper refines.
#include <cstdio>

#include "bench_flags.h"
#include "bench_report.h"
#include "checker/bivalence.h"
#include "checker/consensus_check.h"
#include "checker/protocols.h"
#include "hierarchy/table.h"
#include "hierarchy/universal.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace {

void print_checker_costs(bss::bench::BenchReport& report) {
  std::printf("T3b — checker effort per protocol (full interleaving spaces)\n");
  std::printf("%-16s %6s %10s %14s\n", "protocol", "n", "solves?",
              "states-explored");
  const std::vector<int> binary{0, 1};
  const auto run = [&](const bss::check::Protocol& protocol) {
    const auto inputs =
        bss::check::all_input_vectors(protocol.process_count(), binary);
    const auto result = bss::check::check_consensus(protocol, inputs);
    std::printf("%-16s %6d %10s %14llu\n", protocol.name().c_str(),
                protocol.process_count(), result.solves ? "yes" : "no",
                static_cast<unsigned long long>(result.states_explored));
    bss::obs::json::Object object;
    object.emplace("kind", "checker");
    object.emplace("protocol", protocol.name());
    object.emplace("n", protocol.process_count());
    object.emplace("solves", result.solves);
    object.emplace("states_explored", result.states_explored);
    report.row(std::move(object));
  };
  bss::check::RwWriteReadConsensus rw;
  bss::check::RwSpinConsensus rw_spin;
  bss::check::TasConsensus2 tas2;
  bss::check::TasSpinConsensus3 tas3;
  bss::check::CasConsensusK cas34(3, 4);
  bss::check::CasConsensusK cas44(4, 4);
  bss::check::StickyConsensus sticky(3);
  run(rw);
  run(rw_spin);
  run(tas2);
  run(tas3);
  run(cas34);
  run(cas44);
  run(sticky);
  std::printf("\n");
}

void print_valency(bss::bench::BenchReport& report) {
  std::printf("T3c — valency anatomy (FLP's structure, counted)\n");
  bss::check::TasConsensus2 tas2;
  const auto mixed = bss::check::analyze_valency(tas2, {0, 1});
  const auto uniform = bss::check::analyze_valency(tas2, {1, 1});
  std::printf("tas-2, inputs {0,1}: %s\n", mixed.summary().c_str());
  std::printf("tas-2, inputs {1,1}: %s\n", uniform.summary().c_str());
  std::printf("\n");
  const auto add_row = [&](const char* inputs, const std::string& summary) {
    bss::obs::json::Object object;
    object.emplace("kind", "valency");
    object.emplace("protocol", "tas-2");
    object.emplace("inputs", inputs);
    object.emplace("summary", summary);
    report.row(std::move(object));
  };
  add_row("0,1", mixed.summary());
  add_row("1,1", uniform.summary());
}

void print_universal(bss::bench::BenchReport& bench_report) {
  std::printf("T3d — Herlihy universal construction (sticky-register cells)\n");
  constexpr int kProcs = 6;
  constexpr int kOpsEach = 10;
  bss::hierarchy::UniversalObject counter(
      "counter", bss::hierarchy::counter_spec(), kProcs, kProcs * kOpsEach);
  bss::sim::SimEnv env;
  for (int pid = 0; pid < kProcs; ++pid) {
    env.add_process([&](bss::sim::Ctx& ctx) {
      for (int i = 0; i < kOpsEach; ++i) (void)counter.invoke(ctx, 0);
    });
  }
  bss::sim::RandomScheduler scheduler(11);
  const auto report = env.run(scheduler);
  int max_distance = 0;
  for (int pid = 0; pid < kProcs; ++pid) {
    for (const int distance : counter.placement_distances(pid)) {
      if (distance > max_distance) max_distance = distance;
    }
  }
  std::printf(
      "processes=%d ops=%d log-cells=%d shared-steps=%llu "
      "max-placement-distance=%d (helping bound ~2n=%d)\n",
      kProcs, kProcs * kOpsEach, counter.log_length(),
      static_cast<unsigned long long>(report.total_steps), max_distance,
      2 * kProcs);
  bss::obs::json::Object object;
  object.emplace("kind", "universal");
  object.emplace("processes", kProcs);
  object.emplace("ops", kProcs * kOpsEach);
  object.emplace("log_cells", counter.log_length());
  object.emplace("shared_steps", report.total_steps);
  object.emplace("max_placement_distance", max_distance);
  bench_report.row(std::move(object));
  std::printf(
      "\nshape: consensus numbers 1 / 2 / k-1 / inf recompute exactly;\n"
      "universality holds but consumes one consensus cell per operation —\n"
      "an unbounded supply, which is precisely what a compare&swap-(k)\n"
      "does not have.  That contrast is the paper.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/false, /*accepts_json=*/false);
  bss::bench::BenchReport report(flags, "bench_hierarchy");
  const auto table = bss::hierarchy::build_hierarchy_table();
  std::printf("T3a — the hierarchy table (all cells recomputed)\n%s\n",
              bss::hierarchy::render_hierarchy_table(table).c_str());
  for (const auto& row : table) {
    bss::obs::json::Object object;
    object.emplace("kind", "hierarchy");
    object.emplace("object", row.object);
    object.emplace("consensus_number", row.consensus_number);
    object.emplace("certified", row.certified);
    object.emplace("refuted", row.refuted);
    report.row(std::move(object));
  }
  print_checker_costs(report);
  print_valency(report);
  print_universal(report);
  report.finalize();
  return 0;
}
