// T2 — the move/jump game versus Lemma 1.1's m^k bound.
//
// For tiny instances the exhaustive solver gives the exact maximum number of
// moves; for larger ones the greedy and random strategies give achieved
// lower bounds.  Shape: the exact maximum never exceeds m^k, grows quickly
// with k, and the bound is loose for small instances (the Lemma needs only
// an upper bound; its role in the paper is to cap UpdateC&S's walk).
#include <cstdio>

#include "bench_flags.h"
#include "bench_report.h"
#include "game/exhaustive.h"
#include "game/game.h"
#include "game/potential.h"
#include "game/strategy.h"

namespace {

using bss::game::ExhaustiveResult;
using bss::game::GreedyDescentStrategy;
using bss::game::MoveJumpGame;
using bss::game::PlayResult;
using bss::game::RandomStrategy;

std::uint64_t best_random(int k, int m, int trials) {
  std::uint64_t best = 0;
  for (int trial = 0; trial < trials; ++trial) {
    MoveJumpGame game(k, m);
    RandomStrategy strategy(static_cast<std::uint64_t>(trial), 0.55);
    const PlayResult result = play(game, strategy);
    if (result.moves > best) best = result.moves;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/false, /*accepts_json=*/false);
  bss::bench::BenchReport report(flags, "bench_game");
  std::printf("T2a — exact maxima (exhaustive) vs the m^k bound\n");
  std::printf("%3s %3s %10s %12s %14s\n", "k", "m", "exact-max", "bound=m^k",
              "states");
  struct Instance {
    int k;
    int m;
  };
  const Instance small[] = {{2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}};
  for (const auto& instance : small) {
    MoveJumpGame game(instance.k, instance.m);
    const ExhaustiveResult result = bss::game::solve_exhaustive(game);
    std::printf("%3d %3d %10llu %12llu %14llu\n", instance.k, instance.m,
                static_cast<unsigned long long>(result.max_moves),
                static_cast<unsigned long long>(game.bound()),
                static_cast<unsigned long long>(result.states_explored));
    bss::obs::json::Object object;
    object.emplace("kind", "exact");
    object.emplace("k", instance.k);
    object.emplace("m", instance.m);
    object.emplace("exact_max", result.max_moves);
    object.emplace("bound", game.bound());
    object.emplace("states_explored", result.states_explored);
    report.row(std::move(object));
  }

  std::printf("\nT2b — achieved lower bounds (strategies) vs m^k, larger instances\n");
  std::printf("%3s %3s %10s %10s %12s\n", "k", "m", "greedy", "random*",
              "bound=m^k");
  const Instance large[] = {{4, 3}, {5, 2}, {5, 3}, {6, 2}, {6, 4}, {7, 3}};
  for (const auto& instance : large) {
    MoveJumpGame greedy_game(instance.k, instance.m);
    GreedyDescentStrategy greedy;
    const PlayResult greedy_result = play(greedy_game, greedy);
    const std::uint64_t random_best =
        best_random(instance.k, instance.m, 40);
    std::printf("%3d %3d %10llu %10llu %12llu\n", instance.k, instance.m,
                static_cast<unsigned long long>(greedy_result.moves),
                static_cast<unsigned long long>(random_best),
                static_cast<unsigned long long>(greedy_game.bound()));
    bss::obs::json::Object object;
    object.emplace("kind", "strategy");
    object.emplace("k", instance.k);
    object.emplace("m", instance.m);
    object.emplace("greedy", greedy_result.moves);
    object.emplace("random_best", random_best);
    object.emplace("bound", greedy_game.bound());
    report.row(std::move(object));
  }

  std::printf("\nT2c — the potential argument on a played game (k=4, m=3)\n");
  MoveJumpGame game(4, 3);
  RandomStrategy strategy(7);
  play(game, strategy);
  const auto replay = bss::game::analyze_potential(game);
  std::printf("phi_start=%llu (<= bound %llu), moves=%llu, every move "
              "descended=%s, min drop per move >= 1: %s\n",
              static_cast<unsigned long long>(replay.phi_start),
              static_cast<unsigned long long>(replay.bound),
              static_cast<unsigned long long>(game.move_count()),
              replay.all_moves_descend ? "yes" : "NO",
              [&] {
                for (const auto drop : replay.move_drops) {
                  if (drop < 1) return "NO";
                }
                return "yes";
              }());
  bool all_drops_positive = true;
  for (const auto drop : replay.move_drops) {
    if (drop < 1) all_drops_positive = false;
  }
  bss::obs::json::Object object;
  object.emplace("kind", "potential");
  object.emplace("k", 4);
  object.emplace("m", 3);
  object.emplace("phi_start", replay.phi_start);
  object.emplace("bound", replay.bound);
  object.emplace("moves", game.move_count());
  object.emplace("all_moves_descend", replay.all_moves_descend);
  object.emplace("min_drop_ge_1", all_drops_positive);
  report.row(std::move(object));
  std::printf(
      "\nshape: exact maxima and all strategies stay below m^k, and every\n"
      "move pays >= 1 potential — Lemma 1.1 as measured data.\n");
  report.finalize();
  return 0;
}
