// bench_explore — throughput and pruning-ratio table for the schedule
// explorer (DESIGN.md "Schedule exploration").
//
// For each system we explore the schedule space twice — naive DFS and
// sleep-set POR — and report complete schedules, granted transitions,
// states/sec, and the POR pruning ratio (fraction of naive schedules the
// sleep sets never had to run).  The LL/SC rows also show Chess-style
// iterative preemption bounding at small budgets.
//
// The parallel-scaling section runs the mutant-refutation workload (every
// seeded mutant explored exhaustively, collecting all violations) at
// --jobs N against the serial baseline, checks the deterministic-merge
// invariant on the spot (identical schedules totals and identical violation
// tapes), and replays a minimized artifact produced under the worker pool.
//
// `--json` prints the same rows as a JSON array instead of the tables;
// `--jobs N` sets the explorer worker count (results are identical for
// every N — only the rate moves).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "core/mutant_elections.h"
#include "explore/election_systems.h"
#include "explore/explore.h"

namespace {

using bss::explore::ExplorableSystem;
using bss::explore::ExploreOptions;
using bss::explore::ExploreResult;

struct Row {
  std::string label;
  ExploreResult result;
  double seconds = 0;
};

Row timed_explore(std::string label, const ExplorableSystem& system,
                  const ExploreOptions& options) {
  Row row;
  row.label = std::move(label);
  const auto start = std::chrono::steady_clock::now();
  row.result = bss::explore::explore(system, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

double rate_of(const Row& row) {
  return row.seconds > 0
             ? static_cast<double>(row.result.stats.schedules) / row.seconds
             : 0;
}

void print_table(const std::vector<Row>& rows) {
  std::printf("%-28s %9s %11s %10s %9s %9s %s\n", "system", "schedules",
              "transitions", "sched/s", "slp-prune", "pre-prune", "coverage");
  for (const Row& row : rows) {
    const auto& stats = row.result.stats;
    std::printf("%-28s %9llu %11llu %10.0f %9llu %9llu %s\n",
                row.label.c_str(),
                static_cast<unsigned long long>(stats.schedules),
                static_cast<unsigned long long>(stats.transitions),
                rate_of(row),
                static_cast<unsigned long long>(stats.sleep_set_prunes),
                static_cast<unsigned long long>(stats.preemption_prunes),
                row.result.exhausted ? "exhaustive" : "bounded");
  }
}

void print_json(const std::vector<Row>& rows, bool more) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& stats = rows[i].result.stats;
    std::printf(
        "  {\"system\": \"%s\", \"schedules\": %llu, \"transitions\": %llu, "
        "\"schedules_per_sec\": %.0f, \"sleep_set_prunes\": %llu, "
        "\"preemption_prunes\": %llu, \"exhausted\": %s}%s\n",
        rows[i].label.c_str(),
        static_cast<unsigned long long>(stats.schedules),
        static_cast<unsigned long long>(stats.transitions), rate_of(rows[i]),
        static_cast<unsigned long long>(stats.sleep_set_prunes),
        static_cast<unsigned long long>(stats.preemption_prunes),
        rows[i].result.exhausted ? "true" : "false",
        more || i + 1 < rows.size() ? "," : "");
  }
}

// ----------------------------------------------------- parallel scaling

/// The mutant-refutation workload: every seeded mutant, explored
/// exhaustively under naive DFS (all violations collected, no minimization
/// — the cost being measured is schedule-space traversal, not ddmin; POR is
/// off so the space is large enough for the worker pool to bite).
ExploreOptions refutation_options(int jobs) {
  ExploreOptions options;
  options.use_por = false;
  options.stop_at_first_violation = false;
  options.max_violations = std::size_t{1} << 20;
  options.minimize = false;
  options.jobs = jobs;
  return options;
}

struct ScaleRow {
  std::string label;
  int jobs = 1;
  double seconds = 0;
  std::uint64_t schedules = 0;
  std::size_t violations = 0;
  bool identical = true;  ///< vs the jobs=1 baseline of the same workload
};

/// True iff the two results are byte-identical where it matters: schedule
/// totals, violation count, and every violation's decision tape.
bool results_match(const ExploreResult& a, const ExploreResult& b) {
  if (a.stats.schedules != b.stats.schedules ||
      a.stats.transitions != b.stats.transitions ||
      a.exhausted != b.exhausted ||
      a.violations.size() != b.violations.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    if (a.violations[i].decisions != b.violations[i].decisions) return false;
  }
  return true;
}

std::vector<ScaleRow> run_scaling(int jobs) {
  // Register-based mutants only: they stay memory-safe when exploration
  // continues past a violation (the sc-blind LL/SC mutant does not — a
  // corrupted slot value indexes out of bounds on deep violating paths).
  bss::explore::OneShotSystem claim_after(
      4, 3, bss::core::OneShotMutant::kClaimAfterCas);
  bss::explore::OneShotSystem split_cas(4, 3,
                                        bss::core::OneShotMutant::kSplitCas);
  const std::vector<const ExplorableSystem*> mutants = {&claim_after,
                                                        &split_cas};

  std::vector<ScaleRow> rows;
  std::vector<int> worker_counts = {1};
  if (jobs > 1) worker_counts.push_back(jobs);
  std::vector<ExploreResult> baseline;
  for (const int j : worker_counts) {
    ScaleRow row;
    row.label = "mutant-refutation";
    row.jobs = j;
    const auto start = std::chrono::steady_clock::now();
    std::vector<ExploreResult> results;
    for (const ExplorableSystem* system : mutants) {
      results.push_back(
          bss::explore::explore(*system, refutation_options(j)));
    }
    row.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    for (std::size_t i = 0; i < results.size(); ++i) {
      row.schedules += results[i].stats.schedules;
      row.violations += results[i].violations.size();
      if (!baseline.empty() && !results_match(results[i], baseline[i])) {
        row.identical = false;
      }
    }
    if (baseline.empty()) baseline = std::move(results);
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_scaling_table(const std::vector<ScaleRow>& rows) {
  std::printf("\n%-24s %5s %9s %10s %10s %8s %s\n", "workload", "jobs",
              "schedules", "violations", "sched/s", "speedup", "identical");
  const double base_rate =
      rows[0].seconds > 0
          ? static_cast<double>(rows[0].schedules) / rows[0].seconds
          : 0;
  for (const ScaleRow& row : rows) {
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.schedules) / row.seconds
                        : 0;
    std::printf("%-24s %5d %9llu %10zu %10.0f %7.2fx %s\n", row.label.c_str(),
                row.jobs, static_cast<unsigned long long>(row.schedules),
                row.violations, rate, base_rate > 0 ? rate / base_rate : 0,
                row.identical ? "yes" : "NO");
  }
}

void print_scaling_json(const std::vector<ScaleRow>& rows, bool more) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& row = rows[i];
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.schedules) / row.seconds
                        : 0;
    std::printf(
        "  {\"workload\": \"%s\", \"jobs\": %d, \"schedules\": %llu, "
        "\"violations\": %zu, \"schedules_per_sec\": %.0f, "
        "\"identical\": %s}%s\n",
        row.label.c_str(), row.jobs,
        static_cast<unsigned long long>(row.schedules), row.violations, rate,
        row.identical ? "true" : "false",
        more || i + 1 < rows.size() ? "," : "");
  }
}

/// Minimized-artifact check under the worker pool: refute one mutant with
/// defaults (minimize on) at --jobs workers, then replay the artifact.
/// Returns the divergence count (0 is the only healthy answer).
std::uint64_t artifact_replay_divergences(int jobs) {
  bss::explore::OneShotSystem mutant(4, 3,
                                     bss::core::OneShotMutant::kClaimAfterCas);
  ExploreOptions options;
  options.jobs = jobs;
  const ExploreResult result = bss::explore::explore(mutant, options);
  if (result.violations.empty()) return ~std::uint64_t{0};
  const auto replay =
      bss::explore::replay_counterexample(mutant, result.violations.front());
  return replay.violated ? replay.divergences : ~std::uint64_t{0};
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags =
      bss::bench::parse_flags(argc, argv, /*accepts_jobs=*/true);
  std::vector<Row> rows;

  {
    bss::explore::OneShotSystem system(4, 3);
    ExploreOptions naive;
    naive.use_por = false;
    naive.jobs = flags.jobs;
    rows.push_back(timed_explore("one_shot[n=3] naive", system, naive));
    ExploreOptions por;
    por.jobs = flags.jobs;
    rows.push_back(timed_explore("one_shot[n=3] POR", system, por));
  }

  {
    bss::explore::LlScSystem system(3, 2);
    ExploreOptions por;
    por.jobs = flags.jobs;
    rows.push_back(timed_explore("llsc[k=3,n=2] POR", system, por));
    for (int bound = 0; bound <= 2; ++bound) {
      ExploreOptions options;
      options.preemption_bound = bound;
      options.jobs = flags.jobs;
      rows.push_back(timed_explore(
          "llsc[k=3,n=2] POR b=" + std::to_string(bound), system, options));
    }
  }

  const std::vector<ScaleRow> scaling = run_scaling(flags.jobs);
  const std::uint64_t divergences = artifact_replay_divergences(flags.jobs);

  if (flags.json) {
    std::printf("[\n");
    print_json(rows, /*more=*/true);
    print_scaling_json(scaling, /*more=*/true);
    std::printf("  {\"workload\": \"artifact-replay\", \"jobs\": %d, "
                "\"divergences\": %llu}\n",
                flags.jobs, static_cast<unsigned long long>(divergences));
    std::printf("]\n");
    return divergences == 0 ? 0 : 1;
  }
  print_table(rows);
  const double ratio = 1.0 - static_cast<double>(rows[1].result.stats.schedules) /
                                 static_cast<double>(rows[0].result.stats.schedules);
  std::printf("  POR pruning ratio: %.1f%% (%llu -> %llu schedules)\n",
              100.0 * ratio,
              static_cast<unsigned long long>(rows[0].result.stats.schedules),
              static_cast<unsigned long long>(rows[1].result.stats.schedules));
  print_scaling_table(scaling);
  std::printf("  minimized artifact replay at --jobs %d: %llu divergences\n",
              flags.jobs, static_cast<unsigned long long>(divergences));
  return divergences == 0 ? 0 : 1;
}
