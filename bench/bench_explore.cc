// bench_explore — throughput and pruning-ratio table for the schedule
// explorer (DESIGN.md "Schedule exploration").
//
// For each system we explore the schedule space twice — naive DFS and
// sleep-set POR — and report complete schedules, granted transitions,
// states/sec, and the POR pruning ratio (fraction of naive schedules the
// sleep sets never had to run).  The LL/SC rows also show Chess-style
// iterative preemption bounding at small budgets.
//
// `--json` prints the same rows as a JSON array instead of the table.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "explore/election_systems.h"
#include "explore/explore.h"

namespace {

using bss::explore::ExplorableSystem;
using bss::explore::ExploreOptions;
using bss::explore::ExploreResult;

struct Row {
  std::string label;
  ExploreResult result;
  double seconds = 0;
};

Row timed_explore(std::string label, const ExplorableSystem& system,
                  const ExploreOptions& options) {
  Row row;
  row.label = std::move(label);
  const auto start = std::chrono::steady_clock::now();
  row.result = bss::explore::explore(system, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

double rate_of(const Row& row) {
  return row.seconds > 0
             ? static_cast<double>(row.result.stats.schedules) / row.seconds
             : 0;
}

void print_table(const std::vector<Row>& rows) {
  std::printf("%-28s %9s %11s %10s %9s %9s %s\n", "system", "schedules",
              "transitions", "sched/s", "slp-prune", "pre-prune", "coverage");
  for (const Row& row : rows) {
    const auto& stats = row.result.stats;
    std::printf("%-28s %9llu %11llu %10.0f %9llu %9llu %s\n",
                row.label.c_str(),
                static_cast<unsigned long long>(stats.schedules),
                static_cast<unsigned long long>(stats.transitions),
                rate_of(row),
                static_cast<unsigned long long>(stats.sleep_set_prunes),
                static_cast<unsigned long long>(stats.preemption_prunes),
                row.result.exhausted ? "exhaustive" : "bounded");
  }
}

void print_json(const std::vector<Row>& rows) {
  std::printf("[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& stats = rows[i].result.stats;
    std::printf(
        "  {\"system\": \"%s\", \"schedules\": %llu, \"transitions\": %llu, "
        "\"schedules_per_sec\": %.0f, \"sleep_set_prunes\": %llu, "
        "\"preemption_prunes\": %llu, \"exhausted\": %s}%s\n",
        rows[i].label.c_str(),
        static_cast<unsigned long long>(stats.schedules),
        static_cast<unsigned long long>(stats.transitions), rate_of(rows[i]),
        static_cast<unsigned long long>(stats.sleep_set_prunes),
        static_cast<unsigned long long>(stats.preemption_prunes),
        rows[i].result.exhausted ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool json =
      argc > 1 && std::strcmp(argv[1], "--json") == 0;
  std::vector<Row> rows;

  {
    bss::explore::OneShotSystem system(4, 3);
    ExploreOptions naive;
    naive.use_por = false;
    rows.push_back(timed_explore("one_shot[n=3] naive", system, naive));
    rows.push_back(timed_explore("one_shot[n=3] POR", system, {}));
  }

  {
    bss::explore::LlScSystem system(3, 2);
    rows.push_back(timed_explore("llsc[k=3,n=2] POR", system, {}));
    for (int bound = 0; bound <= 2; ++bound) {
      ExploreOptions options;
      options.preemption_bound = bound;
      rows.push_back(timed_explore(
          "llsc[k=3,n=2] POR b=" + std::to_string(bound), system, options));
    }
  }

  if (json) {
    print_json(rows);
    return 0;
  }
  print_table(rows);
  const double ratio = 1.0 - static_cast<double>(rows[1].result.stats.schedules) /
                                 static_cast<double>(rows[0].result.stats.schedules);
  std::printf("  POR pruning ratio: %.1f%% (%llu -> %llu schedules)\n",
              100.0 * ratio,
              static_cast<unsigned long long>(rows[0].result.stats.schedules),
              static_cast<unsigned long long>(rows[1].result.stats.schedules));
  return 0;
}
