// bench_explore — throughput and pruning-ratio table for the schedule
// explorer (DESIGN.md "Schedule exploration").
//
// For each system we explore the schedule space twice — naive DFS and
// sleep-set POR — and report complete schedules, granted transitions,
// states/sec, and the POR pruning ratio (fraction of naive schedules the
// sleep sets never had to run).  The LL/SC rows also show Chess-style
// iterative preemption bounding at small budgets.
#include <chrono>
#include <cstdio>

#include "explore/election_systems.h"
#include "explore/explore.h"

namespace {

using bss::explore::ExplorableSystem;
using bss::explore::ExploreOptions;
using bss::explore::ExploreResult;

struct Row {
  ExploreResult result;
  double seconds = 0;
};

Row timed_explore(const ExplorableSystem& system,
                  const ExploreOptions& options) {
  Row row;
  const auto start = std::chrono::steady_clock::now();
  row.result = bss::explore::explore(system, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

void print_row(const char* label, const Row& row) {
  const auto& stats = row.result.stats;
  const double rate =
      row.seconds > 0 ? static_cast<double>(stats.schedules) / row.seconds : 0;
  std::printf("%-28s %9llu %11llu %10.0f %9llu %9llu %s\n", label,
              static_cast<unsigned long long>(stats.schedules),
              static_cast<unsigned long long>(stats.transitions), rate,
              static_cast<unsigned long long>(stats.sleep_set_prunes),
              static_cast<unsigned long long>(stats.preemption_prunes),
              row.result.exhausted ? "exhaustive" : "bounded");
}

}  // namespace

int main() {
  std::printf("%-28s %9s %11s %10s %9s %9s %s\n", "system", "schedules",
              "transitions", "sched/s", "slp-prune", "pre-prune", "coverage");

  {
    bss::explore::OneShotSystem system(4, 3);
    ExploreOptions naive;
    naive.use_por = false;
    const Row naive_row = timed_explore(system, naive);
    print_row("one_shot[n=3] naive", naive_row);
    const Row por_row = timed_explore(system, {});
    print_row("one_shot[n=3] POR", por_row);
    const double ratio =
        1.0 - static_cast<double>(por_row.result.stats.schedules) /
                  static_cast<double>(naive_row.result.stats.schedules);
    std::printf("  POR pruning ratio: %.1f%% (%llu -> %llu schedules)\n",
                100.0 * ratio,
                static_cast<unsigned long long>(
                    naive_row.result.stats.schedules),
                static_cast<unsigned long long>(
                    por_row.result.stats.schedules));
  }

  {
    bss::explore::LlScSystem system(3, 2);
    const Row por_row = timed_explore(system, {});
    print_row("llsc[k=3,n=2] POR", por_row);
    for (int bound = 0; bound <= 2; ++bound) {
      ExploreOptions options;
      options.preemption_bound = bound;
      char label[64];
      std::snprintf(label, sizeof label, "llsc[k=3,n=2] POR b=%d", bound);
      print_row(label, timed_explore(system, options));
    }
  }

  return 0;
}
