// bench_explore — throughput and pruning-ratio table for the schedule
// explorer (DESIGN.md "Schedule exploration").
//
// For each system we explore the schedule space twice — naive DFS and
// sleep-set POR — and report complete schedules, granted transitions,
// states/sec, and the POR pruning ratio (fraction of naive schedules the
// sleep sets never had to run).  The LL/SC rows also show Chess-style
// iterative preemption bounding at small budgets.
//
// The parallel-scaling section runs the mutant-refutation workload (every
// seeded mutant explored exhaustively, collecting all violations) at
// --jobs N against the serial baseline, checks the deterministic-merge
// invariant on the spot (identical schedules totals and identical violation
// tapes), and replays a minimized artifact produced under the worker pool.
//
// The telemetry-overhead section re-runs the refutation workload with the
// observability layer off, metrics-only, and metrics+events, verifying on
// the spot that results are byte-identical in every mode (the ObsSink
// passivity contract) and reporting the relative cost of each layer.
//
// The steal-scaling section runs the skewed-writer workload — one long
// writer against three short ones on a single register, the shape static
// prefix-depth sharding load-balances worst — under both engines
// (work-stealing and legacy static sharding) at 1/2/4/8 workers, checking
// byte-identity against the serial baseline on the spot (EXPERIMENTS.md
// carries the table).
//
// `--json` prints the same rows as a JSON array instead of the tables;
// `--jobs N` sets the explorer worker count (results are identical for
// every N — only the rate moves); `--out PATH` additionally writes a
// `bss-runreport v1` artifact carrying every row.  The runreport labels the
// one documented nondeterminism exception (the max_schedules valve)
// explicitly, so downstream tooling never mistakes a valve-capped
// comparison for a determinism violation.
//
// `--campaign NAME [--checkpoint PATH] [--checkpoint-every N]
// [--resume PATH] [--status PATH] [--status-every MS]` runs ONE long
// campaign instead of the tables — the checkpoint/resume smoke: CI starts
// a campaign with a checkpoint path (and a bss-status v1 heartbeat path),
// SIGKILLs the process mid-run, resumes from the artifact, and validates
// the final runreport, checkpoint and heartbeat with tools/report_check.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "bench_report.h"
#include "core/mutant_elections.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "explore/skewed_system.h"
#include "obs/obs.h"

namespace {

using bss::explore::ExplorableSystem;
using bss::explore::ExploreOptions;
using bss::explore::ExploreResult;

struct Row {
  std::string label;
  ExploreResult result;
  double seconds = 0;
};

Row timed_explore(std::string label, const ExplorableSystem& system,
                  const ExploreOptions& options) {
  Row row;
  row.label = std::move(label);
  const auto start = std::chrono::steady_clock::now();
  row.result = bss::explore::explore(system, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

double rate_of(const Row& row) {
  return row.seconds > 0
             ? static_cast<double>(row.result.stats.schedules) / row.seconds
             : 0;
}

void print_table(const std::vector<Row>& rows) {
  std::printf("%-28s %9s %11s %10s %9s %9s %s\n", "system", "schedules",
              "transitions", "sched/s", "slp-prune", "pre-prune", "coverage");
  for (const Row& row : rows) {
    const auto& stats = row.result.stats;
    std::printf("%-28s %9llu %11llu %10.0f %9llu %9llu %s\n",
                row.label.c_str(),
                static_cast<unsigned long long>(stats.schedules),
                static_cast<unsigned long long>(stats.transitions),
                rate_of(row),
                static_cast<unsigned long long>(stats.sleep_set_prunes),
                static_cast<unsigned long long>(stats.preemption_prunes),
                row.result.exhausted ? "exhaustive" : "bounded");
  }
}

void print_json(const std::vector<Row>& rows, bool more) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& stats = rows[i].result.stats;
    std::printf(
        "  {\"system\": \"%s\", \"schedules\": %llu, \"transitions\": %llu, "
        "\"schedules_per_sec\": %.0f, \"sleep_set_prunes\": %llu, "
        "\"preemption_prunes\": %llu, \"exhausted\": %s}%s\n",
        rows[i].label.c_str(),
        static_cast<unsigned long long>(stats.schedules),
        static_cast<unsigned long long>(stats.transitions), rate_of(rows[i]),
        static_cast<unsigned long long>(stats.sleep_set_prunes),
        static_cast<unsigned long long>(stats.preemption_prunes),
        rows[i].result.exhausted ? "true" : "false",
        more || i + 1 < rows.size() ? "," : "");
  }
}

// ----------------------------------------------------- parallel scaling

/// The mutant-refutation workload: every seeded mutant, explored
/// exhaustively under naive DFS (all violations collected, no minimization
/// — the cost being measured is schedule-space traversal, not ddmin; POR is
/// off so the space is large enough for the worker pool to bite).
ExploreOptions refutation_options(int jobs) {
  ExploreOptions options;
  options.use_por = false;
  options.stop_at_first_violation = false;
  options.max_violations = std::size_t{1} << 20;
  options.minimize = false;
  options.jobs = jobs;
  return options;
}

struct ScaleRow {
  std::string label;
  int jobs = 1;
  double seconds = 0;
  std::uint64_t schedules = 0;
  std::size_t violations = 0;
  bool identical = true;  ///< vs the jobs=1 baseline of the same workload
};

/// True iff the two results are byte-identical where it matters: schedule
/// totals, violation count, and every violation's decision tape.
bool results_match(const ExploreResult& a, const ExploreResult& b) {
  if (a.stats.schedules != b.stats.schedules ||
      a.stats.transitions != b.stats.transitions ||
      a.exhausted != b.exhausted ||
      a.violations.size() != b.violations.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    if (a.violations[i].decisions != b.violations[i].decisions) return false;
  }
  return true;
}

std::vector<ScaleRow> run_scaling(int jobs) {
  // Register-based mutants only: they stay memory-safe when exploration
  // continues past a violation (the sc-blind LL/SC mutant does not — a
  // corrupted slot value indexes out of bounds on deep violating paths).
  bss::explore::OneShotSystem claim_after(
      4, 3, bss::core::OneShotMutant::kClaimAfterCas);
  bss::explore::OneShotSystem split_cas(4, 3,
                                        bss::core::OneShotMutant::kSplitCas);
  const std::vector<const ExplorableSystem*> mutants = {&claim_after,
                                                        &split_cas};

  std::vector<ScaleRow> rows;
  std::vector<int> worker_counts = {1};
  if (jobs > 1) worker_counts.push_back(jobs);
  std::vector<ExploreResult> baseline;
  for (const int j : worker_counts) {
    ScaleRow row;
    row.label = "mutant-refutation";
    row.jobs = j;
    const auto start = std::chrono::steady_clock::now();
    std::vector<ExploreResult> results;
    for (const ExplorableSystem* system : mutants) {
      results.push_back(
          bss::explore::explore(*system, refutation_options(j)));
    }
    row.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    for (std::size_t i = 0; i < results.size(); ++i) {
      row.schedules += results[i].stats.schedules;
      row.violations += results[i].violations.size();
      if (!baseline.empty() && !results_match(results[i], baseline[i])) {
        row.identical = false;
      }
    }
    if (baseline.empty()) baseline = std::move(results);
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_scaling_table(const std::vector<ScaleRow>& rows) {
  std::printf("\n%-24s %5s %9s %10s %10s %8s %s\n", "workload", "jobs",
              "schedules", "violations", "sched/s", "speedup", "identical");
  const double base_rate =
      rows[0].seconds > 0
          ? static_cast<double>(rows[0].schedules) / rows[0].seconds
          : 0;
  for (const ScaleRow& row : rows) {
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.schedules) / row.seconds
                        : 0;
    std::printf("%-24s %5d %9llu %10zu %10.0f %7.2fx %s\n", row.label.c_str(),
                row.jobs, static_cast<unsigned long long>(row.schedules),
                row.violations, rate, base_rate > 0 ? rate / base_rate : 0,
                row.identical ? "yes" : "NO");
  }
}

void print_scaling_json(const std::vector<ScaleRow>& rows, bool more) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& row = rows[i];
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.schedules) / row.seconds
                        : 0;
    std::printf(
        "  {\"workload\": \"%s\", \"jobs\": %d, \"schedules\": %llu, "
        "\"violations\": %zu, \"schedules_per_sec\": %.0f, "
        "\"identical\": %s}%s\n",
        row.label.c_str(), row.jobs,
        static_cast<unsigned long long>(row.schedules), row.violations, rate,
        row.identical ? "true" : "false",
        more || i + 1 < rows.size() ? "," : "");
  }
}

// ------------------------------------------------ steal-vs-static scaling

/// One (engine, workers) cell of the skewed-workload scaling table.
struct StealScaleRow {
  std::string engine;  ///< "steal" or "static"
  int jobs = 1;
  double seconds = 0;
  std::uint64_t schedules = 0;
  bool identical = true;  ///< vs the serial baseline
};

/// The skewed-writer workload under both engines at 1/2/4/8 workers: POR
/// prunes nothing (every operation pair conflicts) and process 0's subtrees
/// dwarf the others', so static prefix-depth sharding yields wildly unequal
/// jobs while the stealing engine re-balances on the fly.  Byte-identity
/// against the serial baseline is checked for every cell.
std::vector<StealScaleRow> run_steal_scaling() {
  bss::explore::SkewedWriterSystem system(4, 6, 1);
  ExploreOptions serial;
  serial.jobs = 1;
  const ExploreResult baseline = bss::explore::explore(system, serial);

  std::vector<StealScaleRow> rows;
  for (const bool steal : {true, false}) {
    for (const int jobs : {1, 2, 4, 8}) {
      StealScaleRow row;
      row.engine = steal ? "steal" : "static";
      row.jobs = jobs;
      ExploreOptions options;
      options.steal = steal;
      options.jobs = jobs;
      const auto start = std::chrono::steady_clock::now();
      const ExploreResult result = bss::explore::explore(system, options);
      row.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      row.schedules = result.stats.schedules;
      row.identical = results_match(result, baseline) &&
                      result.summary() == baseline.summary();
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

void print_steal_scaling_table(const std::vector<StealScaleRow>& rows) {
  std::printf("\n%-24s %7s %5s %9s %10s %8s %s\n", "workload", "engine",
              "jobs", "schedules", "sched/s", "speedup", "identical");
  const double base_rate =
      rows[0].seconds > 0
          ? static_cast<double>(rows[0].schedules) / rows[0].seconds
          : 0;
  for (const StealScaleRow& row : rows) {
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.schedules) / row.seconds
                        : 0;
    std::printf("%-24s %7s %5d %9llu %10.0f %7.2fx %s\n", "skewed-writers",
                row.engine.c_str(), row.jobs,
                static_cast<unsigned long long>(row.schedules), rate,
                base_rate > 0 ? rate / base_rate : 0,
                row.identical ? "yes" : "NO");
  }
}

void print_steal_scaling_json(const std::vector<StealScaleRow>& rows,
                              bool more) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StealScaleRow& row = rows[i];
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.schedules) / row.seconds
                        : 0;
    std::printf(
        "  {\"workload\": \"skewed-writers\", \"engine\": \"%s\", "
        "\"jobs\": %d, \"schedules\": %llu, \"schedules_per_sec\": %.0f, "
        "\"identical\": %s}%s\n",
        row.engine.c_str(), row.jobs,
        static_cast<unsigned long long>(row.schedules), rate,
        row.identical ? "true" : "false",
        more || i + 1 < rows.size() ? "," : "");
  }
}

// ---------------------------------------------- fingerprint-prune fast path

/// One (mode, jobs) cell of the fingerprint-prune before/after table.
struct PruneRow {
  std::string mode;  ///< "off" or "on"
  int jobs = 1;
  double seconds = 0;
  std::uint64_t schedules = 0;       ///< schedules actually run
  std::uint64_t covered = 0;         ///< schedules covered (== off baseline)
  std::uint64_t prunes = 0;          ///< subtrees served from the cache
  bool identical = true;             ///< vs the same-mode serial baseline
  bool coverage_parity = true;       ///< violations + exhausted vs prune-off
  bool passivity = true;             ///< audit+telemetry on == plain (on@1)
};

/// The iterative skewed workload where the visited-state cache bites: the
/// Chess sweep re-explores every ≤b-preemption schedule at budget b+1, and
/// once the short writers have finished only the long writer's linear tail
/// remains — a cut-free subtree that caches clean and is served from the
/// cache on every later revisit.
ExploreOptions prune_workload_options(bool prune, int jobs, int steal_depth) {
  ExploreOptions options;
  options.use_por = false;
  options.iterative = true;
  options.preemption_bound = 4;
  options.fingerprint_prune = prune;
  options.jobs = jobs;
  options.steal_depth = steal_depth;
  return options;
}

/// Runs the before/after table: prune-off serial is the baseline; prune-on
/// runs at 1/2/4/8 workers with byte-identity checked per cell against the
/// prune-on serial run, coverage parity (identical violation tapes and
/// exhausted flag) checked against the prune-off baseline, and audit+obs
/// passivity asserted on the serial prune-on cell with the fast path
/// engaged.  The "on" rows report *covered* schedules per second — the
/// cache serves previously-explored subtrees, so the covered space is the
/// baseline's, reached in less wall time.
std::vector<PruneRow> run_prune_scaling(int steal_depth) {
  bss::explore::SkewedWriterSystem system(4, 6, 1);

  const auto run_cell = [&](bool prune, int jobs, bool with_observers) -> Row {
    ExploreOptions options = prune_workload_options(prune, jobs, steal_depth);
    bss::obs::Telemetry::Options obs_options;
    obs_options.metrics = true;
    obs_options.events = true;
    bss::obs::Telemetry telemetry(obs_options);
    if (with_observers) {
      options.audit = true;
      options.telemetry = &telemetry;
    }
    return timed_explore(prune ? "prune-on" : "prune-off", system, options);
  };

  const Row off = run_cell(false, 1, false);
  const Row on_serial = run_cell(true, 1, false);
  const Row on_observed = run_cell(true, 1, true);
  const bool passivity =
      results_match(on_serial.result, on_observed.result) &&
      on_serial.result.stats.fingerprint_prunes ==
          on_observed.result.stats.fingerprint_prunes;

  const auto parity = [&](const ExploreResult& result) {
    if (result.exhausted != off.result.exhausted ||
        result.violations.size() != off.result.violations.size()) {
      return false;
    }
    for (std::size_t i = 0; i < result.violations.size(); ++i) {
      if (result.violations[i].decisions != off.result.violations[i].decisions)
        return false;
    }
    return true;
  };

  std::vector<PruneRow> rows;
  PruneRow base;
  base.mode = "off";
  base.jobs = 1;
  base.seconds = off.seconds;
  base.schedules = off.result.stats.schedules;
  base.covered = off.result.stats.schedules;
  base.prunes = 0;
  rows.push_back(std::move(base));

  for (const int jobs : {1, 2, 4, 8}) {
    const Row cell = jobs == 1 ? on_serial : run_cell(true, jobs, false);
    PruneRow row;
    row.mode = "on";
    row.jobs = jobs;
    row.seconds = cell.seconds;
    row.schedules = cell.result.stats.schedules;
    row.covered = off.result.stats.schedules;
    row.prunes = cell.result.stats.fingerprint_prunes;
    row.identical = results_match(cell.result, on_serial.result) &&
                    cell.result.summary() == on_serial.result.summary();
    row.coverage_parity = parity(cell.result);
    row.passivity = passivity;
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Refutation parity under pruning: the collect-all mutant workload run
/// iteratively with the cache off and on must find the IDENTICAL violation
/// tapes — a subtree only enters the cache after being fully explored
/// violation-free, so no refutation can hide behind a prune.
bool run_prune_refutation_parity(int steal_depth) {
  bss::explore::OneShotSystem mutant(4, 3,
                                     bss::core::OneShotMutant::kClaimAfterCas);
  std::vector<ExploreResult> results;
  for (const bool prune : {false, true}) {
    ExploreOptions options = prune_workload_options(prune, 1, steal_depth);
    options.preemption_bound = 1;
    options.stop_at_first_violation = false;
    options.max_violations = std::size_t{1} << 20;
    options.minimize = false;
    results.push_back(bss::explore::explore(mutant, options));
  }
  if (results[0].violations.size() != results[1].violations.size() ||
      results[0].exhausted != results[1].exhausted) {
    return false;
  }
  for (std::size_t i = 0; i < results[0].violations.size(); ++i) {
    if (results[0].violations[i].decisions !=
        results[1].violations[i].decisions) {
      return false;
    }
  }
  return !results[0].violations.empty();
}

double prune_rate_of(const PruneRow& row) {
  return row.seconds > 0 ? static_cast<double>(row.covered) / row.seconds : 0;
}

void print_prune_table(const std::vector<PruneRow>& rows,
                       bool refutation_parity) {
  std::printf("\n%-24s %5s %5s %9s %8s %10s %8s %5s %7s\n",
              "workload", "prune", "jobs", "schedules", "prunes",
              "cov-sched/s", "speedup", "ident", "parity");
  const double base_rate = prune_rate_of(rows[0]);
  for (const PruneRow& row : rows) {
    const double rate = prune_rate_of(row);
    std::printf("%-24s %5s %5d %9llu %8llu %10.0f %7.2fx %5s %7s\n",
                "skewed-iterative", row.mode.c_str(), row.jobs,
                static_cast<unsigned long long>(row.schedules),
                static_cast<unsigned long long>(row.prunes), rate,
                base_rate > 0 ? rate / base_rate : 0,
                row.identical ? "yes" : "NO",
                row.coverage_parity ? "yes" : "NO");
  }
  std::printf("  mutant refutation parity under pruning: %s\n",
              refutation_parity ? "identical tapes" : "DIVERGED");
}

void print_prune_json(const std::vector<PruneRow>& rows,
                      bool refutation_parity, bool more) {
  const double base_rate = prune_rate_of(rows[0]);
  for (const PruneRow& row : rows) {
    const double rate = prune_rate_of(row);
    std::printf(
        "  {\"workload\": \"skewed-iterative\", \"prune\": \"%s\", "
        "\"jobs\": %d, \"schedules\": %llu, \"prunes\": %llu, "
        "\"covered_schedules_per_sec\": %.0f, \"speedup\": %.2f, "
        "\"identical\": %s, \"coverage_parity\": %s, \"passivity\": %s},\n",
        row.mode.c_str(), row.jobs,
        static_cast<unsigned long long>(row.schedules),
        static_cast<unsigned long long>(row.prunes), rate,
        base_rate > 0 ? rate / base_rate : 0,
        row.identical ? "true" : "false",
        row.coverage_parity ? "true" : "false",
        row.passivity ? "true" : "false");
  }
  std::printf("  {\"workload\": \"mutant-prune-parity\", \"identical\": %s}%s\n",
              refutation_parity ? "true" : "false", more ? "," : "");
}

// --------------------------------------------------- telemetry overhead

/// One observability configuration of the refutation workload.
struct OverheadRow {
  std::string mode;  ///< "off", "metrics", …, "status", "status+profile"
  double seconds = 0;
  std::uint64_t schedules = 0;
  bool identical = true;  ///< results byte-identical to the "off" baseline
};

/// Runs the mutant-refutation workload under telemetry off / metrics-only /
/// metrics+events / status heartbeat / status+profiler / fully-audited and
/// cross-checks that stats, coverage and every violation tape are
/// byte-identical — the ObsSink (and audit) passivity contract, asserted on
/// the benchmark workload itself.  The "off" row is the replay fast path
/// (no token stamping, no sink dispatch); "status" writes a live bss-status
/// heartbeat at an aggressive 50ms cadence and "status+profile" adds the
/// phase self-profiler, so the table carries the introspection layers'
/// overhead next to the layers they ride on; "audited" is the slow path
/// with every schedule commute-cross-checked, and the off/audited rate
/// ratio is the fast path's before/after headline.
std::vector<OverheadRow> run_overhead(int jobs) {
  bss::explore::OneShotSystem claim_after(
      4, 3, bss::core::OneShotMutant::kClaimAfterCas);
  bss::explore::OneShotSystem split_cas(4, 3,
                                        bss::core::OneShotMutant::kSplitCas);
  const std::vector<const ExplorableSystem*> mutants = {&claim_after,
                                                        &split_cas};
  const char* status_path = "bench_explore_overhead.status.json";

  std::vector<OverheadRow> rows;
  std::vector<ExploreResult> baseline;
  for (const char* mode : {"off", "metrics", "metrics+events", "status",
                           "status+profile", "audited"}) {
    const std::string mode_name(mode);
    const bool status_mode =
        mode_name == "status" || mode_name == "status+profile";
    bss::obs::Telemetry::Options obs_options;
    obs_options.metrics = mode_name != "off" && !status_mode;
    obs_options.events =
        mode_name == "metrics+events" || mode_name == "audited";
    obs_options.profile = mode_name == "status+profile";
    bss::obs::Telemetry telemetry(obs_options);

    OverheadRow row;
    row.mode = mode;
    // Min-of-3: the off/audited time ratio gates the bench's exit status,
    // and on a time-sliced container a single-shot measurement of either
    // side swings enough to flip the verdict.  The minimum is the
    // least-contended estimate for both sides; results are byte-identical
    // across repeats (determinism), so only the clock varies.
    std::vector<ExploreResult> results;
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto start = std::chrono::steady_clock::now();
      std::vector<ExploreResult> pass;
      for (const ExplorableSystem* system : mutants) {
        ExploreOptions options = refutation_options(jobs);
        if (mode_name != "off" && mode_name != "status") {
          options.telemetry = &telemetry;
        }
        if (status_mode) {
          options.status_path = status_path;
          options.status_every_ms = 50;
        }
        if (mode_name == "audited") {
          options.audit = true;
          options.audit_commute_sample = 1;
        }
        pass.push_back(bss::explore::explore(*system, options));
      }
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (repeat == 0 || seconds < row.seconds) row.seconds = seconds;
      results = std::move(pass);
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      row.schedules += results[i].stats.schedules;
      if (!baseline.empty() &&
          (!results_match(results[i], baseline[i]) ||
           results[i].summary() != baseline[i].summary())) {
        row.identical = false;
      }
    }
    if (baseline.empty()) baseline = std::move(results);
    rows.push_back(std::move(row));
  }
  std::remove(status_path);
  return rows;
}

void print_overhead_table(const std::vector<OverheadRow>& rows) {
  std::printf("\n%-24s %9s %9s %10s %s\n", "telemetry", "schedules",
              "seconds", "overhead", "identical");
  for (const OverheadRow& row : rows) {
    const double overhead =
        rows[0].seconds > 0 ? 100.0 * (row.seconds / rows[0].seconds - 1.0)
                            : 0;
    std::printf("%-24s %9llu %9.3f %9.1f%% %s\n", row.mode.c_str(),
                static_cast<unsigned long long>(row.schedules), row.seconds,
                overhead, row.identical ? "yes" : "NO");
  }
}

void print_overhead_json(const std::vector<OverheadRow>& rows, bool more) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const OverheadRow& row = rows[i];
    const double overhead =
        rows[0].seconds > 0 ? row.seconds / rows[0].seconds - 1.0 : 0;
    std::printf(
        "  {\"workload\": \"telemetry-overhead\", \"mode\": \"%s\", "
        "\"schedules\": %llu, \"seconds\": %.4f, \"overhead\": %.4f, "
        "\"identical\": %s}%s\n",
        row.mode.c_str(), static_cast<unsigned long long>(row.schedules),
        row.seconds, overhead, row.identical ? "true" : "false",
        more || i + 1 < rows.size() ? "," : "");
  }
}

/// Minimized-artifact check under the worker pool: refute one mutant with
/// defaults (minimize on) at --jobs workers, then replay the artifact.
/// Returns the divergence count (0 is the only healthy answer).
std::uint64_t artifact_replay_divergences(int jobs) {
  bss::explore::OneShotSystem mutant(4, 3,
                                     bss::core::OneShotMutant::kClaimAfterCas);
  ExploreOptions options;
  options.jobs = jobs;
  const ExploreResult result = bss::explore::explore(mutant, options);
  if (result.violations.empty()) return ~std::uint64_t{0};
  const auto replay =
      bss::explore::replay_counterexample(mutant, result.violations.front());
  return replay.violated ? replay.divergences : ~std::uint64_t{0};
}

/// Labels the one documented nondeterminism exception in the runreport, so
/// downstream tooling comparing reports across worker counts knows exactly
/// which discrepancy is expected and which is a bug.
void note_valve_exception(bss::bench::BenchReport& report) {
  report.builder().environment(
      "determinism_exception",
      "max_schedules valve: with jobs > 1 the shared schedule budget is "
      "claimed concurrently, so which schedules fit under a cap that "
      "actually fires is timing-dependent (the run is flagged not exhausted "
      "either way); every other stat, violation and artifact is "
      "byte-identical at every worker count, steal granularity and shard "
      "depth");
}

// ------------------------------------------------------------- campaigns

/// The valid --campaign names; parse_flags enumerates these on a typo.
const std::vector<std::string> kCampaigns = {"skewed", "mutant"};

/// `--campaign NAME`: one long exploration instead of the tables, wired to
/// the checkpoint/resume flags — the workload CI SIGKILLs mid-run and
/// resumes.  "skewed" is a clean six-figure-schedule sweep; "mutant" is a
/// collect-all refutation whose checkpoints carry violations.
int run_campaign(const bss::bench::BenchFlags& flags) {
  // Constructed BEFORE the exploration so the report's wall clock covers
  // the campaign itself — otherwise schedules/second divides by only the
  // report-assembly time and the headline is garbage.
  bss::bench::BenchReport report(flags, "bench_explore");
  ExploreOptions options;
  options.jobs = flags.jobs;
  options.steal_depth = flags.steal_depth;
  options.checkpoint_path = flags.checkpoint;
  if (flags.checkpoint_every > 0) {
    options.checkpoint_every = flags.checkpoint_every;
  }
  options.resume_path = flags.resume;
  options.status_path = flags.status;
  options.status_every_ms = flags.status_every;

  Row row;
  if (flags.campaign == "skewed") {
    bss::explore::SkewedWriterSystem system(4, 7, 2);
    row = timed_explore("campaign:skewed", system, options);
  } else if (flags.campaign == "mutant") {
    bss::explore::OneShotSystem system(4, 3,
                                       bss::core::OneShotMutant::kSplitCas);
    options.use_por = false;
    options.stop_at_first_violation = false;
    options.max_violations = std::size_t{1} << 20;
    options.minimize = false;
    row = timed_explore("campaign:mutant", system, options);
  } else {
    // Unreachable: parse_flags validated the name against kCampaigns.
    std::fprintf(stderr,
                 "bench_explore: unknown campaign '%s' (valid: %s)\n",
                 flags.campaign.c_str(),
                 bss::bench::campaign_list(kCampaigns).c_str());
    return 2;
  }

  note_valve_exception(report);
  report.builder().environment("campaign",
                               bss::obs::json::Value(flags.campaign));
  report.builder().environment(
      "resumed", bss::obs::json::Value(!flags.resume.empty()));
  bss::obs::json::Object object;
  object.emplace("workload", bss::obs::json::Value(row.label));
  object.emplace("jobs", bss::obs::json::Value(flags.jobs));
  object.emplace("schedules",
                 bss::obs::json::Value(row.result.stats.schedules));
  object.emplace("violations",
                 bss::obs::json::Value(
                     static_cast<std::uint64_t>(row.result.violations.size())));
  object.emplace("exhausted", bss::obs::json::Value(row.result.exhausted));
  object.emplace(
      "checkpoints_written",
      bss::obs::json::Value(row.result.checkpoints_written));
  object.emplace("seconds", bss::obs::json::Value(row.seconds));
  report.row(std::move(object));
  report.schedules(row.result.stats.schedules);

  if (flags.json) {
    std::printf("[\n");
    print_json({row}, /*more=*/false);
    std::printf("]\n");
  } else {
    print_table({row});
    std::printf("  checkpoints written: %llu%s\n",
                static_cast<unsigned long long>(
                    row.result.checkpoints_written),
                flags.resume.empty() ? "" : " (resumed)");
  }
  report.finalize();
  return row.result.exhausted ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/true, /*accepts_json=*/true,
      /*accepts_checkpoint=*/true, kCampaigns);
  if (!flags.campaign.empty()) return run_campaign(flags);
  // Constructed before any exploration: the report's wall clock must span
  // the actual work or the schedules/second headline is meaningless.
  bss::bench::BenchReport report(flags, "bench_explore");
  std::vector<Row> rows;

  {
    bss::explore::OneShotSystem system(4, 3);
    ExploreOptions naive;
    naive.use_por = false;
    naive.jobs = flags.jobs;
    rows.push_back(timed_explore("one_shot[n=3] naive", system, naive));
    ExploreOptions por;
    por.jobs = flags.jobs;
    rows.push_back(timed_explore("one_shot[n=3] POR", system, por));
  }

  {
    bss::explore::LlScSystem system(3, 2);
    ExploreOptions por;
    por.jobs = flags.jobs;
    rows.push_back(timed_explore("llsc[k=3,n=2] POR", system, por));
    for (int bound = 0; bound <= 2; ++bound) {
      ExploreOptions options;
      options.preemption_bound = bound;
      options.jobs = flags.jobs;
      rows.push_back(timed_explore(
          "llsc[k=3,n=2] POR b=" + std::to_string(bound), system, options));
    }
  }

  const std::vector<ScaleRow> scaling = run_scaling(flags.jobs);
  const std::vector<StealScaleRow> steal_scaling = run_steal_scaling();
  const std::vector<PruneRow> prune_rows = run_prune_scaling(flags.steal_depth);
  const bool prune_refutation_parity =
      run_prune_refutation_parity(flags.steal_depth);
  const std::vector<OverheadRow> overhead = run_overhead(flags.jobs);
  const std::uint64_t divergences = artifact_replay_divergences(flags.jobs);
  bool telemetry_passive = true;
  for (const OverheadRow& row : overhead) {
    telemetry_passive &= row.identical;
  }
  bool steal_identical = true;
  for (const StealScaleRow& row : steal_scaling) {
    steal_identical &= row.identical;
  }
  // The fast-path gate: >= 2x schedules/second on at least one workload —
  // either a prune-table cell against the prune-off serial baseline, or the
  // replay fast path (observers off) against the fully-audited slow path on
  // the refutation workload — with byte-identity, coverage parity and
  // observer passivity intact on EVERY cell.  A speedup that costs
  // determinism or coverage is a bug, not a feature.
  const double prune_base_rate = prune_rate_of(prune_rows[0]);
  double fastpath_speedup = 0;
  bool prune_sound = prune_refutation_parity;
  for (const PruneRow& row : prune_rows) {
    const double speedup =
        prune_base_rate > 0 ? prune_rate_of(row) / prune_base_rate : 0;
    if (speedup > fastpath_speedup) fastpath_speedup = speedup;
    prune_sound &= row.identical && row.coverage_parity && row.passivity;
  }
  for (const OverheadRow& row : overhead) {
    if (row.mode == "audited" && row.seconds > 0 &&
        overhead.front().seconds > 0) {
      // Same schedules either way, so the rate ratio is the time ratio.
      const double ratio = row.seconds / overhead.front().seconds;
      if (ratio > fastpath_speedup) fastpath_speedup = ratio;
    }
  }

  note_valve_exception(report);
  for (const Row& row : rows) {
    bss::obs::json::Object object;
    object.emplace("system", bss::obs::json::Value(row.label));
    object.emplace("schedules",
                   bss::obs::json::Value(row.result.stats.schedules));
    object.emplace("transitions",
                   bss::obs::json::Value(row.result.stats.transitions));
    object.emplace("exhausted", bss::obs::json::Value(row.result.exhausted));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    report.row(std::move(object));
  }
  for (const ScaleRow& row : scaling) {
    bss::obs::json::Object object;
    object.emplace("workload", bss::obs::json::Value(row.label));
    object.emplace("jobs", bss::obs::json::Value(row.jobs));
    object.emplace("schedules", bss::obs::json::Value(row.schedules));
    object.emplace(
        "violations",
        bss::obs::json::Value(static_cast<std::uint64_t>(row.violations)));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    object.emplace("identical", bss::obs::json::Value(row.identical));
    report.row(std::move(object));
  }
  for (const StealScaleRow& row : steal_scaling) {
    bss::obs::json::Object object;
    object.emplace("workload",
                   bss::obs::json::Value(std::string("skewed-writers")));
    object.emplace("engine", bss::obs::json::Value(row.engine));
    object.emplace("jobs", bss::obs::json::Value(row.jobs));
    object.emplace("schedules", bss::obs::json::Value(row.schedules));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    object.emplace("identical", bss::obs::json::Value(row.identical));
    report.row(std::move(object));
  }
  for (const PruneRow& row : prune_rows) {
    bss::obs::json::Object object;
    object.emplace("workload",
                   bss::obs::json::Value(std::string("skewed-iterative")));
    object.emplace("prune", bss::obs::json::Value(row.mode));
    object.emplace("jobs", bss::obs::json::Value(row.jobs));
    object.emplace("schedules", bss::obs::json::Value(row.schedules));
    object.emplace("fingerprint_prunes", bss::obs::json::Value(row.prunes));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    object.emplace("identical", bss::obs::json::Value(row.identical));
    object.emplace("coverage_parity",
                   bss::obs::json::Value(row.coverage_parity));
    report.row(std::move(object));
  }
  for (const OverheadRow& row : overhead) {
    bss::obs::json::Object object;
    object.emplace("workload",
                   bss::obs::json::Value(std::string("telemetry-overhead")));
    object.emplace("mode", bss::obs::json::Value(row.mode));
    object.emplace("schedules", bss::obs::json::Value(row.schedules));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    object.emplace("identical", bss::obs::json::Value(row.identical));
    report.row(std::move(object));
  }
  report.builder().stat("artifact_replay_divergences", divergences);
  report.builder().stat("telemetry_passive", telemetry_passive ? 1 : 0);
  report.builder().stat("steal_identical", steal_identical ? 1 : 0);
  report.builder().stat("prune_sound", prune_sound ? 1 : 0);
  report.builder().timing(
      "fastpath_speedup",
      bss::obs::json::Value(fastpath_speedup >= 0 ? fastpath_speedup : 0.0));
  std::uint64_t total_schedules = 0;
  for (const Row& row : rows) total_schedules += row.result.stats.schedules;
  for (const ScaleRow& row : scaling) total_schedules += row.schedules;
  for (const StealScaleRow& row : steal_scaling) {
    total_schedules += row.schedules;
  }
  for (const PruneRow& row : prune_rows) total_schedules += row.schedules;
  for (const OverheadRow& row : overhead) total_schedules += row.schedules;
  report.schedules(total_schedules);

  const bool ok = divergences == 0 && telemetry_passive && steal_identical &&
                  prune_sound && fastpath_speedup >= 2.0;
  if (flags.json) {
    std::printf("[\n");
    print_json(rows, /*more=*/true);
    print_scaling_json(scaling, /*more=*/true);
    print_steal_scaling_json(steal_scaling, /*more=*/true);
    print_prune_json(prune_rows, prune_refutation_parity, /*more=*/true);
    print_overhead_json(overhead, /*more=*/true);
    std::printf("  {\"workload\": \"artifact-replay\", \"jobs\": %d, "
                "\"divergences\": %llu}\n",
                flags.jobs, static_cast<unsigned long long>(divergences));
    std::printf("]\n");
    report.finalize();
    return ok ? 0 : 1;
  }
  print_table(rows);
  const double ratio = 1.0 - static_cast<double>(rows[1].result.stats.schedules) /
                                 static_cast<double>(rows[0].result.stats.schedules);
  std::printf("  POR pruning ratio: %.1f%% (%llu -> %llu schedules)\n",
              100.0 * ratio,
              static_cast<unsigned long long>(rows[0].result.stats.schedules),
              static_cast<unsigned long long>(rows[1].result.stats.schedules));
  print_scaling_table(scaling);
  print_steal_scaling_table(steal_scaling);
  print_prune_table(prune_rows, prune_refutation_parity);
  std::printf("  fast-path speedup (best cell vs prune-off serial): %.2fx%s\n",
              fastpath_speedup, fastpath_speedup >= 2.0 ? "" : " (BELOW 2x)");
  print_overhead_table(overhead);
  if (!prune_sound) {
    std::printf("FATAL: fingerprint pruning changed results, lost coverage "
                "or broke observer passivity\n");
  }
  if (!telemetry_passive) {
    std::printf("FATAL: telemetry changed exploration results (ObsSink "
                "passivity violated)\n");
  }
  if (!steal_identical) {
    std::printf("FATAL: steal/static engines diverged from the serial "
                "baseline on the skewed workload\n");
  }
  std::printf("  minimized artifact replay at --jobs %d: %llu divergences\n",
              flags.jobs, static_cast<unsigned long long>(divergences));
  report.finalize();
  return ok ? 0 : 1;
}
