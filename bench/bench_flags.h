// Shared command-line parsing for the table-shaped bench binaries
// (bench_explore, bench_faults, …): flags are accepted in any position,
// unknown arguments get a usage message instead of being silently ignored.
// (The google-benchmark binaries keep benchmark's own flag handling and only
// borrow the `--json` spelling.)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace bss::bench {

/// Renders a bench's valid campaign names ("skewed, mutant") for usage and
/// error messages, so a typo'd --campaign lists what WOULD have worked.
inline std::string campaign_list(const std::vector<std::string>& campaigns) {
  std::string out;
  for (const std::string& name : campaigns) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

struct BenchFlags {
  bool json = false;  ///< machine-readable output instead of the table
  int jobs = 1;       ///< explorer worker threads (ExploreOptions::jobs)
  int steal_depth = 0;  ///< steal granularity (ExploreOptions::steal_depth;
                        ///< 0 keeps the explorer default)
  /// When non-empty, a `bss-runreport v1` document is also written to this
  /// path (stdout keeps the table / --json rows either way).
  std::string out;
  // Checkpoint/resume campaign flags (bench_explore only; other benches
  // reject them like any unknown argument).
  std::string campaign;          ///< run ONE named long campaign instead
  std::string checkpoint;        ///< ExploreOptions::checkpoint_path
  std::uint64_t checkpoint_every = 0;  ///< 0 keeps the explorer default
  std::string resume;            ///< ExploreOptions::resume_path
  std::string status;            ///< ExploreOptions::status_path
  std::uint64_t status_every = 0;  ///< milliseconds; 0 keeps the default
};

inline void print_usage(const char* program, bool accepts_jobs,
                        bool accepts_json = true,
                        bool accepts_checkpoint = false,
                        const std::vector<std::string>& campaigns = {}) {
  std::fprintf(stderr, "usage: %s%s%s [--out PATH]%s\n", program,
               accepts_json ? " [--json]" : "",
               accepts_jobs ? " [--jobs N] [--steal-depth N]" : "",
               accepts_checkpoint
                   ? " [--campaign NAME] [--checkpoint PATH]"
                     " [--checkpoint-every N] [--resume PATH]"
                     " [--status PATH] [--status-every MS]"
                   : "");
  if (accepts_json) {
    std::fprintf(stderr, "  --json     print rows as a JSON array\n");
  }
  if (accepts_jobs) {
    std::fprintf(stderr,
                 "  --jobs N   explorer worker threads (1..64, default 1; "
                 "results are identical for every N)\n");
    std::fprintf(stderr,
                 "  --steal-depth N  steal granularity in frames (0..64, "
                 "default 0 = explorer default; results are identical for "
                 "every N)\n");
  }
  std::fprintf(stderr,
               "  --out PATH write a bss-runreport v1 artifact to PATH "
               "(stdout output is unchanged)\n");
  if (accepts_checkpoint) {
    std::fprintf(stderr,
                 "  --campaign NAME      run one named campaign (%s) "
                 "instead of the tables\n"
                 "  --checkpoint PATH    write bss-checkpoint v1 artifacts "
                 "to PATH during the campaign\n"
                 "  --checkpoint-every N checkpoint cadence in schedules "
                 "(default: explorer default)\n"
                 "  --resume PATH        resume the campaign from a "
                 "bss-checkpoint v1 artifact\n"
                 "  --status PATH        write a live bss-status v1 "
                 "heartbeat to PATH during the campaign\n"
                 "  --status-every MS    heartbeat cadence in milliseconds "
                 "(default 1000)\n",
                 campaigns.empty() ? "none defined"
                                   : campaign_list(campaigns).c_str());
  }
}

/// Parses [--json] [--jobs N] [--out PATH] (and, with accepts_checkpoint,
/// the campaign/checkpoint/resume flags) anywhere on the command line.
/// Exits with status 2 (after printing usage) on unknown arguments, missing
/// or malformed values; exits 0 on --help.  Benches whose stdout has no
/// machine-readable twin pass accepts_json=false and --json is rejected
/// like any other unknown flag.  `campaigns` is the bench's set of valid
/// --campaign names: a value outside it is rejected HERE, with the valid
/// names enumerated, instead of falling through to the bench's campaign
/// dispatch (where a typo used to die without saying what would have
/// worked).
inline BenchFlags parse_flags(int argc, char** argv, bool accepts_jobs,
                              bool accepts_json = true,
                              bool accepts_checkpoint = false,
                              const std::vector<std::string>& campaigns = {}) {
  BenchFlags flags;
  const auto fail = [&]() {
    print_usage(argv[0], accepts_jobs, accepts_json, accepts_checkpoint,
                campaigns);
    std::exit(2);
  };
  // Range errors name the flag, the offending value and the valid range
  // (the --campaign error style): "--jobs 0" used to die with only the
  // generic usage block, which never said what WOULD have been accepted.
  const auto parse_ranged_int = [&](const char* name, const char* value,
                                    long lo, long hi, int* into) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < lo || parsed > hi) {
      std::fprintf(stderr, "%s: invalid %s '%s' (valid: %ld..%ld)\n", argv[0],
                   name, value, lo, hi);
      fail();
    }
    *into = static_cast<int>(parsed);
  };
  const auto parse_string = [&](const char* value, std::string* into) {
    if (value[0] == '\0') fail();
    *into = value;
  };
  const auto parse_every = [&](const char* value, std::uint64_t* into) {
    char* end = nullptr;
    const long long parsed = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 1) fail();
    *into = static_cast<std::uint64_t>(parsed);
  };
  // Flags taking a value accept both "--flag VALUE" and "--flag=VALUE".
  const auto value_of = [&](const std::string& arg, const char* name,
                            int* i) -> const char* {
    const std::string prefix = std::string(name) + "=";
    if (arg == name) {
      if (*i + 1 >= argc) fail();
      return argv[++*i];
    }
    if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (accepts_json && arg == "--json") {
      flags.json = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], accepts_jobs, accepts_json, accepts_checkpoint,
                  campaigns);
      std::exit(0);
    } else if (accepts_jobs && (value = value_of(arg, "--jobs", &i))) {
      parse_ranged_int("--jobs", value, 1, 64, &flags.jobs);
    } else if (accepts_jobs &&
               (value = value_of(arg, "--steal-depth", &i))) {
      parse_ranged_int("--steal-depth", value, 0, 64, &flags.steal_depth);
    } else if ((value = value_of(arg, "--out", &i))) {
      parse_string(value, &flags.out);
    } else if (accepts_checkpoint &&
               (value = value_of(arg, "--campaign", &i))) {
      parse_string(value, &flags.campaign);
    } else if (accepts_checkpoint &&
               (value = value_of(arg, "--checkpoint", &i))) {
      parse_string(value, &flags.checkpoint);
    } else if (accepts_checkpoint &&
               (value = value_of(arg, "--checkpoint-every", &i))) {
      parse_every(value, &flags.checkpoint_every);
    } else if (accepts_checkpoint &&
               (value = value_of(arg, "--resume", &i))) {
      parse_string(value, &flags.resume);
    } else if (accepts_checkpoint && (value = value_of(arg, "--status", &i))) {
      parse_string(value, &flags.status);
    } else if (accepts_checkpoint &&
               (value = value_of(arg, "--status-every", &i))) {
      parse_every(value, &flags.status_every);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      fail();
    }
  }
  if ((!flags.checkpoint.empty() || !flags.resume.empty()) &&
      flags.campaign.empty()) {
    std::fprintf(stderr,
                 "%s: --checkpoint/--resume require --campaign\n", argv[0]);
    fail();
  }
  if ((!flags.status.empty() || flags.status_every != 0) &&
      flags.campaign.empty()) {
    std::fprintf(stderr,
                 "%s: --status/--status-every require --campaign\n", argv[0]);
    fail();
  }
  if (!flags.campaign.empty()) {
    bool known = false;
    for (const std::string& name : campaigns) known |= name == flags.campaign;
    if (!known) {
      std::fprintf(stderr, "%s: unknown campaign '%s' (valid: %s)\n", argv[0],
                   flags.campaign.c_str(),
                   campaigns.empty() ? "none defined"
                                     : campaign_list(campaigns).c_str());
      fail();
    }
  }
  return flags;
}

}  // namespace bss::bench
