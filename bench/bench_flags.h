// Shared command-line parsing for the table-shaped bench binaries
// (bench_explore, bench_faults, …): flags are accepted in any position,
// unknown arguments get a usage message instead of being silently ignored.
// (The google-benchmark binaries keep benchmark's own flag handling and only
// borrow the `--json` spelling.)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace bss::bench {

struct BenchFlags {
  bool json = false;  ///< machine-readable output instead of the table
  int jobs = 1;       ///< explorer worker threads (ExploreOptions::jobs)
};

inline void print_usage(const char* program, bool accepts_jobs) {
  std::fprintf(stderr, "usage: %s [--json]%s\n", program,
               accepts_jobs ? " [--jobs N]" : "");
  std::fprintf(stderr, "  --json     print rows as a JSON array\n");
  if (accepts_jobs) {
    std::fprintf(stderr,
                 "  --jobs N   explorer worker threads (default 1; results "
                 "are identical for every N)\n");
  }
}

/// Parses [--json] [--jobs N] anywhere on the command line.  Exits with
/// status 2 (after printing usage) on unknown arguments, missing or
/// malformed values; exits 0 on --help.
inline BenchFlags parse_flags(int argc, char** argv, bool accepts_jobs) {
  BenchFlags flags;
  const auto fail = [&]() {
    print_usage(argv[0], accepts_jobs);
    std::exit(2);
  };
  const auto parse_jobs = [&](const char* value) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 1 || parsed > 64) fail();
    flags.jobs = static_cast<int>(parsed);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      flags.json = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], accepts_jobs);
      std::exit(0);
    } else if (accepts_jobs && arg == "--jobs") {
      if (i + 1 >= argc) fail();
      parse_jobs(argv[++i]);
    } else if (accepts_jobs && arg.rfind("--jobs=", 0) == 0) {
      parse_jobs(arg.c_str() + std::strlen("--jobs="));
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      fail();
    }
  }
  return flags;
}

}  // namespace bss::bench
