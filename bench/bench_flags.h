// Shared command-line parsing for the table-shaped bench binaries
// (bench_explore, bench_faults, …): flags are accepted in any position,
// unknown arguments get a usage message instead of being silently ignored.
// (The google-benchmark binaries keep benchmark's own flag handling and only
// borrow the `--json` spelling.)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace bss::bench {

struct BenchFlags {
  bool json = false;  ///< machine-readable output instead of the table
  int jobs = 1;       ///< explorer worker threads (ExploreOptions::jobs)
  /// When non-empty, a `bss-runreport v1` document is also written to this
  /// path (stdout keeps the table / --json rows either way).
  std::string out;
};

inline void print_usage(const char* program, bool accepts_jobs,
                        bool accepts_json = true) {
  std::fprintf(stderr, "usage: %s%s%s [--out PATH]\n", program,
               accepts_json ? " [--json]" : "",
               accepts_jobs ? " [--jobs N]" : "");
  if (accepts_json) {
    std::fprintf(stderr, "  --json     print rows as a JSON array\n");
  }
  if (accepts_jobs) {
    std::fprintf(stderr,
                 "  --jobs N   explorer worker threads (default 1; results "
                 "are identical for every N)\n");
  }
  std::fprintf(stderr,
               "  --out PATH write a bss-runreport v1 artifact to PATH "
               "(stdout output is unchanged)\n");
}

/// Parses [--json] [--jobs N] [--out PATH] anywhere on the command line.
/// Exits with status 2 (after printing usage) on unknown arguments, missing
/// or malformed values; exits 0 on --help.  Benches whose stdout has no
/// machine-readable twin pass accepts_json=false and --json is rejected
/// like any other unknown flag.
inline BenchFlags parse_flags(int argc, char** argv, bool accepts_jobs,
                              bool accepts_json = true) {
  BenchFlags flags;
  const auto fail = [&]() {
    print_usage(argv[0], accepts_jobs, accepts_json);
    std::exit(2);
  };
  const auto parse_jobs = [&](const char* value) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 1 || parsed > 64) fail();
    flags.jobs = static_cast<int>(parsed);
  };
  const auto parse_out = [&](const char* value) {
    if (value[0] == '\0') fail();
    flags.out = value;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (accepts_json && arg == "--json") {
      flags.json = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], accepts_jobs, accepts_json);
      std::exit(0);
    } else if (accepts_jobs && arg == "--jobs") {
      if (i + 1 >= argc) fail();
      parse_jobs(argv[++i]);
    } else if (accepts_jobs && arg.rfind("--jobs=", 0) == 0) {
      parse_jobs(arg.c_str() + std::strlen("--jobs="));
    } else if (arg == "--out") {
      if (i + 1 >= argc) fail();
      parse_out(argv[++i]);
    } else if (arg.rfind("--out=", 0) == 0) {
      parse_out(arg.c_str() + std::strlen("--out="));
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                   arg.c_str());
      fail();
    }
  }
  return flags;
}

}  // namespace bss::bench
