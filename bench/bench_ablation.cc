// Ablation — why each helping mechanism in the election is load-bearing.
//
// The FirstValueTree election has two helping rules (DESIGN.md §4):
//   H1 (help-others):     a process whose slot fell out of the race pushes
//                         the smallest announced surviving slot forward;
//   H2 (helper-confirm):  a process observing an unconfirmed install through
//                         a failed c&s confirms it itself.
// Removing either must break *wait-freedom under crashes* (never safety):
// survivors start returning "gave up" when the crashed process was the one
// the removed rule would have substituted for.  This bench measures decide
// rates across crash storms for the three policies.  Shape: the full
// algorithm decides 100%; each ablation leaves survivors stranded in some
// runs; no policy ever produces two leaders.
#include <cstdio>

#include "bench_flags.h"
#include "bench_report.h"
#include "core/election_validator.h"
#include "core/sim_election.h"
#include "util/checked.h"
#include "util/rng.h"

namespace {

struct AblationRow {
  const char* name;
  bss::core::ElectPolicy policy;
};

void run_policy(const AblationRow& row, int k, int n, int trials,
                bss::bench::BenchReport& bench_report) {
  int decided_all = 0;
  int gave_up_runs = 0;
  int inconsistent = 0;
  bss::Rng rng(4242);
  for (int trial = 0; trial < trials; ++trial) {
    const auto crashes = bss::sim::CrashPlan::random(n, 0.45, 12, rng);
    bss::sim::RandomScheduler scheduler(static_cast<std::uint64_t>(trial));
    bss::core::SimElectionOptions options;
    options.policy = row.policy;
    const auto report =
        bss::core::run_sim_election(k, n, scheduler, crashes, options);
    bool all_decided = true;
    bool any_gave_up = false;
    std::int64_t leader = bss::core::kNoId;
    bool consistent = true;
    for (int pid = 0; pid < n; ++pid) {
      if (report.run.outcomes[static_cast<std::size_t>(pid)] !=
          bss::sim::ProcOutcome::kFinished) {
        continue;
      }
      const auto& outcome = report.outcomes[static_cast<std::size_t>(pid)];
      if (!outcome.has_value() || outcome->gave_up ||
          outcome->leader == bss::core::kNoId) {
        all_decided = false;
        any_gave_up = any_gave_up || (outcome.has_value() && outcome->gave_up);
        continue;
      }
      if (leader == bss::core::kNoId) leader = outcome->leader;
      if (outcome->leader != leader) consistent = false;
    }
    if (all_decided) ++decided_all;
    if (any_gave_up) ++gave_up_runs;
    if (!consistent) ++inconsistent;
  }
  std::printf("%-22s %10.0f%% %12d %14d\n", row.name,
              100.0 * decided_all / trials, gave_up_runs, inconsistent);
  bss::obs::json::Object object;
  object.emplace("policy", row.name);
  object.emplace("trials", trials);
  object.emplace("all_decided_runs", decided_all);
  object.emplace("gave_up_runs", gave_up_runs);
  object.emplace("inconsistent_runs", inconsistent);
  bench_report.row(std::move(object));
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/false, /*accepts_json=*/false);
  bss::bench::BenchReport report(flags, "bench_ablation");
  constexpr int kK = 5;
  constexpr int kN = 24;
  constexpr int kTrials = 60;
  std::printf(
      "ablation of the election's helping rules (k=%d, n=%d, %d crash-storm "
      "trials, 45%% crash probability)\n\n",
      kK, kN, kTrials);
  std::printf("%-22s %11s %12s %14s\n", "policy", "all-decide",
              "gave-up-runs", "inconsistent");

  AblationRow rows[3];
  rows[0] = {"full algorithm", {}};
  rows[1] = {"no help-others", {}};
  rows[1].policy.help_others = false;
  rows[1].policy.allow_incomplete = true;
  rows[2] = {"no helper-confirm", {}};
  rows[2].policy.helper_confirm = false;
  rows[2].policy.allow_incomplete = true;

  for (const auto& row : rows) run_policy(row, kK, kN, kTrials, report);

  std::printf(
      "\nshape: removing either helping rule costs only LIVENESS (give-ups\n"
      "appear under crashes) and never SAFETY (zero inconsistent runs) —\n"
      "the algorithm degrades the way the wait-freedom argument predicts.\n");
  report.finalize();
  return 0;
}
