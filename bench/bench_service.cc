// bench_service — cost curves of the lease-based election service
// (DESIGN.md §10).
//
// Two experiments:
//
//  1. Model-checking throughput over the service: exhaustive sweeps of the
//     two-process lease protocol (fault-free and under a one-fault budget
//     with crashes, restarts, and spurious SC failures all enabled) plus a
//     preemption-bounded three-process sweep.  The schedule space here is
//     steps x timers x faults — every timer firing is an explorer decision —
//     so these rows track how expensive virtual time makes the service's
//     safety certificate.
//
//  2. Thread-backend storm throughput: full lease sessions per second on
//     real std::threads under seeded crash-restart storms, with the merged
//     service counters (acquisitions, takeovers, renewals, step-downs)
//     reported as `service.*` stats in the runreport.
//
// `--campaign exhaustive` replaces the tables with the long n=3 certificate:
// the full one-fault-budget exhaustive sweep (~1M schedules), wired to
// --checkpoint/--resume so CI can SIGKILL and resume it.  Exits 0 iff the
// sweep was exhaustive and violation-free.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "bench_report.h"
#include "explore/explore.h"
#include "service/lease_config.h"
#include "service/lease_system.h"
#include "service/thread_platform.h"

namespace {

using bss::explore::ExplorableSystem;
using bss::explore::ExploreOptions;
using bss::explore::ExploreResult;
using bss::service::LeaseConfig;
using bss::service::LeaseMutant;
using bss::service::LeaseServiceSystem;

/// The two-process config whose fault-budget sweep is exhaustively checkable
/// in seconds: one acquisition attempt, no renewals.
LeaseConfig small_config(int n) {
  LeaseConfig config;
  config.n = n;
  config.renewals = 0;
  config.acquire_attempts = 1;
  config.sc_retries = 0;
  return config;
}

/// The richer config the mutants are refuted under: one renewal cycle, two
/// acquisition attempts (so losers back off and retry through the timers).
LeaseConfig med_config() {
  LeaseConfig config;
  config.n = 2;
  config.renewals = 1;
  config.acquire_attempts = 2;
  config.sc_retries = 1;
  return config;
}

struct SweepRow {
  std::string label;
  ExploreResult result;
  double seconds = 0;
};

SweepRow timed_explore(std::string label, const ExplorableSystem& system,
                       const ExploreOptions& options) {
  SweepRow row;
  row.label = std::move(label);
  const auto start = std::chrono::steady_clock::now();
  row.result = bss::explore::explore(system, options);
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

struct StormRow {
  std::string label;
  int runs = 0;
  int restarts = 0;
  int spurious = 0;
  bss::service::LeaseStats stats;
  double seconds = 0;
};

StormRow timed_storm(std::string label, const LeaseConfig& config,
                     int max_crashes, int runs) {
  StormRow row;
  row.label = std::move(label);
  row.runs = runs;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) {
    const auto report = bss::service::run_thread_lease_storm(
        config, static_cast<std::uint64_t>(i), max_crashes);
    if (report.violation.has_value()) {
      std::fprintf(stderr, "FATAL: storm seed %d violated safety: %s\n", i,
                   report.violation->c_str());
      std::exit(1);
    }
    row.restarts += report.restarts;
    row.spurious += report.spurious_delivered;
    row.stats.merge_from(report.stats);
  }
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return row;
}

void print_tables(const std::vector<SweepRow>& sweeps,
                  const std::vector<StormRow>& storms) {
  std::printf("%-38s %9s %8s %6s %5s %s\n", "service sweep", "schedules",
              "sched/s", "timers", "viol", "coverage");
  for (const auto& row : sweeps) {
    const auto& stats = row.result.stats;
    const double rate =
        row.seconds > 0 ? static_cast<double>(stats.schedules) / row.seconds
                        : 0;
    std::printf("%-38s %9llu %8.0f %6llu %5zu %s\n", row.label.c_str(),
                static_cast<unsigned long long>(stats.schedules), rate,
                static_cast<unsigned long long>(stats.timer_grants),
                row.result.violations.size(),
                row.result.exhausted ? "exhaustive" : "bounded");
  }
  std::printf("\n%-38s %5s %7s %8s %8s %7s %9s %7s\n", "thread storm", "runs",
              "runs/s", "acquired", "renewals", "retries", "step-downs",
              "crashes");
  for (const auto& row : storms) {
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.runs) / row.seconds : 0;
    std::printf("%-38s %5d %7.0f %8llu %8llu %7llu %9llu %7d\n",
                row.label.c_str(), row.runs, rate,
                static_cast<unsigned long long>(row.stats.leases_acquired),
                static_cast<unsigned long long>(row.stats.renewals),
                static_cast<unsigned long long>(row.stats.retries),
                static_cast<unsigned long long>(row.stats.step_downs),
                row.restarts);
  }
}

void print_json(const std::vector<SweepRow>& sweeps,
                const std::vector<StormRow>& storms) {
  std::printf("[\n");
  bool first = true;
  for (const auto& row : sweeps) {
    const auto& stats = row.result.stats;
    const double rate =
        row.seconds > 0 ? static_cast<double>(stats.schedules) / row.seconds
                        : 0;
    std::printf(
        "%s  {\"kind\": \"sweep\", \"label\": \"%s\", \"schedules\": %llu, "
        "\"schedules_per_sec\": %.0f, \"timer_grants\": %llu, "
        "\"violations\": %zu, \"exhausted\": %s}",
        first ? "" : ",\n", row.label.c_str(),
        static_cast<unsigned long long>(stats.schedules), rate,
        static_cast<unsigned long long>(stats.timer_grants),
        row.result.violations.size(),
        row.result.exhausted ? "true" : "false");
    first = false;
  }
  for (const auto& row : storms) {
    const double rate =
        row.seconds > 0 ? static_cast<double>(row.runs) / row.seconds : 0;
    std::printf(
        "%s  {\"kind\": \"storm\", \"label\": \"%s\", \"runs\": %d, "
        "\"runs_per_sec\": %.0f, \"leases_acquired\": %llu, "
        "\"renewals\": %llu, \"step_downs\": %llu, \"restarts\": %d, "
        "\"spurious_sc\": %d}",
        first ? "" : ",\n", row.label.c_str(), row.runs, rate,
        static_cast<unsigned long long>(row.stats.leases_acquired),
        static_cast<unsigned long long>(row.stats.renewals),
        static_cast<unsigned long long>(row.stats.step_downs), row.restarts,
        row.spurious);
    first = false;
  }
  std::printf("\n]\n");
}

/// Records a storm's merged LeaseStats as the closed `service.*` stat family
/// (tools/report_check validates the names and the load-bearing trio).
void report_service_stats(bss::bench::BenchReport& report,
                          const bss::service::LeaseStats& stats) {
  report.builder().stat("service.leases_acquired", stats.leases_acquired);
  report.builder().stat("service.takeovers", stats.takeovers);
  report.builder().stat("service.renewals", stats.renewals);
  report.builder().stat("service.renew_failures", stats.renew_failures);
  report.builder().stat("service.retries", stats.retries);
  report.builder().stat("service.step_downs", stats.step_downs);
  report.builder().stat("service.expirations", stats.expirations);
  report.builder().stat("service.give_ups", stats.give_ups);
  report.builder().stat("service.actions", stats.actions);
}

// ------------------------------------------------------------- campaigns

/// The valid --campaign names; parse_flags enumerates these on a typo.
const std::vector<std::string> kCampaigns = {"exhaustive"};

/// `--campaign exhaustive`: the n=3 safety certificate — every schedule of
/// three service processes under a one-fault budget (crashes, restarts, and
/// spurious SC failures all explorable) with timer firings as decisions.
int run_campaign(const bss::bench::BenchFlags& flags) {
  ExploreOptions options;
  options.jobs = flags.jobs;
  options.fault_bound = 1;
  options.explore_sc_failures = true;
  // The default max_schedules valve would truncate this campaign-scale
  // space (millions of schedules; the valve counts claimed schedules,
  // speculative parallel work included) — a campaign must run to
  // exhaustion, so leave only a far-off runaway backstop and rely on
  // --checkpoint/--resume for slicing.
  options.max_schedules = 100'000'000;
  options.checkpoint_path = flags.checkpoint;
  if (flags.checkpoint_every > 0) {
    options.checkpoint_every = flags.checkpoint_every;
  }
  options.resume_path = flags.resume;
  options.status_path = flags.status;
  options.status_every_ms = flags.status_every;

  LeaseServiceSystem system(small_config(3));
  const SweepRow row = timed_explore("campaign:exhaustive[n=3,fb=1]", system,
                                     options);

  bss::bench::BenchReport report(flags, "bench_service");
  report.builder().set_system(system.name());
  report.builder().environment("campaign",
                               bss::obs::json::Value(flags.campaign));
  report.builder().environment("resumed",
                               bss::obs::json::Value(!flags.resume.empty()));
  bss::obs::json::Object object;
  object.emplace("workload", bss::obs::json::Value(row.label));
  object.emplace("jobs", bss::obs::json::Value(flags.jobs));
  object.emplace("schedules",
                 bss::obs::json::Value(row.result.stats.schedules));
  object.emplace("violations",
                 bss::obs::json::Value(
                     static_cast<std::uint64_t>(row.result.violations.size())));
  object.emplace("exhausted", bss::obs::json::Value(row.result.exhausted));
  object.emplace("checkpoints_written",
                 bss::obs::json::Value(row.result.checkpoints_written));
  object.emplace("seconds", bss::obs::json::Value(row.seconds));
  report.row(std::move(object));

  if (flags.json) {
    print_json({row}, {});
  } else {
    print_tables({row}, {});
    std::printf("  checkpoints written: %llu%s\n",
                static_cast<unsigned long long>(
                    row.result.checkpoints_written),
                flags.resume.empty() ? "" : " (resumed)");
  }
  report.finalize();
  return row.result.exhausted && row.result.violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/true, /*accepts_json=*/true,
      /*accepts_checkpoint=*/true, kCampaigns);
  if (!flags.campaign.empty()) return run_campaign(flags);

  std::vector<SweepRow> sweeps;
  {
    LeaseServiceSystem system(small_config(2));
    ExploreOptions fault_free;
    fault_free.jobs = flags.jobs;
    sweeps.push_back(timed_explore("lease[n=2] fb=0", system, fault_free));
    ExploreOptions budget;
    budget.jobs = flags.jobs;
    budget.fault_bound = 1;
    budget.explore_sc_failures = true;
    sweeps.push_back(timed_explore("lease[n=2] fb=1 c+r+s", system, budget));
  }
  {
    LeaseServiceSystem system(small_config(3));
    ExploreOptions bounded;
    bounded.jobs = flags.jobs;
    bounded.fault_bound = 1;
    bounded.explore_sc_failures = true;
    bounded.preemption_bound = 2;
    sweeps.push_back(
        timed_explore("lease[n=3] fb=1 c+r+s pb=2", system, bounded));
  }
  {
    // Refutation cost: how long until the explorer convicts each mutant.
    ExploreOptions refute;
    refute.jobs = flags.jobs;
    refute.fault_bound = 1;
    LeaseServiceSystem m1(med_config(), LeaseMutant::kRenewAfterExpiry);
    sweeps.push_back(timed_explore("mutant:renew-after-expiry", m1, refute));
    LeaseConfig m2cfg = med_config();
    m2cfg.sc_retries = 0;
    ExploreOptions sc_only = refute;
    sc_only.explore_crashes = false;
    sc_only.explore_restarts = false;
    sc_only.explore_sc_failures = true;
    LeaseServiceSystem m2(m2cfg, LeaseMutant::kNoStepDownOnRenewFailure);
    sweeps.push_back(timed_explore("mutant:no-step-down", m2, sc_only));
  }

  std::vector<StormRow> storms;
  {
    LeaseConfig storm_config = med_config();
    storm_config.n = 4;
    storm_config.acquire_attempts = 3;
    storms.push_back(
        timed_storm("lease[n=4] fault-free", storm_config, 0, 100));
    storms.push_back(
        timed_storm("lease[n=4] crash-storm", storm_config, 2, 100));
  }

  bss::bench::BenchReport report(flags, "bench_service");
  bss::service::LeaseStats merged;
  for (const auto& row : storms) merged.merge_from(row.stats);
  report_service_stats(report, merged);
  for (const auto& row : sweeps) {
    bss::obs::json::Object object;
    object.emplace("kind", bss::obs::json::Value(std::string("sweep")));
    object.emplace("label", bss::obs::json::Value(row.label));
    object.emplace("schedules",
                   bss::obs::json::Value(row.result.stats.schedules));
    object.emplace("timer_grants",
                   bss::obs::json::Value(row.result.stats.timer_grants));
    object.emplace("violations",
                   bss::obs::json::Value(static_cast<std::uint64_t>(
                       row.result.violations.size())));
    object.emplace("exhausted", bss::obs::json::Value(row.result.exhausted));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    report.row(std::move(object));
  }
  for (const auto& row : storms) {
    bss::obs::json::Object object;
    object.emplace("kind", bss::obs::json::Value(std::string("storm")));
    object.emplace("label", bss::obs::json::Value(row.label));
    object.emplace("runs", bss::obs::json::Value(row.runs));
    object.emplace("restarts", bss::obs::json::Value(row.restarts));
    object.emplace("spurious_sc", bss::obs::json::Value(row.spurious));
    object.emplace("leases_acquired",
                   bss::obs::json::Value(row.stats.leases_acquired));
    object.emplace("step_downs",
                   bss::obs::json::Value(row.stats.step_downs));
    object.emplace("seconds", bss::obs::json::Value(row.seconds));
    report.row(std::move(object));
  }

  if (flags.json) {
    print_json(sweeps, storms);
  } else {
    print_tables(sweeps, storms);
  }
  report.finalize();
  return 0;
}
