// F2 — anatomy of the Section 3 reduction, run live.
//
// The emulation turns a leader-election algorithm A (here: FirstValueTree)
// into a set-consensus protocol for the emulators.  The quantities the
// proof lives on, measured:
//   * labels/groups produced (must stay <= (k-1)!),
//   * splits, installs, suspensions, releases,
//   * distinct decisions (the l of the l-set consensus delivered),
//   * completion vs stall as the v-process supply varies — the stall at
//     m > (k-1)! IS the theorem: A's capacity cannot feed (k-1)!+1
//     emulators, so the impossible algorithm cannot be built.
#include <cstdio>

#include "bench_flags.h"
#include "bench_report.h"
#include "emulation/driver.h"
#include "emulation/reduction_check.h"
#include "util/checked.h"

namespace {

using bss::emu::EmuParams;
using bss::emu::EmulationDriver;
using bss::emu::EmuStats;

void sweep_fvt(bss::bench::BenchReport& report) {
  std::printf(
      "F2a — A = FirstValueTree election, varying emulators and v-processes\n");
  std::printf("%3s %3s %5s %9s %7s %7s %9s %10s %8s\n", "k", "m", "vps/m",
              "outcome", "labels", "splits", "installs", "decisions",
              "verdict");
  struct Config {
    int k;
    int m;
    int vps;
  };
  const Config configs[] = {{3, 1, 2}, {3, 2, 1}, {4, 1, 3}, {4, 2, 3},
                            {4, 3, 2}, {4, 6, 1}, {5, 2, 6}, {5, 4, 6}};
  for (const auto& config : configs) {
    EmuParams params;
    params.k = config.k;
    params.m = config.m;
    params.vps_per_emulator = config.vps;
    EmulationDriver driver(params, bss::emu::fvt_vp_factory());
    const EmuStats stats = driver.run();
    const auto verdict = bss::emu::verify_reduction(driver, stats);
    std::printf("%3d %3d %5d %9s %7zu %7d %9d %10d %8s\n", config.k, config.m,
                config.vps, stats.completed ? "complete" : "STALL",
                driver.forest().tree_count(), stats.splits, stats.installs,
                stats.distinct_decisions, verdict.ok() ? "OK" : "FAIL");
    bss::obs::json::Object object;
    object.emplace("kind", "fvt");
    object.emplace("k", config.k);
    object.emplace("m", config.m);
    object.emplace("vps_per_emulator", config.vps);
    object.emplace("completed", stats.completed);
    object.emplace("labels",
                   static_cast<std::uint64_t>(driver.forest().tree_count()));
    object.emplace("splits", stats.splits);
    object.emplace("installs", stats.installs);
    object.emplace("distinct_decisions", stats.distinct_decisions);
    object.emplace("ok", verdict.ok());
    report.row(std::move(object));
  }
  const std::uint64_t bound3 = 2;  // (3-1)!
  std::printf(
      "\nshape: distinct decisions never exceed (k-1)! (e.g. %llu at k=3);\n"
      "the (k-1)!+1-st emulator cannot be fed (A has only (k-1)! slots) —\n"
      "the impossibility made operational.\n\n",
      static_cast<unsigned long long>(bound3));
}

void sweep_token_race(bss::bench::BenchReport& report) {
  std::printf(
      "F2b — A = token-race (value-reusing) exerciser: the rebalance path\n");
  std::printf("%3s %3s %5s %7s %9s %11s %9s %9s\n", "k", "m", "vps/m",
              "rounds", "outcome", "suspensions", "releases", "installs");
  struct Config {
    int k;
    int m;
    int vps;
    int rounds;
  };
  const Config configs[] = {{3, 1, 4, 8}, {3, 2, 3, 6}, {4, 2, 4, 8},
                            {4, 3, 4, 12}};
  for (const auto& config : configs) {
    EmuParams params;
    params.k = config.k;
    params.m = config.m;
    params.vps_per_emulator = config.vps;
    params.suspend_trigger = 2;
    params.suspend_quota = 1;
    EmulationDriver driver(params,
                           bss::emu::token_race_factory(config.rounds));
    const EmuStats stats = driver.run();
    std::printf("%3d %3d %5d %7d %9s %11d %9d %9d\n", config.k, config.m,
                config.vps, config.rounds,
                stats.completed ? "complete" : "STALL", stats.suspensions,
                stats.releases, stats.installs);
    bss::obs::json::Object object;
    object.emplace("kind", "token_race");
    object.emplace("k", config.k);
    object.emplace("m", config.m);
    object.emplace("vps_per_emulator", config.vps);
    object.emplace("rounds", config.rounds);
    object.emplace("completed", stats.completed);
    object.emplace("suspensions", stats.suspensions);
    object.emplace("releases", stats.releases);
    object.emplace("installs", stats.installs);
    report.row(std::move(object));
  }
  {
    // Paper-faithful mode: installs must be backed by suspended
    // v-processes, releases pay the history's debts (CanRebalance), and
    // value reuse goes through the excess-cycle ancestor attach.
    EmuParams params;
    params.k = 3;
    params.m = 1;
    params.vps_per_emulator = 8;
    params.suspend_trigger = 2;
    params.suspend_quota = 2;
    params.direct_install = false;
    EmulationDriver driver(params, bss::emu::token_race_factory(9));
    const EmuStats stats = driver.run();
    std::printf("%3d %3d %5d %7d %9s %11d %9d %9d   (faithful mode)\n", 3, 1,
                8, 9, stats.completed ? "complete" : "STALL",
                stats.suspensions, stats.releases, stats.installs);
    bss::obs::json::Object object;
    object.emplace("kind", "token_race_faithful");
    object.emplace("k", 3);
    object.emplace("m", 1);
    object.emplace("vps_per_emulator", 8);
    object.emplace("rounds", 9);
    object.emplace("completed", stats.completed);
    object.emplace("suspensions", stats.suspensions);
    object.emplace("releases", stats.releases);
    object.emplace("installs", stats.installs);
    report.row(std::move(object));
  }
  std::printf(
      "\nshape: value reuse makes installs exceed k-1 and drives the\n"
      "suspension/release machinery that first-value algorithms never\n"
      "touch — the part of the construction the paper built the history\n"
      "trees for.\n\n");
}

void show_history_tree(bss::bench::BenchReport& report) {
  std::printf("F2c — a constructed history, spelled out (k=3, token race)\n");
  EmuParams params;
  params.k = 3;
  params.m = 1;
  params.vps_per_emulator = 4;
  params.suspend_trigger = 2;
  params.suspend_quota = 1;
  EmulationDriver driver(params, bss::emu::token_race_factory(6));
  const EmuStats stats = driver.run();
  for (const auto& label : driver.forest().active_labels()) {
    const auto history = driver.forest().compute_history(label);
    std::printf("  t_%s: h = %s\n", bss::emu::label_string(label).c_str(),
                bss::emu::label_string(history).c_str());
  }
  std::printf("  vp steps=%d, events=%zu, completed=%s\n", stats.vp_steps,
              driver.events().size(), stats.completed ? "yes" : "no");
  bss::obs::json::Object object;
  object.emplace("kind", "history");
  object.emplace("vp_steps", stats.vp_steps);
  object.emplace("events", static_cast<std::uint64_t>(driver.events().size()));
  object.emplace("completed", stats.completed);
  object.emplace("active_labels",
                 static_cast<std::uint64_t>(
                     driver.forest().active_labels().size()));
  report.row(std::move(object));
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/false, /*accepts_json=*/false);
  bss::bench::BenchReport report(flags, "bench_reduction");
  sweep_fvt(report);
  sweep_token_race(report);
  show_history_tree(report);
  report.finalize();
  return 0;
}
