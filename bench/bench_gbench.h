// Runreport capture for the google-benchmark binaries (bench_election,
// bench_primitives): the same `bss-runreport v1` artifact the table-shaped
// benches emit, produced by wrapping whichever display reporter the run
// uses in a capture shim — one row per benchmark run, counters included.
//
// The binaries keep google-benchmark's own flag handling; this header only
// peels off `--out PATH` (ours) and rewrites `--json` into benchmark's JSON
// format flag before Initialize sees the argument vector.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_report.h"

namespace bss::bench {

struct GBenchArgs {
  std::vector<char*> args;  ///< what benchmark::Initialize should consume
  BenchFlags flags;         ///< --json / --out, decoded for the report
};

/// Extracts `--out PATH` / `--out=PATH` and maps `--json` onto
/// `--benchmark_format=json`; every other argument passes through.
inline GBenchArgs preprocess_gbench_args(int argc, char** argv) {
  static char json_flag[] = "--benchmark_format=json";
  GBenchArgs result;
  result.args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" || arg == "--benchmark_format=json") {
      result.flags.json = true;
      result.args.push_back(json_flag);
    } else if (arg == "--out" && i + 1 < argc) {
      result.flags.out = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      result.flags.out = std::string(arg.substr(std::strlen("--out=")));
    } else {
      result.args.push_back(argv[i]);
    }
  }
  return result;
}

/// Display reporter (console or JSON, matching `Base`) that additionally
/// records every run into the report: name, iterations, adjusted times in
/// the benchmark's declared unit, and all user counters.
template <typename Base>
class CapturingReporter final : public Base {
 public:
  explicit CapturingReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(
      const std::vector<benchmark::BenchmarkReporter::Run>& runs) override {
    for (const auto& run : runs) {
      obs::json::Object row;
      row.emplace("name", run.benchmark_name());
      row.emplace("iterations", static_cast<std::int64_t>(run.iterations));
      row.emplace("real_time", run.GetAdjustedRealTime());
      row.emplace("cpu_time", run.GetAdjustedCPUTime());
      row.emplace("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      if (run.error_occurred) row.emplace("error", run.error_message);
      for (const auto& [name, counter] : run.counters) {
        row.emplace("counter:" + name, static_cast<double>(counter));
      }
      report_->row(std::move(row));
    }
    Base::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

/// Runs the registered benchmarks under a capture reporter matching the
/// --json choice, finalizes the report (writing --out when given), and
/// shuts benchmark down.  The whole tail of main().
inline int run_gbench_with_report(const BenchFlags& flags,
                                  std::string producer) {
  BenchReport report(flags, std::move(producer));
  if (flags.json) {
    CapturingReporter<benchmark::JSONReporter> reporter(&report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    CapturingReporter<benchmark::ConsoleReporter> reporter(&report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  report.finalize();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bss::bench
