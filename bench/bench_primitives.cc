// M1 — substrate microbenchmarks (google-benchmark).
//
// Costs of the building blocks everything else runs on: the deterministic
// scheduler's step dispatch, compare&swap-(k) operations, the AADGMS atomic
// snapshot as a function of component count, and the emulation board's
// label-compatibility reads.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_gbench.h"
#include "emulation/board.h"
#include "registers/cas_register_k.h"
#include "registers/snapshot.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace {

void BM_SimStepDispatch(benchmark::State& state) {
  const int ops = bss::checked_cast<int>(state.range(0));
  for (auto _ : state) {
    bss::sim::SimEnv env({.record_trace = false});
    bss::sim::CasRegisterK cas("c", 4);
    env.add_process([&, ops](bss::sim::Ctx& ctx) {
      for (int i = 0; i < ops; ++i) (void)cas.read(ctx);
    });
    bss::sim::RoundRobinScheduler scheduler;
    const auto report = env.run(scheduler);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_SimStepDispatch)->Arg(1000)->Arg(10000);

void BM_CasRegisterOps(benchmark::State& state) {
  const int ops = bss::checked_cast<int>(state.range(0));
  for (auto _ : state) {
    bss::sim::SimEnv env({.record_trace = false});
    bss::sim::CasRegisterK cas("c", 8);
    env.add_process([&, ops](bss::sim::Ctx& ctx) {
      int value = 0;
      for (int i = 0; i < ops; ++i) {
        const int next = (value + 1) % 8;
        (void)cas.compare_and_swap(ctx, value, next);
        value = next;
      }
    });
    bss::sim::RoundRobinScheduler scheduler;
    env.run(scheduler);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_CasRegisterOps)->Arg(1000);

void BM_SnapshotScan(benchmark::State& state) {
  const int components = bss::checked_cast<int>(state.range(0));
  std::uint64_t reads = 0;
  std::uint64_t scans = 0;
  for (auto _ : state) {
    bss::sim::SimEnv env({.record_trace = false});
    bss::sim::AtomicSnapshot snapshot("s", components);
    env.add_process([&](bss::sim::Ctx& ctx) {
      for (int round = 0; round < 20; ++round) {
        snapshot.update(ctx, 0, round);
        (void)snapshot.scan(ctx);
        reads += snapshot.reads_in_last_scan(ctx.pid());
        ++scans;
      }
    });
    bss::sim::RoundRobinScheduler scheduler;
    env.run(scheduler);
  }
  state.counters["reads/scan"] = benchmark::Counter(
      scans == 0 ? 0 : static_cast<double>(reads) / static_cast<double>(scans));
}
BENCHMARK(BM_SnapshotScan)->Arg(2)->Arg(8)->Arg(32);

void BM_SnapshotScanContended(benchmark::State& state) {
  const int writers = bss::checked_cast<int>(state.range(0));
  for (auto _ : state) {
    bss::sim::SimEnv env({.record_trace = false});
    bss::sim::AtomicSnapshot snapshot("s", writers + 1);
    env.add_process([&](bss::sim::Ctx& ctx) {
      for (int i = 0; i < 10; ++i) (void)snapshot.scan(ctx);
    });
    for (int w = 0; w < writers; ++w) {
      env.add_process([&, w](bss::sim::Ctx& ctx) {
        for (int i = 1; i <= 10; ++i) snapshot.update(ctx, w + 1, i);
      });
    }
    bss::sim::RandomScheduler scheduler(5);
    env.run(scheduler);
  }
}
BENCHMARK(BM_SnapshotScanContended)->Arg(2)->Arg(6);

void BM_BoardRead(benchmark::State& state) {
  const int entries = bss::checked_cast<int>(state.range(0));
  bss::emu::Board board;
  bss::emu::Label deep{0};
  for (int i = 1; i < 4; ++i) deep.push_back(i);
  for (int i = 0; i < entries; ++i) {
    board.write("r", i % 2 == 0 ? bss::emu::Label{0} : deep, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(board.read("r", deep));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoardRead)->Arg(16)->Arg(256);

}  // namespace

// Same main shape as bench_election: --json for machine-readable stdout,
// --out PATH for the shared bss-runreport v1 artifact, everything else is
// google-benchmark's.
int main(int argc, char** argv) {
  auto pre = bss::bench::preprocess_gbench_args(argc, argv);
  int args_count = bss::checked_cast<int>(pre.args.size());
  benchmark::Initialize(&args_count, pre.args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, pre.args.data())) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--out PATH] [google-benchmark flags]\n"
                 "  --json     shorthand for --benchmark_format=json\n"
                 "  --out PATH write a bss-runreport v1 artifact to PATH\n",
                 argv[0]);
    return 1;
  }
  return bss::bench::run_gbench_with_report(pre.flags, "bench_primitives");
}
