// T1 — the capacity table: what one compare&swap-(k) + unbounded R/W memory
// can do, bounded below by the election algorithm and above by Theorem 1.
//
// Columns per k:
//   burns   = k-1        one k-valued write-once RMW register alone [5]
//   lower   = (k-1)!     FirstValueTree's capacity (witnessed live below)
//   conj    = k!         the paper's conjecture for n_k
//   upper   = k^(k^2+3)  Theorem 1
// The "witness" rows actually run the election at n = (k-1)! under several
// adversarial schedulers and validate consistency/validity/wait-freedom —
// the measured content of "n_k >= (k-1)!".
#include <cstdio>
#include <memory>
#include <string>

#include "bench_flags.h"
#include "bench_report.h"
#include "core/capacity.h"
#include "core/composed_election.h"
#include "core/election_validator.h"
#include "core/sim_election.h"
#include "util/checked.h"

namespace {

using bss::core::capacity_row;
using bss::core::CapacityRow;

std::string clipped(const bss::BigUint& value, int max_digits = 24) {
  const std::string digits = value.to_decimal();
  if (bss::checked_cast<int>(digits.size()) <= max_digits) return digits;
  return digits.substr(0, 6) + "...e+" + std::to_string(digits.size() - 1);
}

void print_bounds_table(bss::bench::BenchReport& report) {
  std::printf("T1a — capacity bounds for one compare&swap-(k) (+ R/W registers)\n");
  std::printf("%3s %12s %16s %18s %26s %10s\n", "k", "burns=k-1",
              "lower=(k-1)!", "conjecture=k!", "upper=k^(k^2+3)",
              "gap(digits)");
  for (int k = 3; k <= 9; ++k) {
    const CapacityRow row = capacity_row(k);
    std::printf("%3d %12s %16s %18s %26s %10d\n", k,
                row.burns.to_decimal().c_str(),
                row.lower.to_decimal().c_str(),
                row.conjectured.to_decimal().c_str(),
                clipped(row.upper).c_str(), row.gap_digits);
    bss::obs::json::Object object;
    object.emplace("kind", "bounds");
    object.emplace("k", k);
    object.emplace("burns", row.burns.to_decimal());
    object.emplace("lower", row.lower.to_decimal());
    object.emplace("conjectured", row.conjectured.to_decimal());
    object.emplace("upper", row.upper.to_decimal());
    object.emplace("gap_digits", row.gap_digits);
    report.row(std::move(object));
  }
  std::printf(
      "\nshape: read/write registers amplify a bounded object from k-1 to\n"
      "(k-1)! processes (exponential), yet the upper bound leaves the\n"
      "paper's conjectured Θ(k!) gap of many decimal orders.\n\n");
}

void print_witness_table(bss::bench::BenchReport& bench_report) {
  std::printf("T1b — live witness of the lower bound: n = (k-1)! processes elect\n");
  std::printf("%3s %8s %14s %12s %12s %8s\n", "k", "n", "scheduler",
              "total-steps", "max-cas/proc", "verdict");
  for (int k = 3; k <= 6; ++k) {
    const int n = bss::checked_cast<int>(bss::core::slot_count(k));
    struct Case {
      std::string name;
      std::unique_ptr<bss::sim::Scheduler> scheduler;
    };
    Case cases[3];
    cases[0] = {"round-robin", std::make_unique<bss::sim::RoundRobinScheduler>()};
    cases[1] = {"random", std::make_unique<bss::sim::RandomScheduler>(2026)};
    cases[2] = {"cas-convoy", std::make_unique<bss::sim::CasConvoyScheduler>(7)};
    for (auto& test_case : cases) {
      const auto report =
          bss::core::run_sim_election(k, n, *test_case.scheduler);
      const auto verdict = bss::core::verify_election(report);
      int max_cas = 0;
      for (const auto& outcome : report.outcomes) {
        if (outcome.has_value() && outcome->cas_accesses > max_cas) {
          max_cas = outcome->cas_accesses;
        }
      }
      std::printf("%3d %8d %14s %12llu %12d %8s\n", k, n,
                  test_case.name.c_str(),
                  static_cast<unsigned long long>(report.run.total_steps),
                  max_cas, verdict.ok() ? "OK" : "FAIL");
      bss::obs::json::Object object;
      object.emplace("kind", "witness");
      object.emplace("k", k);
      object.emplace("n", n);
      object.emplace("scheduler", test_case.name);
      object.emplace("total_steps", report.run.total_steps);
      object.emplace("max_cas_per_proc", max_cas);
      object.emplace("ok", verdict.ok());
      bench_report.row(std::move(object));
    }
  }
  std::printf(
      "\nshape: every scheduler ends with one leader, valid and within the\n"
      "O(k) compare&swap-access bound — n_k >= (k-1)! holds operationally.\n");
}

void print_composition_table(bss::bench::BenchReport& bench_report) {
  std::printf(
      "\nT1c — multiple copies of the strong object (closed model; the\n"
      "paper's conclusions extension), witnessed live\n");
  std::printf("%3s %7s %14s %16s %10s %8s\n", "k", "copies",
              "burns=(k-1)^r", "ours=((k-1)!)^r", "n-run", "verdict");
  struct Config {
    int k;
    int copies;
    int n;  // processes actually run (full capacity where affordable)
  };
  const Config configs[] = {{3, 2, 4}, {3, 3, 8}, {4, 2, 36}, {5, 2, 64}};
  for (const auto& config : configs) {
    std::uint64_t burns = 1;
    for (int copy = 0; copy < config.copies; ++copy) {
      burns *= static_cast<std::uint64_t>(config.k - 1);
    }
    bss::sim::RandomScheduler scheduler(777);
    const auto report = bss::core::run_composed_election(
        config.k, config.copies, config.n, scheduler);
    std::printf("%3d %7d %14llu %16llu %10d %8s\n", config.k, config.copies,
                static_cast<unsigned long long>(burns),
                static_cast<unsigned long long>(
                    bss::core::composed_capacity(config.k, config.copies)),
                config.n,
                report.consistent && report.valid ? "OK" : "FAIL");
    bss::obs::json::Object object;
    object.emplace("kind", "composition");
    object.emplace("k", config.k);
    object.emplace("copies", config.copies);
    object.emplace("burns_capacity", burns);
    object.emplace("our_capacity",
                   bss::core::composed_capacity(config.k, config.copies));
    object.emplace("n_run", config.n);
    object.emplace("ok", report.consistent && report.valid);
    bench_report.row(std::move(object));
  }
  std::printf(
      "\nshape: factorial amplification per copy — (k-1)^r vs ((k-1)!)^r.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/false, /*accepts_json=*/false);
  bss::bench::BenchReport report(flags, "bench_capacity");
  print_bounds_table(report);
  print_witness_table(report);
  print_composition_table(report);
  report.finalize();
  return 0;
}
