// Shared `bss-runreport v1` emission for the bench binaries: every bench —
// table-shaped and google-benchmark alike — funnels its rows through a
// BenchReport so one schema covers all benchmark trajectories (the bench
// counterpart of the report explore() emits; see src/obs/runreport.h).
//
// stdout is untouched: the table (or --json rows) prints exactly as before,
// and the report is written only when --out PATH was given.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "bench_flags.h"
#include "obs/runreport.h"

namespace bss::bench {

class BenchReport {
 public:
  BenchReport(const BenchFlags& flags, std::string producer)
      : out_(flags.out),
        builder_("bench", std::move(producer)),
        wall_begin_(std::chrono::steady_clock::now()) {
    builder_.environment("jobs", flags.jobs);
  }

  /// Direct access for environment/options/stats the bench wants recorded.
  obs::ReportBuilder& builder() { return builder_; }

  /// One table row as a JSON object (same fields as the --json output).
  void row(obs::json::Object row) { builder_.row(std::move(row)); }

  /// Accumulates schedules executed across the bench's cells; finalize()
  /// turns the total into the timing channel's schedules/second headline.
  void schedules(std::uint64_t count) { schedules_ += count; }

  /// Writes the report to --out (no-op without the flag).  Call once, after
  /// the last row; exits nonzero on I/O failure so CI catches a bad path.
  void finalize() {
    const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - wall_begin_)
                             .count();
    builder_.timing("wall_ns",
                    obs::json::Value(static_cast<std::uint64_t>(wall_ns)));
    if (schedules_ > 0 && wall_ns > 0) {
      builder_.timing("schedules_per_second",
                      obs::json::Value(static_cast<double>(schedules_) * 1e9 /
                                       static_cast<double>(wall_ns)));
    }
    if (out_.empty()) return;
    if (!obs::write_file(out_, builder_.to_json())) {
      std::fprintf(stderr, "FATAL: cannot write runreport to '%s'\n",
                   out_.c_str());
      std::exit(1);
    }
  }

 private:
  std::string out_;
  obs::ReportBuilder builder_;
  std::chrono::steady_clock::time_point wall_begin_;
  std::uint64_t schedules_ = 0;
};

}  // namespace bss::bench
