// F1 — election cost curves (google-benchmark).
//
// The paper's algorithmic claim behind n_k >= (k-1)! is that the election is
// *bounded wait-free*: O(k) compare&swap accesses per process no matter the
// schedule.  These benchmarks measure, per (k, n, scheduler):
//   * wall time of a full simulated election,
//   * shared-memory steps and c&s accesses per process (counters),
// plus the real-thread lock-free backend at full capacity.  The shape to
// see: c&s accesses per process stay ~2k (flat in n), while total steps grow
// with n (the helping scans) — bounded synchronization, unbounded gossip.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <vector>

#include "bench_gbench.h"

#include "core/concurrent_election.h"
#include "core/election_validator.h"
#include "core/one_shot_election.h"
#include "core/sim_election.h"
#include "util/checked.h"

namespace {

using bss::core::run_sim_election;

void BM_SimElection_RoundRobin(benchmark::State& state) {
  const int k = bss::checked_cast<int>(state.range(0));
  const int n = bss::checked_cast<int>(state.range(1));
  std::uint64_t total_steps = 0;
  std::uint64_t total_cas = 0;
  int max_cas = 0;
  for (auto _ : state) {
    bss::sim::RoundRobinScheduler scheduler;
    const auto report = run_sim_election(k, n, scheduler);
    total_steps += report.run.total_steps;
    total_cas += report.cas_total_accesses;
    for (const auto& outcome : report.outcomes) {
      if (outcome.has_value() && outcome->cas_accesses > max_cas) {
        max_cas = outcome->cas_accesses;
      }
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["steps/proc"] = benchmark::Counter(
      static_cast<double>(total_steps) / static_cast<double>(state.iterations()) / n);
  state.counters["cas/proc"] = benchmark::Counter(
      static_cast<double>(total_cas) / static_cast<double>(state.iterations()) / n);
  state.counters["max-cas"] = benchmark::Counter(static_cast<double>(max_cas));
}
BENCHMARK(BM_SimElection_RoundRobin)
    ->Args({4, 6})
    ->Args({5, 6})
    ->Args({5, 24})
    ->Args({6, 24})
    ->Args({6, 120})
    ->Unit(benchmark::kMillisecond);

void BM_SimElection_Adversarial(benchmark::State& state) {
  const int k = bss::checked_cast<int>(state.range(0));
  const int n = bss::checked_cast<int>(state.range(1));
  std::uint64_t seed = 1;
  int max_cas = 0;
  for (auto _ : state) {
    bss::sim::CasConvoyScheduler scheduler(seed++);
    const auto report = run_sim_election(k, n, scheduler);
    for (const auto& outcome : report.outcomes) {
      if (outcome.has_value() && outcome->cas_accesses > max_cas) {
        max_cas = outcome->cas_accesses;
      }
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["max-cas"] = benchmark::Counter(static_cast<double>(max_cas));
  state.counters["bound-4k+8"] =
      benchmark::Counter(static_cast<double>(bss::core::max_iterations(k)));
}
BENCHMARK(BM_SimElection_Adversarial)
    ->Args({4, 6})
    ->Args({5, 24})
    ->Args({6, 120})
    ->Unit(benchmark::kMillisecond);

void BM_SimElection_WithCrashes(benchmark::State& state) {
  const int k = bss::checked_cast<int>(state.range(0));
  const int n = bss::checked_cast<int>(state.range(1));
  std::uint64_t seed = 2026;
  for (auto _ : state) {
    bss::Rng rng(seed++);
    const auto crashes = bss::sim::CrashPlan::random(n, 0.3, 20, rng);
    bss::sim::RandomScheduler scheduler(seed);
    const auto report = run_sim_election(k, n, scheduler, crashes);
    const auto verdict = bss::core::verify_election(report);
    if (!verdict.ok()) state.SkipWithError("election verdict failed");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SimElection_WithCrashes)
    ->Args({5, 24})
    ->Args({6, 120})
    ->Unit(benchmark::kMillisecond);

void BM_ConcurrentElection(benchmark::State& state) {
  const int k = bss::checked_cast<int>(state.range(0));
  const int n = bss::checked_cast<int>(state.range(1));
  for (auto _ : state) {
    const auto report = bss::core::run_concurrent_election(k, n);
    if (!report.consistent) state.SkipWithError("inconsistent election");
    benchmark::DoNotOptimize(report);
  }
  state.counters["threads"] = benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_ConcurrentElection)
    ->Args({5, 24})
    ->Args({6, 120})
    ->Args({7, 720})
    ->Unit(benchmark::kMillisecond);

void BM_OneShotElection(benchmark::State& state) {
  const int k = bss::checked_cast<int>(state.range(0));
  for (auto _ : state) {
    bss::sim::RandomScheduler scheduler(3);
    const auto report = bss::core::run_one_shot_election(k, k - 1, scheduler);
    if (!report.consistent) state.SkipWithError("inconsistent one-shot");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_OneShotElection)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

// Hand-rolled main instead of BENCHMARK_MAIN(): `--json` is sugar for
// google-benchmark's JSON reporter, so every bench binary in this repo
// shares one machine-readable flag (EXPERIMENTS.md), and `--out PATH`
// writes the shared bss-runreport v1 artifact (bench_gbench.h).  Flags are
// accepted in any position; anything neither we nor google-benchmark
// recognize gets a usage message instead of being silently ignored.
int main(int argc, char** argv) {
  auto pre = bss::bench::preprocess_gbench_args(argc, argv);
  int args_count = bss::checked_cast<int>(pre.args.size());
  benchmark::Initialize(&args_count, pre.args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, pre.args.data())) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--out PATH] [google-benchmark flags]\n"
                 "  --json     shorthand for --benchmark_format=json\n"
                 "  --out PATH write a bss-runreport v1 artifact to PATH\n",
                 argv[0]);
    return 1;
  }
  return bss::bench::run_gbench_with_report(pre.flags, "bench_election");
}
