// T4 — the Burns-Cruz-Loui model: write-once k-valued RMW registers with no
// read/write helpers.
//
// Shape to reproduce: one register elects exactly k-1 (certified at k-1,
// refuted at k by the checker), several registers compose multiplicatively,
// and the whole model sits exponentially below the (k-1)! that the same
// object achieves WITH read/write registers — the paper's conclusion that
// read/write registers add power to bounded objects.
#include <cstdio>

#include "bench_flags.h"
#include "bench_report.h"
#include "burns/burns_election.h"
#include "checker/consensus_check.h"
#include "core/capacity.h"
#include "runtime/scheduler.h"

namespace {

std::vector<std::vector<int>> identity_inputs(int n) {
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) inputs[static_cast<std::size_t>(pid)] = pid;
  return {inputs};
}

void print_single(bss::bench::BenchReport& bench_report) {
  std::printf("T4a — one k-valued write-once RMW register, no R/W registers\n");
  std::printf("%3s %10s %12s %12s %16s\n", "k", "n=k-1", "elects?",
              "n=k", "checker-says");
  for (int k = 3; k <= 7; ++k) {
    bss::sim::RandomScheduler scheduler(static_cast<std::uint64_t>(k));
    const auto report =
        bss::burns::run_single_register_election(k, k - 1, scheduler);
    std::string refuted = "(skipped)";
    if (k <= 6) {
      bss::burns::BurnsProtocol overloaded(k, k);
      const auto check =
          bss::check::check_consensus(overloaded, identity_inputs(k));
      refuted = check.solves ? "UNEXPECTEDLY OK" : "agreement broken";
    }
    std::printf("%3d %10d %12s %12d %16s\n", k, k - 1,
                report.consistent ? "yes" : "NO", k, refuted.c_str());
    bss::obs::json::Object object;
    object.emplace("kind", "single");
    object.emplace("k", k);
    object.emplace("elects_at_k_minus_1", report.consistent);
    object.emplace("checker_at_k", refuted);
    bench_report.row(std::move(object));
  }
  std::printf("\n");
}

void print_product(bss::bench::BenchReport& bench_report) {
  std::printf("T4b — multiplicative composition (closed model)\n");
  std::printf("%-14s %10s %10s %10s\n", "sizes", "capacity", "n-run",
              "elects?");
  const std::vector<std::vector<int>> configurations{
      {3, 3}, {4, 3}, {4, 4}, {2, 2, 2}, {5, 4, 3}};
  for (const auto& sizes : configurations) {
    bss::burns::MultiState probe(sizes);
    const int n = static_cast<int>(probe.capacity());
    bss::sim::RandomScheduler scheduler(99);
    const auto report =
        bss::burns::run_multi_register_election(sizes, n, scheduler);
    std::string rendered;
    for (const int size : sizes) {
      if (!rendered.empty()) rendered += "x";
      rendered += std::to_string(size);
    }
    std::printf("%-14s %10llu %10d %10s\n", rendered.c_str(),
                static_cast<unsigned long long>(probe.capacity()), n,
                report.consistent ? "yes" : "NO");
    bss::obs::json::Object object;
    object.emplace("kind", "product");
    object.emplace("sizes", rendered);
    object.emplace("capacity", probe.capacity());
    object.emplace("n_run", n);
    object.emplace("elects", report.consistent);
    bench_report.row(std::move(object));
  }
  std::printf("\n");
}

void print_contrast(bss::bench::BenchReport& bench_report) {
  std::printf("T4c — the paper's contrast: same object, +/- R/W registers\n");
  std::printf("%3s %22s %26s %14s\n", "k", "write-once RMW alone",
              "c&s-(k) + R/W registers", "amplification");
  for (int k = 3; k <= 9; ++k) {
    const auto row = bss::core::capacity_row(k);
    std::printf("%3d %22s %26s %13.0fx\n", k, row.burns.to_decimal().c_str(),
                row.lower.to_decimal().c_str(), row.rw_amplification);
    bss::obs::json::Object object;
    object.emplace("kind", "contrast");
    object.emplace("k", k);
    object.emplace("burns", row.burns.to_decimal());
    object.emplace("with_rw", row.lower.to_decimal());
    object.emplace("amplification", row.rw_amplification);
    bench_report.row(std::move(object));
  }
  std::printf(
      "\nshape: k-1 vs (k-1)! — free read/write registers turn linear\n"
      "capacity into factorial capacity, and the paper proves the\n"
      "amplification stops at O(k^(k^2+3)).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bss::bench::BenchFlags flags = bss::bench::parse_flags(
      argc, argv, /*accepts_jobs=*/false, /*accepts_json=*/false);
  bss::bench::BenchReport report(flags, "bench_burns");
  print_single(report);
  print_product(report);
  print_contrast(report);
  report.finalize();
  return 0;
}
