// Tests for the access-ledger soundness auditor (src/audit): race
// detection, footprint conformance, the commutation cross-check, the
// explorer's audit mode, and — load-bearing for everything else in this
// repository — the guarantee that attaching the audit layer never changes
// what the explorer does.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/commute_check.h"
#include "audit/conformance.h"
#include "audit/ledger.h"
#include "core/mutant_elections.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "explore/snapshot_system.h"
#include "explore/system.h"
#include "registers/mwmr_register.h"
#include "registers/swmr_register.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::audit {
namespace {

// ------------------------------------------------------------ access token

TEST(AccessToken, UnarmedTokenIsANoOp) {
  AccessToken token;
  EXPECT_FALSE(token.armed());
  token.read("x");  // must be safe without an observer
  token.write("x");
}

// ---------------------------------------------------- ledger: race detection

TEST(Auditor, FlagsAccessOutsideAnyWindow) {
  Auditor auditor;
  auditor.on_access(0, "x", AccessKind::kRead, AccessToken::kNoWindow);
  EXPECT_FALSE(auditor.clean());
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, ViolationKind::kUnsyncedAccess);
  EXPECT_EQ(auditor.violations()[0].pid, 0);
  EXPECT_EQ(auditor.violations()[0].object, "x");
}

TEST(Auditor, FlagsAccessByWrongPid) {
  Auditor auditor;
  auditor.on_window_begin(0, {"x", "read", 0, 0}, 0);
  auditor.on_access(1, "x", AccessKind::kRead, 0);
  auditor.on_window_end(0, false);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, ViolationKind::kWrongPid);
  EXPECT_EQ(auditor.violations()[0].pid, 1);
}

TEST(Auditor, FlagsStaleToken) {
  Auditor auditor;
  auditor.on_window_begin(0, {"x", "read", 0, 0}, 3);
  auditor.on_access(0, "x", AccessKind::kRead, 7);  // checked out elsewhere
  auditor.on_window_end(0, false);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, ViolationKind::kStaleToken);
}

TEST(Auditor, CleanWindowWithMatchingFootprint) {
  Auditor auditor;
  auditor.on_window_begin(0, {"x", "read", 0, 0}, 0);
  auditor.on_access(0, "x", AccessKind::kRead, 0);
  auditor.on_window_end(0, false);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
  EXPECT_EQ(auditor.windows(), 1u);
  EXPECT_EQ(auditor.accesses(), 1u);
}

TEST(Auditor, EmptyTouchWindowIsExempt) {
  // Emulated objects drive sync() directly without tokens; a window with no
  // stamped accesses means "not instrumented", not "touched nothing".
  Auditor auditor;
  auditor.on_window_begin(0, {"x", "write", 1, 0}, 0);
  auditor.on_window_end(0, false);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
}

TEST(Auditor, ResetForgetsEverything) {
  Auditor auditor;
  auditor.on_access(0, "x", AccessKind::kRead, AccessToken::kNoWindow);
  EXPECT_FALSE(auditor.clean());
  auditor.reset();
  EXPECT_TRUE(auditor.clean());
  EXPECT_EQ(auditor.windows(), 0u);
  EXPECT_EQ(auditor.accesses(), 0u);
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(Auditor, ViolationDescriptionsCarryContext) {
  Auditor auditor;
  auditor.on_window_begin(0, {"cas", "cas", 0, 1}, 0);
  auditor.on_access(0, "cas", AccessKind::kWrite, 0);
  auditor.on_window_end(0, false);
  auditor.on_window_begin(1, {"r", "read", 0, 0}, 1);
  auditor.on_access(1, "hidden", AccessKind::kWrite, 1);  // undeclared
  auditor.on_access(1, "r", AccessKind::kRead, 1);
  auditor.on_window_end(1, false);
  ASSERT_EQ(auditor.violations().size(), 1u);
  const std::string text = auditor.violations()[0].to_string();
  EXPECT_NE(text.find("undeclared-touch"), std::string::npos) << text;
  EXPECT_NE(text.find("p1"), std::string::npos) << text;
  EXPECT_NE(text.find("hidden"), std::string::npos) << text;
  // The "who/what/step" context prefix names the preceding grant window.
  EXPECT_NE(text.find("p0 cas.cas@0"), std::string::npos) << text;
}

// ------------------------------------------------- footprint conformance

TEST(Conformance, FlagsUndeclaredTouch) {
  WindowFootprint footprint;
  footprint.pid = 0;
  footprint.step = 2;
  footprint.declared = {"x", "read", 0, 0};
  footprint.touched = {{"x", AccessKind::kRead}, {"y", AccessKind::kWrite}};
  const auto violations = check_footprint(footprint);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kUndeclaredTouch);
  EXPECT_EQ(violations[0].object, "y");
}

TEST(Conformance, FlagsWriteInDeclaredReadOp) {
  WindowFootprint footprint;
  footprint.pid = 1;
  footprint.declared = {"x", "read", 0, 0};
  footprint.touched = {{"x", AccessKind::kWrite}};
  const auto violations = check_footprint(footprint);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kWriteInReadOp);
}

TEST(Conformance, FlagsPhantomDeclaration) {
  WindowFootprint footprint;
  footprint.pid = 0;
  footprint.declared = {"x", "write", 1, 0};
  footprint.touched = {{"y", AccessKind::kWrite}};
  const auto violations = check_footprint(footprint);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kUndeclaredTouch);
  EXPECT_EQ(violations[1].kind, ViolationKind::kPhantomDeclaration);
}

TEST(Conformance, AbortedWindowSkipsThePhantomRuleOnly) {
  WindowFootprint footprint;
  footprint.pid = 0;
  footprint.declared = {"x", "write", 1, 0};
  footprint.touched = {{"y", AccessKind::kWrite}};
  footprint.aborted = true;
  const auto violations = check_footprint(footprint);
  // The undeclared touch still counts; the untouched declaration does not
  // (the op may have trapped before reaching its object).
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kUndeclaredTouch);
}

TEST(Conformance, UninstrumentedWindowIsExempt) {
  WindowFootprint footprint;
  footprint.pid = 0;
  footprint.declared = {"x", "write", 1, 0};
  EXPECT_TRUE(check_footprint(footprint).empty());
}

// --------------------------------------------------- simulator integration

TEST(SimIntegration, InstrumentedRegistersAuditClean) {
  sim::SimEnv env;
  sim::SwmrRegister<int> reg("r", sim::SwmrRegister<int>::kAnyWriter, 0);
  env.add_process([&](sim::Ctx& ctx) { reg.write(ctx, 7); });
  env.add_process([&](sim::Ctx& ctx) { (void)reg.read(ctx); });
  Auditor auditor;
  env.set_access_observer(&auditor);
  sim::RoundRobinScheduler scheduler;
  const sim::RunReport report = env.run(scheduler);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
  EXPECT_EQ(auditor.windows(), 2u);
  EXPECT_EQ(auditor.accesses(), 2u);
}

TEST(SimIntegration, PreSyncPeekIsFlaggedAsUnsynced) {
  sim::SimEnv env;
  sim::MwmrRegister<int> reg("cell", 0);
  env.add_process([&](sim::Ctx& ctx) {
    ctx.access_token().read("cell");  // no sync yet: no window open
    (void)reg.peek();
    (void)reg.read(ctx);
  });
  Auditor auditor;
  env.set_access_observer(&auditor);
  sim::RoundRobinScheduler scheduler;
  (void)env.run(scheduler);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, ViolationKind::kUnsyncedAccess);
}

TEST(SimIntegration, HiddenScratchRegisterIsFlagged) {
  sim::SimEnv env;
  core::HiddenScratchRegister reg("h");
  env.add_process([&](sim::Ctx& ctx) { (void)reg.read(ctx); });
  Auditor auditor;
  env.set_access_observer(&auditor);
  sim::RoundRobinScheduler scheduler;
  (void)env.run(scheduler);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].kind, ViolationKind::kUndeclaredTouch);
  EXPECT_EQ(auditor.violations()[0].object, "h.scratch");
}

TEST(SimIntegration, TrappedDisciplineViolationStaysAuditClean) {
  // A register trapping its own discipline (second writer on an SWMR)
  // aborts the window mid-op; the auditor must not pile a phantom
  // declaration on top of the intended InvariantError.
  sim::SimEnv env;
  sim::SwmrRegister<int> reg("r", sim::SwmrRegister<int>::kAnyWriter, 0);
  env.add_process([&](sim::Ctx& ctx) { reg.write(ctx, 1); });
  env.add_process([&](sim::Ctx& ctx) { reg.write(ctx, 2); });
  Auditor auditor;
  env.set_access_observer(&auditor);
  sim::RoundRobinScheduler scheduler;
  const sim::RunReport report = env.run(scheduler);
  EXPECT_EQ(report.finished_count(), 1);
  EXPECT_TRUE(auditor.clean()) << auditor.summary();
}

// ------------------------------------------------- commutation cross-check

/// Two processes writing the SAME register: the canonical non-commuting
/// pair.  The fingerprint exposes the final value so swapped replays can be
/// told apart even though traces and reports look identical.
class SameRegisterInstance final : public explore::SystemInstance {
 public:
  void populate(sim::SimEnv& env) override {
    env.add_process([this](sim::Ctx& ctx) { reg_.write(ctx, 1); });
    env.add_process([this](sim::Ctx& ctx) { reg_.write(ctx, 2); });
  }
  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport&) override {
    return std::nullopt;
  }
  std::string fingerprint(const sim::SimEnv&) override {
    return "a=" + std::to_string(reg_.peek());
  }

 private:
  sim::MwmrRegister<int> reg_{"a", 0};
};

/// Two processes writing DIFFERENT registers: genuinely independent.
class DisjointInstance final : public explore::SystemInstance {
 public:
  void populate(sim::SimEnv& env) override {
    env.add_process([this](sim::Ctx& ctx) { a_.write(ctx, 1); });
    env.add_process([this](sim::Ctx& ctx) { b_.write(ctx, 2); });
  }
  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport&) override {
    return std::nullopt;
  }
  std::string fingerprint(const sim::SimEnv&) override {
    return "a=" + std::to_string(a_.peek()) +
           ";b=" + std::to_string(b_.peek());
  }

 private:
  sim::MwmrRegister<int> a_{"a", 0};
  sim::MwmrRegister<int> b_{"b", 0};
};

CommuteOracle honest_oracle() {
  return [](const sim::OpDesc& a, const sim::OpDesc& b) {
    return explore::ops_commute(a, b);
  };
}

TEST(CommuteCheck, IndependentPairPassesSwappedReplay) {
  explore::FactorySystem system("disjoint", 2, [] {
    return std::make_unique<DisjointInstance>();
  });
  const std::vector<int> tape{0, 1};
  const CommuteCheckReport report =
      cross_check_commutation(system, tape, honest_oracle());
  EXPECT_TRUE(report.baseline_ok);
  EXPECT_EQ(report.pairs_considered, 1u);
  EXPECT_EQ(report.swaps_replayed, 1u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CommuteCheck, RefutesALyingOracle) {
  explore::FactorySystem system("same-register", 2, [] {
    return std::make_unique<SameRegisterInstance>();
  });
  const std::vector<int> tape{0, 1};
  // An oracle that calls conflicting writes independent must be refuted by
  // the swapped replay (the final register value flips).
  const CommuteCheckReport report = cross_check_commutation(
      system, tape, [](const sim::OpDesc&, const sim::OpDesc&) {
        return true;
      });
  EXPECT_TRUE(report.baseline_ok);
  EXPECT_EQ(report.pairs_considered, 1u);
  ASSERT_EQ(report.mismatches.size(), 1u);
  EXPECT_EQ(report.mismatches[0].first_pid, 0);
  EXPECT_EQ(report.mismatches[0].second_pid, 1);
  EXPECT_FALSE(report.ok());
}

TEST(CommuteCheck, HonestOracleSkipsConflictingPairs) {
  explore::FactorySystem system("same-register", 2, [] {
    return std::make_unique<SameRegisterInstance>();
  });
  const std::vector<int> tape{0, 1};
  const CommuteCheckReport report =
      cross_check_commutation(system, tape, honest_oracle());
  EXPECT_TRUE(report.baseline_ok);
  EXPECT_EQ(report.pairs_considered, 0u);  // write/write never commutes
  EXPECT_TRUE(report.ok());
}

TEST(CommuteCheck, ForeignTapeFailsBaseline) {
  explore::FactorySystem system("disjoint", 2, [] {
    return std::make_unique<DisjointInstance>();
  });
  const CommuteCheckReport report =
      cross_check_commutation(system, {5, 7}, honest_oracle());
  EXPECT_FALSE(report.baseline_ok);
  EXPECT_EQ(report.swaps_replayed, 0u);
}

// --------------------------------------- explorer audit mode: negatives
//
// Every real system in the repository — fault sweeps included — must pass
// the audit clean: no ledger violations, no footprint drift, no
// commutation mismatch on any cross-checked schedule.

void expect_audit_clean(const explore::ExplorableSystem& system,
                        explore::ExploreOptions options = {}) {
  options.audit = true;
  const explore::ExploreResult result = explore::explore(system, options);
  EXPECT_TRUE(result.ok()) << system.name() << ": " << result.summary();
  EXPECT_TRUE(result.audit.enabled);
  EXPECT_TRUE(result.audit.clean())
      << system.name() << ": " << result.audit.summary();
  EXPECT_GT(result.audit.windows, 0u) << system.name();
  EXPECT_GT(result.audit.accesses, 0u) << system.name();
}

TEST(ExploreAudit, OneShotElectionAuditClean) {
  explore::ExploreOptions options;
  options.audit_commute_sample = 1;  // cross-check every schedule
  expect_audit_clean(explore::OneShotSystem(4, 2), options);
}

TEST(ExploreAudit, ThreeProcessOneShotAuditClean) {
  expect_audit_clean(explore::OneShotSystem(4, 3));
}

TEST(ExploreAudit, LlScElectionAuditClean) {
  explore::ExploreOptions options;
  options.preemption_bound = 2;  // keep the audited space affordable
  expect_audit_clean(explore::LlScSystem(3, 2), options);
}

TEST(ExploreAudit, FvtElectionAuditClean) {
  explore::ExploreOptions options;
  options.preemption_bound = 2;
  expect_audit_clean(explore::FvtSystem(3, 2), options);
}

TEST(ExploreAudit, SnapshotScanAuditClean) {
  explore::ExploreOptions options;
  options.preemption_bound = 2;
  options.record_trace = true;  // the linearizability check reads the trace
  expect_audit_clean(explore::SnapshotScanSystem(1, 1), options);
}

TEST(ExploreAudit, FaultSweepAuditClean) {
  explore::ExploreOptions options;
  options.preemption_bound = 1;
  options.fault_bound = 1;
  options.iterative = true;
  expect_audit_clean(
      explore::RecoverableFvtSystem(3, 2, core::RestartBehavior::kRecover),
      options);
}

// --------------------------------------- explorer audit mode: positives

// BSS_AUDIT=1 force-enables audit in every explore() call (CI's TSan job
// uses it), which turns the audit-off control arms below into audit-on
// runs; skip just those assertions rather than report a spurious failure.
bool audit_forced_by_env() {
  const char* raw = std::getenv("BSS_AUDIT");
  return raw != nullptr && raw[0] != '\0' &&
         !(raw[0] == '0' && raw[1] == '\0');
}

TEST(ExploreAudit, HiddenScratchMutantRefutedWithReplayableArtifact) {
  explore::AuditMutantSystem system(core::AuditMutant::kHiddenScratch);
  explore::ExploreOptions options;
  options.audit = true;
  const explore::ExploreResult result = explore::explore(system, options);
  ASSERT_FALSE(result.ok()) << "undeclared footprint not flagged";
  EXPECT_NE(result.violations[0].violation.find("undeclared-touch"),
            std::string::npos)
      << result.violations[0].violation;

  // The refutation must round-trip through the artifact format and replay
  // with zero divergences, like any property counterexample.
  const std::string artifact = result.violations[0].to_artifact();
  const auto parsed = explore::Counterexample::from_artifact(artifact);
  ASSERT_TRUE(parsed.has_value());
  const explore::ReplayOutcome replay =
      explore::replay_counterexample(system, *parsed, options);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);

  // Control: with the audit off the mutant is invisible.
  if (!audit_forced_by_env()) {
    const explore::ExploreResult off = explore::explore(system, {});
    EXPECT_TRUE(off.ok()) << off.summary();
  }
}

TEST(ExploreAudit, UnsyncedPeekMutantRefuted) {
  explore::AuditMutantSystem system(core::AuditMutant::kUnsyncedPeek);
  explore::ExploreOptions options;
  options.audit = true;
  const explore::ExploreResult result = explore::explore(system, options);
  ASSERT_FALSE(result.ok()) << "unsynced access not flagged";
  EXPECT_NE(result.violations[0].violation.find("unsynced-access"),
            std::string::npos)
      << result.violations[0].violation;
  const explore::ReplayOutcome replay =
      explore::replay_counterexample(system, result.violations[0], options);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);

  if (!audit_forced_by_env()) {
    const explore::ExploreResult off = explore::explore(system, {});
    EXPECT_TRUE(off.ok()) << off.summary();
  }
}

TEST(ExploreAudit, StealthCounterCaughtOnlyByCrossCheck) {
  explore::AuditMutantSystem system(core::AuditMutant::kStealthCounter);
  explore::ExploreOptions options;
  options.audit = true;
  options.audit_commute_sample = 1;
  const explore::ExploreResult result = explore::explore(system, options);
  // Ledger- and property-clean: no counterexample, no ledger violation.
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.audit.ledger_violations, 0u);
  // POR pruned the swapped schedule (reads "commute"), so only the
  // cross-check can notice that swapping the reads changes the outcome.
  EXPECT_EQ(result.stats.schedules, 1u) << result.stats.summary();
  EXPECT_GT(result.stats.sleep_set_prunes, 0u);
  EXPECT_GT(result.audit.commute_mismatches, 0u) << result.audit.summary();
  ASSERT_FALSE(result.audit.findings.empty());
  EXPECT_NE(result.audit.findings[0].find("commute mismatch"),
            std::string::npos)
      << result.audit.findings[0];
}

// ----------------------------------------------- determinism preservation
//
// The audit layer is passive: on audit-clean systems, audit on/off must
// yield byte-identical stats, violation lists and minimized artifacts.

void expect_audit_invariant(const explore::ExplorableSystem& system,
                            explore::ExploreOptions options = {}) {
  explore::ExploreOptions off = options;
  off.audit = false;
  explore::ExploreOptions on = options;
  on.audit = true;
  on.audit_commute_sample = 4;
  const explore::ExploreResult without = explore::explore(system, off);
  const explore::ExploreResult with = explore::explore(system, on);

  EXPECT_EQ(without.stats.summary(), with.stats.summary()) << system.name();
  EXPECT_EQ(without.exhausted, with.exhausted) << system.name();
  EXPECT_EQ(without.summary(), with.summary()) << system.name();
  ASSERT_EQ(without.violations.size(), with.violations.size())
      << system.name();
  for (std::size_t i = 0; i < without.violations.size(); ++i) {
    EXPECT_EQ(without.violations[i].decisions, with.violations[i].decisions)
        << system.name();
    EXPECT_EQ(without.violations[i].violation, with.violations[i].violation)
        << system.name();
    EXPECT_EQ(without.violations[i].to_artifact(),
              with.violations[i].to_artifact())
        << system.name();
  }
  // The audited arm really was audited — identical output is not vacuous.
  EXPECT_GT(with.audit.windows, 0u) << system.name();
}

TEST(AuditDeterminism, CleanSystemUnchanged) {
  expect_audit_invariant(explore::OneShotSystem(4, 2));
}

TEST(AuditDeterminism, ClaimAfterCasMutantUnchanged) {
  expect_audit_invariant(
      explore::OneShotSystem(4, 2, core::OneShotMutant::kClaimAfterCas));
}

TEST(AuditDeterminism, SplitCasMutantUnchanged) {
  expect_audit_invariant(
      explore::OneShotSystem(4, 2, core::OneShotMutant::kSplitCas));
}

TEST(AuditDeterminism, ScBlindMutantUnchanged) {
  explore::ExploreOptions options;
  options.fault_bound = 1;
  options.explore_sc_failures = true;
  options.iterative = true;
  expect_audit_invariant(explore::LlScSystem(3, 2, true), options);
}

TEST(AuditDeterminism, FreshClaimRestartMutantUnchanged) {
  explore::ExploreOptions options;
  options.preemption_bound = 1;
  options.fault_bound = 1;
  options.iterative = true;
  expect_audit_invariant(
      explore::RecoverableFvtSystem(3, 2, core::RestartBehavior::kFreshClaim),
      options);
}

TEST(AuditDeterminism, ParallelExplorationUnchanged) {
  explore::ExploreOptions options;
  options.jobs = 4;
  options.stop_at_first_violation = false;
  options.max_violations = 4;
  expect_audit_invariant(
      explore::OneShotSystem(4, 3, core::OneShotMutant::kSplitCas), options);
}

}  // namespace
}  // namespace bss::audit
