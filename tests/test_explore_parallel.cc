// Determinism suite for parallel schedule-space exploration: the worker
// pool must be invisible in the results.  For every seeded mutant and for
// clean exhaustive sweeps — fault-free and fault-budget alike — jobs=1 and
// jobs=N produce identical ExploreStats, identical violation sets (same
// order, same minimized tapes), and identical artifacts; any shard depth
// yields the same answer as no sharding at all.  Plus the dense action
// encoding's overflow guard and a 100-seed parallel storm on the
// std::thread backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/mutant_elections.h"
#include "core/recoverable_election.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "util/checked.h"

namespace bss::explore {
namespace {

using core::OneShotMutant;
using core::RecoverableConcurrentReport;
using core::RestartBehavior;
using core::run_recoverable_concurrent_election;

/// Byte-level equality of two ExploreResults: every stats field (via the
/// summary string, which prints them all), the exhausted verdict, and every
/// violation's full artifact text (system, violation, tape, shrunk-from).
void expect_identical(const ExploreResult& serial,
                      const ExploreResult& parallel,
                      const std::string& label) {
  EXPECT_EQ(serial.stats.summary(), parallel.stats.summary()) << label;
  EXPECT_EQ(serial.exhausted, parallel.exhausted) << label;
  ASSERT_EQ(serial.violations.size(), parallel.violations.size()) << label;
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].to_artifact(),
              parallel.violations[i].to_artifact())
        << label << " violation " << i;
  }
}

/// Runs `system` under `options` at jobs=1 and at each given worker count
/// and asserts every result is byte-identical to the serial one.
void expect_jobs_invariant(const ExplorableSystem& system,
                           ExploreOptions options,
                           std::initializer_list<int> worker_counts) {
  options.jobs = 1;
  const ExploreResult serial = explore(system, options);
  for (const int jobs : worker_counts) {
    ExploreOptions parallel_options = options;
    parallel_options.jobs = jobs;
    const ExploreResult parallel = explore(system, parallel_options);
    expect_identical(serial, parallel,
                     system.name() + " jobs=" + std::to_string(jobs));
  }
}

// ------------------------------------------------- clean exhaustive sweeps

TEST(ParallelExplore, CleanOneShotPorIdenticalAcrossWorkerCounts) {
  OneShotSystem system(4, 3);
  expect_jobs_invariant(system, {}, {2, 4, 8});
}

TEST(ParallelExplore, CleanOneShotNaiveCountsExactInterleavings) {
  OneShotSystem system(4, 3);
  ExploreOptions options;
  options.use_por = false;
  options.jobs = 4;
  const ExploreResult result = explore(system, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_TRUE(result.exhausted);
  // 9 steps, 3 per process: 9!/(3!)^3 — the exact serial count.
  EXPECT_EQ(result.stats.schedules, 1680u);
  expect_jobs_invariant(system, options, {2, 4});
}

TEST(ParallelExplore, IterativePreemptionBoundIdentical) {
  LlScSystem system(3, 2);
  ExploreOptions options;
  options.preemption_bound = 2;
  options.iterative = true;
  expect_jobs_invariant(system, options, {4});
}

// ------------------------------------------------------- mutant refutation

TEST(ParallelExplore, ClaimAfterCasMutantIdenticalMinimizedArtifact) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  expect_jobs_invariant(system, {}, {2, 4});
}

TEST(ParallelExplore, SplitCasMutantIdenticalMinimizedArtifact) {
  OneShotSystem system(4, 2, OneShotMutant::kSplitCas);
  expect_jobs_invariant(system, {}, {4, 8});
}

TEST(ParallelExplore, ScBlindLlScMutantIdenticalMinimizedArtifact) {
  LlScSystem system(3, 2, /*sc_blind=*/true);
  expect_jobs_invariant(system, {}, {4});
}

TEST(ParallelExplore, CollectAllViolationsIdenticalOrderAndTapes) {
  OneShotSystem system(4, 2, OneShotMutant::kSplitCas);
  ExploreOptions options;
  options.stop_at_first_violation = false;
  options.max_violations = 8;
  expect_jobs_invariant(system, options, {2, 4});
}

TEST(ParallelExplore, ParallelCounterexampleReplaysWithZeroDivergences) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  ExploreOptions options;
  options.jobs = 4;
  const ExploreResult result = explore(system, options);
  ASSERT_FALSE(result.ok());
  const ReplayOutcome replay =
      replay_counterexample(system, result.violations.front());
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);
}

// ------------------------------------------------------ fault-budget sweeps

TEST(ParallelExplore, FaultSweepIdenticalIncludingFaultPoints) {
  OneShotSystem system(4, 2, OneShotMutant::kNone, /*restartable=*/true);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  expect_jobs_invariant(system, options, {2, 4});
}

TEST(ParallelExplore, FreshClaimMutantFaultRefutationIdentical) {
  RecoverableFvtSystem system(3, 2, RestartBehavior::kFreshClaim);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;  // the bug needs a restart, not a death
  expect_jobs_invariant(system, options, {4});
}

// ----------------------------------------------------------- shard depths

TEST(ParallelExplore, ShardDepthInvariant) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  ExploreOptions serial_options;
  serial_options.jobs = 1;
  serial_options.shard_depth = 0;
  const ExploreResult serial = explore(system, serial_options);
  for (const int depth : {1, 2, 3, 5}) {
    for (const int jobs : {1, 4}) {
      ExploreOptions options;
      options.jobs = jobs;
      options.shard_depth = depth;
      const ExploreResult sharded = explore(system, options);
      expect_identical(serial, sharded,
                       "shard_depth=" + std::to_string(depth) +
                           " jobs=" + std::to_string(jobs));
    }
  }
}

// ----------------------------------------------------------- shrink budget

TEST(ParallelExplore, ShrinkBudgetCutsDdminButStaysReplayable) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  ExploreOptions options;
  options.shrink_budget = 1;  // only the canonicalization run fits
  const ExploreResult result = explore(system, options);
  ASSERT_FALSE(result.ok());
  EXPECT_GT(result.stats.shrink_budget_hits, 0u) << result.stats.summary();
  EXPECT_LE(result.stats.shrink_runs, result.stats.shrink_budget_hits * 2)
      << "a shrink_budget=1 minimization must stop after canonicalizing";
  // The cut still returns a canonical tape: replays with zero divergences.
  const ReplayOutcome replay =
      replay_counterexample(system, result.violations.front());
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);
}

TEST(ParallelExplore, UnlimitedShrinkBudgetNeverHits) {
  OneShotSystem system(4, 2, OneShotMutant::kSplitCas);
  ExploreOptions options;
  options.shrink_budget = 0;  // unlimited
  const ExploreResult result = explore(system, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.stats.shrink_budget_hits, 0u);
  EXPECT_GT(result.stats.shrink_runs, 0u);
}

// --------------------------------------------------- action-encoding guard

TEST(ParallelExplore, ActionEncodingRoundTripsOverFullSupportedRange) {
  const std::vector<int> pids = {0,       1,          7,
                                 63,      1'000'000,  kMaxActionPid - 1,
                                 kMaxActionPid};
  for (const auto kind : {ActionKind::kGrant, ActionKind::kCrash,
                          ActionKind::kRestart, ActionKind::kScFailure}) {
    for (const int pid : pids) {
      const int encoded = encode_action(kind, pid);
      const Action action = decode_action(encoded);
      EXPECT_EQ(action.kind, kind) << "pid " << pid;
      EXPECT_EQ(action.pid, pid);
      EXPECT_EQ(is_fault_action(encoded), kind != ActionKind::kGrant);
    }
  }
}

TEST(ParallelExplore, ActionEncodingRejectsOutOfRangePids) {
  EXPECT_THROW(encode_action(ActionKind::kCrash, kMaxActionPid + 1),
               InvariantError);
  EXPECT_THROW(encode_action(ActionKind::kGrant, -1), InvariantError);
  EXPECT_THROW(encode_action(ActionKind::kScFailure,
                             std::numeric_limits<int>::max()),
               InvariantError);
}

TEST(ParallelExplore, ArtifactRejectsOutOfRangePid) {
  const std::string artifact =
      "bss-counterexample v2\n"
      "system: x\n"
      "processes: 2\n"
      "shrunk-from: 1\n"
      "violation: v\n"
      "decisions: c" +
      std::to_string(kMaxActionPid + 1) + "\n";
  EXPECT_FALSE(Counterexample::from_artifact(artifact).has_value());
}

// ------------------------------------------------- thread-backend storm

// 100 seeds of the crash-restart election on the real std::thread backend,
// driven from 4 concurrent driver threads: the explorer's worker pool and
// the systems it spawns must coexist with genuine parallelism (this is the
// test TSan chews on in CI).
TEST(ParallelExplore, HundredSeedParallelConcurrentRestartStorm) {
  constexpr int k = 4;
  constexpr int n = 3;
  constexpr std::uint64_t kSeeds = 100;
  constexpr std::uint64_t kDrivers = 4;
  std::vector<std::string> failures(kDrivers);
  std::vector<std::thread> drivers;
  for (std::uint64_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([d, &failures] {
      for (std::uint64_t seed = d; seed < kSeeds; seed += kDrivers) {
        const RecoverableConcurrentReport report =
            run_recoverable_concurrent_election(k, n, seed);
        if (!report.consistent) {
          failures[d] = "inconsistent at seed " + std::to_string(seed);
          return;
        }
        if (report.leader < 1000 || report.leader >= 1000 + n) {
          failures[d] = "bad leader at seed " + std::to_string(seed);
          return;
        }
      }
    });
  }
  for (auto& t : drivers) t.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");
}

// -------------------------------------------------- ExploreStats::merge_from
// The DFS-ordered merge folds per-subtree stats with merge_from; these pin
// down the fold's algebra: empty is the identity, disjoint shards merge the
// same in either order, and budget-hit counters accumulate rather than
// overwrite.

ExploreStats sample_stats(std::uint64_t base) {
  ExploreStats stats;
  stats.schedules = base + 1;
  stats.transitions = base + 2;
  stats.sleep_set_prunes = base + 3;
  stats.preemption_prunes = base + 4;
  stats.truncated = base + 5;
  stats.max_depth_seen = base + 6;
  stats.shrink_runs = base + 7;
  stats.shrink_budget_hits = base + 8;
  stats.fault_prunes = base + 9;
  stats.faults_injected = base + 10;
  return stats;
}

TEST(ExploreStatsMerge, EmptyIsTheIdentity) {
  ExploreStats stats = sample_stats(100);
  const std::string before = stats.summary();
  stats.merge_from(ExploreStats{});
  EXPECT_EQ(stats.summary(), before);

  ExploreStats empty;
  empty.merge_from(stats);
  EXPECT_EQ(empty.summary(), before);
}

TEST(ExploreStatsMerge, CommutesOnDisjointShards) {
  ExploreStats left = sample_stats(10);
  ExploreStats right = sample_stats(2000);
  ExploreStats left_first = left;
  left_first.merge_from(right);
  ExploreStats right_first = right;
  right_first.merge_from(left);
  EXPECT_EQ(left_first.summary(), right_first.summary());
  // Counters added, max_depth_seen maxed.
  EXPECT_EQ(left_first.schedules, left.schedules + right.schedules);
  EXPECT_EQ(left_first.max_depth_seen, right.max_depth_seen);
}

TEST(ExploreStatsMerge, ShrinkBudgetHitsAccumulateAcrossShards) {
  ExploreStats total;
  for (std::uint64_t shard = 0; shard < 3; ++shard) {
    ExploreStats piece;
    piece.shrink_runs = 5;
    piece.shrink_budget_hits = shard;  // 0, 1, 2
    total.merge_from(piece);
  }
  EXPECT_EQ(total.shrink_runs, 15u);
  EXPECT_EQ(total.shrink_budget_hits, 3u);
}

TEST(ExploreStatsMerge, FaultPointsAreNotSummedByMerge) {
  // Distinct fault sites dedup through a set in explore(); a naive sum
  // would double-count sites shared between subtrees, so merge_from must
  // leave the field alone.
  ExploreStats total;
  total.fault_points = 7;
  ExploreStats piece;
  piece.fault_points = 5;
  total.merge_from(piece);
  EXPECT_EQ(total.fault_points, 7u);
}

}  // namespace
}  // namespace bss::explore
