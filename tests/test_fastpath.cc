// The exploration fast-path battery: fingerprint-prune determinism and
// soundness, plus the schedules/second runreport channel.
//
// The contract under test: `ExploreOptions::fingerprint_prune` may skip
// subtrees only when a previous iterative pass covered them completely (no
// budget cut, no truncation, no violation anywhere below), so a pruned
// campaign finds the IDENTICAL violation tapes and the identical exhausted
// verdict as a full one — and, like every other explorer feature, its
// results (including the new fingerprint_prunes counter) are byte-identical
// at every worker count, steal granularity and engine, and survive
// checkpoint kill-and-resume unchanged.  Systems with the empty default
// fingerprint must fall back to full exploration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/mutant_elections.h"
#include "explore/checkpoint.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "explore/skewed_system.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/runreport.h"
#include "registers/mwmr_register.h"
#include "util/checked.h"

namespace bss::explore {
namespace {

using core::OneShotMutant;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The iterative workload the cache bites on: naive DFS (POR prunes nothing
/// here anyway) swept across preemption budgets, so later passes revisit
/// subtrees earlier passes covered cleanly.
ExploreOptions iterative_options(bool prune) {
  ExploreOptions options;
  options.use_por = false;
  options.iterative = true;
  options.preemption_bound = 2;
  options.fingerprint_prune = prune;
  return options;
}

void expect_identical(const ExploreResult& expected,
                      const ExploreResult& actual, const std::string& label) {
  EXPECT_EQ(expected.stats.summary(), actual.stats.summary()) << label;
  EXPECT_EQ(expected.stats.fingerprint_prunes,
            actual.stats.fingerprint_prunes)
      << label;
  EXPECT_EQ(expected.exhausted, actual.exhausted) << label;
  ASSERT_EQ(expected.violations.size(), actual.violations.size()) << label;
  for (std::size_t i = 0; i < expected.violations.size(); ++i) {
    EXPECT_EQ(expected.violations[i].decisions, actual.violations[i].decisions)
        << label << " violation " << i;
  }
}

/// Coverage parity between a pruned and a full campaign: same exhausted
/// verdict and the identical violation tapes (schedule counts legitimately
/// differ — that is the point of the cache).
void expect_coverage_parity(const ExploreResult& full,
                            const ExploreResult& pruned,
                            const std::string& label) {
  EXPECT_EQ(full.exhausted, pruned.exhausted) << label;
  ASSERT_EQ(full.violations.size(), pruned.violations.size()) << label;
  for (std::size_t i = 0; i < full.violations.size(); ++i) {
    EXPECT_EQ(full.violations[i].decisions, pruned.violations[i].decisions)
        << label << " violation " << i;
  }
}

// --------------------------------------------------- determinism invariance

TEST(Fastpath, PruneResultsInvariantAcrossJobsStealDepthAndEngine) {
  SkewedWriterSystem system(3, 4, 1);
  const ExploreResult serial = explore(system, iterative_options(true));
  EXPECT_GT(serial.stats.fingerprint_prunes, 0u);

  for (const bool steal : {true, false}) {
    for (const int jobs : {1, 2, 4}) {
      for (const int steal_depth : {0, 1, 3}) {
        if (!steal && steal_depth != 0) continue;  // knob is steal-only
        ExploreOptions options = iterative_options(true);
        options.steal = steal;
        options.jobs = jobs;
        options.steal_depth = steal_depth;
        const ExploreResult result = explore(system, options);
        expect_identical(serial, result,
                         std::string(steal ? "steal" : "static") + " jobs=" +
                             std::to_string(jobs) +
                             " steal_depth=" + std::to_string(steal_depth));
      }
    }
  }
}

// ------------------------------------------------------- coverage soundness

TEST(Fastpath, PrunedCleanCampaignKeepsCoverageAndVerdict) {
  SkewedWriterSystem system(3, 4, 1);
  const ExploreResult full = explore(system, iterative_options(false));
  const ExploreResult pruned = explore(system, iterative_options(true));
  EXPECT_GT(pruned.stats.fingerprint_prunes, 0u);
  EXPECT_LT(pruned.stats.schedules, full.stats.schedules);
  EXPECT_LT(pruned.stats.transitions, full.stats.transitions);
  expect_coverage_parity(full, pruned, "clean skewed campaign");
}

TEST(Fastpath, MutantSweepLosesNoRefutationsUnderPruning) {
  for (const OneShotMutant mutant :
       {OneShotMutant::kClaimAfterCas, OneShotMutant::kSplitCas}) {
    OneShotSystem system(4, 3, mutant);
    ExploreOptions base = iterative_options(false);
    base.preemption_bound = 1;
    base.stop_at_first_violation = false;
    base.max_violations = std::size_t{1} << 20;
    base.minimize = false;
    const ExploreResult full = explore(system, base);
    ASSERT_FALSE(full.violations.empty());

    ExploreOptions pruned_options = base;
    pruned_options.fingerprint_prune = true;
    const ExploreResult pruned = explore(system, pruned_options);
    expect_coverage_parity(full, pruned, "mutant sweep");
  }
}

// --------------------------------------------- fingerprint opt-in semantics

/// Three processes, two writes each to private registers — states converge
/// across interleavings, so a fingerprint makes the cache bite.
class PrivateRegisterState {
 public:
  PrivateRegisterState() {
    for (int pid = 0; pid < 3; ++pid) {
      regs_.emplace_back("r" + std::to_string(pid), 0);
    }
  }
  sim::MwmrRegister<int>& reg(int pid) {
    return regs_[static_cast<std::size_t>(pid)];
  }

 private:
  std::vector<sim::MwmrRegister<int>> regs_;
};

FactorySystem private_register_system(bool with_fingerprint) {
  return FactorySystem("private-regs", 3, [with_fingerprint] {
    StatefulInstance<PrivateRegisterState>::Fingerprint fingerprint;
    if (with_fingerprint) {
      fingerprint = [](PrivateRegisterState& state, const sim::SimEnv&) {
        std::string out;
        for (int pid = 0; pid < 3; ++pid) {
          out += std::to_string(state.reg(pid).peek()) + ";";
        }
        return out;
      };
    }
    return std::make_unique<StatefulInstance<PrivateRegisterState>>(
        std::make_unique<PrivateRegisterState>(),
        [](PrivateRegisterState& state, sim::SimEnv& env) {
          for (int pid = 0; pid < 3; ++pid) {
            env.add_process([&state, pid](sim::Ctx& ctx) {
              state.reg(pid).write(ctx, 1);
              state.reg(pid).write(ctx, 2);
            });
          }
        },
        [](PrivateRegisterState&, const sim::SimEnv&,
           const sim::RunReport& report) -> std::optional<std::string> {
          if (!report.clean()) return "run not clean";
          return std::nullopt;
        },
        std::move(fingerprint));
  });
}

TEST(Fastpath, EmptyDefaultFingerprintFallsBackToFullExploration) {
  const FactorySystem system = private_register_system(false);
  const ExploreResult full = explore(system, iterative_options(false));
  const ExploreResult pruned = explore(system, iterative_options(true));
  EXPECT_EQ(pruned.stats.fingerprint_prunes, 0u);
  expect_identical(full, pruned, "empty-fingerprint fallback");
}

TEST(Fastpath, StatefulInstanceFingerprintEnablesPruning) {
  const FactorySystem system = private_register_system(true);
  const ExploreResult full = explore(system, iterative_options(false));
  const ExploreResult pruned = explore(system, iterative_options(true));
  EXPECT_GT(pruned.stats.fingerprint_prunes, 0u);
  expect_coverage_parity(full, pruned, "StatefulInstance fingerprint");
}

TEST(Fastpath, EnvVarForcesPruningOn) {
  ASSERT_EQ(setenv("BSS_EXPLORE_FP", "1", 1), 0);
  SkewedWriterSystem system(3, 4, 1);
  const ExploreResult forced = explore(system, iterative_options(false));
  ASSERT_EQ(unsetenv("BSS_EXPLORE_FP"), 0);
  const ExploreResult pruned = explore(system, iterative_options(true));
  expect_identical(pruned, forced, "BSS_EXPLORE_FP force-on");
  EXPECT_GT(forced.stats.fingerprint_prunes, 0u);
}

// ------------------------------------------------------- checkpoint/resume

TEST(Fastpath, PruneCounterAndCacheSurviveKillAndResume) {
  SkewedWriterSystem system(3, 4, 1);
  const ExploreResult uninterrupted = explore(system, iterative_options(true));

  const std::string path = temp_path("fp_resume.json");
  ExploreOptions options = iterative_options(true);
  options.checkpoint_path = path;
  options.checkpoint_every = 5;
  options.halt_after_checkpoints = 1;
  bool saw_mid_artifact = false;
  int cycles = 0;
  ExploreResult final_result;
  for (; cycles < 1000; ++cycles) {
    ExploreOptions attempt = options;
    attempt.resume_path = cycles == 0 ? "" : path;
    final_result = explore(system, attempt);
    if (!final_result.halted) break;
    // Every artifact left behind by a kill must validate, round-trip
    // byte-identically with its fingerprint fields, and carry the prune
    // option in the resume fingerprint.
    if (!saw_mid_artifact) {
      const std::string text = read_file(path);
      EXPECT_TRUE(validate_checkpoint(text).empty());
      const auto cp = Checkpoint::from_artifact(text);
      ASSERT_TRUE(cp.has_value());
      EXPECT_TRUE(cp->options.fingerprint_prune);
      EXPECT_EQ(cp->to_artifact(), text);
      saw_mid_artifact = true;
    }
  }
  ASSERT_LT(cycles, 1000) << "campaign did not converge";
  EXPECT_TRUE(saw_mid_artifact);
  expect_identical(uninterrupted, final_result, "kill-and-resume");
  EXPECT_GT(final_result.stats.fingerprint_prunes, 0u);
}

TEST(Fastpath, ResumeRejectsFingerprintPruneFlip) {
  const std::string path = temp_path("fp_flip.json");
  SkewedWriterSystem system(3, 4, 1);
  ExploreOptions options = iterative_options(false);
  options.checkpoint_path = path;
  explore(system, options);

  ExploreOptions resume = iterative_options(true);  // flip: result-affecting
  resume.resume_path = path;
  resume.checkpoint_path = path;
  EXPECT_THROW(explore(system, resume), InvariantError);
}

// ----------------------------------------------- runreport timing channel

TEST(Fastpath, ExploreReportCarriesSchedulesPerSecondAndPruneStat) {
  SkewedWriterSystem system(3, 4, 1);
  obs::Telemetry telemetry;
  ExploreOptions options = iterative_options(true);
  options.telemetry = &telemetry;
  const ExploreResult result = explore(system, options);

  ASSERT_FALSE(telemetry.last_report().empty());
  EXPECT_TRUE(obs::validate_runreport(telemetry.last_report()).empty());
  const auto report = obs::RunReport::parse(telemetry.last_report());
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->stat("fingerprint_prunes"),
            result.stats.fingerprint_prunes);
  const obs::json::Value* timing = report->root.find("timing");
  ASSERT_NE(timing, nullptr);
  const obs::json::Value* rate = timing->find("schedules_per_second");
  ASSERT_NE(rate, nullptr);
  EXPECT_TRUE(rate->is_number());
  EXPECT_GE(rate->as_double(), 0.0);
}

TEST(Fastpath, ValidatorRejectsBadSchedulesPerSecond) {
  obs::ReportBuilder builder("bench", "test");
  builder.timing("schedules_per_second", obs::json::Value(123.5));
  EXPECT_TRUE(obs::validate_runreport(builder.to_json()).empty());

  auto root = obs::json::Value::parse(builder.to_json())->as_object();
  root["timing"].as_object()["schedules_per_second"] =
      obs::json::Value(-1.0);
  auto errors = obs::validate_runreport(obs::json::Value(root).dump(1));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("schedules_per_second"), std::string::npos);

  root["timing"].as_object()["schedules_per_second"] =
      obs::json::Value("fast");
  errors = obs::validate_runreport(obs::json::Value(root).dump(1));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("not a number"), std::string::npos);
}

}  // namespace
}  // namespace bss::explore
