#include <gtest/gtest.h>

#include "burns/burns_election.h"
#include "checker/consensus_check.h"

namespace bss::burns {
namespace {

using sim::CrashPlan;
using sim::RandomScheduler;
using sim::RoundRobinScheduler;

std::vector<std::vector<int>> identity_inputs(int n) {
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) inputs[static_cast<std::size_t>(pid)] = pid;
  return {inputs};
}

TEST(BurnsSingle, ElectsAmongKMinusOne) {
  for (int k = 2; k <= 8; ++k) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      RandomScheduler scheduler(seed * 31 + static_cast<std::uint64_t>(k));
      const SingleReport report =
          run_single_register_election(k, k - 1, scheduler);
      EXPECT_TRUE(report.consistent) << "k=" << k << " seed=" << seed;
      EXPECT_EQ(report.run.finished_count(), k - 1);
    }
  }
}

TEST(BurnsSingle, ExactlyOneOpPerProcess) {
  RoundRobinScheduler scheduler;
  const SingleReport report = run_single_register_election(6, 5, scheduler);
  for (const auto steps : report.run.steps_by_pid) EXPECT_EQ(steps, 1u);
}

TEST(BurnsSingle, LeaderParticipated) {
  // Participation validity: the elected pid took a step (is uncrashed or
  // crashed *after* claiming).  Crash half the field before their only op.
  const int k = 7;
  CrashPlan crashes;
  crashes.crash_before_op(0, 0);
  crashes.crash_before_op(2, 0);
  crashes.crash_before_op(4, 0);
  RandomScheduler scheduler(3);
  const SingleReport report =
      run_single_register_election(k, 6, scheduler, crashes);
  EXPECT_TRUE(report.consistent);
  for (const auto& elected : report.elected) {
    if (elected.has_value()) {
      // The winner is one of the survivors 1, 3, 5.
      EXPECT_TRUE(*elected == 1 || *elected == 3 || *elected == 5)
          << *elected;
    }
  }
}

TEST(BurnsSingle, RejectsOverCapacity) {
  RoundRobinScheduler scheduler;
  EXPECT_THROW(run_single_register_election(4, 4, scheduler), InvariantError);
}

TEST(BurnsMulti, CapacityIsTheProduct) {
  EXPECT_EQ(MultiState({3, 3}).capacity(), 4u);
  EXPECT_EQ(MultiState({4, 3, 2}).capacity(), 6u);
  EXPECT_EQ(MultiState({5}).capacity(), 4u);
}

TEST(BurnsMulti, ElectsAtFullCapacity) {
  for (const auto& sizes :
       std::vector<std::vector<int>>{{3, 3}, {4, 3}, {2, 2, 2}, {5, 4}}) {
    MultiState probe(sizes);
    const int n = static_cast<int>(probe.capacity());
    RandomScheduler scheduler(17);
    const MultiReport report =
        run_multi_register_election(sizes, n, scheduler);
    EXPECT_TRUE(report.consistent);
    EXPECT_EQ(report.run.finished_count(), n);
    // Closed-model validity: the leader is a designated id.
    for (const auto& elected : report.elected) {
      ASSERT_TRUE(elected.has_value());
      EXPECT_LT(*elected, probe.capacity());
    }
  }
}

TEST(BurnsMulti, OneOpPerRegisterPerProcess) {
  RoundRobinScheduler scheduler;
  const MultiReport report = run_multi_register_election({3, 4, 3}, 10, scheduler);
  for (const auto steps : report.run.steps_by_pid) EXPECT_EQ(steps, 3u);
}

TEST(BurnsMulti, ConsistentUnderCrashes) {
  // Crashed processes may leave some registers unclaimed; survivors still
  // agree (each register's settled value is common knowledge after one op).
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    CrashPlan crashes = CrashPlan::random(8, 0.4, 3, rng);
    RandomScheduler scheduler(100 + static_cast<std::uint64_t>(trial));
    const MultiReport report =
        run_multi_register_election({3, 3, 3}, 8, scheduler, crashes);
    EXPECT_TRUE(report.consistent) << "trial " << trial;
  }
}

// ------------------------------------------------------------- the bound

TEST(BurnsBound, CheckerCertifiesUpToKMinusOne) {
  for (int k = 3; k <= 6; ++k) {
    BurnsProtocol protocol(k - 1, k);
    const auto result =
        check::check_consensus(protocol, identity_inputs(k - 1));
    EXPECT_TRUE(result.solves) << "k=" << k << ": " << result.detail;
  }
}

TEST(BurnsBound, CheckerRefutesNEqualsK) {
  for (int k = 3; k <= 6; ++k) {
    BurnsProtocol protocol(k, k);
    const auto result = check::check_consensus(protocol, identity_inputs(k));
    EXPECT_FALSE(result.solves) << "k=" << k;
    EXPECT_EQ(result.violation, check::Violation::kAgreement)
        << result.detail;
  }
}

}  // namespace
}  // namespace bss::burns
