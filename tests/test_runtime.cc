#include <gtest/gtest.h>

#include "core/election_validator.h"
#include "core/sim_election.h"
#include "registers/mwmr_register.h"
#include "registers/swmr_register.h"
#include "runtime/crash_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::sim {
namespace {

TEST(SimEnv, RunsSingleProcessToCompletion) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  int observed = -1;
  env.add_process([&](Ctx& ctx) {
    reg.write(ctx, 41);
    observed = reg.read(ctx) + 1;
  });
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.finished_count(), 1);
  EXPECT_EQ(observed, 42);
  EXPECT_EQ(report.total_steps, 2u);
}

TEST(SimEnv, ProcessWithNoSharedOpsFinishes) {
  SimEnv env;
  bool ran = false;
  env.add_process([&](Ctx&) { ran = true; });
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(ran);
  EXPECT_EQ(report.total_steps, 0u);
}

TEST(SimEnv, DeterministicUnderSameScheduler) {
  const auto run_once = [](std::uint64_t seed) {
    SimEnv env;
    MwmrRegister<int> reg("r", 0);
    std::vector<int> reads;
    for (int pid = 0; pid < 4; ++pid) {
      env.add_process([&, pid](Ctx& ctx) {
        reg.write(ctx, pid);
        reads.push_back(reg.read(ctx));
      });
    }
    RandomScheduler sched(seed);
    env.run(sched);
    return reads;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  // Different seeds usually produce different interleavings; do not assert
  // inequality (it is not guaranteed), just that both complete.
  EXPECT_EQ(run_once(6).size(), 4u);
}

TEST(SimEnv, ReplayReproducesDecisions) {
  std::vector<int> first_decisions;
  std::vector<int> first_reads;
  {
    SimEnv env;
    MwmrRegister<int> reg("r", 0);
    for (int pid = 0; pid < 3; ++pid) {
      env.add_process([&, pid](Ctx& ctx) {
        reg.write(ctx, pid);
        first_reads.push_back(reg.read(ctx));
      });
    }
    RandomScheduler sched(17);
    env.run(sched);
    first_decisions = env.decisions();
  }
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  std::vector<int> replay_reads;
  for (int pid = 0; pid < 3; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      reg.write(ctx, pid);
      replay_reads.push_back(reg.read(ctx));
    });
  }
  ReplayScheduler sched(first_decisions);
  env.run(sched);
  EXPECT_EQ(replay_reads, first_reads);
  EXPECT_EQ(env.decisions(), first_decisions);
}

TEST(SimEnv, TraceRecordsOperationsInOrder) {
  SimEnv env;
  MwmrRegister<int> reg("reg", 7);
  env.add_process([&](Ctx& ctx) {
    (void)reg.read(ctx);
    reg.write(ctx, 9);
  });
  RoundRobinScheduler sched;
  env.run(sched);
  const auto& events = env.trace().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].desc.op, "read");
  EXPECT_TRUE(events[0].has_result);
  EXPECT_EQ(events[0].result, 7);
  EXPECT_EQ(events[1].desc.op, "write");
  EXPECT_EQ(events[1].desc.arg0, 9);
  EXPECT_EQ(events[0].step, 0u);
  EXPECT_EQ(events[1].step, 1u);
}

TEST(SimEnv, CrashPlanKillsBeforeOp) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  env.add_process([&](Ctx& ctx) {
    reg.write(ctx, 1);
    reg.write(ctx, 2);  // never reached: crash before op 1
  });
  env.add_process([&](Ctx& ctx) { reg.write(ctx, 3); });
  CrashPlan crashes;
  crashes.crash_before_op(0, 1);
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched, crashes);
  EXPECT_EQ(report.outcomes[0], ProcOutcome::kCrashed);
  EXPECT_EQ(report.outcomes[1], ProcOutcome::kFinished);
  EXPECT_NE(reg.peek(), 2);
}

TEST(SimEnv, CrashBeforeFirstOpMeansNoSteps) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  env.add_process([&](Ctx& ctx) { reg.write(ctx, 1); });
  CrashPlan crashes;
  crashes.crash_before_op(0, 0);
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched, crashes);
  EXPECT_EQ(report.outcomes[0], ProcOutcome::kCrashed);
  EXPECT_EQ(report.total_steps, 0u);
  EXPECT_EQ(reg.peek(), 0);
}

TEST(SimEnv, ProcessExceptionReportedAsFailure) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  env.add_process([&](Ctx& ctx) {
    reg.write(ctx, 1);
    throw std::runtime_error("intentional test failure");
  });
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.outcomes[0], ProcOutcome::kFailed);
  EXPECT_NE(report.errors[0].find("intentional"), std::string::npos);
}

TEST(SimEnv, StepLimitTerminatesSpinners) {
  SimEnv env({.step_limit = 50});
  MwmrRegister<int> reg("r", 0);
  env.add_process([&](Ctx& ctx) {
    for (;;) (void)reg.read(ctx);  // deliberately non-wait-free
  });
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.step_limit_hit);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.total_steps, 50u);
}

TEST(SimEnv, SoloSchedulerRunsLowestPidFirst) {
  SimEnv env;
  MwmrRegister<int> reg("r", -1);
  std::vector<int> order;
  for (int pid = 0; pid < 3; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      reg.write(ctx, pid);
      order.push_back(pid);
    });
  }
  SoloScheduler sched;
  env.run(sched);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimEnv, ManyProcessesInterleaveAndFinish) {
  constexpr int kProcs = 64;
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  env.add_process([&](Ctx& ctx) {  // pid 0 also participates
    for (int i = 0; i < 10; ++i) (void)reg.read(ctx);
  });
  for (int pid = 1; pid < kProcs; ++pid) {
    env.add_process([&](Ctx& ctx) {
      for (int i = 0; i < 10; ++i) reg.write(ctx, i);
    });
  }
  RandomScheduler sched(3);
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.finished_count(), kProcs);
  EXPECT_EQ(report.total_steps, static_cast<std::uint64_t>(kProcs) * 10);
}

TEST(Scheduler, CasConvoyPrefersNonCas) {
  // One process about to cas, one about to read: convoy must pick the read.
  ProcView p0{.pid = 0, .ready = true, .pending = {"c", "cas", 0, 1}};
  ProcView p1{.pid = 1, .ready = true, .pending = {"r", "read", 0, 0}};
  std::vector<ProcView> procs{p0, p1};
  std::vector<int> runnable{0, 1};
  CasConvoyScheduler sched(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sched.pick({0, runnable, procs}), 1);
  }
}

TEST(Scheduler, ExactReplayHasZeroDivergences) {
  std::vector<int> decisions;
  const auto build = [](SimEnv& env, MwmrRegister<int>& reg) {
    for (int pid = 0; pid < 3; ++pid) {
      env.add_process([&reg, pid](Ctx& ctx) {
        reg.write(ctx, pid);
        (void)reg.read(ctx);
      });
    }
  };
  {
    SimEnv env;
    MwmrRegister<int> reg("r", 0);
    build(env, reg);
    RandomScheduler sched(23);
    env.run(sched);
    decisions = env.decisions();
  }
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  build(env, reg);
  ReplayScheduler sched(decisions);
  env.run(sched);
  EXPECT_EQ(sched.divergences(), 0u);
  EXPECT_TRUE(sched.exact_so_far());
  EXPECT_EQ(sched.consumed(), decisions.size());
}

TEST(Scheduler, StaleTapeDivergencesAreCounted) {
  // Two processes, one op each; the tape asks for p0 twice and is then
  // exhausted: one skip (p0 already finished) + one fallback pick.
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  for (int pid = 0; pid < 2; ++pid) {
    env.add_process([&reg, pid](Ctx& ctx) { reg.write(ctx, pid); });
  }
  ReplayScheduler sched({0, 0});
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(sched.divergences(), 2u);
  EXPECT_FALSE(sched.exact_so_far());
}

TEST(Scheduler, ShortTapeFallsBackAndCounts) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  for (int pid = 0; pid < 2; ++pid) {
    env.add_process([&reg, pid](Ctx& ctx) {
      reg.write(ctx, pid);
      (void)reg.read(ctx);
    });
  }
  ReplayScheduler sched({1});  // 4 steps needed, tape covers one
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(sched.divergences(), 3u);  // three fallback-served picks
}

// Seeded stress sweep of the randomized adversaries over the scheduler-
// driven FirstValueTree election (the simulator twin of the OS-thread
// concurrent_election backend): every seed must produce a clean run that
// the paper-grade validator accepts.
TEST(Scheduler, HundredSeedSweepOverElection) {
  constexpr int kK = 4;
  constexpr int kProcs = 4;  // capacity (k-1)! = 6
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    {
      RandomScheduler sched(seed);
      const auto report = bss::core::run_sim_election(kK, kProcs, sched);
      ASSERT_TRUE(report.run.clean())
          << "random seed " << seed << ": " << report.run.summary();
      const auto verdict = bss::core::verify_election(report);
      ASSERT_TRUE(verdict.ok())
          << "random seed " << seed << ": " << verdict.diagnosis;
    }
    {
      CasConvoyScheduler sched(seed);
      const auto report = bss::core::run_sim_election(kK, kProcs, sched);
      ASSERT_TRUE(report.run.clean())
          << "cas-convoy seed " << seed << ": " << report.run.summary();
      const auto verdict = bss::core::verify_election(report);
      ASSERT_TRUE(verdict.ok())
          << "cas-convoy seed " << seed << ": " << verdict.diagnosis;
    }
  }
}

TEST(Trace, FiltersAndCounts) {
  Trace trace;
  trace.append({0, 1, {"a", "read", 0, 0}, 0, false});
  trace.append({1, 2, {"b", "write", 5, 0}, 0, false});
  trace.append({2, 1, {"a", "write", 6, 0}, 0, false});
  EXPECT_EQ(trace.for_object("a").size(), 2u);
  EXPECT_EQ(trace.for_pid(2).size(), 1u);
  EXPECT_EQ(trace.count(1), 2u);
  EXPECT_EQ(trace.count(1, "write"), 1u);
  EXPECT_NE(trace.to_string().find("b.write"), std::string::npos);
}

TEST(Trace, HelpersOnEmptyTrace) {
  const Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_TRUE(trace.for_object("a").empty());
  EXPECT_TRUE(trace.for_pid(0).empty());
  EXPECT_EQ(trace.count(0), 0u);
  EXPECT_EQ(trace.count(0, "read"), 0u);
  EXPECT_EQ(trace.to_string().find("... ("), std::string::npos);
}

TEST(Trace, HelpersOnUnknownNamesAndPids) {
  Trace trace;
  trace.append({0, 1, {"a", "read", 0, 0}, 0, false});
  EXPECT_TRUE(trace.for_object("no-such-object").empty());
  EXPECT_TRUE(trace.for_pid(7).empty());
  EXPECT_TRUE(trace.for_pid(-1).empty());
  EXPECT_EQ(trace.count(7), 0u);
  EXPECT_EQ(trace.count(1, "no-such-op"), 0u);
}

TEST(Trace, ToStringTruncatesLongTraces) {
  Trace trace;
  for (int i = 0; i < 10; ++i) {
    trace.append({static_cast<std::uint64_t>(i), 0, {"a", "read", 0, 0}, 0,
                  false});
  }
  const std::string text = trace.to_string(3);
  EXPECT_NE(text.find("... (7 more)"), std::string::npos) << text;
  // At the exact limit nothing is elided.
  EXPECT_EQ(trace.to_string(10).find("more)"), std::string::npos);
}

TEST(CrashPlan, RandomPlanRespectsProbabilityEdges) {
  Rng rng(11);
  const CrashPlan none = CrashPlan::random(20, 0.0, 10, rng);
  EXPECT_TRUE(none.empty());
  const CrashPlan all = CrashPlan::random(20, 1.0, 10, rng);
  EXPECT_EQ(all.victim_count(), 20u);
}

TEST(VirtualTime, NowReadsZeroUntilATimerFires) {
  SimEnv env;
  std::vector<std::uint64_t> readings;
  env.add_process([&](Ctx& ctx) {
    readings.push_back(ctx.now());
    readings.push_back(ctx.now());
    readings.push_back(ctx.sleep_until(5));
    readings.push_back(ctx.now());
  });
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(readings, (std::vector<std::uint64_t>{0, 0, 5, 5}));
  // Every clock access is an ordinary synced step on the "@clock" object.
  EXPECT_EQ(report.total_steps, 4u);
  const auto clock_events = env.trace().for_object("@clock");
  ASSERT_EQ(clock_events.size(), 4u);
  EXPECT_EQ(clock_events[0].desc.op, "read");
  EXPECT_EQ(clock_events[2].desc.op, "timer");
  EXPECT_EQ(clock_events[2].desc.arg0, 5);
  EXPECT_TRUE(clock_events[2].has_result);
  EXPECT_EQ(clock_events[2].result, 5);
}

TEST(VirtualTime, SleepUntilIsMonotoneFetchMax) {
  SimEnv env;
  std::vector<std::uint64_t> readings;
  env.add_process([&](Ctx& ctx) {
    readings.push_back(ctx.sleep_until(5));
    // A deadline already in the past fires immediately without rewinding.
    readings.push_back(ctx.sleep_until(3));
    readings.push_back(ctx.sleep_until(10));
  });
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(readings, (std::vector<std::uint64_t>{5, 5, 10}));
  EXPECT_EQ(env.virtual_now(), 10u);
}

TEST(VirtualTime, TimerGrantIsVisibleToOtherProcesses) {
  // p0 parks on a timer, p1 on a clock read; round-robin grants the timer
  // first, so p1 observes the post-advance clock — the firing is a step
  // like any other, ordered by the scheduler.
  SimEnv env;
  std::uint64_t p1_read = 0;
  env.add_process([&](Ctx& ctx) { ctx.sleep_until(10); });
  env.add_process([&](Ctx& ctx) { p1_read = ctx.now(); });
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(p1_read, 10u);
}

TEST(VirtualTime, RestartAbandonsParkedTimerWithoutFiringIt) {
  // Crash-restarting a process parked on a timer must NOT advance the
  // clock: the pending operation is abandoned, never performed.  The
  // restarted incarnation re-parks on a fresh timer which fires normally.
  SimEnv env(SimOptions{});
  SwmrRegister<std::int64_t> done("done", 0, 0);
  const auto body = [&](Ctx& ctx) {
    const std::uint64_t woke = ctx.sleep_until(7);
    done.write(ctx, static_cast<std::int64_t>(woke));
  };
  env.add_process(body, body);
  env.start();
  ASSERT_TRUE(env.is_parked(0));
  EXPECT_EQ(env.pending_of(0).object, "@clock");
  EXPECT_EQ(env.pending_of(0).op, "timer");
  env.restart_process(0);
  EXPECT_EQ(env.virtual_now(), 0u);  // the abandoned timer never fired
  ASSERT_TRUE(env.is_parked(0));
  EXPECT_EQ(env.pending_of(0).op, "timer");
  env.step_process(0);  // the fresh incarnation's timer fires now
  EXPECT_EQ(env.virtual_now(), 7u);
  env.step_process(0);  // the write after the sleep
  env.finish();
  EXPECT_EQ(done.peek(), 7);
  const RunReport report = env.snapshot_report();
  EXPECT_EQ(report.restarts_by_pid[0], 1);
}

TEST(SwmrRegister, SecondWriterTrapped) {
  SimEnv env;
  SwmrRegister<int> reg("r", SwmrRegister<int>::kAnyWriter, 0);
  env.add_process([&](Ctx& ctx) { reg.write(ctx, 1); });
  env.add_process([&](Ctx& ctx) { reg.write(ctx, 2); });
  RoundRobinScheduler sched;
  const RunReport report = env.run(sched);
  // Exactly one of them must have failed the single-writer discipline.
  EXPECT_EQ(report.finished_count(), 1);
  int failed = 0;
  for (const auto outcome : report.outcomes) {
    if (outcome == ProcOutcome::kFailed) ++failed;
  }
  EXPECT_EQ(failed, 1);
}

}  // namespace
}  // namespace bss::sim
