#include <gtest/gtest.h>

#include "checker/bivalence.h"
#include "checker/consensus_check.h"
#include "checker/protocols.h"

namespace bss::check {
namespace {

const std::vector<int> kBinary{0, 1};

std::vector<std::vector<int>> binary_inputs(int n) {
  return all_input_vectors(n, kBinary);
}

TEST(InputVectors, EnumeratesDomainPower) {
  EXPECT_EQ(binary_inputs(2).size(), 4u);
  EXPECT_EQ(binary_inputs(3).size(), 8u);
  const auto three = all_input_vectors(2, std::vector<int>{5, 6, 7});
  EXPECT_EQ(three.size(), 9u);
}

// ------------------------------------------------------------- R/W registers

TEST(Checker, RwWriteReadViolatesAgreement) {
  RwWriteReadConsensus protocol;
  const CheckResult result = check_consensus(protocol, binary_inputs(2));
  EXPECT_FALSE(result.solves);
  EXPECT_EQ(result.violation, Violation::kAgreement);
  EXPECT_FALSE(result.schedule.empty());
}

TEST(Checker, RwSpinIsSafeButNotWaitFree) {
  RwSpinConsensus protocol;
  const CheckResult result = check_consensus(protocol, binary_inputs(2));
  EXPECT_FALSE(result.solves);
  EXPECT_EQ(result.violation, Violation::kNonTermination)
      << result.detail;  // never disagreement — it fails by waiting
}

// ----------------------------------------------------------------- test&set

TEST(Checker, TasSolvesTwoProcessConsensus) {
  TasConsensus2 protocol;
  const CheckResult result = check_consensus(protocol, binary_inputs(2));
  EXPECT_TRUE(result.solves) << result.detail;
  EXPECT_GT(result.states_explored, 0u);
}

TEST(Checker, TasThreeProcessAttemptLivelocks) {
  TasSpinConsensus3 protocol;
  const CheckResult result = check_consensus(protocol, binary_inputs(3));
  EXPECT_FALSE(result.solves);
  EXPECT_EQ(result.violation, Violation::kNonTermination) << result.detail;
}

// ------------------------------------------------------------ compare&swap-(k)

TEST(Checker, CasSolvesUpToKMinusOne) {
  // n <= k-1: certified for several (n, k) pairs.
  for (const auto& [n, k] : {std::pair{2, 3}, {2, 4}, {3, 4}, {3, 5}}) {
    CasConsensusK protocol(n, k);
    const CheckResult result = check_consensus(protocol, binary_inputs(n));
    EXPECT_TRUE(result.solves)
        << "n=" << n << " k=" << k << ": " << result.detail;
  }
}

TEST(Checker, CasOverloadedFails) {
  // n > k-1: two processes share a symbol; bounded size bites.
  CasConsensusK protocol(3, 3);
  const CheckResult result = check_consensus(protocol, binary_inputs(3));
  EXPECT_FALSE(result.solves);
  EXPECT_EQ(result.violation, Violation::kAgreement) << result.detail;
}

TEST(Checker, CasConsensusNumberBoundaryExact) {
  // The boundary is sharp: (n=3, k=4) works, (n=4, k=4) does not.
  EXPECT_TRUE(check_consensus(CasConsensusK(3, 4), binary_inputs(3)).solves);
  EXPECT_FALSE(check_consensus(CasConsensusK(4, 4), binary_inputs(4)).solves);
}

// ----------------------------------------------------------------- swap

TEST(Checker, SwapSolvesTwoNotThree) {
  SwapConsensusN swap2(2);
  EXPECT_TRUE(check_consensus(swap2, binary_inputs(2)).solves);
  SwapConsensusN swap3(3);
  const CheckResult result = check_consensus(swap3, binary_inputs(3));
  EXPECT_FALSE(result.solves);
  EXPECT_EQ(result.violation, Violation::kAgreement) << result.detail;
}

// --------------------------------------------------------------- sticky bits

TEST(Checker, StickySolvesAnyN) {
  for (int n = 2; n <= 4; ++n) {
    StickyConsensus protocol(n);
    const CheckResult result = check_consensus(protocol, binary_inputs(n));
    EXPECT_TRUE(result.solves) << "n=" << n << ": " << result.detail;
  }
}

// ------------------------------------------------------------- set consensus

TEST(Checker, AgreementParameterRelaxesToSetConsensus) {
  // The overloaded cas protocol fails 1-agreement but satisfies 2-set
  // consensus here: at most two symbol groups exist for n=3, k=3.
  CasConsensusK protocol(3, 3);
  CheckOptions options;
  options.agreement = 2;
  const CheckResult result =
      check_consensus(protocol, binary_inputs(3), options);
  EXPECT_TRUE(result.solves) << result.detail;
}

TEST(Checker, RwWriteReadFailsEvenTwoSetConsensusOnWiderDomain) {
  // With inputs from {0,1,2}, the write-read protocol can produce... at most
  // 2 decisions among 2 processes — so 2-set consensus trivially holds; this
  // documents that l-set consensus with l >= n is vacuous for deciders <= l.
  RwWriteReadConsensus protocol;
  CheckOptions options;
  options.agreement = 2;
  const CheckResult result = check_consensus(
      protocol, all_input_vectors(2, std::vector<int>{0, 1, 2}), options);
  EXPECT_TRUE(result.solves);
}

// ----------------------------------------------------------------- valency

TEST(Valency, MixedInputsAreBivalentForTas) {
  // A correct protocol still starts bivalent on mixed inputs (the adversary
  // chooses who wins), but must pass through critical states.
  TasConsensus2 protocol;
  const ValencyReport report = analyze_valency(protocol, {0, 1});
  EXPECT_TRUE(report.initial_bivalent);
  EXPECT_GT(report.bivalent_states, 0u);
  EXPECT_GT(report.univalent_states, 0u);
  EXPECT_GE(report.critical_state, 0);
  EXPECT_EQ(report.null_valent_states, 0u);
}

TEST(Valency, UniformInputsAreUnivalent) {
  TasConsensus2 protocol;
  const ValencyReport report = analyze_valency(protocol, {1, 1});
  EXPECT_FALSE(report.initial_bivalent);
  EXPECT_EQ(report.bivalent_states, 0u);
}

TEST(Valency, SummaryMentionsCounts) {
  TasConsensus2 protocol;
  const ValencyReport report = analyze_valency(protocol, {0, 1});
  EXPECT_NE(report.summary().find("bivalent"), std::string::npos);
}

}  // namespace
}  // namespace bss::check
