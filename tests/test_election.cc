#include <gtest/gtest.h>

#include <set>

#include "core/capacity.h"
#include "core/concurrent_election.h"
#include "core/election_validator.h"
#include "core/first_value_tree.h"
#include "core/composed_election.h"
#include "core/llsc_election.h"
#include "core/one_shot_election.h"
#include "core/path_math.h"
#include "core/sim_election.h"
#include "util/checked.h"
#include "util/permutation.h"

namespace bss::core {
namespace {

using sim::CasConvoyScheduler;
using sim::CrashPlan;
using sim::RandomScheduler;
using sim::RoundRobinScheduler;
using sim::SoloScheduler;

// ---------------------------------------------------------------- path math

TEST(PathMath, SlotCountIsFactorial) {
  EXPECT_EQ(slot_count(2), 1u);
  EXPECT_EQ(slot_count(3), 2u);
  EXPECT_EQ(slot_count(5), 24u);
  EXPECT_EQ(slot_count(7), 720u);
  EXPECT_THROW(slot_count(1), InvariantError);
}

TEST(PathMath, PathsAreDistinctPermutations) {
  for (int k = 2; k <= 6; ++k) {
    std::set<std::vector<int>> seen;
    for (std::uint64_t slot = 0; slot < slot_count(k); ++slot) {
      const auto path = slot_path(slot, k);
      EXPECT_EQ(path.size(), static_cast<std::size_t>(k - 1));
      EXPECT_TRUE(is_permutation_prefix(path, 1, k));
      EXPECT_TRUE(seen.insert(path).second);
      EXPECT_EQ(path_owner(path, k), slot);
    }
    EXPECT_EQ(seen.size(), slot_count(k));
  }
}

TEST(PathMath, SlotExtendsItsOwnPrefixes) {
  const int k = 5;
  for (std::uint64_t slot = 0; slot < slot_count(k); ++slot) {
    const auto path = slot_path(slot, k);
    for (std::size_t depth = 0; depth <= path.size(); ++depth) {
      const std::vector<int> prefix(path.begin(),
                                    path.begin() + checked_cast<long>(depth));
      EXPECT_TRUE(slot_extends(slot, prefix, k));
    }
  }
}

TEST(PathMath, ExtensionEnumerationIsExactAndAscending) {
  const int k = 5;
  for (std::uint64_t slot = 0; slot < slot_count(k); ++slot) {
    const auto path = slot_path(slot, k);
    for (std::size_t depth = 0; depth <= path.size(); ++depth) {
      const std::vector<int> prefix(path.begin(),
                                    path.begin() + checked_cast<long>(depth));
      const std::uint64_t count =
          extension_count(k, checked_cast<int>(depth));
      std::vector<std::uint64_t> extending;
      for (std::uint64_t j = 0; j < count; ++j) {
        extending.push_back(nth_slot_extending(prefix, j, k));
      }
      // Ascending, and exactly the slots that extend the prefix.
      for (std::size_t i = 1; i < extending.size(); ++i) {
        EXPECT_LT(extending[i - 1], extending[i]);
      }
      std::set<std::uint64_t> expected;
      for (std::uint64_t s = 0; s < slot_count(k); ++s) {
        if (slot_extends(s, prefix, k)) expected.insert(s);
      }
      EXPECT_EQ(std::set<std::uint64_t>(extending.begin(), extending.end()),
                expected);
    }
  }
}

// ------------------------------------------------------------ full-capacity

struct SchedulerCase {
  std::string name;
  std::function<std::unique_ptr<sim::Scheduler>()> make;
};

std::vector<SchedulerCase> scheduler_cases() {
  std::vector<SchedulerCase> cases;
  cases.push_back({"round-robin", [] {
                     return std::make_unique<RoundRobinScheduler>();
                   }});
  cases.push_back(
      {"solo", [] { return std::make_unique<SoloScheduler>(); }});
  for (const std::uint64_t seed : {1ULL, 42ULL, 20260704ULL}) {
    cases.push_back({"random-" + std::to_string(seed), [seed] {
                       return std::make_unique<RandomScheduler>(seed);
                     }});
    cases.push_back({"convoy-" + std::to_string(seed), [seed] {
                       return std::make_unique<CasConvoyScheduler>(seed);
                     }});
  }
  return cases;
}

class ElectionFullCapacity : public ::testing::TestWithParam<int> {};

TEST_P(ElectionFullCapacity, AllSchedulersElectConsistently) {
  const int k = GetParam();
  const int n = checked_cast<int>(slot_count(k));
  for (const auto& scheduler_case : scheduler_cases()) {
    auto scheduler = scheduler_case.make();
    const SimElectionReport report = run_sim_election(k, n, *scheduler);
    const ElectionVerdict verdict = verify_election(report);
    EXPECT_TRUE(verdict.ok()) << "k=" << k << " scheduler="
                              << scheduler_case.name << ": "
                              << verdict.diagnosis;
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, ElectionFullCapacity,
                         ::testing::Values(2, 3, 4, 5, 6));

// ------------------------------------------------------------ partial loads

class ElectionPartialLoad
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ElectionPartialLoad, SubsetsOfSlotsStillElect) {
  const auto [k, n] = GetParam();
  RandomScheduler scheduler(static_cast<std::uint64_t>(k) * 131 +
                            static_cast<std::uint64_t>(n));
  const SimElectionReport report = run_sim_election(k, n, scheduler);
  const ElectionVerdict verdict = verify_election(report);
  EXPECT_TRUE(verdict.ok()) << verdict.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(
    Loads, ElectionPartialLoad,
    ::testing::Values(std::tuple{4, 1}, std::tuple{4, 3}, std::tuple{5, 2},
                      std::tuple{5, 13}, std::tuple{6, 7}, std::tuple{6, 60},
                      std::tuple{7, 100}));

TEST(Election, NonContiguousSlotAssignmentsWork) {
  // Processes need not occupy slots 0..n-1; scatter them.
  const int k = 5;
  SimElectionOptions options;
  options.slot_of_pid = {23, 0, 17, 5, 11};
  RandomScheduler scheduler(99);
  const SimElectionReport report =
      run_sim_election(k, 5, scheduler, {}, options);
  EXPECT_TRUE(verify_election(report).ok());
}

TEST(Election, RejectsOverCapacity) {
  RoundRobinScheduler scheduler;
  EXPECT_THROW(run_sim_election(3, 3, scheduler), InvariantError);
  EXPECT_THROW(run_sim_election(4, 7, scheduler), InvariantError);
}

TEST(Election, SingleProcessElectsItself) {
  for (int k = 2; k <= 6; ++k) {
    RoundRobinScheduler scheduler;
    const SimElectionReport report = run_sim_election(k, 1, scheduler);
    ASSERT_TRUE(report.outcomes[0].has_value());
    EXPECT_EQ(report.outcomes[0]->leader, report.proposed_id(0));
    EXPECT_TRUE(verify_election(report).ok());
  }
}

// -------------------------------------------------------------- crash sweeps

TEST(ElectionCrash, SurvivorsDecideWheneverAnyoneSurvives) {
  const int k = 5;
  const int n = 24;
  Rng rng(2026);
  int runs_with_survivors = 0;
  for (int trial = 0; trial < 25; ++trial) {
    CrashPlan crashes = CrashPlan::random(n, 0.4, 30, rng);
    RandomScheduler scheduler(1000 + static_cast<std::uint64_t>(trial));
    const SimElectionReport report =
        run_sim_election(k, n, scheduler, crashes);
    const ElectionVerdict verdict = verify_election(report);
    EXPECT_TRUE(verdict.ok()) << "trial " << trial << ": "
                              << verdict.diagnosis;
    if (report.run.finished_count() > 0) ++runs_with_survivors;
  }
  EXPECT_GT(runs_with_survivors, 0);
}

TEST(ElectionCrash, LoneSurvivorAlwaysDecides) {
  // Everyone except one process crashes before taking any step: the survivor
  // must still elect (itself), in a bounded number of its own steps.
  const int k = 5;
  const int n = 24;
  for (int survivor = 0; survivor < n; survivor += 7) {
    CrashPlan crashes;
    for (int pid = 0; pid < n; ++pid) {
      if (pid != survivor) crashes.crash_before_op(pid, 0);
    }
    RoundRobinScheduler scheduler;
    const SimElectionReport report =
        run_sim_election(k, n, scheduler, crashes);
    EXPECT_TRUE(verify_election(report).ok());
    ASSERT_TRUE(report.outcomes[static_cast<std::size_t>(survivor)]);
    EXPECT_EQ(report.outcomes[static_cast<std::size_t>(survivor)]->leader,
              report.proposed_id(survivor));
  }
}

TEST(ElectionCrash, MidProtocolCrashOfEveryPioneer) {
  // Let each process in turn crash right after its first c&s access; the
  // helping rule must carry the election through.
  const int k = 4;
  const int n = 6;
  for (int victim = 0; victim < n; ++victim) {
    CrashPlan crashes;
    // announce(1 op) + confirm reads... crash before its 5th op, roughly
    // after its first cas for the natural round-robin pacing.
    crashes.crash_before_op(victim, 5);
    RoundRobinScheduler scheduler;
    const SimElectionReport report =
        run_sim_election(k, n, scheduler, crashes);
    const ElectionVerdict verdict = verify_election(report);
    EXPECT_TRUE(verdict.ok()) << "victim " << victim << ": "
                              << verdict.diagnosis;
  }
}

TEST(ElectionCrash, CrashStormAtEveryDepth) {
  // Crash a third of the processes before op t, for every small t: exercises
  // deaths at announce-time, mid-label and at decision time.
  const int k = 5;
  const int n = 24;
  for (std::uint64_t t = 0; t < 12; ++t) {
    CrashPlan crashes;
    for (int pid = 0; pid < n; pid += 3) crashes.crash_before_op(pid, t);
    RandomScheduler scheduler(t * 17 + 3);
    const SimElectionReport report =
        run_sim_election(k, n, scheduler, crashes);
    const ElectionVerdict verdict = verify_election(report);
    EXPECT_TRUE(verdict.ok()) << "t=" << t << ": " << verdict.diagnosis;
  }
}

// ------------------------------------------------------- step-bound metrics

TEST(ElectionBound, CasAccessesAreOPerProcess) {
  // The wait-freedom argument promises O(k) c&s accesses per process; the
  // validator enforces <= 4k+8, here we also record the observed maximum is
  // comfortably small under heavy contention.
  for (int k = 3; k <= 6; ++k) {
    const int n = checked_cast<int>(slot_count(k));
    CasConvoyScheduler scheduler(7);
    const SimElectionReport report = run_sim_election(k, n, scheduler);
    ASSERT_TRUE(verify_election(report).ok());
    int max_cas = 0;
    for (const auto& outcome : report.outcomes) {
      if (outcome.has_value()) max_cas = std::max(max_cas, outcome->cas_accesses);
    }
    EXPECT_LE(max_cas, 2 * k + 2) << "k=" << k;
  }
}

TEST(ElectionBound, HistoryIsCompletePermutationWhenUncrashed) {
  const int k = 6;
  const int n = checked_cast<int>(slot_count(k));
  RandomScheduler scheduler(5);
  const SimElectionReport report = run_sim_election(k, n, scheduler);
  ASSERT_TRUE(verify_election(report).ok());
  EXPECT_EQ(report.cas_history.size(), static_cast<std::size_t>(k - 1));
}

TEST(ElectionBound, WinnerPathMatchesHistory) {
  const int k = 5;
  const int n = 24;
  RandomScheduler scheduler(321);
  const SimElectionReport report = run_sim_election(k, n, scheduler);
  ASSERT_TRUE(verify_election(report).ok());
  std::vector<int> history;
  for (const auto& transition : report.cas_history) {
    history.push_back(transition.to);
  }
  const std::uint64_t winner_slot = path_owner(history, k);
  ASSERT_TRUE(report.outcomes[0].has_value());
  EXPECT_EQ(report.outcomes[0]->leader,
            report.proposed_id(checked_cast<int>(winner_slot)));
}

// ---------------------------------------------------------------- one-shot

TEST(OneShot, ElectsAmongKMinusOne) {
  for (int k = 2; k <= 8; ++k) {
    RandomScheduler scheduler(static_cast<std::uint64_t>(k));
    const OneShotReport report = run_one_shot_election(k, k - 1, scheduler);
    EXPECT_TRUE(report.consistent) << "k=" << k;
    EXPECT_EQ(report.run.finished_count(), k - 1);
  }
}

TEST(OneShot, SingleCasAccessPerProcess) {
  OneShotState state(6);
  sim::SimEnv env;
  for (int pid = 0; pid < 5; ++pid) {
    env.add_process([&state, pid](sim::Ctx& ctx) {
      (void)one_shot_elect(state, ctx, pid, 1000 + pid);
    });
  }
  RandomScheduler scheduler(8);
  env.run(scheduler);
  for (int pid = 0; pid < 5; ++pid) EXPECT_EQ(state.cas.accesses_by(pid), 1u);
}

TEST(OneShot, CrashTolerant) {
  const int k = 6;
  CrashPlan crashes;
  crashes.crash_before_op(0, 1);  // after announcing, before its cas
  crashes.crash_before_op(2, 2);  // after its cas, before reading the winner
  RandomScheduler scheduler(10);
  const OneShotReport report = run_one_shot_election(k, 5, scheduler, crashes);
  EXPECT_TRUE(report.consistent);
  EXPECT_EQ(report.run.finished_count(), 3);
}

TEST(OneShot, RejectsOverCapacity) {
  RoundRobinScheduler scheduler;
  EXPECT_THROW(run_one_shot_election(4, 4, scheduler), InvariantError);
}

// --------------------------------------------------- the validator itself

SimElectionReport healthy_report() {
  RandomScheduler scheduler(4);
  return run_sim_election(4, 6, scheduler);
}

TEST(Validator, AcceptsHealthyRuns) {
  const auto report = healthy_report();
  const auto verdict = verify_election(report);
  EXPECT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict.diagnosis.empty());
}

TEST(Validator, CatchesDisagreement) {
  auto report = healthy_report();
  // Plant a second leader.
  for (auto& outcome : report.outcomes) {
    if (outcome.has_value()) {
      outcome->leader += 1;
      break;
    }
  }
  const auto verdict = verify_election(report);
  EXPECT_FALSE(verdict.consistent);
  EXPECT_FALSE(verdict.ok());
  EXPECT_NE(verdict.diagnosis.find("elected"), std::string::npos);
}

TEST(Validator, CatchesInvalidLeader) {
  auto report = healthy_report();
  for (auto& outcome : report.outcomes) {
    if (outcome.has_value()) outcome->leader = 99999;  // nobody proposed this
  }
  const auto verdict = verify_election(report);
  EXPECT_FALSE(verdict.valid);
}

TEST(Validator, CatchesStepBoundViolation) {
  auto report = healthy_report();
  report.outcomes[0]->cas_accesses = 10 * max_iterations(report.k);
  const auto verdict = verify_election(report);
  EXPECT_FALSE(verdict.wait_free);
}

TEST(Validator, CatchesSymbolReuseInHistory) {
  auto report = healthy_report();
  // Plant a reused symbol: append a transition back to the first symbol.
  const int first = report.cas_history.front().to;
  const int last = report.cas_history.back().to;
  report.cas_history.push_back({0, last, first});
  const auto verdict = verify_election(report);
  EXPECT_FALSE(verdict.label_sound);
}

TEST(Validator, CatchesBrokenHistoryChain) {
  auto report = healthy_report();
  ASSERT_GE(report.cas_history.size(), 2u);
  report.cas_history[1].from = report.cas_history[1].to;  // no longer chains
  const auto verdict = verify_election(report);
  EXPECT_FALSE(verdict.label_sound);
}

TEST(Validator, CatchesUndecidedFinisher) {
  auto report = healthy_report();
  report.outcomes[2]->leader = kNoId;
  const auto verdict = verify_election(report);
  EXPECT_FALSE(verdict.wait_free);
}

// ---------------------------------------------------------------- capacity

TEST(Capacity, KnownValues) {
  EXPECT_EQ(burns_bound(4).to_decimal(), "3");
  EXPECT_EQ(algorithmic_lower(4).to_decimal(), "6");
  EXPECT_EQ(conjecture(4).to_decimal(), "24");
  EXPECT_EQ(paper_upper(3).to_decimal(), "531441");         // 3^12
  EXPECT_EQ(paper_upper(4).to_decimal(), "274877906944");   // 4^19
}

TEST(Capacity, OrderingHoldsForAllK) {
  // burns <= lower <= conjecture < upper (burns < lower strictly from k=4:
  // (k-1)! pulls away from k-1 exactly when read/write registers start to
  // matter) — the paper's separation, exactly.
  for (int k = 3; k <= 24; ++k) {
    const CapacityRow row = capacity_row(k);
    EXPECT_TRUE(k == 3 ? row.burns == row.lower : row.burns < row.lower) << k;
    EXPECT_TRUE(row.lower <= row.conjectured) << k;
    EXPECT_TRUE(row.conjectured < row.upper) << k;
    EXPECT_GT(row.gap_digits, 0) << k;
  }
}

TEST(Capacity, RwAmplificationGrows) {
  // (k-1)!/(k-1) strictly grows with k: the measured content of "read/write
  // registers add power to a bounded object, increasingly so".
  double previous = 0;
  for (int k = 3; k <= 12; ++k) {
    const CapacityRow row = capacity_row(k);
    EXPECT_GT(row.rw_amplification, previous);
    previous = row.rw_amplification;
  }
}

// -------------------------------------------------- exhaustive crash matrix

TEST(ElectionCrashMatrix, EveryVictimAtEveryDepth) {
  // k=4, n=6: crash each single victim before each of its first 16 ops, under
  // two schedulers — 6*16*2 = 192 distinct fail-stop scenarios, all checked.
  const int k = 4;
  const int n = 6;
  for (int victim = 0; victim < n; ++victim) {
    for (std::uint64_t point = 0; point < 16; ++point) {
      for (const std::uint64_t seed : {0ULL, 9ULL}) {
        CrashPlan crashes;
        crashes.crash_before_op(victim, point);
        RandomScheduler scheduler(seed);
        const SimElectionReport report =
            run_sim_election(k, n, scheduler, crashes);
        const ElectionVerdict verdict = verify_election(report);
        ASSERT_TRUE(verdict.ok())
            << "victim=" << victim << " point=" << point << " seed=" << seed
            << ": " << verdict.diagnosis;
      }
    }
  }
}

TEST(ElectionCrashMatrix, PairsOfVictims) {
  const int k = 4;
  const int n = 6;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      CrashPlan crashes;
      crashes.crash_before_op(a, 3);
      crashes.crash_before_op(b, 7);
      RoundRobinScheduler scheduler;
      const SimElectionReport report =
          run_sim_election(k, n, scheduler, crashes);
      const ElectionVerdict verdict = verify_election(report);
      ASSERT_TRUE(verdict.ok()) << "a=" << a << " b=" << b << ": "
                                << verdict.diagnosis;
    }
  }
}

// ------------------------------------------------------------- determinism

TEST(ElectionDeterminism, SameSeedSameEverything) {
  const auto run_once = [] {
    RandomScheduler scheduler(777);
    return run_sim_election(5, 24, scheduler);
  };
  const SimElectionReport first = run_once();
  const SimElectionReport second = run_once();
  ASSERT_TRUE(first.outcomes[0].has_value());
  EXPECT_EQ(first.outcomes[0]->leader, second.outcomes[0]->leader);
  EXPECT_EQ(first.run.total_steps, second.run.total_steps);
  ASSERT_EQ(first.cas_history.size(), second.cas_history.size());
  for (std::size_t i = 0; i < first.cas_history.size(); ++i) {
    EXPECT_EQ(first.cas_history[i].to, second.cas_history[i].to);
  }
}

TEST(ElectionDeterminism, DifferentSeedsCoverManyWinners) {
  // The adversary genuinely controls the outcome: across seeds, multiple
  // different processes win.
  std::set<std::int64_t> winners;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    RandomScheduler scheduler(seed);
    const SimElectionReport report = run_sim_election(5, 24, scheduler);
    ASSERT_TRUE(report.outcomes[0].has_value());
    winners.insert(report.outcomes[0]->leader);
  }
  EXPECT_GE(winners.size(), 3u);
}

// ------------------------------------------------------------ ablation unit

TEST(ElectionAblation, FullPolicyNeverGivesUp) {
  SimElectionOptions options;  // defaults: full algorithm
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto crashes = sim::CrashPlan::random(24, 0.5, 15, rng);
    RandomScheduler scheduler(static_cast<std::uint64_t>(trial));
    const SimElectionReport report =
        run_sim_election(5, 24, scheduler, crashes, options);
    for (const auto& outcome : report.outcomes) {
      if (outcome.has_value()) {
        EXPECT_FALSE(outcome->gave_up);
      }
    }
    EXPECT_TRUE(verify_election(report).ok());
  }
}

TEST(ElectionAblation, AblatedPoliciesStaySafe) {
  // Removing helping may strand survivors (give-ups) but must never elect
  // two leaders or an unproposed one.
  for (const bool no_help : {true, false}) {
    SimElectionOptions options;
    options.policy.allow_incomplete = true;
    if (no_help) {
      options.policy.help_others = false;
    } else {
      options.policy.helper_confirm = false;
    }
    Rng rng(7);
    for (int trial = 0; trial < 15; ++trial) {
      const auto crashes = sim::CrashPlan::random(24, 0.5, 12, rng);
      RandomScheduler scheduler(100 + static_cast<std::uint64_t>(trial));
      const SimElectionReport report =
          run_sim_election(5, 24, scheduler, crashes, options);
      std::int64_t leader = kNoId;
      for (const auto& outcome : report.outcomes) {
        if (!outcome.has_value() || outcome->gave_up) continue;
        if (leader == kNoId) leader = outcome->leader;
        EXPECT_EQ(outcome->leader, leader);
        EXPECT_GE(outcome->leader, 1000);
        EXPECT_LT(outcome->leader, 1024);
      }
    }
  }
}

TEST(ElectionAblation, NoHelpOthersStrandsLosersWhenWinnersCrash) {
  // Deterministic stranding: let the pioneer install the first symbol and
  // crash; without helping, processes whose slots fell out of the race can
  // only give up.
  SimElectionOptions options;
  options.policy.help_others = false;
  options.policy.allow_incomplete = true;
  CrashPlan crashes;
  // p0 (slot 0, path 1.2.3) installs symbol 1 and dies; p1 (slot 1, path
  // 1.3.2) — the only other slot extending label ⊥.1 — never starts.  The
  // remaining slots cannot extend the label without helping.
  crashes.crash_before_op(0, 6);
  crashes.crash_before_op(1, 0);
  SoloScheduler scheduler;  // p0 runs first, alone
  const SimElectionReport report =
      run_sim_election(4, 6, scheduler, crashes, options);
  int gave_up = 0;
  for (const auto& outcome : report.outcomes) {
    if (outcome.has_value() && outcome->gave_up) ++gave_up;
  }
  EXPECT_GT(gave_up, 0);
}

// ----------------------------------------------------- composition extension

TEST(ComposedElection, CapacityMath) {
  EXPECT_EQ(composed_capacity(3, 1), 2u);
  EXPECT_EQ(composed_capacity(3, 2), 4u);
  EXPECT_EQ(composed_capacity(4, 2), 36u);
  EXPECT_EQ(composed_capacity(5, 3), 24u * 24 * 24);
  EXPECT_THROW(composed_capacity(3, 0), InvariantError);
}

class ComposedElectionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ComposedElectionSweep, ConsistentAndValid) {
  const auto [k, copies, n] = GetParam();
  for (const std::uint64_t seed : {2ULL, 11ULL, 31ULL}) {
    RandomScheduler scheduler(seed);
    const ComposedElectionReport report =
        run_composed_election(k, copies, n, scheduler);
    EXPECT_TRUE(report.consistent)
        << "k=" << k << " copies=" << copies << " seed=" << seed;
    EXPECT_TRUE(report.valid);
    EXPECT_EQ(report.run.finished_count(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, ComposedElectionSweep,
                         ::testing::Values(std::tuple{3, 2, 4},
                                           std::tuple{3, 3, 8},
                                           std::tuple{4, 2, 36},
                                           std::tuple{4, 3, 50},
                                           std::tuple{5, 2, 64}));

TEST(ComposedElection, SurvivorsAgreeUnderCrashes) {
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    const auto crashes = sim::CrashPlan::random(36, 0.4, 25, rng);
    RandomScheduler scheduler(500 + static_cast<std::uint64_t>(trial));
    const ComposedElectionReport report =
        run_composed_election(4, 2, 36, scheduler, crashes);
    EXPECT_TRUE(report.consistent) << "trial " << trial;
    EXPECT_TRUE(report.valid);
  }
}

TEST(ComposedElection, CrashStormAtEveryDepth) {
  // Deaths at every small depth must leave all stages of the composition
  // consistent: a process can die between winning stage i and entering
  // stage i+1, the classic partial-progress window.
  const int k = 4;
  const int copies = 2;
  const int n = 36;
  for (std::uint64_t t = 0; t < 12; ++t) {
    CrashPlan crashes;
    for (int pid = 0; pid < n; pid += 3) crashes.crash_before_op(pid, t);
    RandomScheduler scheduler(t * 23 + 9);
    const ComposedElectionReport report =
        run_composed_election(k, copies, n, scheduler, crashes);
    EXPECT_TRUE(report.consistent) << "t=" << t;
    EXPECT_TRUE(report.valid) << "t=" << t;
    EXPECT_GT(report.run.finished_count(), 0) << "t=" << t;
  }
}

TEST(ComposedElection, SharedDigitSlotsAreSafe) {
  // n > (k-1)!: several processes share a digit slot in every stage; the
  // same-value announce discipline keeps the stages sound.
  RandomScheduler scheduler(77);
  const ComposedElectionReport report =
      run_composed_election(3, 3, 8, scheduler);
  EXPECT_TRUE(report.consistent);
  ASSERT_TRUE(report.leaders[0].has_value());
  EXPECT_LT(*report.leaders[0], composed_capacity(3, 3));
}

TEST(ComposedElection, RejectsOverCapacity) {
  RoundRobinScheduler scheduler;
  EXPECT_THROW(run_composed_election(3, 2, 5, scheduler), InvariantError);
}

// ---------------------------------------------------------- LL/SC extension

class LlScElection : public ::testing::TestWithParam<int> {};

TEST_P(LlScElection, FullCapacityAllSchedulers) {
  const int k = GetParam();
  const int n = checked_cast<int>(slot_count(k));
  for (const std::uint64_t seed : {1ULL, 5ULL, 17ULL}) {
    RandomScheduler scheduler(seed);
    const LlScElectionReport report = run_llsc_election(k, n, scheduler);
    EXPECT_TRUE(report.consistent) << "k=" << k << " seed=" << seed;
    EXPECT_TRUE(report.valid);
    EXPECT_EQ(report.run.finished_count(), n);
  }
  RoundRobinScheduler round_robin;
  EXPECT_TRUE(run_llsc_election(k, n, round_robin).consistent);
  CasConvoyScheduler convoy(3);
  EXPECT_TRUE(run_llsc_election(k, n, convoy).consistent);
}

INSTANTIATE_TEST_SUITE_P(KSweep, LlScElection, ::testing::Values(3, 4, 5, 6));

TEST(LlScElectionCrash, SurvivorsDecide) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const auto crashes = sim::CrashPlan::random(24, 0.4, 20, rng);
    RandomScheduler scheduler(static_cast<std::uint64_t>(trial) * 13);
    const LlScElectionReport report =
        run_llsc_election(5, 24, scheduler, crashes);
    EXPECT_TRUE(report.consistent) << "trial " << trial;
    for (int pid = 0; pid < 24; ++pid) {
      if (report.run.outcomes[static_cast<std::size_t>(pid)] ==
          sim::ProcOutcome::kFinished) {
        EXPECT_TRUE(report.outcomes[static_cast<std::size_t>(pid)].has_value());
      }
    }
  }
}

TEST(LlScElectionCrash, CrashStormAtEveryDepth) {
  // Mirror of ElectionCrash.CrashStormAtEveryDepth on the LL/SC extension:
  // a third of the processes die before op t, for every small t.
  const int k = 5;
  const int n = 24;
  for (std::uint64_t t = 0; t < 12; ++t) {
    CrashPlan crashes;
    for (int pid = 0; pid < n; pid += 3) crashes.crash_before_op(pid, t);
    RandomScheduler scheduler(t * 19 + 5);
    const LlScElectionReport report =
        run_llsc_election(k, n, scheduler, crashes);
    EXPECT_TRUE(report.consistent) << "t=" << t;
    EXPECT_TRUE(report.valid) << "t=" << t;
    EXPECT_GT(report.run.finished_count(), 0) << "t=" << t;
  }
}

TEST(LlScElectionCrash, LoneSurvivorElectsItself) {
  const int k = 4;
  const int n = 6;
  CrashPlan crashes;
  for (int pid = 0; pid < n - 1; ++pid) crashes.crash_before_op(pid, 0);
  RoundRobinScheduler scheduler;
  const LlScElectionReport report =
      run_llsc_election(k, n, scheduler, crashes);
  ASSERT_TRUE(report.outcomes[n - 1].has_value());
  EXPECT_EQ(report.outcomes[n - 1]->leader, 1000 + n - 1);
}

// ------------------------------------------------------------- real threads

TEST(ConcurrentElection, RealThreadsAgree) {
  for (int trial = 0; trial < 20; ++trial) {
    const ConcurrentElectionReport report = run_concurrent_election(5, 24);
    EXPECT_TRUE(report.consistent) << "trial " << trial;
    EXPECT_GE(report.leader, 1000);
    EXPECT_LT(report.leader, 1024);
  }
}

TEST(ConcurrentElection, FullCapacityK6) {
  const ConcurrentElectionReport report = run_concurrent_election(6, 120);
  EXPECT_TRUE(report.consistent);
  for (const auto& outcome : report.outcomes) {
    EXPECT_EQ(outcome.leader, report.leader);
    EXPECT_LE(outcome.cas_accesses, max_iterations(6));
  }
}

TEST(ConcurrentElection, DomainViolationTrapped) {
  AtomicElectionMemory memory(3);
  EXPECT_THROW(memory.cas(0, 3), InvariantError);
}

}  // namespace
}  // namespace bss::core
