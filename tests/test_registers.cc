#include <gtest/gtest.h>

#include <algorithm>

#include "registers/cas_register_k.h"
#include "registers/fetch_add.h"
#include "registers/ll_sc.h"
#include "registers/mwmr_register.h"
#include "registers/rmw_register.h"
#include "registers/snapshot.h"
#include "registers/sticky.h"
#include "registers/swap_register.h"
#include "registers/swmr_register.h"
#include "registers/test_and_set.h"
#include "registers/write_once_rmw.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::sim {
namespace {

// Helper: run a single process body to completion under round-robin.
template <class Body>
RunReport run_solo(Body&& body) {
  SimEnv env;
  env.add_process(std::forward<Body>(body));
  RoundRobinScheduler sched;
  return env.run(sched);
}

TEST(CasRegisterK, MatchesPaperSemantics) {
  // c&s(a -> b): prev := r; if prev = a then r := b; return prev.
  CasRegisterK cas("c", 4);
  const auto report = run_solo([&](Ctx& ctx) {
    EXPECT_EQ(cas.compare_and_swap(ctx, 0, 2), 0);  // succeeds, ⊥ -> 2
    EXPECT_EQ(cas.compare_and_swap(ctx, 0, 3), 2);  // fails, returns current
    EXPECT_EQ(cas.compare_and_swap(ctx, 2, 1), 2);  // succeeds, 2 -> 1
    EXPECT_EQ(cas.read(ctx), 1);
  });
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(cas.history().size(), 2u);
  EXPECT_EQ(cas.history()[0].from, 0);
  EXPECT_EQ(cas.history()[0].to, 2);
  EXPECT_EQ(cas.history()[1].from, 2);
  EXPECT_EQ(cas.history()[1].to, 1);
}

TEST(CasRegisterK, EnforcesValueDomain) {
  CasRegisterK cas("c", 3);
  const auto report = run_solo([&](Ctx& ctx) {
    cas.compare_and_swap(ctx, 0, 3);  // 3 outside {0,1,2}
  });
  EXPECT_EQ(report.outcomes[0], ProcOutcome::kFailed);
  EXPECT_NE(report.errors[0].find("value domain"), std::string::npos);
}

TEST(CasRegisterK, RejectsTinyDomains) {
  EXPECT_THROW(CasRegisterK("c", 1), bss::InvariantError);
}

TEST(CasRegisterK, CountsAccessesPerProcess) {
  CasRegisterK cas("c", 3);
  SimEnv env;
  env.add_process([&](Ctx& ctx) {
    cas.compare_and_swap(ctx, 0, 1);
    cas.compare_and_swap(ctx, 1, 2);
  });
  env.add_process([&](Ctx& ctx) { (void)cas.read(ctx); });
  RoundRobinScheduler sched;
  env.run(sched);
  EXPECT_EQ(cas.accesses_by(0), 2u);
  EXPECT_EQ(cas.accesses_by(1), 1u);
  EXPECT_EQ(cas.total_accesses(), 3u);
  EXPECT_EQ(cas.accesses_by(7), 0u);
}

TEST(CasRegisterK, SuccessIsChangingTheValue) {
  // The paper: an operation succeeds if it *changes* the register.  A
  // c&s(a -> a) with value a changes nothing and must not enter the history.
  CasRegisterK cas("c", 3);
  run_solo([&](Ctx& ctx) {
    EXPECT_EQ(cas.compare_and_swap(ctx, 0, 0), 0);
    EXPECT_EQ(cas.compare_and_swap(ctx, 0, 1), 0);
  });
  EXPECT_EQ(cas.history().size(), 1u);
}

TEST(TestAndSet, ExactlyOneWinnerAmongContenders) {
  TestAndSet tas("t");
  SimEnv env;
  std::vector<int> winners;
  for (int pid = 0; pid < 5; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      if (!tas.test_and_set(ctx)) winners.push_back(pid);
    });
  }
  RandomScheduler sched(42);
  env.run(sched);
  EXPECT_EQ(winners.size(), 1u);
  EXPECT_TRUE(tas.peek());
}

TEST(FetchAdd, ReturnsDistinctTickets) {
  FetchAdd counter("n", 0);
  SimEnv env;
  std::vector<std::int64_t> tickets(8, -1);
  for (int pid = 0; pid < 8; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      tickets[static_cast<std::size_t>(pid)] = counter.fetch_add(ctx, 1);
    });
  }
  RandomScheduler sched(5);
  env.run(sched);
  std::sort(tickets.begin(), tickets.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(tickets[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(counter.peek(), 8);
}

TEST(StickyRegister, FirstProposalSticks) {
  StickyRegister sticky("s");
  SimEnv env;
  std::vector<std::int64_t> views(6, -2);
  for (int pid = 0; pid < 6; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      views[static_cast<std::size_t>(pid)] = sticky.propose(ctx, 100 + pid);
    });
  }
  RandomScheduler sched(9);
  env.run(sched);
  // Everyone saw the same stuck value, and it was someone's proposal.
  for (const auto view : views) EXPECT_EQ(view, views[0]);
  EXPECT_GE(views[0], 100);
  EXPECT_LT(views[0], 106);
}

TEST(RmwRegisterK, AppliesFunctionAtomically) {
  RmwRegisterK rmw("r", 5, 0);
  run_solo([&](Ctx& ctx) {
    EXPECT_EQ(rmw.read_modify_write(ctx, [](int v) { return v + 1; }), 0);
    EXPECT_EQ(rmw.read_modify_write(ctx, [](int v) { return v * 3; }), 1);
    EXPECT_EQ(rmw.read(ctx), 3);
  });
  EXPECT_EQ(rmw.history().size(), 2u);
}

TEST(RmwRegisterK, DomainEscapeTrapped) {
  RmwRegisterK rmw("r", 3, 0);
  const auto report = run_solo([&](Ctx& ctx) {
    rmw.read_modify_write(ctx, [](int) { return 3; });
  });
  EXPECT_EQ(report.outcomes[0], ProcOutcome::kFailed);
}

TEST(WriteOnceRmw, SecondChangeTrapped) {
  WriteOnceRmwK reg("w", 4, 0);
  const auto report = run_solo([&](Ctx& ctx) {
    reg.read_modify_write(ctx, [](int) { return 1; });
    reg.read_modify_write(ctx, [](int v) { return v; });  // read: fine
    reg.read_modify_write(ctx, [](int) { return 2; });    // second write
  });
  EXPECT_EQ(report.outcomes[0], ProcOutcome::kFailed);
  EXPECT_NE(report.errors[0].find("write-once"), std::string::npos);
  EXPECT_EQ(reg.peek(), 1);
  EXPECT_EQ(reg.writer(), 0);
}

TEST(LlSc, StoreConditionalFailsAfterInterveningSc) {
  LlScRegisterK reg("l", 4, 0);
  SimEnv env;
  bool first_sc_ok = false;
  bool second_sc_ok = true;
  // p0 LLs, then p1 LL+SCs, then p0's SC must fail.
  env.add_process([&](Ctx& ctx) {
    (void)reg.load_link(ctx);
    first_sc_ok = reg.store_conditional(ctx, 1);
  });
  env.add_process([&](Ctx& ctx) {
    (void)reg.load_link(ctx);
    second_sc_ok = reg.store_conditional(ctx, 2);
  });
  // Schedule: p0 LL, p1 LL, p1 SC, p0 SC.
  ReplayScheduler sched({0, 1, 1, 0});
  env.run(sched);
  EXPECT_TRUE(second_sc_ok);
  EXPECT_FALSE(first_sc_ok);
  EXPECT_EQ(reg.peek(), 2);
}

TEST(LlSc, ScWithoutLinkFails) {
  LlScRegisterK reg("l", 4, 0);
  run_solo([&](Ctx& ctx) {
    EXPECT_FALSE(reg.store_conditional(ctx, 1));
    (void)reg.load_link(ctx);
    EXPECT_TRUE(reg.store_conditional(ctx, 1));
  });
}

TEST(Snapshot, SoloScanSeesOwnUpdates) {
  AtomicSnapshot snap("s", 3);
  run_solo([&](Ctx& ctx) {
    snap.update(ctx, 0, 10);
    snap.update(ctx, 1, 20);
    const auto view = snap.scan(ctx);
    EXPECT_EQ(view, (std::vector<std::int64_t>{10, 20, 0}));
  });
}

TEST(Snapshot, SingleWriterDisciplineEnforced) {
  AtomicSnapshot snap("s", 2);
  SimEnv env;
  env.add_process([&](Ctx& ctx) { snap.update(ctx, 0, 1); });
  env.add_process([&](Ctx& ctx) { snap.update(ctx, 0, 2); });
  RoundRobinScheduler sched;
  const auto report = env.run(sched);
  int failed = 0;
  for (const auto outcome : report.outcomes) {
    if (outcome == ProcOutcome::kFailed) ++failed;
  }
  EXPECT_EQ(failed, 1);
}

// Linearizability of scans: under arbitrary interleavings, each component's
// scanned value sequence must be consistent with a monotone pass over that
// component's write sequence.  With each writer writing an increasing
// counter, every scan must be component-wise monotone w.r.t. earlier scans
// by any process (reads-from order), and must never see values out of order.
TEST(Snapshot, ScansAreMonotoneUnderContention) {
  constexpr int kWriters = 3;
  constexpr int kRounds = 5;
  AtomicSnapshot snap("s", kWriters);
  SimEnv env;
  std::vector<std::vector<std::int64_t>> scans;
  for (int w = 0; w < kWriters; ++w) {
    env.add_process([&, w](Ctx& ctx) {
      for (int round = 1; round <= kRounds; ++round) {
        snap.update(ctx, w, round);
        scans.push_back(snap.scan(ctx));
      }
    });
  }
  RandomScheduler sched(1234);
  const auto report = env.run(sched);
  EXPECT_TRUE(report.clean());
  // Every scanned value is a valid counter value, and scans sorted by their
  // completion order are not required to be pairwise ordered — but each
  // component can only ever increase across the same process's scans, which
  // the per-process push order preserves per writer loop.  Check values lie
  // in range and that the *final* state is the maximum everywhere.
  for (const auto& view : scans) {
    for (const auto value : view) {
      EXPECT_GE(value, 0);
      EXPECT_LE(value, kRounds);
    }
  }
  EXPECT_EQ(snap.peek(), (std::vector<std::int64_t>(kWriters, kRounds)));
}

// The wait-freedom of scan(): even with writers updating constantly, a scan
// finishes (borrowing an embedded view) — exercised by making one process
// scan while two others update in a tight loop.
TEST(Snapshot, ScanTerminatesUnderConstantMovement) {
  AtomicSnapshot snap("s", 3, /*enforce_single_writer=*/true);
  SimEnv env({.step_limit = 200000});
  std::vector<std::int64_t> view;
  env.add_process([&](Ctx& ctx) { view = snap.scan(ctx); });
  for (int w = 0; w < 2; ++w) {
    env.add_process([&, w](Ctx& ctx) {
      for (int i = 1; i <= 50; ++i) snap.update(ctx, w, i);
    });
  }
  // Adversarial: always prefer the writers over the scanner... but they
  // terminate, after which the scanner finishes.  Random is adversarial
  // enough to force borrowed views; assert the run is clean.
  RandomScheduler sched(777);
  const auto report = env.run(sched);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(view.size(), 3u);
}

TEST(Snapshot, ManyProcessesWhoseFirstActionScans) {
  // Regression: scan()/update() touch shared instrumentation before their
  // first sync; process startup must serialize those prefixes (a data race
  // here once crashed bench_primitives intermittently).
  for (int trial = 0; trial < 20; ++trial) {
    constexpr int kProcs = 8;
    AtomicSnapshot snap("s", kProcs);
    SimEnv env;
    for (int w = 0; w < kProcs; ++w) {
      env.add_process([&, w](Ctx& ctx) {
        snap.update(ctx, w, 1 + w);  // first action: embedded scan
      });
    }
    RandomScheduler sched(static_cast<std::uint64_t>(trial));
    const auto report = env.run(sched);
    ASSERT_TRUE(report.clean());
    for (int w = 0; w < kProcs; ++w) {
      EXPECT_EQ(snap.peek()[static_cast<std::size_t>(w)], 1 + w);
    }
  }
}

TEST(SwapRegister, ExchangesAtomically) {
  SwapRegister reg("s", 0);
  run_solo([&](Ctx& ctx) {
    EXPECT_EQ(reg.swap(ctx, 5), 0);
    EXPECT_EQ(reg.swap(ctx, 9), 5);
    EXPECT_EQ(reg.read(ctx), 9);
  });
  EXPECT_EQ(reg.peek(), 9);
}

TEST(SwapRegister, ExactlyOneProcessSeesTheInitialValue) {
  SwapRegister reg("s", 0);
  SimEnv env;
  std::vector<int> initial_holders;
  for (int pid = 0; pid < 6; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      if (reg.swap(ctx, pid + 1) == 0) initial_holders.push_back(pid);
    });
  }
  RandomScheduler sched(21);
  env.run(sched);
  EXPECT_EQ(initial_holders.size(), 1u);
}

TEST(MwmrRegister, LastWriteWins) {
  MwmrRegister<int> reg("m", 0);
  SimEnv env;
  env.add_process([&](Ctx& ctx) { reg.write(ctx, 1); });
  env.add_process([&](Ctx& ctx) { reg.write(ctx, 2); });
  ReplayScheduler sched({1, 0});
  env.run(sched);
  EXPECT_EQ(reg.peek(), 1);  // p1 wrote 2 first, then p0 overwrote with 1
}

}  // namespace
}  // namespace bss::sim
