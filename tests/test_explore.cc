#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mutant_elections.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "explore/snapshot_system.h"
#include "explore/system.h"
#include "registers/mwmr_register.h"

namespace bss::explore {
namespace {

// ------------------------------------------------------- commutation rule

TEST(OpsCommute, FootprintRule) {
  const sim::OpDesc read_a{"a", "read", 0, 0};
  const sim::OpDesc read_a2{"a", "read", 0, 0};
  const sim::OpDesc write_a{"a", "write", 1, 0};
  const sim::OpDesc write_b{"b", "write", 1, 0};
  const sim::OpDesc cas_a{"a", "cas", 0, 1};
  EXPECT_TRUE(ops_commute(read_a, read_a2));   // both read same object
  EXPECT_TRUE(ops_commute(write_a, write_b));  // different objects
  EXPECT_FALSE(ops_commute(read_a, write_a));  // read/write same object
  EXPECT_FALSE(ops_commute(write_a, cas_a));   // write/cas same object
  EXPECT_FALSE(ops_commute(cas_a, cas_a));     // cas/cas same object
}

// --------------------------------------------- exhaustive correct systems

TEST(Explore, ExhaustiveTwoProcessOneShotElection) {
  OneShotSystem system(4, 2);
  ExploreOptions options;
  options.use_por = false;  // count the raw interleavings exactly
  const ExploreResult result = explore(system, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_TRUE(result.exhausted);
  // Each process performs exactly 3 shared ops: C(6,3) = 20 interleavings.
  EXPECT_EQ(result.stats.schedules, 20u);
}

TEST(Explore, ExhaustiveThreeProcessOneShotElection) {
  OneShotSystem system(4, 3);
  const ExploreResult result = explore(system);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_TRUE(result.exhausted);
  EXPECT_GT(result.stats.schedules, 0u);
  // 9 steps, 3 per process: 9!/(3!)^3 = 1680 raw interleavings; the sleep
  // sets must not need more than that.
  EXPECT_LE(result.stats.schedules, 1680u);
}

TEST(Explore, ExhaustiveTwoProcessLlScElection) {
  LlScSystem system(3, 2);
  ExploreOptions options;
  options.max_schedules = 2'000'000;
  const ExploreResult result = explore(system, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_TRUE(result.exhausted);
}

TEST(Explore, BoundedFvtElectionCleanUnderThreePreemptions) {
  FvtSystem system(3, 2);
  ExploreOptions options;
  options.preemption_bound = 3;
  options.iterative = true;
  const ExploreResult result = explore(system, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_GT(result.stats.schedules, 0u);
}

TEST(Explore, BoundedSnapshotScansLinearizable) {
  SnapshotScanSystem system(2, 1);
  ExploreOptions options;
  options.preemption_bound = 2;
  options.iterative = true;
  const ExploreResult result = explore(system, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_GT(result.stats.schedules, 0u);
}

// --------------------------------------------------- preemption bounding

TEST(Explore, PreemptionBoundZeroMeansSerialSchedules) {
  OneShotSystem system(4, 2);
  ExploreOptions options;
  options.use_por = false;
  options.preemption_bound = 0;
  const ExploreResult result = explore(system, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  // Budget 0 forbids switching away from a runnable process: the only
  // schedules are "p0 to completion, then p1" and the reverse.
  EXPECT_EQ(result.stats.schedules, 2u);
  EXPECT_FALSE(result.exhausted);  // the budget cut branches
  EXPECT_GT(result.stats.preemption_prunes, 0u);
}

// ------------------------------------------------ partial-order reduction

/// Three processes, each writing twice to its own private register: every
/// pair of pending operations commutes, so one schedule represents them all.
class CommutingState {
 public:
  CommutingState() {
    for (int pid = 0; pid < 3; ++pid) {
      regs_.emplace_back("r" + std::to_string(pid), 0);
    }
  }
  sim::MwmrRegister<int>& reg(int pid) {
    return regs_[static_cast<std::size_t>(pid)];
  }

 private:
  std::vector<sim::MwmrRegister<int>> regs_;
};

FactorySystem commuting_system() {
  return FactorySystem("commuting", 3, [] {
    return std::make_unique<StatefulInstance<CommutingState>>(
        std::make_unique<CommutingState>(),
        [](CommutingState& state, sim::SimEnv& env) {
          for (int pid = 0; pid < 3; ++pid) {
            env.add_process([&state, pid](sim::Ctx& ctx) {
              state.reg(pid).write(ctx, 1);
              state.reg(pid).write(ctx, 2);
            });
          }
        },
        [](CommutingState&, const sim::SimEnv&,
           const sim::RunReport& report) -> std::optional<std::string> {
          if (!report.clean()) return "run not clean";
          return std::nullopt;
        });
  });
}

TEST(Explore, SleepSetsBeatNaiveDfsOnCommutingWorkload) {
  const FactorySystem system = commuting_system();

  ExploreOptions naive;
  naive.use_por = false;
  const ExploreResult naive_result = explore(system, naive);
  EXPECT_TRUE(naive_result.ok());
  EXPECT_TRUE(naive_result.exhausted);
  // 6 steps, 2 per process: 6!/(2!)^3 = 90 interleavings, all distinct.
  EXPECT_EQ(naive_result.stats.schedules, 90u);

  const ExploreResult por_result = explore(system);  // POR on by default
  EXPECT_TRUE(por_result.ok());
  EXPECT_TRUE(por_result.exhausted);
  EXPECT_LT(por_result.stats.schedules, naive_result.stats.schedules);
  EXPECT_GT(por_result.stats.sleep_set_prunes, 0u);
  EXPECT_LT(por_result.stats.transitions, naive_result.stats.transitions);
}

// ------------------------------------------------------- mutant refutation

/// Every seeded mutant must be refuted with a shrunk counterexample that
/// ReplayScheduler re-executes verbatim (zero divergences) to the same
/// violation.
void expect_refuted(const ExplorableSystem& system,
                    const ExploreOptions& options) {
  const ExploreResult result = explore(system, options);
  ASSERT_FALSE(result.ok())
      << system.name() << " survived exploration: " << result.summary();
  const Counterexample& cex = result.violations.front();
  EXPECT_FALSE(cex.violation.empty());
  EXPECT_LE(cex.decisions.size(), 30u)
      << system.name() << ": minimized trace is too long";
  EXPECT_LE(cex.decisions.size(), cex.shrunk_from);

  const ReplayOutcome replay = replay_counterexample(system, cex);
  EXPECT_TRUE(replay.violated)
      << system.name() << ": counterexample does not reproduce";
  EXPECT_EQ(replay.divergences, 0u)
      << system.name() << ": replay needed the fallback";
  EXPECT_EQ(replay.violation, cex.violation);
}

TEST(Explore, CatchesClaimAfterCasMutant) {
  OneShotSystem system(4, 3, core::OneShotMutant::kClaimAfterCas);
  expect_refuted(system, {});
}

TEST(Explore, CatchesSplitCasMutant) {
  OneShotSystem system(4, 2, core::OneShotMutant::kSplitCas);
  expect_refuted(system, {});
}

TEST(Explore, CatchesScBlindLlScMutant) {
  LlScSystem system(3, 2, /*sc_blind=*/true);
  expect_refuted(system, {});
}

TEST(Explore, IterativeBoundingFindsSplitCasWithFewPreemptions) {
  OneShotSystem system(4, 2, core::OneShotMutant::kSplitCas);
  ExploreOptions options;
  options.preemption_bound = 2;
  options.iterative = true;
  expect_refuted(system, options);
}

// ------------------------------------------------------ artifact handling

TEST(Explore, ArtifactRoundTripsAndReplays) {
  OneShotSystem system(4, 2, core::OneShotMutant::kSplitCas);
  const ExploreResult result = explore(system);
  ASSERT_FALSE(result.ok());
  const Counterexample& cex = result.violations.front();

  const std::string text = cex.to_artifact();
  const auto parsed = Counterexample::from_artifact(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->system, system.name());
  EXPECT_EQ(parsed->processes, 2);
  EXPECT_EQ(parsed->decisions, cex.decisions);
  EXPECT_EQ(parsed->violation, cex.violation);

  const ReplayOutcome replay = replay_counterexample(system, *parsed);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);
}

TEST(Explore, StaleArtifactIsReportedThroughDivergences) {
  OneShotSystem system(4, 2, core::OneShotMutant::kSplitCas);
  const ExploreResult result = explore(system);
  ASSERT_FALSE(result.ok());
  Counterexample stale = result.violations.front();
  ASSERT_GE(stale.decisions.size(), 2u);
  stale.decisions.resize(stale.decisions.size() - 2);  // truncate the tape
  const ReplayOutcome replay = replay_counterexample(system, stale);
  // The run still completes (fallback), but the divergence count exposes
  // that the tape no longer drives it end to end.
  EXPECT_GT(replay.divergences, 0u);
}

TEST(Explore, ArtifactParserRejectsGarbage) {
  EXPECT_FALSE(Counterexample::from_artifact("not an artifact").has_value());
  EXPECT_FALSE(
      Counterexample::from_artifact("bss-counterexample v1\nwat\n").has_value());
  EXPECT_FALSE(
      Counterexample::from_artifact("bss-counterexample v1\nsystem: x\n")
          .has_value());
}

// ----------------------------------------------------------- minimization

TEST(Explore, MinimizationOnlyShrinks) {
  OneShotSystem system(4, 3, core::OneShotMutant::kClaimAfterCas);
  ExploreOptions options;
  options.minimize = false;
  const ExploreResult raw = explore(system, options);
  ASSERT_FALSE(raw.ok());
  ExploreStats stats;
  const Counterexample shrunk =
      minimize_counterexample(system, raw.violations.front(), options, &stats);
  EXPECT_LE(shrunk.decisions.size(), shrunk.shrunk_from);
  EXPECT_GT(stats.shrink_runs, 0u);
  const ReplayOutcome replay = replay_counterexample(system, shrunk);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);
}

}  // namespace
}  // namespace bss::explore
