// The kill-and-resume battery for `bss-checkpoint v1`.
//
// The durability contract under test: a campaign that is killed after any
// periodic checkpoint and resumed from the artifact must end byte-identical
// to an uninterrupted serial run — same stats summary, same exhausted
// verdict, same violations with the same minimized tapes.  The kill is the
// deterministic halt_after_checkpoints valve (the engine stops dead right
// after a periodic write, exactly what a SIGKILL leaves behind); CI
// additionally delivers a real SIGKILL through bench_explore.  On top of
// the resume loops: artifact round-trip byte-equality, and strict rejection
// of malformed inputs (unknown schema, truncation, missing keys,
// out-of-range pid tokens, structural lies).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/mutant_elections.h"
#include "explore/checkpoint.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "explore/skewed_system.h"
#include "obs/json.h"
#include "util/checked.h"

namespace bss::explore {
namespace {

using core::OneShotMutant;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void expect_identical(const ExploreResult& serial, const ExploreResult& other,
                      const std::string& label) {
  EXPECT_EQ(serial.stats.summary(), other.stats.summary()) << label;
  EXPECT_EQ(serial.exhausted, other.exhausted) << label;
  ASSERT_EQ(serial.violations.size(), other.violations.size()) << label;
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].to_artifact(),
              other.violations[i].to_artifact())
        << label << " violation " << i;
  }
}

/// Runs the campaign to completion through repeated kill-and-resume cycles:
/// every cycle halts right after ONE periodic checkpoint (dropping the
/// engine and all in-memory state on the floor, like a SIGKILL would), then
/// the next cycle resumes from the artifact.  Returns the final,
/// non-halted result.
ExploreResult run_killed_campaign(const ExplorableSystem& system,
                                  ExploreOptions options,
                                  const std::string& path,
                                  std::uint64_t checkpoint_every,
                                  int* cycles_out = nullptr) {
  options.checkpoint_path = path;
  options.checkpoint_every = checkpoint_every;
  options.halt_after_checkpoints = 1;
  int cycles = 0;
  for (; cycles < 1000; ++cycles) {
    ExploreOptions attempt = options;
    attempt.resume_path = cycles == 0 ? "" : path;
    const ExploreResult result = explore(system, attempt);
    if (!result.halted) {
      if (cycles_out != nullptr) *cycles_out = cycles;
      return result;
    }
    EXPECT_EQ(result.checkpoints_written, 1u)
        << "a halted cycle writes exactly the one periodic checkpoint";
  }
  ADD_FAILURE() << "campaign did not converge within 1000 resume cycles";
  if (cycles_out != nullptr) *cycles_out = cycles;
  return ExploreResult{};
}

// ------------------------------------------------------ artifact round-trip

TEST(Checkpoint, CompleteArtifactRoundTripsByteIdentical) {
  const std::string path = temp_path("cp_roundtrip.json");
  OneShotSystem system(4, 3);
  ExploreOptions options;
  options.checkpoint_path = path;
  const ExploreResult result = explore(system, options);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.checkpoints_written, 1u);  // just the final artifact

  const std::string text = read_file(path);
  EXPECT_TRUE(validate_checkpoint(text).empty());
  const auto cp = Checkpoint::from_artifact(text);
  ASSERT_TRUE(cp.has_value());
  EXPECT_TRUE(cp->complete);
  EXPECT_TRUE(cp->frontier.empty());
  EXPECT_EQ(cp->system, system.name());
  EXPECT_EQ(cp->stats.schedules, result.stats.schedules);
  EXPECT_EQ(cp->to_artifact(), text);  // byte-identical round trip
}

TEST(Checkpoint, HaltedArtifactWithFrontierRoundTripsByteIdentical) {
  const std::string path = temp_path("cp_frontier.json");
  OneShotSystem system(4, 3);
  ExploreOptions options;
  options.use_por = false;  // 1680 schedules: the halt valve actually fires
  options.checkpoint_path = path;
  options.checkpoint_every = 30;
  options.halt_after_checkpoints = 1;
  const ExploreResult result = explore(system, options);
  ASSERT_TRUE(result.halted);

  const std::string text = read_file(path);
  EXPECT_TRUE(validate_checkpoint(text).empty());
  const auto cp = Checkpoint::from_artifact(text);
  ASSERT_TRUE(cp.has_value());
  EXPECT_FALSE(cp->complete);
  ASSERT_FALSE(cp->frontier.empty());
  EXPECT_EQ(cp->to_artifact(), text);
}

// ------------------------------------------------------ kill-and-resume

TEST(Checkpoint, KillAndResumeCleanCampaignByteIdentical) {
  // The skewed workload defeats POR entirely (504 schedules), so the
  // campaign is killed and resumed many times before it completes.
  SkewedWriterSystem system(4, 6, 1);
  const ExploreResult uninterrupted = explore(system, {});
  int cycles = 0;
  const ExploreResult resumed = run_killed_campaign(
      system, {}, temp_path("cp_clean.json"), 40, &cycles);
  EXPECT_GE(cycles, 2) << "the campaign must actually be killed mid-flight";
  expect_identical(uninterrupted, resumed, "clean kill-and-resume");
}

TEST(Checkpoint, KillAndResumeCollectAllMutantCampaignByteIdentical) {
  OneShotSystem system(4, 2, OneShotMutant::kSplitCas);
  ExploreOptions options;
  options.use_por = false;  // enough schedules for several kill cycles
  options.stop_at_first_violation = false;
  options.max_violations = 8;
  const ExploreResult uninterrupted = explore(system, options);
  ASSERT_FALSE(uninterrupted.ok());
  int cycles = 0;
  const ExploreResult resumed = run_killed_campaign(
      system, options, temp_path("cp_mutant.json"), 5, &cycles);
  EXPECT_GE(cycles, 1);
  expect_identical(uninterrupted, resumed, "collect-all kill-and-resume");
}

TEST(Checkpoint, KillAndResumeCrashRestartCampaignByteIdentical) {
  OneShotSystem system(4, 2, OneShotMutant::kNone, /*restartable=*/true);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  const ExploreResult uninterrupted = explore(system, options);
  int cycles = 0;
  const ExploreResult resumed = run_killed_campaign(
      system, options, temp_path("cp_faults.json"), 25, &cycles);
  EXPECT_GE(cycles, 2);
  expect_identical(uninterrupted, resumed, "crash-restart kill-and-resume");
}

TEST(Checkpoint, KillAndResumeWithFourWorkersByteIdentical) {
  OneShotSystem system(4, 3);
  ExploreOptions options;
  options.use_por = false;  // 1680 schedules
  const ExploreResult uninterrupted = explore(system, options);  // serial
  options.jobs = 4;
  const ExploreResult resumed = run_killed_campaign(
      system, options, temp_path("cp_jobs4.json"), 80);
  expect_identical(uninterrupted, resumed, "jobs=4 kill-and-resume");
}

TEST(Checkpoint, ResumeFromCompleteArtifactReproducesTheResult) {
  const std::string path = temp_path("cp_complete.json");
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  ExploreOptions options;
  options.checkpoint_path = path;
  const ExploreResult first = explore(system, options);
  ASSERT_FALSE(first.ok());

  ExploreOptions again = options;
  again.resume_path = path;
  const ExploreResult second = explore(system, again);
  EXPECT_FALSE(second.halted);
  expect_identical(first, second, "resume from complete artifact");
}

// ------------------------------------------------------ resume validation

TEST(Checkpoint, ResumeRejectsDifferentSystem) {
  const std::string path = temp_path("cp_wrong_system.json");
  OneShotSystem system(4, 3);
  ExploreOptions options;
  options.checkpoint_path = path;
  explore(system, options);

  OneShotSystem other(4, 2);
  ExploreOptions resume;
  resume.resume_path = path;
  resume.checkpoint_path = path;
  EXPECT_THROW(explore(other, resume), InvariantError);
}

TEST(Checkpoint, ResumeRejectsDifferentResultAffectingOptions) {
  const std::string path = temp_path("cp_wrong_options.json");
  OneShotSystem system(4, 3);
  ExploreOptions options;
  options.checkpoint_path = path;
  explore(system, options);

  ExploreOptions resume = options;
  resume.resume_path = path;
  resume.use_por = false;  // result-affecting: must be rejected
  EXPECT_THROW(explore(system, resume), InvariantError);

  ExploreOptions benign = options;
  benign.resume_path = path;
  benign.jobs = 4;        // scheduling knob: excluded from the fingerprint
  benign.steal_depth = 2;
  EXPECT_FALSE(explore(system, benign).halted);
}

TEST(Checkpoint, StaticEngineRejectsCheckpointOptions) {
  OneShotSystem system(4, 3);
  ExploreOptions options;
  options.steal = false;
  options.checkpoint_path = temp_path("cp_static.json");
  EXPECT_THROW(explore(system, options), InvariantError);
}

// --------------------------------------------------- malformed artifacts

/// A real halted artifact (non-empty frontier) to corrupt.
const std::string& frontier_artifact() {
  static const std::string text = [] {
    const std::string path = temp_path("cp_donor.json");
    OneShotSystem system(4, 3);
    ExploreOptions options;
    options.use_por = false;  // big enough that the halt valve fires
    options.checkpoint_path = path;
    options.checkpoint_every = 30;
    options.halt_after_checkpoints = 1;
    const ExploreResult result = explore(system, options);
    expects(result.halted, "donor campaign must halt mid-flight");
    return read_file(path);
  }();
  return text;
}

/// Parses the donor artifact, applies `mutate` to the root object, and
/// returns the re-dumped document.
template <class Fn>
std::string mutated_artifact(Fn mutate) {
  auto value = obs::json::Value::parse(frontier_artifact());
  expects(value.has_value(), "donor artifact must parse");
  mutate(value->as_object());
  return value->dump(2) + "\n";
}

void expect_rejected(const std::string& text, const std::string& label) {
  std::string error;
  EXPECT_FALSE(Checkpoint::from_artifact(text, &error).has_value()) << label;
  EXPECT_FALSE(error.empty()) << label;
  EXPECT_FALSE(validate_checkpoint(text).empty()) << label;
}

TEST(Checkpoint, RejectsUnknownSchemaVersion) {
  expect_rejected(mutated_artifact([](obs::json::Object& root) {
                    root["schema"] = obs::json::Value("bss-checkpoint v2");
                  }),
                  "unknown version");
  expect_rejected(mutated_artifact([](obs::json::Object& root) {
                    root.erase("schema");
                  }),
                  "missing schema");
}

TEST(Checkpoint, RejectsTruncatedDocument) {
  const std::string& text = frontier_artifact();
  expect_rejected(text.substr(0, text.size() / 2), "truncated JSON");
  expect_rejected("", "empty document");
  expect_rejected("not json at all\n", "garbage");
}

TEST(Checkpoint, RejectsMissingAndUnknownKeys) {
  expect_rejected(mutated_artifact([](obs::json::Object& root) {
                    root.erase("frontier");
                  }),
                  "missing frontier");
  expect_rejected(mutated_artifact([](obs::json::Object& root) {
                    root.erase("stats");
                  }),
                  "missing stats");
  expect_rejected(mutated_artifact([](obs::json::Object& root) {
                    root["extra"] = obs::json::Value(1);
                  }),
                  "unknown key");
}

TEST(Checkpoint, RejectsOutOfRangePidTokens) {
  const auto poison_first_chosen = [](const char* token) {
    return [token](obs::json::Object& root) {
      auto& frontier = root.at("frontier").as_array();
      for (auto& unit : frontier) {
        auto& frames = unit.as_object().at("frames").as_array();
        if (frames.empty()) continue;
        frames.front().as_object()["chosen"] = obs::json::Value(token);
        return;
      }
      expects(false, "donor frontier has no frames to poison");
    };
  };
  // pid >= the artifact's own process count
  expect_rejected(mutated_artifact(poison_first_chosen("7")),
                  "pid past process count");
  // pid past the dense-encoding ceiling
  expect_rejected(mutated_artifact(poison_first_chosen("c999999999999")),
                  "pid past encoding ceiling");
  expect_rejected(mutated_artifact(poison_first_chosen("x1")),
                  "unknown action prefix");
}

TEST(Checkpoint, RejectsStructuralLies) {
  // complete campaign with a non-empty frontier
  expect_rejected(mutated_artifact([](obs::json::Object& root) {
                    root["complete"] = obs::json::Value(true);
                  }),
                  "complete with outstanding frontier");
  // floor past the frame stack
  expect_rejected(mutated_artifact([](obs::json::Object& root) {
                    auto& frontier = root.at("frontier").as_array();
                    for (auto& unit : frontier) {
                      auto& obj = unit.as_object();
                      const auto frames =
                          obj.at("frames").as_array().size();
                      obj["floor"] = obs::json::Value(
                          static_cast<std::uint64_t>(frames + 1));
                      return;
                    }
                  }),
                  "floor past frame stack");
}

TEST(Checkpoint, WriteIsAtomicReplacement) {
  const std::string path = temp_path("cp_atomic.json");
  {
    std::ofstream out(path, std::ios::binary);
    out << "previous contents";
  }
  ASSERT_TRUE(write_checkpoint_file(path, "new contents\n"));
  EXPECT_EQ(read_file(path), "new contents\n");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "the temp file must not survive the rename";
}

// ---------------------------------------------------------------------------
// Fuzz-corpus regressions.  tools/fuzz/corpus/checkpoint holds the seed and
// harvested inputs for fuzz_checkpoint; replaying them here keeps every
// malformed shape a named, debuggable regression even without the fuzz
// driver.  BSS_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt.

std::string read_corpus_file(const std::string& name) {
  const std::string path =
      std::string(BSS_FUZZ_CORPUS_DIR) + "/checkpoint/" + name;
  std::ifstream stream(path, std::ios::binary);
  EXPECT_TRUE(stream.is_open()) << "missing corpus file: " << path;
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

TEST(CheckpointCorpus, RealCampaignSeedRoundTripsByteIdentical) {
  const std::string text = read_corpus_file("campaign.json");
  std::string error;
  const auto parsed = Checkpoint::from_artifact(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->to_artifact(), text)
      << "a bench_explore-written checkpoint must already be canonical";
}

TEST(CheckpointCorpus, TruncatedRealArtifactIsRejectedWithReason) {
  const std::string text = read_corpus_file("truncated.json");
  std::string error;
  EXPECT_FALSE(Checkpoint::from_artifact(text, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointCorpus, SchemaOnlyDocumentIsRejectedWithReason) {
  const std::string text = read_corpus_file("schema_only.json");
  std::string error;
  EXPECT_FALSE(Checkpoint::from_artifact(text, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointCorpus, EveryCorpusFileParsesOrRejectsWithoutCrashing) {
  const std::string dir = std::string(BSS_FUZZ_CORPUS_DIR) + "/checkpoint";
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++seen;
    std::ifstream stream(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    const std::string text = buffer.str();
    std::string error;
    const auto parsed = Checkpoint::from_artifact(text, &error);
    // The fuzz_checkpoint oracles: gate/parse agreement, reasons on
    // rejection, to_artifact a fixed point on acceptance.
    EXPECT_EQ(parsed.has_value(), validate_checkpoint(text).empty())
        << entry.path();
    if (!parsed.has_value()) {
      EXPECT_FALSE(error.empty()) << entry.path();
      continue;
    }
    const std::string round = parsed->to_artifact();
    const auto reparsed = Checkpoint::from_artifact(round, &error);
    ASSERT_TRUE(reparsed.has_value()) << entry.path() << ": " << error;
    EXPECT_EQ(reparsed->to_artifact(), round) << entry.path();
  }
  EXPECT_GE(seen, 3u) << "corpus dir unexpectedly empty: " << dir;
}

}  // namespace
}  // namespace bss::explore
