// Error-path coverage for tools/report_check, the CI artifact gate.  The
// gate runs as a child process (exactly how CI invokes it), so these tests
// pin the exit-code contract: 0 only when every named artifact validates,
// 1 on any schema finding, 2 on usage errors.  The binary path comes from
// tests/CMakeLists.txt via BSS_REPORT_CHECK_BIN ($<TARGET_FILE:...>), the
// well-formed inputs from the checked-in fuzz corpus.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

std::filesystem::path temp_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "bss_report_check_test";
  std::filesystem::create_directories(dir);
  return dir;
}

std::string write_artifact(const std::string& name, const std::string& text) {
  const auto path = temp_dir() / name;
  std::ofstream out(path, std::ios::binary);
  out << text;
  return path.string();
}

// Runs report_check on the given arguments and returns its exit status
// (-1 when the child did not exit normally).  Output is discarded — the
// exit code is the CI contract under test.
int run_report_check(const std::string& arguments) {
  const std::string command = std::string(BSS_REPORT_CHECK_BIN) + " " +
                              arguments + " >/dev/null 2>&1";
  const int raw = std::system(command.c_str());
  if (raw == -1) return -1;
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string corpus(const std::string& relative) {
  return std::string(BSS_FUZZ_CORPUS_DIR) + "/" + relative;
}

TEST(ReportCheck, NoArgumentsIsAUsageError) {
  EXPECT_EQ(run_report_check(""), 2);
}

TEST(ReportCheck, MissingFileFails) {
  EXPECT_EQ(run_report_check(temp_dir().string() + "/no_such_file.json"), 1);
}

TEST(ReportCheck, ValidRunreportAndCheckpointPass) {
  EXPECT_EQ(run_report_check(corpus("runreport/minimal.json")), 0);
  EXPECT_EQ(run_report_check(corpus("runreport/faults.json")), 0);
  EXPECT_EQ(run_report_check(corpus("checkpoint/campaign.json")), 0);
  // Dispatch is per file: both schemas in one invocation.
  EXPECT_EQ(run_report_check(corpus("runreport/minimal.json") + " " +
                             corpus("checkpoint/campaign.json")),
            0);
}

TEST(ReportCheck, TruncatedJsonFails) {
  EXPECT_EQ(run_report_check(corpus("runreport/truncated.json")), 1);
  EXPECT_EQ(run_report_check(corpus("checkpoint/truncated.json")), 1);
}

TEST(ReportCheck, DuplicateKeysFail) {
  // The canonical-JSON parser refuses duplicate keys outright, so the gate
  // reports a parse failure rather than silently keeping either value.
  EXPECT_EQ(run_report_check(corpus("runreport/duplicate_key.json")), 1);
}

TEST(ReportCheck, NonFiniteScheduleRateFails) {
  // 1e999 overflows double: the parser rejects the document, so an
  // infinite schedules/s can never sneak into a dashboard.
  EXPECT_EQ(run_report_check(corpus("runreport/huge_number.json")), 1);
  // NaN spelled as a bare token is not JSON at all.
  const std::string nan_path = write_artifact(
      "nan_rate.json",
      "{\"schema\": \"bss-runreport v1\", "
      "\"timing\": {\"schedules_per_second\": NaN}}");
  EXPECT_EQ(run_report_check(nan_path), 1);
  // A stringly-typed or negative rate parses as JSON but fails the
  // runreport validator's timing checks.
  const std::string typed_path = write_artifact(
      "string_rate.json",
      "{\"schema\": \"bss-runreport v1\", "
      "\"timing\": {\"schedules_per_second\": \"fast\"}}");
  EXPECT_EQ(run_report_check(typed_path), 1);
  const std::string negative_path = write_artifact(
      "negative_rate.json",
      "{\"schema\": \"bss-runreport v1\", "
      "\"timing\": {\"schedules_per_second\": -1.0}}");
  EXPECT_EQ(run_report_check(negative_path), 1);
}

TEST(ReportCheck, UnknownArtifactSniffsFail) {
  // Unknown schema string: dispatched to the runreport validator, which
  // rejects the version rather than guessing.
  const std::string future = write_artifact(
      "future_schema.json", "{\"schema\": \"bss-runreport v99\"}");
  EXPECT_EQ(run_report_check(future), 1);
  // Missing schema key entirely.
  const std::string missing =
      write_artifact("missing_schema.json", "{\"rows\": []}");
  EXPECT_EQ(run_report_check(missing), 1);
  // Not JSON at all.
  const std::string garbage =
      write_artifact("garbage.json", "bss-counterexample v1\n");
  EXPECT_EQ(run_report_check(garbage), 1);
}

TEST(ReportCheck, ValidStatusHeartbeatsPass) {
  EXPECT_EQ(run_report_check(corpus("status/minimal.json")), 0);
  // Real snapshots captured from a jobs=4 campaign and a soak run: workers,
  // profile, and timing sections all populated.
  EXPECT_EQ(run_report_check(corpus("status/explore_midrun.json")), 0);
  EXPECT_EQ(run_report_check(corpus("status/soak_complete.json")), 0);
  // Dispatch is per file: a heartbeat and a runreport in one invocation.
  EXPECT_EQ(run_report_check(corpus("status/minimal.json") + " " +
                             corpus("runreport/minimal.json")),
            0);
}

TEST(ReportCheck, TruncatedStatusFails) {
  EXPECT_EQ(run_report_check(corpus("status/truncated.json")), 1);
}

TEST(ReportCheck, NegativeStatusRateFails) {
  // schedules/s below zero is a producer bug, not noise — bss_top would
  // render it as a countdown.
  EXPECT_EQ(run_report_check(corpus("status/negative_rate.json")), 1);
}

TEST(ReportCheck, UnknownStatusKeysFail) {
  // Extra top-level and progress keys both trip the closed-schema check.
  EXPECT_EQ(run_report_check(corpus("status/unknown_key.json")), 1);
  // States outside running/complete (and worker states outside
  // running/stealing/idle) are rejected rather than rendered verbatim.
  EXPECT_EQ(run_report_check(corpus("status/bad_state.json")), 1);
}

TEST(ReportCheck, StaleStatusAgeLieFails) {
  // A negative checkpoint_age_ms claims the checkpoint is from the future.
  EXPECT_EQ(run_report_check(corpus("status/stale_age.json")), 1);
}

TEST(ReportCheck, OneBadFileFailsTheWholeInvocation) {
  EXPECT_EQ(run_report_check(corpus("runreport/minimal.json") + " " +
                             corpus("runreport/truncated.json")),
            1);
}

}  // namespace
