#include <gtest/gtest.h>

#include "game/exhaustive.h"
#include "game/game.h"
#include "game/potential.h"
#include "game/strategy.h"
#include "util/checked.h"

namespace bss::game {
namespace {

TEST(Game, BoundIsMToTheK) {
  EXPECT_EQ(MoveJumpGame(2, 2).bound(), 4u);
  EXPECT_EQ(MoveJumpGame(3, 2).bound(), 8u);
  EXPECT_EQ(MoveJumpGame(4, 3).bound(), 81u);
  EXPECT_EQ(MoveJumpGame(5, 1).bound(), 1u);
}

TEST(Game, MovePaintsAndCounts) {
  MoveJumpGame game(3, 1, 2);
  EXPECT_TRUE(game.move(0, 1));
  EXPECT_TRUE(game.edge_painted(2, 1));
  EXPECT_FALSE(game.edge_painted(1, 2));
  EXPECT_EQ(game.move_count(), 1u);
  EXPECT_EQ(game.position(0), 1);
}

TEST(Game, CycleClosingMoveEndsGameUncounted) {
  MoveJumpGame game(2, 1, 1);
  EXPECT_TRUE(game.move(0, 0));   // paints 1 -> 0
  EXPECT_FALSE(game.move(0, 1));  // 0 -> 1 would close the 2-cycle
  EXPECT_TRUE(game.cycle_closed());
  EXPECT_EQ(game.move_count(), 1u);
  EXPECT_FALSE(game.can_move(0, 1));  // game over
}

TEST(Game, RepaintingAnEdgeIsLegalAndCounts) {
  MoveJumpGame game(3, 2, 2);
  EXPECT_TRUE(game.move(0, 1));
  EXPECT_TRUE(game.move(1, 1));  // same edge 2 -> 1 again
  EXPECT_EQ(game.move_count(), 2u);
  EXPECT_FALSE(game.cycle_closed());
}

TEST(Game, JumpRequiresAnotherAgentsMove) {
  MoveJumpGame game(3, 2, 2);
  EXPECT_FALSE(game.can_jump(1, 0));  // nobody moved into 0 yet
  EXPECT_TRUE(game.move(0, 0));       // agent 0 moves 2 -> 0
  EXPECT_TRUE(game.can_jump(1, 0));   // now agent 1 may jump there
  EXPECT_FALSE(game.can_jump(0, 0));  // not the mover itself (and it's there)
  game.jump(1, 0);
  EXPECT_EQ(game.position(1), 0);
  // Arrival consumed the token; leaving and returning needs a fresh move.
  EXPECT_FALSE(game.can_jump(1, 0));
}

TEST(Game, OwnMoveDoesNotEnableOwnJump) {
  MoveJumpGame game(3, 2, 2);
  EXPECT_TRUE(game.move(0, 1));  // 2 -> 1
  EXPECT_TRUE(game.move(0, 0));  // 1 -> 0; agent 0 itself moved into 1
  EXPECT_FALSE(game.can_jump(0, 1));
  EXPECT_TRUE(game.can_jump(1, 1));
}

TEST(Game, JumpTokenSurvivesUntilVisit) {
  MoveJumpGame game(4, 2, 3);
  EXPECT_TRUE(game.move(0, 2));
  EXPECT_TRUE(game.move(0, 1));
  // Agent 1 holds tokens for both 2 and 1.
  EXPECT_TRUE(game.can_jump(1, 2));
  EXPECT_TRUE(game.can_jump(1, 1));
  game.jump(1, 2);
  EXPECT_TRUE(game.can_jump(1, 1));  // the other token is untouched
}

TEST(Game, IllegalActionsThrow) {
  MoveJumpGame game(3, 1, 2);
  EXPECT_THROW(game.move(0, 2), InvariantError);   // move to own node
  EXPECT_THROW(game.jump(0, 1), InvariantError);   // no token
  EXPECT_THROW(game.move(1, 0), InvariantError);   // no such agent
  EXPECT_THROW(MoveJumpGame(1, 1), InvariantError);
  EXPECT_THROW(MoveJumpGame(3, 2, std::vector<int>{0}), InvariantError);
  EXPECT_THROW(MoveJumpGame(3, 1, std::vector<int>{3}), InvariantError);
}

// ------------------------------------------------------------ the Lemma

class LemmaBound : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LemmaBound, NoRandomPlayExceedsMToTheK) {
  const auto [k, m] = GetParam();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    MoveJumpGame game(k, m);
    RandomStrategy strategy(seed, 0.6);
    const PlayResult result = play(game, strategy);
    EXPECT_LE(result.moves, game.bound())
        << "k=" << k << " m=" << m << " seed=" << seed;
    EXPECT_EQ(result.moves, game.move_count());
  }
}

TEST_P(LemmaBound, GreedyDescentStaysWithinBound) {
  const auto [k, m] = GetParam();
  MoveJumpGame game(k, m);
  GreedyDescentStrategy strategy;
  const PlayResult result = play(game, strategy);
  if (m >= 2) {
    EXPECT_LE(result.moves, game.bound());
  }
  EXPECT_GE(result.moves, static_cast<std::uint64_t>(k - 1));  // the ladder
}

INSTANTIATE_TEST_SUITE_P(Instances, LemmaBound,
                         ::testing::Values(std::tuple{2, 2}, std::tuple{3, 2},
                                           std::tuple{3, 3}, std::tuple{4, 2},
                                           std::tuple{4, 3}, std::tuple{5, 2},
                                           std::tuple{5, 4}, std::tuple{6, 3}));

TEST(Lemma, SingleAgentWalksAPathOnly) {
  // With m = 1 no jumps ever enable; the longest play is a Hamiltonian path:
  // k-1 moves.  (The m^k bound presumes m >= 2 — see DESIGN.md.)
  for (int k = 2; k <= 6; ++k) {
    MoveJumpGame game(k, 1);
    GreedyDescentStrategy strategy;
    const PlayResult result = play(game, strategy);
    EXPECT_EQ(result.moves, static_cast<std::uint64_t>(k - 1));
    EXPECT_EQ(result.jumps, 0u);
  }
}

// --------------------------------------------------------------- potential

TEST(Potential, EveryMoveDescendsAndDropsPhi) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    MoveJumpGame game(4, 3);
    RandomStrategy strategy(seed);
    play(game, strategy);
    const PotentialReplay replay = analyze_potential(game);
    EXPECT_LE(replay.phi_start, game.bound());
    EXPECT_TRUE(replay.all_moves_descend);
    for (const auto drop : replay.move_drops) EXPECT_GE(drop, 1u);
  }
}

TEST(Potential, TopoIndexRespectsPaintedEdges) {
  MoveJumpGame game(4, 2);
  RandomStrategy strategy(3);
  play(game, strategy);
  const PotentialReplay replay = analyze_potential(game);
  for (int from = 0; from < 4; ++from) {
    for (int to = 0; to < 4; ++to) {
      if (game.edge_painted(from, to)) {
        EXPECT_GT(replay.topo_index[static_cast<std::size_t>(from)],
                  replay.topo_index[static_cast<std::size_t>(to)]);
      }
    }
  }
}

TEST(Potential, PhiTrajectoryHasOneEntryPerAction) {
  MoveJumpGame game(3, 2);
  ASSERT_TRUE(game.move(0, 1));
  game.jump(1, 1);
  ASSERT_TRUE(game.move(1, 0));
  const PotentialReplay replay = analyze_potential(game);
  EXPECT_EQ(replay.phi.size(), 4u);  // start + 3 actions
  EXPECT_EQ(replay.move_drops.size(), 2u);
}

// --------------------------------------------------- property sweep (random)

class GameProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(GameProperty, PlayedGamesSatisfyAllInvariants) {
  const auto [k, m, seed] = GetParam();
  MoveJumpGame game(k, m);
  RandomStrategy strategy(seed, 0.5);
  const PlayResult result = play(game, strategy);
  // The Lemma bound (m >= 2 throughout this sweep).
  EXPECT_LE(result.moves, game.bound());
  // Painted graph stayed acyclic: the potential analysis can topo-sort it.
  const PotentialReplay replay = analyze_potential(game);
  EXPECT_LE(replay.phi_start, game.bound());
  EXPECT_TRUE(replay.all_moves_descend);
  for (const auto drop : replay.move_drops) EXPECT_GE(drop, 1u);
  // Jumps never counted as moves.
  EXPECT_EQ(result.moves, game.move_count());
  // Every agent ended on a real node.
  for (int agent = 0; agent < m; ++agent) {
    EXPECT_GE(game.position(agent), 0);
    EXPECT_LT(game.position(agent), k);
  }
  // phi trajectory bookkeeping: one entry per logged action plus the start.
  EXPECT_EQ(replay.phi.size(), game.log().size() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GameProperty,
    ::testing::Combine(::testing::Values(3, 4, 5), ::testing::Values(2, 3),
                       ::testing::Values(1ULL, 7ULL, 13ULL, 99ULL)));

// -------------------------------------------------------------- exhaustive

TEST(Exhaustive, TwoNodesTwoAgents) {
  // Hand analysis: both agents at node 1 can each move 1 -> 0 and nothing
  // re-enables upward motion; the exact maximum is 2 moves (bound: 4).
  MoveJumpGame game(2, 2);
  const ExhaustiveResult result = solve_exhaustive(game);
  EXPECT_EQ(result.max_moves, 2u);
  EXPECT_LE(result.max_moves, game.bound());
}

TEST(Exhaustive, SingleAgentIsHamiltonianPath) {
  for (int k = 2; k <= 4; ++k) {
    MoveJumpGame game(k, 1);
    const ExhaustiveResult result = solve_exhaustive(game);
    EXPECT_EQ(result.max_moves, static_cast<std::uint64_t>(k - 1));
  }
}

class ExhaustiveBound : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(ExhaustiveBound, ExactMaxRespectsLemma) {
  const auto [k, m] = GetParam();
  MoveJumpGame game(k, m);
  const ExhaustiveResult result = solve_exhaustive(game);
  EXPECT_LE(result.max_moves, game.bound()) << "k=" << k << " m=" << m;
  // And no strategy we run ever beats the exhaustive optimum.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    MoveJumpGame trial(k, m);
    RandomStrategy strategy(seed);
    const PlayResult played = play(trial, strategy);
    EXPECT_LE(played.moves, result.max_moves);
  }
  MoveJumpGame greedy_game(k, m);
  GreedyDescentStrategy greedy;
  EXPECT_LE(play(greedy_game, greedy).moves, result.max_moves);
}

INSTANTIATE_TEST_SUITE_P(Instances, ExhaustiveBound,
                         ::testing::Values(std::tuple{2, 2}, std::tuple{2, 3},
                                           std::tuple{3, 2}, std::tuple{3, 3},
                                           std::tuple{4, 2}));

TEST(Exhaustive, RejectsMidGameAndHugeInstances) {
  MoveJumpGame played(3, 2);
  ASSERT_TRUE(played.move(0, 1));
  EXPECT_THROW(solve_exhaustive(played), InvariantError);
  MoveJumpGame huge(7, 5);
  EXPECT_THROW(solve_exhaustive(huge), InvariantError);
}

}  // namespace
}  // namespace bss::game
