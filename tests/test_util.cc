#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/big_uint.h"
#include "util/checked.h"
#include "util/env_registry.h"
#include "util/factoradic.h"
#include "util/permutation.h"
#include "util/rng.h"

namespace bss {
namespace {

TEST(Checked, CastRoundTrips) {
  EXPECT_EQ(checked_cast<int>(std::size_t{42}), 42);
  EXPECT_EQ(checked_cast<std::uint8_t>(255), 255);
  EXPECT_THROW(checked_cast<std::uint8_t>(256), InvariantError);
  EXPECT_THROW(checked_cast<unsigned>(-1), InvariantError);
}

TEST(Checked, Factorial) {
  EXPECT_EQ(factorial_u64(0), 1u);
  EXPECT_EQ(factorial_u64(1), 1u);
  EXPECT_EQ(factorial_u64(6), 720u);
  EXPECT_EQ(factorial_u64(20), 2432902008176640000ULL);
  EXPECT_THROW(factorial_u64(21), InvariantError);
  EXPECT_THROW(factorial_u64(-1), InvariantError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_THROW(rng.next_below(0), InvariantError);
}

TEST(Rng, RoughlyUniform) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++buckets[static_cast<std::size_t>(rng.next_int(10))];
  for (const int count : buckets) {
    EXPECT_GT(count, kSamples / 10 - kSamples / 50);
    EXPECT_LT(count, kSamples / 10 + kSamples / 50);
  }
}

TEST(Factoradic, DigitsRoundTrip) {
  for (int width = 0; width <= 7; ++width) {
    const std::uint64_t count = factorial_u64(width);
    for (std::uint64_t index = 0; index < count; ++index) {
      const auto digits = factoradic_digits(index, width);
      EXPECT_EQ(factoradic_index(digits), index);
    }
  }
}

TEST(Factoradic, PermutationsAreABijection) {
  for (int width = 1; width <= 6; ++width) {
    std::set<std::vector<int>> seen;
    const std::uint64_t count = factorial_u64(width);
    for (std::uint64_t index = 0; index < count; ++index) {
      const auto perm = nth_permutation(index, width);
      EXPECT_EQ(perm.size(), static_cast<std::size_t>(width));
      EXPECT_TRUE(seen.insert(perm).second) << "duplicate permutation";
      EXPECT_EQ(permutation_rank(perm), index);
    }
    EXPECT_EQ(seen.size(), count);
  }
}

TEST(Factoradic, LehmerOrderIsLexicographic) {
  // nth_permutation in factoradic order is lexicographic order on the
  // permutations themselves.
  for (std::uint64_t index = 0; index + 1 < factorial_u64(5); ++index) {
    EXPECT_LT(nth_permutation(index, 5), nth_permutation(index + 1, 5));
  }
}

TEST(Factoradic, RejectsOutOfRange) {
  EXPECT_THROW(factoradic_digits(6, 3), InvariantError);  // 3! == 6
  EXPECT_THROW(factoradic_index({3, 0, 0}), InvariantError);
  EXPECT_THROW(permutation_rank({0, 0, 1}), InvariantError);
}

TEST(Permutation, PrefixPredicate) {
  EXPECT_TRUE(is_permutation_prefix({}, 1, 5));
  EXPECT_TRUE(is_permutation_prefix({3, 1, 4}, 1, 5));
  EXPECT_FALSE(is_permutation_prefix({3, 3}, 1, 5));
  EXPECT_FALSE(is_permutation_prefix({0}, 1, 5));
  EXPECT_FALSE(is_permutation_prefix({5}, 1, 5));
}

TEST(Permutation, PrefixOf) {
  EXPECT_TRUE(is_prefix_of({}, {1, 2}));
  EXPECT_TRUE(is_prefix_of({1, 2}, {1, 2}));
  EXPECT_TRUE(is_prefix_of({1}, {1, 2}));
  EXPECT_FALSE(is_prefix_of({2}, {1, 2}));
  EXPECT_FALSE(is_prefix_of({1, 2, 3}, {1, 2}));
}

TEST(Permutation, LabelRendering) {
  EXPECT_EQ(label_to_string({0, 2, 1}), "⊥.2.1");
  EXPECT_EQ(label_to_string({}), "");
}

TEST(Permutation, AllPermutationsCount) {
  EXPECT_EQ(all_permutations(4).size(), 24u);
  EXPECT_THROW(all_permutations(9), InvariantError);
}

TEST(BigUint, BasicArithmetic) {
  EXPECT_EQ(BigUint(0).to_decimal(), "0");
  EXPECT_EQ((BigUint(999) + BigUint(1)).to_decimal(), "1000");
  EXPECT_EQ((BigUint(123456789) * BigUint(987654321)).to_decimal(),
            "121932631112635269");
}

TEST(BigUint, PowMatchesKnownValues) {
  EXPECT_EQ(BigUint::pow(2, 10).to_decimal(), "1024");
  EXPECT_EQ(BigUint::pow(10, 0).to_decimal(), "1");
  EXPECT_EQ(BigUint::pow(0, 0).to_decimal(), "1");
  EXPECT_EQ(BigUint::pow(3, 12).to_decimal(), "531441");  // paper_upper(3)
  // 2^128, past uint64.
  EXPECT_EQ(BigUint::pow(2, 128).to_decimal(),
            "340282366920938463463374607431768211456");
}

TEST(BigUint, FactorialMatchesKnownValues) {
  EXPECT_EQ(BigUint::factorial(0).to_decimal(), "1");
  EXPECT_EQ(BigUint::factorial(6).to_decimal(), "720");
  EXPECT_EQ(BigUint::factorial(25).to_decimal(),
            "15511210043330985984000000");
}

TEST(BigUint, DecimalRoundTrip) {
  const std::string digits = "98765432109876543210987654321098765432109";
  EXPECT_EQ(BigUint::from_decimal(digits).to_decimal(), digits);
}

TEST(BigUint, Comparisons) {
  EXPECT_TRUE(BigUint(5) < BigUint(6));
  EXPECT_TRUE(BigUint::pow(2, 100) > BigUint::pow(10, 29));
  EXPECT_TRUE(BigUint::pow(2, 100) < BigUint::pow(10, 31));
  EXPECT_EQ(BigUint(42), BigUint::from_decimal("42"));
}

TEST(BigUint, ToDouble) {
  EXPECT_DOUBLE_EQ(BigUint(1000).to_double(), 1000.0);
  EXPECT_NEAR(BigUint::pow(2, 64).to_double(), 1.8446744073709552e19, 1e5);
}

TEST(BigUint, ArithmeticAgreesWithUint64ModP) {
  // Property check: BigUint's + and * agree with native arithmetic modulo a
  // prime, across random operands spanning several limb counts.
  constexpr std::uint64_t kPrime = 1000000007ULL;
  Rng rng(2026);
  const auto mod_of = [&](const BigUint& value) {
    // value mod p via decimal digits (independent of the limb representation
    // under test).
    std::uint64_t mod = 0;
    for (const char c : value.to_decimal()) {
      mod = (mod * 10 + static_cast<std::uint64_t>(c - '0')) % kPrime;
    }
    return mod;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const int limbs_a = 1 + rng.next_int(4);
    const int limbs_b = 1 + rng.next_int(4);
    BigUint a(rng.next_u64() >> 32);
    for (int i = 1; i < limbs_a; ++i) {
      a = a * BigUint(1ULL << 32) + BigUint(rng.next_u64() >> 32);
    }
    BigUint b(rng.next_u64() >> 32);
    for (int i = 1; i < limbs_b; ++i) {
      b = b * BigUint(1ULL << 32) + BigUint(rng.next_u64() >> 32);
    }
    const std::uint64_t ma = mod_of(a);
    const std::uint64_t mb = mod_of(b);
    EXPECT_EQ(mod_of(a + b), (ma + mb) % kPrime);
    EXPECT_EQ(mod_of(a * b), (ma * mb) % kPrime);
  }
}

TEST(BigUint, MultiplicationIsCommutativeAndDistributive) {
  const BigUint a = BigUint::pow(7, 31);
  const BigUint b = BigUint::factorial(23);
  const BigUint c = BigUint::from_decimal("123456789123456789123456789");
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a + b) * c, a * c + b * c);
}

TEST(BigUint, PowIsRepeatedMultiplication) {
  for (const std::uint64_t base : {2ULL, 9ULL, 37ULL}) {
    BigUint accumulated(1);
    for (std::uint64_t exponent = 0; exponent <= 12; ++exponent) {
      EXPECT_EQ(BigUint::pow(base, exponent), accumulated)
          << base << "^" << exponent;
      accumulated *= BigUint(base);
    }
  }
}

TEST(BigUint, FactorialRecurrence) {
  for (int n = 1; n <= 30; ++n) {
    EXPECT_EQ(BigUint::factorial(n),
              BigUint::factorial(n - 1) * BigUint(static_cast<std::uint64_t>(n)));
  }
}

TEST(BigUint, DecimalDigits) {
  EXPECT_EQ(BigUint(0).decimal_digits(), 1);
  EXPECT_EQ(BigUint(9).decimal_digits(), 1);
  EXPECT_EQ(BigUint(10).decimal_digits(), 2);
  EXPECT_EQ(BigUint::pow(10, 20).decimal_digits(), 21);
}

// The env registry is the single source of truth for the BSS_* knob
// surface; bss_lint's env-registry rule flags any getenv("BSS_...") whose
// name is missing from the table.  These pin the table's invariants so the
// lint rule's ground truth stays well-formed.
TEST(EnvRegistry, NamesAreSortedUniqueAndPrefixed) {
  ASSERT_GT(env::kEnvRegistrySize, 0u);
  for (std::size_t i = 0; i < env::kEnvRegistrySize; ++i) {
    const env::EnvVar& var = env::kEnvRegistry[i];
    EXPECT_TRUE(var.name.rfind("BSS_", 0) == 0) << var.name;
    EXPECT_FALSE(var.doc.empty()) << var.name << " has no doc string";
    if (i > 0) {
      EXPECT_LT(env::kEnvRegistry[i - 1].name, var.name)
          << "registry must stay sorted and duplicate-free";
    }
  }
}

TEST(EnvRegistry, LookupMatchesTheTable) {
  for (std::size_t i = 0; i < env::kEnvRegistrySize; ++i) {
    EXPECT_TRUE(env::is_registered_env(env::kEnvRegistry[i].name));
  }
  EXPECT_FALSE(env::is_registered_env("BSS_NOT_A_REAL_KNOB"));
  EXPECT_FALSE(env::is_registered_env("PATH"));
  EXPECT_FALSE(env::is_registered_env(""));
}

TEST(EnvRegistry, StatusKnobsAreRegistered) {
  // The live-heartbeat knobs read by obs::StatusWriter; dropping a row here
  // would make bss_lint's env-registry rule flag the getenv call.
  EXPECT_TRUE(env::is_registered_env("BSS_STATUS"));
  EXPECT_TRUE(env::is_registered_env("BSS_STATUS_EVERY_MS"));
}

}  // namespace
}  // namespace bss
