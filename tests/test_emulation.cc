#include <gtest/gtest.h>

#include "emulation/board.h"
#include "emulation/driver.h"
#include "emulation/excess.h"
#include "emulation/history_tree.h"
#include "emulation/reduction_check.h"
#include "emulation/stable_components.h"
#include "util/checked.h"
#include "util/rng.h"

namespace bss::emu {
namespace {

// ------------------------------------------------------------------- labels

TEST(Labels, PrefixAndCompatibility) {
  EXPECT_TRUE(is_label_prefix({0}, {0, 1, 2}));
  EXPECT_TRUE(is_label_prefix({0, 1}, {0, 1}));
  EXPECT_FALSE(is_label_prefix({0, 2}, {0, 1, 2}));
  EXPECT_TRUE(labels_compatible({0, 1}, {0, 1, 2}));
  EXPECT_TRUE(labels_compatible({0, 1, 2}, {0}));
  EXPECT_FALSE(labels_compatible({0, 1}, {0, 2}));
}

// ------------------------------------------------------------------- board

TEST(Board, LabelCompatibilityRulesReads) {
  Board board;
  board.write("r", {0}, 10);        // common prefix: visible to everyone
  board.write("r", {0, 1}, 11);     // group ⊥.1
  board.write("r", {0, 2}, 12);     // group ⊥.2
  EXPECT_EQ(board.read("r", {0, 1}), 11);
  EXPECT_EQ(board.read("r", {0, 2}), 12);
  EXPECT_EQ(board.read("r", {0, 1, 2}), 11);  // extension sees its prefix
  // A reader still at the root sees the latest write from ANY extension
  // (its label is a prefix of the writer's): the paper's rule.
  EXPECT_EQ(board.read("r", {0}), 12);
  EXPECT_EQ(board.read("missing", {0}), std::nullopt);
  EXPECT_EQ(board.write_count("r"), 3u);
}

// ------------------------------------------------------------ history tree

TEST(HistoryTree, RootOnlyHistoryIsTheLabel) {
  LabelForest forest(4);
  EXPECT_EQ(forest.compute_history({0}), (std::vector<int>{0}));
  forest.activate({0, 2});
  forest.activate({0, 2, 1});
  EXPECT_EQ(forest.compute_history({0, 2, 1}), (std::vector<int>{0, 2, 1}));
  // The non-last trees contribute their full DFS (root only here).
  EXPECT_EQ(forest.compute_history({0, 2}), (std::vector<int>{0, 2}));
}

TEST(HistoryTree, AttachSplicesReuseIntoTheHistory) {
  LabelForest forest(4);
  forest.activate({0, 1});
  GroupTree* tree = forest.find({0, 1});
  ASSERT_NE(tree, nullptr);
  // Reuse value 0 under the root (direct edges 1->0, 0->1).
  TreeNode* zero = tree->attach(tree->root(), 0, {}, {});
  // h(⊥.1) = ⊥ (root tree) then DFS of t_{⊥.1}: 1, 0.
  EXPECT_EQ(forest.compute_history({0, 1}), (std::vector<int>{0, 1, 0}));
  // Attach 2 under the root with a splice through 3: history walks back up
  // from 0 to 1 (ToParent of `zero`), then 1 -> 3 -> 2.
  tree->attach(tree->root(), 2, {3}, {});
  EXPECT_EQ(forest.compute_history({0, 1}),
            (std::vector<int>{0, 1, 0, 1, 3, 2}));
  EXPECT_EQ(tree->rightmost()->symbol, 2);
  EXPECT_EQ(zero->depth(), 1);
  EXPECT_EQ(tree->node_count(), 3);
}

TEST(HistoryTree, NonLastTreesReturnToTheirRoot) {
  LabelForest forest(4);
  forest.activate({0, 1});
  GroupTree* tree01 = forest.find({0, 1});
  tree01->attach(tree01->root(), 0, {}, {});
  forest.activate({0, 1, 2});
  // t_{⊥.1}'s full DFS: 1 0 1 (returns to root), then new tree root 2.
  EXPECT_EQ(forest.compute_history({0, 1, 2}),
            (std::vector<int>{0, 1, 0, 1, 2}));
}

TEST(HistoryTree, ExtendToLeafFollowsActivations) {
  LabelForest forest(5);
  forest.activate({0, 3});
  forest.activate({0, 3, 1});
  EXPECT_EQ(forest.extend_to_leaf({0}), (Label{0, 3, 1}));
  EXPECT_EQ(forest.extend_to_leaf({0, 3, 1}), (Label{0, 3, 1}));
  forest.activate({0, 2});  // branching: smallest symbol first
  EXPECT_EQ(forest.extend_to_leaf({0}), (Label{0, 2}));
}

TEST(HistoryTree, ActivationRules) {
  LabelForest forest(4);
  EXPECT_THROW(forest.activate({0, 1, 2}), InvariantError);  // parent missing
  forest.activate({0, 1});
  EXPECT_THROW(forest.activate({0, 1, 1}), InvariantError);  // repeated symbol
  EXPECT_EQ(forest.activate({0, 1}), forest.find({0, 1}));   // idempotent
  EXPECT_EQ(forest.tree_count(), 2u);
}

TEST(HistoryTree, TransitionCount) {
  const std::vector<int> history{0, 1, 0, 1, 3, 2};
  EXPECT_EQ(LabelForest::transition_count(history, 0, 1), 2);
  EXPECT_EQ(LabelForest::transition_count(history, 1, 0), 1);
  EXPECT_EQ(LabelForest::transition_count(history, 3, 2), 1);
  EXPECT_EQ(LabelForest::transition_count(history, 2, 3), 0);
}

// ------------------------------------------------------------ excess graph

TEST(Excess, PathsRespectMinimumWeight) {
  ExcessGraph graph(4);
  graph.set_weight(0, 1, 5);
  graph.set_weight(1, 2, 3);
  graph.set_weight(2, 0, 5);
  EXPECT_EQ(path_with_min_weight(graph, 0, 2, 3),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(path_with_min_weight(graph, 0, 2, 4), std::nullopt);
  EXPECT_EQ(path_with_min_weight(graph, 0, 0, 99), (std::vector<int>{0}));
}

TEST(Excess, BestCycleMaximizesMinimumEdge) {
  ExcessGraph graph(4);
  // Cycle A: 0 ->(5) 1 ->(3) 0; cycle B: 0 ->(2) 2 ->(2) 1 ... build two
  // options between 0 and 1.
  graph.set_weight(0, 1, 5);
  graph.set_weight(1, 0, 3);
  graph.set_weight(0, 2, 2);
  graph.set_weight(2, 1, 2);
  const auto cycle = best_cycle(graph, 0, 1);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->width, 3);
  EXPECT_EQ(cycle->a_to_x, (std::vector<int>{0, 1}));
  EXPECT_EQ(cycle->x_to_a, (std::vector<int>{1, 0}));
}

TEST(Excess, NoCycleMeansNullopt) {
  ExcessGraph graph(3);
  graph.set_weight(0, 1, 4);  // no way back
  EXPECT_EQ(best_cycle(graph, 0, 1), std::nullopt);
}

TEST(Excess, TrivialCycleWhenEndpointsEqual) {
  ExcessGraph graph(3);
  const auto cycle = best_cycle(graph, 1, 1);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->a_to_x, (std::vector<int>{1}));
}

// ----------------------------------------------- board + tree properties

TEST(BoardProperty, IncomparableGroupsNeverLeak) {
  // Writes under incomparable labels are mutually invisible, for any
  // interleaving of writes.
  Board board;
  bss::Rng rng(5);
  const std::vector<Label> groups{{0, 1, 2}, {0, 1, 3}, {0, 2}, {0, 3, 1}};
  std::vector<std::int64_t> latest(groups.size(), -1);
  for (int step = 0; step < 200; ++step) {
    const auto g = static_cast<std::size_t>(rng.next_int(4));
    board.write("x", groups[g], step);
    latest[g] = step;
    // Readers in each group must see the newest write from a compatible
    // group only.
    for (std::size_t reader = 0; reader < groups.size(); ++reader) {
      std::int64_t expected = -1;
      for (std::size_t writer = 0; writer < groups.size(); ++writer) {
        if (labels_compatible(groups[writer], groups[reader])) {
          expected = std::max(expected, latest[writer]);
        }
      }
      const auto value = board.read("x", groups[reader]);
      EXPECT_EQ(value.value_or(-1), expected) << "reader " << reader;
    }
  }
}

TEST(HistoryTreeProperty, RandomChainsProduceLegalHistories) {
  // Build random trees via rightmost chaining (the relaxed-install shape)
  // and check every produced history is a legal value sequence.
  bss::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int k = 3 + rng.next_int(3);  // 3..5
    LabelForest forest(k);
    Label label{0};
    const int first = 1 + rng.next_int(k - 1);
    label.push_back(first);
    forest.activate(label);
    GroupTree* tree = forest.find(label);
    int current = first;
    for (int step = 0; step < 12; ++step) {
      int next = rng.next_int(k);
      if (next == current) next = (next + 1) % k;
      tree->attach(tree->rightmost(), next, {}, {});
      current = next;
    }
    const auto history = forest.compute_history(label);
    ASSERT_FALSE(history.empty());
    EXPECT_EQ(history.front(), 0);
    for (std::size_t i = 1; i < history.size(); ++i) {
      EXPECT_NE(history[i], history[i - 1]);
      EXPECT_GE(history[i], 0);
      EXPECT_LT(history[i], k);
    }
    EXPECT_EQ(history.back(), current);
  }
}

TEST(HistoryTreeProperty, SplicedAttachesRoundTripThroughDfs) {
  // Attach under ancestors with splice strings; the DFS must weave the
  // ToParent/FromParent paths so that consecutive symbols always differ.
  LabelForest forest(5);
  forest.activate({0, 1});
  GroupTree* tree = forest.find({0, 1});
  TreeNode* a = tree->attach(tree->root(), 2, {}, {});
  tree->attach(a, 3, {}, {});
  // Now rightmost is 3; attach 4 under the ROOT with splices 1->2->4 wait —
  // from_parent must route 1 ~> 4; use {2} meaning 1 -> 2 -> 4.
  tree->attach(tree->root(), 4, {2}, {3});
  const auto history = forest.compute_history({0, 1});
  // DFS: 1,2,3 (rightmost chain), back: 3->...: to_parent of 3 is {} so 2,
  // then to_parent of 2 is {} so 1, then from_parent {2} and 4.
  EXPECT_EQ(history, (std::vector<int>{0, 1, 2, 3, 2, 1, 2, 4}));
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_NE(history[i], history[i - 1]);
  }
}

// ---------------------------------------------------- the reduction, run

TEST(Emulation, TwoEmulatorsSplitIntoTwoGroupsAtK3) {
  // k=3: A's capacity is (k-1)! = 2; two emulators, one v-process each.
  // Their v-processes race ⊥->1 vs ⊥->2: the emulators split into the two
  // possible first-value groups and each decides its group's leader.
  EmuParams params;
  params.k = 3;
  params.m = 2;
  params.vps_per_emulator = 1;
  EmulationDriver driver(params, fvt_vp_factory());
  const EmuStats stats = driver.run();
  EXPECT_TRUE(stats.completed) << "rounds=" << stats.rounds;
  EXPECT_EQ(stats.distinct_decisions, 2);  // == (k-1)!: the bound, tight
  EXPECT_EQ(stats.splits, 4);              // two installs per group
  const ReductionVerdict verdict = verify_reduction(driver, stats);
  EXPECT_TRUE(verdict.ok()) << verdict.diagnosis;
}

TEST(Emulation, SingleEmulatorRunsAToCompletion) {
  for (int k = 3; k <= 5; ++k) {
    EmuParams params;
    params.k = k;
    params.m = 1;
    params.vps_per_emulator = 2;
    EmulationDriver driver(params, fvt_vp_factory());
    const EmuStats stats = driver.run();
    EXPECT_TRUE(stats.completed) << "k=" << k;
    EXPECT_EQ(stats.distinct_decisions, 1);
    const ReductionVerdict verdict = verify_reduction(driver, stats);
    EXPECT_TRUE(verdict.ok()) << "k=" << k << ": " << verdict.diagnosis;
  }
}

TEST(Emulation, DecisionsNeverExceedFactorialBound) {
  // Sweep emulator counts and vp loads at k=4 (bound (k-1)! = 6).
  for (int m = 1; m <= 4; ++m) {
    for (int vps = 1; vps <= 6 / m; ++vps) {
      EmuParams params;
      params.k = 4;
      params.m = m;
      params.vps_per_emulator = vps;
      EmulationDriver driver(params, fvt_vp_factory());
      const EmuStats stats = driver.run();
      EXPECT_LE(stats.distinct_decisions, 6)
          << "m=" << m << " vps=" << vps;
      const ReductionVerdict verdict = verify_reduction(driver, stats);
      EXPECT_TRUE(verdict.ok())
          << "m=" << m << " vps=" << vps << ": " << verdict.diagnosis;
    }
  }
}

TEST(Emulation, EmulatorWithoutVpsStalls) {
  // The operational face of Theorem 1: m = (k-1)! + 1 emulators cannot all
  // be fed from A's (k-1)! process slots — someone starves and the
  // emulation cannot complete.
  EmuParams params;
  params.k = 3;
  params.m = 3;               // (k-1)! + 1
  params.vps_per_emulator = 1;  // only 2 slots exist; see below
  // Capacity guard: 3 v-processes exceed (k-1)! = 2 slots, so A itself
  // cannot host them — the driver must refuse or the third vp must fail.
  EXPECT_THROW(
      {
        EmulationDriver driver(params, fvt_vp_factory());
        driver.run();
      },
      InvariantError);
}

TEST(Emulation, StallReportedWhenStarved) {
  // Give the third emulator zero v-processes by using a factory wrapper:
  // 2 emulators with one vp each plus one with none is not expressible via
  // vps_per_emulator, so emulate starvation with m=3, vps=0 for all: no
  // v-process can ever act.
  EmuParams params;
  params.k = 3;
  params.m = 2;
  params.vps_per_emulator = 1;
  params.direct_install = false;  // paper-faithful: installs need suspended
                                  // backing, which 1 vp/edge never provides
  params.suspend_trigger = 99;    // and suspension never triggers
  EmulationDriver driver(params, fvt_vp_factory());
  const EmuStats stats = driver.run();
  EXPECT_FALSE(stats.completed);
  EXPECT_TRUE(stats.stalled);
  EXPECT_EQ(stats.installs, 0);
}

TEST(Emulation, TokenRaceExercisesReuseAndRebalance) {
  EmuParams params;
  params.k = 3;
  params.m = 2;
  params.vps_per_emulator = 3;
  params.suspend_trigger = 2;
  params.suspend_quota = 1;
  EmulationDriver driver(params, token_race_factory(6));
  const EmuStats stats = driver.run();
  EXPECT_TRUE(stats.completed) << "rounds=" << stats.rounds;
  // Value reuse must have happened: more installs than distinct symbols.
  EXPECT_GT(stats.installs, params.k - 1);
  ReductionCheckOptions options;
  options.expect_agreement = false;   // token-race is not an election
  options.expect_first_value = false;
  const ReductionVerdict verdict = verify_reduction(driver, stats, options);
  EXPECT_TRUE(verdict.ok()) << verdict.diagnosis;
}

TEST(Emulation, TokenRaceSuspendsAndReleases) {
  EmuParams params;
  params.k = 3;
  params.m = 1;
  params.vps_per_emulator = 4;
  params.suspend_trigger = 2;
  params.suspend_quota = 1;
  EmulationDriver driver(params, token_race_factory(8));
  const EmuStats stats = driver.run();
  EXPECT_TRUE(stats.completed);
  EXPECT_GT(stats.suspensions, 0);
  // Suspended v-processes must eventually be released to finish their
  // rounds and decide (the emulator adopts the first decision, but releases
  // happened along the way whenever history transitions backed them).
  ReductionCheckOptions options;
  options.expect_agreement = false;
  options.expect_first_value = false;
  EXPECT_TRUE(verify_reduction(driver, stats, options).ok());
}

TEST(Emulation, FaithfulModeReleasesAndSplices) {
  // Paper-faithful discipline: every install needs suspended backing, value
  // reuse goes through the excess-cycle ancestor attach (splice strings),
  // and CanRebalance releases suspended v-processes against the history.
  EmuParams params;
  params.k = 3;
  params.m = 1;
  params.vps_per_emulator = 8;
  params.suspend_trigger = 2;
  params.suspend_quota = 2;
  params.direct_install = false;
  EmulationDriver driver(params, token_race_factory(9));
  const EmuStats stats = driver.run();
  EXPECT_GT(stats.suspensions, 0);
  EXPECT_GT(stats.releases, 0);
  EXPECT_GT(stats.installs, params.k - 1);  // value reuse happened
  // At least one reuse attach (an "attach" event, as opposed to the fresh
  // "activate" splits).
  bool attach_seen = false;
  for (const EmuEvent& event : driver.events()) {
    if (event.kind == EmuEventKind::kInstall) attach_seen = true;
  }
  EXPECT_TRUE(attach_seen);
  ReductionCheckOptions options;
  options.expect_agreement = false;
  options.expect_first_value = false;
  const ReductionVerdict verdict = verify_reduction(driver, stats, options);
  EXPECT_TRUE(verdict.ok()) << verdict.diagnosis;
}

TEST(Emulation, FaithfulModeFvtStillBoundsDecisions) {
  // The faithful discipline with the real election as A: may stall (the
  // whole point — it needs big pools), but never violates the bound.
  EmuParams params;
  params.k = 4;
  params.m = 2;
  params.vps_per_emulator = 3;
  params.suspend_trigger = 2;
  params.suspend_quota = 1;
  params.direct_install = false;
  EmulationDriver driver(params, fvt_vp_factory());
  const EmuStats stats = driver.run();
  EXPECT_LE(stats.distinct_decisions, 6);
  const ReductionVerdict verdict = verify_reduction(driver, stats);
  EXPECT_TRUE(verdict.ok()) << verdict.diagnosis;
}

TEST(Emulation, StepLogCarriesLabels) {
  EmuParams params;
  params.k = 3;
  params.m = 2;
  params.vps_per_emulator = 1;
  EmulationDriver driver(params, fvt_vp_factory());
  driver.run();
  ASSERT_FALSE(driver.step_log().empty());
  for (const VpStep& step : driver.step_log()) {
    EXPECT_GE(step.vp, 0);
    EXPECT_GE(step.emulator, 0);
    ASSERT_FALSE(step.label.empty());
    EXPECT_EQ(step.label.front(), 0);
  }
}

// -------------------------------------------------- stable components

TEST(StableComponents, MuThresholds) {
  EXPECT_EQ(mu_threshold(1, 3), 0);
  EXPECT_EQ(mu_threshold(2, 3), 9);        // 3^2
  EXPECT_EQ(mu_threshold(3, 3), 9 + 27);   // 3^2 + 3^3
  EXPECT_EQ(mu_threshold(4, 2), 4 + 8 + 16);
  EXPECT_THROW(mu_threshold(0, 3), InvariantError);
}

TEST(StableComponents, ThresholdedSccDecomposition) {
  ExcessGraph graph(4);
  // Heavy 2-cycle {0,1}, light 2-cycle {2,3}.
  graph.set_weight(0, 1, 100);
  graph.set_weight(1, 0, 100);
  graph.set_weight(2, 3, 2);
  graph.set_weight(3, 2, 2);
  const std::vector<int> all{0, 1, 2, 3};
  EXPECT_EQ(thresholded_components(graph, all, 1).size(), 2u);
  EXPECT_EQ(thresholded_components(graph, all, 3).size(), 3u);   // {0,1},{2},{3}
  EXPECT_EQ(thresholded_components(graph, all, 101).size(), 4u); // singletons
}

TEST(StableComponents, SingletonsAndPairsAreTriviallyStable) {
  ExcessGraph graph(5);
  EXPECT_TRUE(is_stable_component(graph, {2}, 5, 3));
  EXPECT_TRUE(is_super_stable_component(graph, {2}, 5, 3));
  // A two-node C_1 component: always super stable (Definition 3).
  graph.set_weight(0, 1, 1);
  graph.set_weight(1, 0, 1);
  EXPECT_TRUE(is_super_stable_component(graph, {0, 1}, 5, 3));
}

TEST(StableComponents, HeavyCliqueIsStable) {
  // A component so heavy it never splits under any μ level is stable.
  const int k = 4;
  const int m = 2;
  ExcessGraph graph(k);
  const std::int64_t heavy = mu_threshold(2 * k, m) + 1;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a != b) graph.set_weight(a, b, heavy);
    }
  }
  EXPECT_TRUE(is_stable_component(graph, {0, 1, 2}, k, m));
  EXPECT_TRUE(is_super_stable_component(graph, {0, 1, 2}, k, m));
}

TEST(StableComponents, ShatteredComponentIsNotStable) {
  // Strongly connected at weight 1 but crumbles into 3 singletons at the
  // first μ level: too many pieces for the budget.
  const int k = 3;
  const int m = 2;
  ExcessGraph graph(k);
  graph.set_weight(0, 1, 1);
  graph.set_weight(1, 2, 1);
  graph.set_weight(2, 0, 1);
  const std::vector<int> component{0, 1, 2};
  ASSERT_EQ(thresholded_components(graph, component, 1).size(), 1u);
  EXPECT_FALSE(is_stable_component(graph, component, k, m));
}

TEST(StableComponents, EmulationStatesDecompose) {
  // Live smoke: mid-run token-race excess graphs decompose cleanly and the
  // analysis never crashes; fresh suspensions form small components.
  EmuParams params;
  params.k = 3;
  params.m = 2;
  params.vps_per_emulator = 4;
  params.suspend_trigger = 2;
  params.suspend_quota = 1;
  params.max_rounds = 8;
  EmulationDriver driver(params, token_race_factory(8));
  const EmuStats stats = driver.run();
  for (const auto& label : stats.final_labels) {
    const ExcessGraph graph = driver.excess_for(label);
    std::vector<int> nodes;
    for (int node = 0; node < params.k; ++node) nodes.push_back(node);
    const StableDecomposition decomposition =
        analyze_stability(graph, nodes, params.k, params.m);
    EXPECT_GE(decomposition.components.size(), 1u);
    std::size_t members = 0;
    for (const auto& component : decomposition.components) {
      members += component.size();
    }
    EXPECT_EQ(members, static_cast<std::size_t>(params.k));
  }
}

// ------------------------------------------- the reduction checker itself

TEST(ReductionChecker, AcceptsHealthyRuns) {
  EmuParams params;
  params.k = 4;
  params.m = 2;
  params.vps_per_emulator = 3;
  EmulationDriver driver(params, fvt_vp_factory());
  const EmuStats stats = driver.run();
  const ReductionVerdict verdict = verify_reduction(driver, stats);
  EXPECT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict.diagnosis.empty());
}

TEST(ReductionChecker, CatchesGroupDisagreement) {
  EmuParams params;
  params.k = 3;
  params.m = 2;
  params.vps_per_emulator = 1;
  EmulationDriver driver(params, fvt_vp_factory());
  EmuStats stats = driver.run();
  ASSERT_TRUE(stats.completed);
  // Plant: force both emulators into one group with different decisions.
  stats.final_labels[1] = stats.final_labels[0];
  ASSERT_TRUE(stats.decisions[0].has_value());
  stats.decisions[1] = *stats.decisions[0] + 7;
  const ReductionVerdict verdict = verify_reduction(driver, stats);
  EXPECT_FALSE(verdict.groups_agree);
  EXPECT_FALSE(verdict.ok());
}

TEST(ReductionChecker, FirstValueOptionFlagsReuse) {
  // A token-race run reuses symbols; checking it AS IF it were first-value
  // must fail the history-shape clause — the option does real work.
  EmuParams params;
  params.k = 3;
  params.m = 1;
  params.vps_per_emulator = 4;
  params.suspend_trigger = 2;
  params.suspend_quota = 1;
  EmulationDriver driver(params, token_race_factory(6));
  const EmuStats stats = driver.run();
  ReductionCheckOptions strict;
  strict.expect_agreement = false;
  strict.expect_first_value = true;  // wrong for token-race: must trip
  const ReductionVerdict verdict = verify_reduction(driver, stats, strict);
  EXPECT_FALSE(verdict.history_sound);
}

TEST(Emulation, ExcessGraphReflectsSuspensions) {
  EmuParams params;
  params.k = 3;
  params.m = 1;
  params.vps_per_emulator = 4;
  params.suspend_trigger = 2;
  params.suspend_quota = 2;
  params.max_rounds = 6;  // stop early, while suspensions are outstanding
  EmulationDriver driver(params, token_race_factory(8));
  const EmuStats stats = driver.run();
  (void)stats;
  if (!driver.suspensions().empty()) {
    const Suspension& suspension = driver.suspensions().front();
    if (!suspension.released) {
      const ExcessGraph graph = driver.excess_for(suspension.label);
      EXPECT_GE(graph.weight(suspension.from, suspension.to), 1);
    }
  }
}

}  // namespace
}  // namespace bss::emu
