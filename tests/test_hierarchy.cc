#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hierarchy/set_consensus.h"
#include "hierarchy/table.h"
#include "hierarchy/universal.h"
#include "runtime/crash_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::hierarchy {
namespace {

using sim::CrashPlan;
using sim::Ctx;
using sim::RandomScheduler;
using sim::RoundRobinScheduler;
using sim::SimEnv;

TEST(Universal, CounterHandsOutDistinctTickets) {
  constexpr int kProcs = 5;
  constexpr int kOpsEach = 4;
  UniversalObject counter("counter", counter_spec(), kProcs,
                          kProcs * kOpsEach);
  SimEnv env;
  std::vector<std::int64_t> tickets;
  for (int pid = 0; pid < kProcs; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      (void)pid;
      for (int i = 0; i < kOpsEach; ++i) tickets.push_back(counter.invoke(ctx, 0));
    });
  }
  RandomScheduler scheduler(99);
  const auto report = env.run(scheduler);
  ASSERT_TRUE(report.clean()) << report.summary();
  // fetch-and-increment: responses are exactly 0..N-1, each once.
  std::sort(tickets.begin(), tickets.end());
  ASSERT_EQ(tickets.size(), static_cast<std::size_t>(kProcs * kOpsEach));
  for (int i = 0; i < kProcs * kOpsEach; ++i) {
    EXPECT_EQ(tickets[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(counter.log_length(), kProcs * kOpsEach);
}

TEST(Universal, QueueIsFifoPerTotalOrder) {
  constexpr int kProcs = 3;
  UniversalObject queue("queue", queue_spec(), kProcs, 30);
  SimEnv env;
  std::vector<std::int64_t> dequeued;
  for (int pid = 0; pid < kProcs; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      for (int i = 0; i < 3; ++i) {
        queue.invoke(ctx, 1 + pid * 10 + i);  // enqueue pid*10+i
      }
      for (int i = 0; i < 3; ++i) {
        const std::int64_t value = queue.invoke(ctx, 0);  // dequeue
        if (value >= 0) dequeued.push_back(value);
      }
    });
  }
  RandomScheduler scheduler(7);
  const auto report = env.run(scheduler);
  ASSERT_TRUE(report.clean()) << report.summary();
  // Every dequeued value is distinct and was enqueued by someone.
  std::set<std::int64_t> seen(dequeued.begin(), dequeued.end());
  EXPECT_EQ(seen.size(), dequeued.size());
  for (const auto value : dequeued) {
    EXPECT_GE(value % 10, 0);
    EXPECT_LT(value % 10, 3);
    EXPECT_LT(value / 10, kProcs);
  }
}

TEST(Universal, HelpingBoundsPlacementDistance) {
  // Wait-freedom mechanism: within ~n cells of announcing, the round-robin
  // helpers place your operation.
  constexpr int kProcs = 4;
  UniversalObject counter("counter", counter_spec(), kProcs, kProcs * 6);
  SimEnv env;
  for (int pid = 0; pid < kProcs; ++pid) {
    env.add_process([&](Ctx& ctx) {
      for (int i = 0; i < 6; ++i) (void)counter.invoke(ctx, 0);
    });
  }
  RandomScheduler scheduler(3);
  const auto report = env.run(scheduler);
  ASSERT_TRUE(report.clean());
  for (int pid = 0; pid < kProcs; ++pid) {
    for (const int distance : counter.placement_distances(pid)) {
      EXPECT_LE(distance, 2 * kProcs);
    }
  }
}

TEST(Universal, SurvivesCrashes) {
  // Crashed processes leave announced ops behind; survivors may or may not
  // place them, but survivors' own invocations must still complete.
  constexpr int kProcs = 4;
  UniversalObject counter("counter", counter_spec(), kProcs, kProcs * 5);
  SimEnv env;
  std::vector<std::vector<std::int64_t>> results(kProcs);
  for (int pid = 0; pid < kProcs; ++pid) {
    env.add_process([&, pid](Ctx& ctx) {
      for (int i = 0; i < 5; ++i) {
        results[static_cast<std::size_t>(pid)].push_back(
            counter.invoke(ctx, 0));
      }
    });
  }
  CrashPlan crashes;
  crashes.crash_before_op(1, 6);
  crashes.crash_before_op(3, 2);
  RandomScheduler scheduler(11);
  const auto report = env.run(scheduler, crashes);
  EXPECT_EQ(report.outcomes[0], sim::ProcOutcome::kFinished);
  EXPECT_EQ(report.outcomes[2], sim::ProcOutcome::kFinished);
  // Survivors got 5 responses each, all distinct across the object.
  std::set<std::int64_t> all;
  for (const auto& per_proc : results) {
    for (const auto value : per_proc) EXPECT_TRUE(all.insert(value).second);
  }
  EXPECT_EQ(results[0].size(), 5u);
  EXPECT_EQ(results[2].size(), 5u);
}

TEST(Universal, CapacityExhaustionTrapped) {
  UniversalObject counter("counter", counter_spec(), 1, 2);
  SimEnv env;
  env.add_process([&](Ctx& ctx) {
    counter.invoke(ctx, 0);
    counter.invoke(ctx, 0);
    counter.invoke(ctx, 0);  // third op: past capacity
  });
  RoundRobinScheduler scheduler;
  const auto report = env.run(scheduler);
  EXPECT_EQ(report.outcomes[0], sim::ProcOutcome::kFailed);
  EXPECT_NE(report.errors[0].find("capacity"), std::string::npos);
}

TEST(HierarchyTable, RowsMatchTheKnownHierarchy) {
  const auto rows = build_hierarchy_table();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].object, "read/write registers");
  EXPECT_EQ(rows[0].consensus_number, "1");
  EXPECT_EQ(rows[1].consensus_number, "2");  // test&set
  EXPECT_EQ(rows[2].consensus_number, "2");  // swap
  EXPECT_NE(rows[3].consensus_number.find("k-1"), std::string::npos);
  EXPECT_EQ(rows[4].consensus_number, "inf");
  EXPECT_EQ(rows[5].consensus_number, "inf");
  const std::string rendered = render_hierarchy_table(rows);
  EXPECT_NE(rendered.find("test&set"), std::string::npos);
  EXPECT_NE(rendered.find("swap"), std::string::npos);
  EXPECT_NE(rendered.find("compare&swap"), std::string::npos);
}

// ------------------------------------------------------------ set consensus

TEST(SetConsensus, PartitionBoundsDistinctDecisions) {
  for (const auto& [n, l] : {std::pair{6, 2}, {6, 3}, {9, 3}, {5, 1}}) {
    std::vector<std::int64_t> inputs;
    for (int pid = 0; pid < n; ++pid) inputs.push_back(100 + pid);
    sim::RandomScheduler scheduler(static_cast<std::uint64_t>(n * 31 + l));
    const auto report =
        run_partition_set_consensus(n, l, inputs, scheduler);
    EXPECT_TRUE(report.valid) << "n=" << n << " l=" << l;
    EXPECT_LE(report.distinct_decisions, l);
    EXPECT_GT(report.distinct_decisions, 0);
    EXPECT_EQ(report.run.finished_count(), n);
  }
}

TEST(SetConsensus, PartitionIsCrashTolerant) {
  std::vector<std::int64_t> inputs{10, 11, 12, 13, 14, 15};
  sim::CrashPlan crashes;
  crashes.crash_before_op(0, 0);
  crashes.crash_before_op(3, 0);  // bodies take a single step: die before it
  sim::RandomScheduler scheduler(8);
  const auto report =
      run_partition_set_consensus(6, 2, inputs, scheduler, crashes);
  EXPECT_TRUE(report.valid);
  EXPECT_LE(report.distinct_decisions, 2);
  EXPECT_EQ(report.run.finished_count(), 4);
}

TEST(SetConsensus, TrivialRegisterOnlyProtocolIsNSet) {
  std::vector<std::int64_t> inputs{7, 7, 9, 4};
  sim::RoundRobinScheduler scheduler;
  const auto report = run_trivial_set_consensus(4, inputs, scheduler);
  EXPECT_TRUE(report.valid);
  EXPECT_LE(report.distinct_decisions, 4);
  // Everyone decides its own input: 3 distinct values here.
  EXPECT_EQ(report.distinct_decisions, 3);
}

TEST(SetConsensus, OneSetIsConsensus) {
  std::vector<std::int64_t> inputs{42, 43, 44};
  sim::RandomScheduler scheduler(5);
  const auto report = run_partition_set_consensus(3, 1, inputs, scheduler);
  EXPECT_EQ(report.distinct_decisions, 1);
  EXPECT_TRUE(report.valid);
}

}  // namespace
}  // namespace bss::hierarchy
