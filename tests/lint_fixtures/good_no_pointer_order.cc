// Fixture: ordering by stable identity instead of by address.  Objects that
// need an order carry an explicit id (pid, name, dense index) assigned
// deterministically; pointers to them are only dereferenced, never compared.
#include <map>
#include <set>
#include <string>

struct Node {
  int id = 0;
};

// Order by the deterministic id, not the allocation address.
using NodeIdSet = std::set<int>;
using NodeByName = std::map<std::string, Node>;

int node_key(const Node& node) {
  return node.id;
}
