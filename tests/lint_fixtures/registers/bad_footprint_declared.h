// Fixture: a token-stamping register with no BSS_FOOTPRINT annotation at
// all.  The POR layer trusts the declared op set; an unannotated register
// has nothing for the linter (or a reviewer) to cross-check.
#pragma once

#include <string>

namespace fixture {

struct Ctx;  // stand-in for bss::sim::Ctx

class UnannotatedRegister {
 public:
  int read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    return value_;
  }

  void write(Ctx& ctx, int value) {
    ctx.sync({name_, "write", value, 0});
    ctx.access_token().write(name_);
    value_ = value;
  }

 private:
  std::string name_;
  int value_ = 0;
};

}  // namespace fixture
