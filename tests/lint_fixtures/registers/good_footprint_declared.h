// Fixture: the compliant shape — the BSS_FOOTPRINT op set and the
// ctx.sync({...}) op literals match exactly, one screen apart.
#pragma once

#include <string>

#define BSS_FOOTPRINT(...) static_assert(true, "fixture annotation")

namespace fixture {

struct Ctx;  // stand-in for bss::sim::Ctx

class AnnotatedRegister {
  BSS_FOOTPRINT(AnnotatedRegister, read, write);

 public:
  int read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    return value_;
  }

  void write(Ctx& ctx, int value) {
    ctx.sync({name_, "write", value, 0});
    ctx.access_token().write(name_);
    value_ = value;
  }

 private:
  std::string name_;
  int value_ = 0;
};

}  // namespace fixture
