// Fixture: annotation drift.  The implementation grew a "swap" op the
// BSS_FOOTPRINT never learned about, and still declares a "cas" op that was
// removed — both directions of drift must be findings.
#pragma once

#include <string>

#define BSS_FOOTPRINT(...) static_assert(true, "fixture annotation")

namespace fixture {

struct Ctx;  // stand-in for bss::sim::Ctx

class DriftedRegister {
  BSS_FOOTPRINT(DriftedRegister, read, cas);

 public:
  int read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    return value_;
  }

  int swap(Ctx& ctx, int next) {
    ctx.sync({name_, "swap", next, 0});
    ctx.access_token().write(name_);
    const int prev = value_;
    value_ = next;
    return prev;
  }

 private:
  std::string name_;
  int value_ = 0;
};

}  // namespace fixture
