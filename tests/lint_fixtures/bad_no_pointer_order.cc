// Fixture: raw pointer values used as ordering keys.  Addresses are
// allocation order — ASLR and allocator state make them different every run,
// so anything ordered by them is nondeterministic.
#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct Node {
  int id = 0;
};

// Ordered set of pointers: iteration order == address order.
using NodeSet = std::set<Node*>;

// Ordered map keyed on a pointer.
using NodeIndex = std::map<const Node*, int>;

// Explicit address comparator.
using NodeLess = std::less<Node*>;

// Address laundered into an orderable/hashable integer.
std::uint64_t node_key(const Node* node) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(node));
}
