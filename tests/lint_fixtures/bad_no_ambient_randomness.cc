// Fixture: ambient randomness.  Every source here produces values no replay
// can reproduce: random_device pulls hardware entropy, rand() hides global
// state, and an argless engine seeds from an unspecified source.
#include <cstdlib>
#include <random>

int entropy_pick(int bound) {
  std::random_device device;
  return static_cast<int>(device()) % bound;
}

int libc_pick(int bound) {
  return rand() % bound;
}

void libc_seed() {
  srand(42);
}

int argless_engine_pick(int bound) {
  std::mt19937 gen;
  return static_cast<int>(gen()) % bound;
}

int argless_engine64_pick(int bound) {
  std::mt19937_64 gen{};
  return static_cast<int>(gen() % static_cast<std::uint64_t>(bound));
}
