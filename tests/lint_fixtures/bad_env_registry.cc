// Fixture: an undeclared BSS_* knob.  getenv of a variable that is not a row
// in src/util/env_registry.h is an undocumented, unenumerable input — the
// easiest place for a result-affecting switch to hide.
#include <cstdlib>

bool secret_knob_enabled() {
  const char* raw = std::getenv("BSS_SECRET_UNDECLARED_KNOB");
  return raw != nullptr && raw[0] == '1';
}
