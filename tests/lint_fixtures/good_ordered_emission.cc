// Fixture: the compliant patterns for emitting from an unordered container —
// sort before emission (canonical order re-established downstream of the
// loop), or a justified suppression when order provably cannot matter.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

std::string counters_to_json(
    const std::unordered_map<std::string, std::uint64_t>& counters) {
  std::vector<std::pair<std::string, std::uint64_t>> rows;
  for (const auto& [name, value] : counters) {
    rows.emplace_back(name, value);
  }
  std::sort(rows.begin(), rows.end());
  std::string json = "{";
  for (const auto& [name, value] : rows) {
    json += "\"" + name + "\":" + std::to_string(value) + ",";
  }
  json += "}";
  return json;
}

std::uint64_t counters_total_for_json(
    const std::unordered_map<std::string, std::uint64_t>& counters) {
  std::uint64_t total = 0;
  // bss-lint: ordered-ok(sum is order-independent)
  for (const auto& [name, value] : counters) {
    total += value;
  }
  return total;
}
