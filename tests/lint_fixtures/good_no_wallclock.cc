// Fixture: the compliant patterns for time.  Deterministic code takes
// virtual time from the simulator (SimEnv's @clock) or a timestamp plumbed
// in by the caller; a genuine timing-channel read carries the documented
// suppression.
#include <chrono>
#include <cstdint>

// Virtual time is a parameter, not an ambient read.
std::uint64_t lease_expiry(std::uint64_t virtual_now, std::uint64_t ttl) {
  return virtual_now + ttl;
}

// The one legitimate wall-clock shape outside bench// obs: quarantined
// timing output, justified at the site.
double wall_seconds() {
  // bss-lint: wallclock-ok(fixture demo - feeds a quarantined timing field)
  const auto begin = std::chrono::steady_clock::now();
  // bss-lint: wallclock-ok(fixture demo - feeds a quarantined timing field)
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}
