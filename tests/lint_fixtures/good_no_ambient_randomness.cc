// Fixture: seed-plumbed randomness.  The seed arrives as data (flag, test
// parameter, printed-on-failure value), so any run can be replayed exactly —
// the util/rng.h contract.
#include <cstdint>
#include <random>

// A std engine is fine when the seed is explicit.
int seeded_engine_pick(std::uint64_t seed, int bound) {
  std::mt19937_64 gen(seed);
  return static_cast<int>(gen() % static_cast<std::uint64_t>(bound));
}

// Deterministic mixing of a caller-supplied seed (splitmix64 step).
std::uint64_t mix(std::uint64_t seed) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
