// Fixture: a declared BSS_* knob.  The self-test collects registry rows from
// every fixture file, so the table below stands in for
// src/util/env_registry.h; in the real tree the row would live there.
#include <cstdlib>

// Stand-in registry table (the linter reads X(BSS_..., rows textually):
//
//   X(BSS_FIXTURE_DEMO_KNOB, "fixture stand-in row")
//
// The row must be code, not comment, to count:
#define FIXTURE_ENV_REGISTRY(X) \
  X(BSS_FIXTURE_DEMO_KNOB, "fixture stand-in row")

bool demo_knob_enabled() {
  const char* raw = std::getenv("BSS_FIXTURE_DEMO_KNOB");
  return raw != nullptr && raw[0] == '1';
}
