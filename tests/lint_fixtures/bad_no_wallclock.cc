// Fixture: wall-clock reads outside the timing quarantine.  A schedule hash
// salted with the current time is different on every run — exactly the
// hidden nondeterminism the rule exists to catch.
#include <chrono>
#include <cstdint>

std::uint64_t schedule_salt() {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(now.time_since_epoch().count());
}

std::uint64_t report_stamp() {
  return static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
}

std::uint64_t fine_stamp() {
  return static_cast<std::uint64_t>(
      std::chrono::high_resolution_clock::now().time_since_epoch().count());
}
