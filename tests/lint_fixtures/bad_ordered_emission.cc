// Fixture: unordered-container iteration feeding canonical output.  The
// iteration order of an unordered_map depends on hash seeding, bucket count
// and insertion history, so the emitted json document differs between runs
// and between serial and parallel merges.
#include <cstdint>
#include <string>
#include <unordered_map>

std::string counters_to_json(
    const std::unordered_map<std::string, std::uint64_t>& counters) {
  std::string json = "{";
  for (const auto& [name, value] : counters) {
    json += "\"" + name + "\":" + std::to_string(value) + ",";
  }
  json += "}";
  return json;
}
