// The lease-based leader-election service end to end (DESIGN.md §10):
// config/token algebra, the lease ledger's interval semantics, exhaustive
// model checking of the clean service under a fault budget with timer
// decisions enabled, refutation of both seeded mutants with replayable
// minimized artifacts, the determinism and audit invariants with virtual
// time in the schedule space, and the std::thread backend under seeded
// crash-restart storms.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "explore/explore.h"
#include "obs/obs.h"
#include "obs/runreport.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"
#include "service/lease_config.h"
#include "service/lease_ledger.h"
#include "service/lease_service.h"
#include "service/lease_system.h"
#include "service/thread_platform.h"
#include "util/checked.h"

namespace bss::service {
namespace {

using explore::ActionKind;
using explore::Counterexample;
using explore::decode_action;
using explore::ExploreOptions;
using explore::ExploreResult;
using explore::ReplayOutcome;

/// On an unexpected violation, persist the counterexample so CI can upload
/// it (BSS_ARTIFACT_DIR is set by the workflow; no-op locally when unset).
void dump_artifact_on_failure(const ExploreResult& result,
                              const std::string& tag) {
  if (result.ok()) return;
  const char* dir = std::getenv("BSS_ARTIFACT_DIR");
  if (dir == nullptr) return;
  std::ofstream out(std::string(dir) + "/" + tag + ".bss-cex");
  out << result.violations.front().to_artifact();
}

/// The exhaustively-checkable config: one acquisition attempt, no renewals.
LeaseConfig small_config(int n) {
  LeaseConfig config;
  config.n = n;
  config.renewals = 0;
  config.acquire_attempts = 1;
  config.sc_retries = 0;
  return config;
}

/// The richer config the mutants are refuted under.
LeaseConfig med_config() {
  LeaseConfig config;
  config.n = 2;
  config.renewals = 1;
  config.acquire_attempts = 2;
  config.sc_retries = 1;
  return config;
}

// --------------------------------------------------------- config algebra

TEST(LeaseConfig, TokenEncodingRoundTrips) {
  const int n = 3;
  EXPECT_EQ(holder_domain(n), 7);
  for (int pid = 0; pid < n; ++pid) {
    EXPECT_EQ(token_owner(n, held_token(n, pid)), pid);
    EXPECT_EQ(token_owner(n, pend_token(n, pid)), pid);
    EXPECT_FALSE(is_pend(n, held_token(n, pid)));
    EXPECT_TRUE(is_pend(n, pend_token(n, pid)));
    EXPECT_LT(held_token(n, pid), holder_domain(n));
    EXPECT_LT(pend_token(n, pid), holder_domain(n));
    EXPECT_NE(held_token(n, pid), kVacant);
    EXPECT_NE(pend_token(n, pid), kVacant);
  }
  EXPECT_EQ(token_owner(n, kVacant), -1);
}

TEST(LeaseConfig, BackoffIsDeterministicAndBounded) {
  LeaseConfig config;
  config.backoff_base = 3;
  for (int pid = 0; pid < 4; ++pid) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t wait = lease_backoff(config, pid, attempt);
      EXPECT_EQ(wait, lease_backoff(config, pid, attempt));  // pure
      EXPECT_LE(wait, config.backoff_base *
                              (static_cast<std::uint64_t>(attempt) + 1));
    }
  }
  config.backoff_base = 0;
  EXPECT_EQ(lease_backoff(config, 0, 2), 0u);
}

TEST(LeaseConfig, ValidateTrapsDegenerateConfigs) {
  LeaseConfig bad;
  bad.term = 2;
  bad.renew_margin = 2;  // margin must be strictly inside the term
  EXPECT_THROW(bad.validate(), InvariantError);
  LeaseConfig zero;
  zero.acquire_attempts = 0;
  EXPECT_THROW(zero.validate(), InvariantError);
}

// ------------------------------------------------------------ lease ledger

TEST(LeaseLedger, SequentialReignsAreDisjoint) {
  LeaseLedger ledger;
  ledger.acquired(0, 0, 0, 8, false);
  ledger.led(0, 5);
  ledger.stepped_down(0, 8, StepDownReason::kRetired);
  ledger.acquired(1, 0, 9, 17, true);
  ledger.stepped_down(1, 17, StepDownReason::kRetired);
  EXPECT_EQ(ledger.check(), std::nullopt);
}

// Half-open granularity rule: a handoff WITHIN one tick (the predecessor's
// end tick equals the successor's start tick) is disjoint — the holder
// register, not the clock, orders records inside one tick.
TEST(LeaseLedger, SameTickHandoffCountsAsDisjoint) {
  LeaseLedger ledger;
  ledger.acquired(0, 0, 0, 8, false);
  ledger.stepped_down(0, 5, StepDownReason::kRenewFailed);
  ledger.acquired(1, 0, 5, 13, false);  // acquired the released slot at t=5
  ledger.stepped_down(1, 13, StepDownReason::kRetired);
  EXPECT_EQ(ledger.check(), std::nullopt);
}

TEST(LeaseLedger, OverlappingReignsAreConvicted) {
  LeaseLedger ledger;
  ledger.acquired(0, 0, 0, 10, false);
  ledger.stepped_down(0, 10, StepDownReason::kRetired);
  ledger.acquired(1, 0, 9, 17, true);
  ledger.stepped_down(1, 17, StepDownReason::kRetired);
  const auto violation = ledger.check();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("overlapping leases"), std::string::npos)
      << *violation;
}

TEST(LeaseLedger, OpenReignClipsAtItsExpiry) {
  LeaseLedger ledger;
  ledger.acquired(0, 0, 0, 8, false);  // crashed holder: reign never closed
  ledger.acquired(1, 0, 8, 16, true);  // moved in exactly at the expiry
  ledger.stepped_down(1, 16, StepDownReason::kRetired);
  EXPECT_EQ(ledger.check(), std::nullopt);
  // A successor inside the clip window overlaps.
  LeaseLedger bad;
  bad.acquired(0, 0, 0, 8, false);
  bad.acquired(1, 0, 7, 15, true);
  bad.stepped_down(1, 15, StepDownReason::kRetired);
  EXPECT_TRUE(bad.check().has_value());
}

// led() is honest: an action recorded past the closed end extends the
// effective reign — exactly the mutants' tell.
TEST(LeaseLedger, LateActionExtendsTheEffectiveReign) {
  LeaseLedger ledger;
  ledger.acquired(0, 0, 0, 8, false);
  ledger.led(0, 12);  // acted well past the believed validity
  ledger.stepped_down(0, 8, StepDownReason::kExpired);
  ledger.acquired(1, 0, 9, 17, true);
  ledger.stepped_down(1, 17, StepDownReason::kRetired);
  const auto violation = ledger.check();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("overlapping leases"), std::string::npos);
}

TEST(LeaseLedger, StepDownWithoutAnOpenReignTraps) {
  LeaseLedger ledger;
  EXPECT_THROW(ledger.stepped_down(0, 1, StepDownReason::kRetired),
               InvariantError);
}

TEST(LeaseLedger, FingerprintIsInsertionOrderIndependent) {
  LeaseLedger a;
  a.acquired(0, 0, 0, 8, false);
  a.stepped_down(0, 8, StepDownReason::kRetired);
  a.acquired(1, 0, 9, 17, true);
  a.stepped_down(1, 17, StepDownReason::kRetired);
  LeaseLedger b;  // same history, the other interleaving of the records
  b.acquired(1, 0, 9, 17, true);
  b.stepped_down(1, 17, StepDownReason::kRetired);
  b.acquired(0, 0, 0, 8, false);
  b.stepped_down(0, 8, StepDownReason::kRetired);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_FALSE(a.fingerprint().empty());
}

TEST(LeaseLedger, StatsMergeAddsCounters) {
  LeaseLedger ledger;
  ledger.acquired(0, 0, 0, 8, true);
  ledger.led(0, 3);
  ledger.retried(0);
  ledger.stepped_down(0, 8, StepDownReason::kExpired);
  LeaseStats merged;
  merged.merge_from(ledger.stats());
  merged.merge_from(ledger.stats());
  EXPECT_EQ(merged.leases_acquired, 2u);
  EXPECT_EQ(merged.takeovers, 2u);
  EXPECT_EQ(merged.actions, 2u);
  EXPECT_EQ(merged.retries, 2u);
  EXPECT_EQ(merged.step_downs, 2u);
  EXPECT_EQ(merged.expirations, 2u);
}

TEST(LeaseLedger, LifecycleEventsReachTheObsSink) {
  obs::Telemetry telemetry;
  LeaseLedger ledger;
  ledger.set_obs_sink(&telemetry);
  ledger.acquired(0, 0, 0, 8, false);
  ledger.renewed(0, 13);
  ledger.stepped_down(0, 13, StepDownReason::kRetired);
  std::vector<std::string> kinds;
  for (const auto& stamped : telemetry.event_log().events()) {
    kinds.push_back(stamped.event.kind);
  }
  EXPECT_EQ(kinds, (std::vector<std::string>{
                       "service.acquire", "service.renew",
                       "service.step_down"}));
}

// ------------------------------------------------------- single-run sanity

TEST(LeaseService, RoundRobinRunIsSafeAndFingerprints) {
  LeaseServiceSystem system(med_config());
  const auto instance = system.make();
  sim::SimEnv env;
  instance->populate(env);
  sim::RoundRobinScheduler scheduler;
  const sim::RunReport report = env.run(scheduler);
  EXPECT_EQ(instance->check(env, report), std::nullopt);
  const std::string fingerprint = instance->fingerprint(env);
  EXPECT_NE(fingerprint.find("holder="), std::string::npos);
  EXPECT_NE(fingerprint.find("clock="), std::string::npos);
  EXPECT_NE(fingerprint.find("reigns="), std::string::npos);
}

// ----------------------------------------- exhaustive clean-service sweeps

// The headline certificate at n=2: EVERY schedule of steps x timers x one
// fault (crash, restart, or spurious SC failure) keeps the reigns disjoint.
TEST(LeaseService, CleanServiceExhaustiveUnderOneFaultBudget) {
  LeaseServiceSystem system(small_config(2));
  ExploreOptions options;
  options.fault_bound = 1;
  options.explore_sc_failures = true;
  options.jobs = 2;
  const ExploreResult result = explore::explore(system, options);
  dump_artifact_on_failure(result, "lease_clean_n2_fb1");
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? std::string()
                                   : result.violations.front().violation);
  EXPECT_TRUE(result.exhausted);
  // Timer firings were real decisions in this space, and faults were
  // actually injected — the sweep covered the advertised domain.
  EXPECT_GT(result.stats.timer_grants, 0u);
  EXPECT_GT(result.stats.faults_injected, 0u);
  EXPECT_GT(result.stats.schedules, 10'000u);
}

// n=3 under the same budget is campaign-sized (millions of schedules; run
// `bench_service --campaign exhaustive` with --checkpoint/--resume), so
// the in-tree test bounds preemptions instead: every schedule with at most
// one preemption and at most one fault stays safe.
TEST(LeaseService, CleanServiceAtNThreeBoundedUnderFaultBudget) {
  LeaseServiceSystem system(small_config(3));
  ExploreOptions options;
  options.fault_bound = 1;
  options.explore_sc_failures = true;
  options.preemption_bound = 1;
  options.jobs = 2;
  const ExploreResult result = explore::explore(system, options);
  dump_artifact_on_failure(result, "lease_clean_n3_pb1");
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? std::string()
                                   : result.violations.front().violation);
  EXPECT_FALSE(result.exhausted);  // preemption prunes clear the flag
  EXPECT_GT(result.stats.timer_grants, 0u);
}

// ------------------------------------------------------ mutant refutations

TEST(LeaseService, RenewAfterExpiryMutantIsRefutedScheduleOnly) {
  LeaseServiceSystem system(med_config(), LeaseMutant::kRenewAfterExpiry);
  ExploreOptions options;
  options.fault_bound = 1;
  options.preemption_bound = 2;
  const ExploreResult result = explore::explore(system, options);
  ASSERT_FALSE(result.ok());
  const Counterexample& cex = result.violations.front();
  EXPECT_NE(cex.violation.find("overlapping leases"), std::string::npos)
      << cex.violation;
  // The adversary needs no faults for this one: delaying the holder's wake
  // grant while a challenger's backoff timer drives the clock past the
  // expiry is pure scheduling, so the artifact is schedule-only (v1).
  EXPECT_EQ(cex.fault_count(), 0u);
  EXPECT_EQ(cex.to_artifact().rfind("bss-counterexample v1", 0), 0u)
      << cex.to_artifact();
  // Artifact round-trip and verbatim replay (zero divergences).
  const auto parsed = Counterexample::from_artifact(cex.to_artifact());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->decisions, cex.decisions);
  const ReplayOutcome replay = explore::replay_counterexample(system, cex);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);
  EXPECT_NE(replay.violation.find("overlapping leases"), std::string::npos);
}

TEST(LeaseService, NoStepDownMutantNeedsTheSpuriousScFault) {
  LeaseConfig config = med_config();
  config.sc_retries = 0;  // the explorer's single injected failure bites
  LeaseServiceSystem system(config, LeaseMutant::kNoStepDownOnRenewFailure);
  ExploreOptions options;
  options.fault_bound = 1;
  options.explore_crashes = false;
  options.explore_restarts = false;
  options.explore_sc_failures = true;
  options.preemption_bound = 2;
  const ExploreResult result = explore::explore(system, options);
  ASSERT_FALSE(result.ok());
  const Counterexample& cex = result.violations.front();
  EXPECT_NE(cex.violation.find("overlapping leases"), std::string::npos)
      << cex.violation;
  // This mutant re-checks the holder token and only misbehaves when the
  // failed SC was provably spurious — a pure-schedule adversary cannot
  // produce that, so the minimized tape must carry an injected `s` fault
  // and serialize as a v2 artifact.
  EXPECT_GE(cex.fault_count(), 1u);
  bool has_sc_failure = false;
  for (const int decision : cex.decisions) {
    has_sc_failure |= decode_action(decision).kind == ActionKind::kScFailure;
  }
  EXPECT_TRUE(has_sc_failure);
  EXPECT_EQ(cex.to_artifact().rfind("bss-counterexample v2", 0), 0u)
      << cex.to_artifact();
  const auto parsed = Counterexample::from_artifact(cex.to_artifact());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->decisions, cex.decisions);
  const ReplayOutcome replay = explore::replay_counterexample(system, cex);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);
}

// --------------------------------------- determinism and audit invariants

/// Byte-level equality of two ExploreResults (the parallel-determinism
/// contract, here exercised with virtual time in the schedule space).
void expect_identical(const ExploreResult& reference,
                      const ExploreResult& candidate,
                      const std::string& label) {
  EXPECT_EQ(reference.stats.summary(), candidate.stats.summary()) << label;
  EXPECT_EQ(reference.exhausted, candidate.exhausted) << label;
  ASSERT_EQ(reference.violations.size(), candidate.violations.size()) << label;
  for (std::size_t i = 0; i < reference.violations.size(); ++i) {
    EXPECT_EQ(reference.violations[i].to_artifact(),
              candidate.violations[i].to_artifact())
        << label << " violation " << i;
  }
}

TEST(LeaseService, ParallelExplorationIsByteIdenticalWithTimers) {
  LeaseServiceSystem system(small_config(3));
  ExploreOptions base;
  base.fault_bound = 1;
  base.explore_sc_failures = true;
  base.preemption_bound = 1;
  const ExploreResult serial = explore::explore(system, base);
  ExploreOptions parallel = base;
  parallel.jobs = 4;
  expect_identical(serial, explore::explore(system, parallel),
                   "jobs=1 vs jobs=4");
}

TEST(LeaseService, AuditIsCleanAndPassiveOverTimerOps) {
  // The access-ledger audit cross-checks every declared footprint —
  // including the @clock reads and timer fetch-maxes virtual time added to
  // the op vocabulary.  It must find nothing, and attaching it must not
  // perturb results.
  LeaseServiceSystem system(small_config(2));
  ExploreOptions plain;
  const ExploreResult reference = explore::explore(system, plain);
  ExploreOptions audited = plain;
  audited.audit = true;
  const ExploreResult with_audit = explore::explore(system, audited);
  expect_identical(reference, with_audit, "audit off vs on");
  EXPECT_TRUE(with_audit.audit.enabled);
  EXPECT_GT(with_audit.audit.windows, 0u);
  EXPECT_EQ(with_audit.audit.ledger_violations, 0u);
  EXPECT_EQ(with_audit.audit.commute_mismatches, 0u);
}

TEST(LeaseService, TelemetryIsPassiveAndReportsTimerGrants) {
  LeaseServiceSystem system(small_config(2));
  ExploreOptions plain;
  const ExploreResult reference = explore::explore(system, plain);
  obs::Telemetry telemetry;
  ExploreOptions observed = plain;
  observed.telemetry = &telemetry;
  expect_identical(reference, explore::explore(system, observed),
                   "telemetry off vs on");
  ASSERT_FALSE(telemetry.last_report().empty());
  EXPECT_TRUE(obs::validate_runreport(telemetry.last_report()).empty());
  const auto report = obs::RunReport::parse(telemetry.last_report());
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->system(), system.name());
  EXPECT_EQ(report->stat("timer_grants"), reference.stats.timer_grants);
  EXPECT_GT(report->stat("timer_grants"), 0u);
}

// ---------------------------------------------------- std::thread backend

TEST(ThreadBoard, LlScVersioningDefeatsAba) {
  ThreadLeaseBoard board(small_config(2));
  const std::uint64_t linked = board.load_link();
  EXPECT_EQ(ThreadLeaseBoard::token_of(linked), kVacant);
  EXPECT_TRUE(board.store_conditional(linked, held_token(2, 0)));
  // The stale link must fail even though it saw the same token value a
  // fresh LL would: the version advanced.
  EXPECT_FALSE(board.store_conditional(linked, held_token(2, 1)));
  EXPECT_EQ(ThreadLeaseBoard::token_of(board.load_link()), held_token(2, 0));
}

TEST(ThreadBoard, ClockAdvanceIsFetchMax) {
  ThreadLeaseBoard board(small_config(2));
  EXPECT_EQ(board.clock_now(), 0u);
  EXPECT_EQ(board.clock_advance(5), 5u);
  EXPECT_EQ(board.clock_advance(3), 5u);  // never goes backward
  EXPECT_EQ(board.clock_advance(9), 9u);
  EXPECT_EQ(board.clock_now(), 9u);
}

TEST(ThreadStorm, SeededCrashRestartStormsKeepReignsDisjoint) {
  LeaseConfig config = med_config();
  config.n = 3;
  config.acquire_attempts = 3;
  int restarts = 0;
  int spurious = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const ThreadStormReport report =
        run_thread_lease_storm(config, seed, /*max_crashes=*/2);
    EXPECT_EQ(report.violation, std::nullopt)
        << "seed " << seed << ": " << *report.violation;
    restarts += report.restarts;
    spurious += report.spurious_delivered;
  }
  // The storm must actually exercise both fault kinds, or it proves nothing.
  EXPECT_GT(restarts, 10);
  EXPECT_GT(spurious, 0);
}

// The thread-backend analogue of the FaultPlan edge the sim suite pins
// (test_faults.cc): a spurious SC failure scripted INTO a crash-restart
// incarnation must be delivered there and survived.
TEST(ThreadStorm, ScriptedSpuriousScInsideRestartIncarnation) {
  LeaseConfig config;
  config.n = 1;
  config.renewals = 1;
  config.acquire_attempts = 3;
  config.sc_retries = 1;
  ThreadLeaseBoard board(config);
  LeaseLedger ledger;
  ThreadFaultScript script;
  script.abort_before_op = {5};     // incarnation 0 dies mid-two-phase
  script.spurious_sc = {{1, 0}};    // incarnation 1's FIRST SC fails
  ThreadLeasePlatform plat(board, 0, script);
  int restarts = 0;
  for (int incarnation = 0;; ++incarnation) {
    plat.begin_incarnation(incarnation);
    try {
      run_lease_session(plat, ledger, config);
      break;
    } catch (const ThreadLeaseRestart&) {
      ++restarts;
    }
  }
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(plat.spurious_delivered(), 1);
  EXPECT_EQ(ledger.check(), std::nullopt);
  const LeaseStats stats = ledger.stats();
  // Incarnation 1 waited out its own orphaned pend registration, ate the
  // spurious failure, took the slot over, and served a full session.
  EXPECT_EQ(stats.leases_acquired, 1u);
  EXPECT_EQ(stats.takeovers, 1u);
  EXPECT_EQ(stats.renewals, 1u);
}

}  // namespace
}  // namespace bss::service
