// The incremental SimEnv API (start/pending/inject/step/finish) — the
// mechanism the Section 3 emulation drives v-processes with.
#include <gtest/gtest.h>

#include "registers/mwmr_register.h"
#include "runtime/sim_env.h"

namespace bss::sim {
namespace {

TEST(Incremental, PendingOpsVisibleBeforeExecution) {
  SimEnv env;
  MwmrRegister<int> reg("r", 5);
  env.add_process([&](Ctx& ctx) {
    (void)reg.read(ctx);
    reg.write(ctx, 9);
  });
  env.start();
  ASSERT_TRUE(env.is_parked(0));
  EXPECT_EQ(env.pending_of(0).op, "read");
  EXPECT_EQ(env.pending_of(0).object, "r");
  const TraceEvent first = env.step_process(0);
  EXPECT_EQ(first.desc.op, "read");
  EXPECT_EQ(first.result, 5);
  ASSERT_TRUE(env.is_parked(0));
  EXPECT_EQ(env.pending_of(0).op, "write");
  EXPECT_EQ(env.pending_of(0).arg0, 9);
  env.step_process(0);
  EXPECT_TRUE(env.is_finished(0));
  EXPECT_EQ(env.outcome_of(0), ProcOutcome::kFinished);
  env.finish();
  EXPECT_EQ(reg.peek(), 9);
}

TEST(Incremental, InjectionDeliversResults) {
  SimEnv env;
  std::int64_t got = -1;
  env.add_process([&](Ctx& ctx) {
    ctx.sync({"fake", "cas", 0, 1});
    got = ctx.take_injection();
  });
  env.start();
  env.inject(0, 42);
  env.step_process(0);
  env.finish();
  EXPECT_EQ(got, 42);
}

TEST(Incremental, MissingInjectionIsAnError) {
  SimEnv env;
  env.add_process([&](Ctx& ctx) {
    ctx.sync({"fake", "cas", 0, 1});
    (void)ctx.take_injection();  // nothing injected: invariant error
  });
  env.start();
  env.step_process(0);
  EXPECT_TRUE(env.is_finished(0));
  EXPECT_EQ(env.outcome_of(0), ProcOutcome::kFailed);
  EXPECT_NE(env.error_of(0).find("injected"), std::string::npos);
  env.finish();
}

TEST(Incremental, InjectionIsConsumedPerStep) {
  SimEnv env;
  std::vector<std::int64_t> got;
  env.add_process([&](Ctx& ctx) {
    for (int i = 0; i < 2; ++i) {
      ctx.sync({"fake", "cas", i, i + 1});
      got.push_back(ctx.take_injection());
    }
  });
  env.start();
  env.inject(0, 7);
  env.step_process(0);
  env.inject(0, 8);
  env.step_process(0);
  env.finish();
  EXPECT_EQ(got, (std::vector<std::int64_t>{7, 8}));
}

TEST(Incremental, InterleavesTwoProcessesUnderDriverControl) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  std::vector<int> p1_reads;
  env.add_process([&](Ctx& ctx) {
    reg.write(ctx, 1);
    reg.write(ctx, 2);
  });
  env.add_process([&](Ctx& ctx) {
    p1_reads.push_back(reg.read(ctx));
    p1_reads.push_back(reg.read(ctx));
  });
  env.start();
  env.step_process(0);  // write 1
  env.step_process(1);  // read -> 1
  env.step_process(0);  // write 2
  env.step_process(1);  // read -> 2
  env.finish();
  EXPECT_EQ(p1_reads, (std::vector<int>{1, 2}));
}

TEST(Incremental, KillUnwindsAParkedProcess) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  env.add_process([&](Ctx& ctx) {
    reg.write(ctx, 1);
    reg.write(ctx, 2);
  });
  env.start();
  env.step_process(0);
  env.kill_process(0);
  EXPECT_TRUE(env.is_finished(0));
  EXPECT_EQ(env.outcome_of(0), ProcOutcome::kCrashed);
  env.finish();
  EXPECT_EQ(reg.peek(), 1);
}

TEST(Incremental, FinishKillsEverythingParked) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  for (int pid = 0; pid < 3; ++pid) {
    env.add_process([&](Ctx& ctx) {
      for (int i = 0; i < 100; ++i) reg.write(ctx, i);
    });
  }
  env.start();
  env.step_process(1);
  env.finish();
  for (int pid = 0; pid < 3; ++pid) {
    EXPECT_TRUE(env.is_finished(pid));
    EXPECT_EQ(env.outcome_of(pid), ProcOutcome::kCrashed);
  }
}

TEST(Incremental, StepTraceIsRecorded) {
  SimEnv env;
  MwmrRegister<int> reg("r", 3);
  env.add_process([&](Ctx& ctx) { (void)reg.read(ctx); });
  env.start();
  env.step_process(0);
  env.finish();
  ASSERT_EQ(env.trace().size(), 1u);
  EXPECT_EQ(env.trace().events()[0].desc.op, "read");
}

TEST(Incremental, MixedModesRejected) {
  SimEnv env;
  env.add_process([](Ctx&) {});
  env.start();
  RoundRobinScheduler scheduler;
  EXPECT_THROW(env.run(scheduler), bss::InvariantError);
  env.finish();
}

TEST(Incremental, GlobalStepAdvancesWithSteps) {
  SimEnv env;
  MwmrRegister<int> reg("r", 0);
  std::vector<std::uint64_t> stamps;
  env.add_process([&](Ctx& ctx) {
    stamps.push_back(ctx.global_step());
    reg.write(ctx, 1);
    stamps.push_back(ctx.global_step());
    reg.write(ctx, 2);
    stamps.push_back(ctx.global_step());
  });
  env.start();
  env.step_process(0);
  env.step_process(0);
  env.finish();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_LE(stamps[0], stamps[1]);
  EXPECT_LT(stamps[1], stamps[2]);
}

}  // namespace
}  // namespace bss::sim
