// Crash-recovery fault model end to end: FaultPlan semantics, SimEnv
// restart/spurious-SC machinery, recoverable elections under randomized
// storms on both backends, and the fault-aware schedule explorer —
// exhaustive single-fault sweeps over correct systems and the refutation of
// the seeded recovery-unsafe mutant with a replayable v2 artifact.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/election_validator.h"
#include "core/llsc_election.h"
#include "core/recoverable_election.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "registers/ll_sc.h"
#include "registers/mwmr_register.h"
#include "runtime/fault_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"
#include "util/rng.h"

namespace bss {
namespace {

using core::ElectionVerdict;
using core::RecoverableConcurrentReport;
using core::RecoverableElectionReport;
using core::RestartBehavior;
using core::run_llsc_election;
using core::run_recoverable_concurrent_election;
using core::run_recoverable_sim_election;
using core::verify_election;
using explore::ActionKind;
using explore::Counterexample;
using explore::decode_action;
using explore::encode_action;
using explore::ExploreOptions;
using explore::ExploreResult;
using explore::kMaxActionPid;
using explore::LlScSystem;
using explore::OneShotSystem;
using explore::RecoverableFvtSystem;
using explore::ReplayOutcome;
using sim::CrashPlan;
using sim::FaultKind;
using sim::FaultPlan;
using sim::RandomScheduler;
using sim::RoundRobinScheduler;

/// On an unexpected violation, persist the counterexample so CI can upload
/// it (BSS_ARTIFACT_DIR is set by the workflow; no-op locally when unset).
void dump_artifact_on_failure(const ExploreResult& result,
                              const std::string& tag) {
  if (result.ok()) return;
  const char* dir = std::getenv("BSS_ARTIFACT_DIR");
  if (dir == nullptr) return;
  std::ofstream out(std::string(dir) + "/" + tag + ".bss-cex");
  out << result.violations.front().to_artifact();
}

// ------------------------------------------------------- FaultPlan semantics

TEST(FaultPlan, LiftsCrashPlanToFailStopEvents) {
  CrashPlan crashes;
  crashes.crash_before_op(0, 3);
  crashes.crash_before_op(2, 0);
  const FaultPlan plan = crashes;  // implicit lift
  ASSERT_EQ(plan.events_for(0).size(), 1u);
  EXPECT_EQ(plan.events_for(0)[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events_for(0)[0].op_index, 3u);
  EXPECT_TRUE(plan.events_for(1).empty());
  ASSERT_EQ(plan.events_for(2).size(), 1u);
  EXPECT_EQ(plan.victim_count(), 2u);
  EXPECT_FALSE(plan.has_restarts());
}

TEST(FaultPlan, EventsSortedByOpIndexAndFirstRegistrationWins) {
  FaultPlan plan;
  plan.restart_before_op(0, 7).crash_before_op(0, 2).restart_before_op(0, 7);
  plan.crash_before_op(0, 7);  // same index as the restart: ignored
  const auto& events = plan.events_for(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].op_index, 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(events[1].op_index, 7u);
  EXPECT_EQ(events[1].kind, FaultKind::kRestart);
  EXPECT_TRUE(plan.has_restarts());
  EXPECT_EQ(plan.event_count(), 2u);
}

TEST(FaultPlan, AtMostOneSpuriousScPerPid) {
  FaultPlan plan;
  plan.fail_sc(1, 0).fail_sc(1, 5);  // re-registration ignored
  EXPECT_TRUE(plan.should_fail_sc(1, 0));
  EXPECT_FALSE(plan.should_fail_sc(1, 5));
  EXPECT_FALSE(plan.should_fail_sc(0, 0));
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RandomPlanRespectsProbabilityEdges) {
  Rng rng(42);
  const FaultPlan none = FaultPlan::random(16, 0.0, 0.0, 0.0, 20, rng);
  EXPECT_TRUE(none.empty());
  const FaultPlan all = FaultPlan::random(16, 1.0, 1.0, 1.0, 20, rng);
  EXPECT_EQ(all.victim_count(), 16u);
  EXPECT_TRUE(all.has_restarts());
  for (int pid = 0; pid < 16; ++pid) {
    for (const auto& event : all.events_for(pid)) {
      EXPECT_LT(event.op_index, 20u);
    }
  }
}

TEST(CrashPlan, DuplicateRegistrationKeepsEarliestDeath) {
  CrashPlan plan;
  plan.crash_before_op(3, 9);
  plan.crash_before_op(3, 4);  // earlier death wins
  plan.crash_before_op(3, 6);  // later death ignored
  ASSERT_EQ(plan.points().count(3), 1u);
  EXPECT_EQ(plan.points().at(3), 4u);
}

// --------------------------------------------------- SimEnv restart machinery

TEST(SimRestart, RestartLosesPrivateStateKeepsSharedRegisters) {
  sim::SimEnv env;
  sim::MwmrRegister<int> reg("reg", 0);
  struct Entry {
    int incarnation;
    int seen;
    int after;
  };
  std::vector<Entry> log;
  const auto body = [&reg, &log](sim::Ctx& ctx) {
    const int seen = reg.read(ctx);      // ops 0 (and 2 after the restart)
    reg.write(ctx, seen + 5);            // ops 1 (and 3)
    const int after = reg.read(ctx);     // op 4: only the survivor gets here
    log.push_back({ctx.incarnation(), seen, after});
  };
  env.add_process(body, body);
  FaultPlan plan;
  plan.restart_before_op(0, 2);
  RoundRobinScheduler scheduler;
  const sim::RunReport report = env.run(scheduler, plan);

  // The first incarnation read 0 and wrote 5, then was unwound before its
  // op 2 — it logged nothing (private state died with the stack).  The
  // second incarnation read the PERSISTED 5, wrote 10, read 10 back.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].incarnation, 1);
  EXPECT_EQ(log[0].seen, 5);
  EXPECT_EQ(log[0].after, 10);
  EXPECT_EQ(report.outcomes[0], sim::ProcOutcome::kFinished);
  EXPECT_EQ(report.restarts_by_pid[0], 1);
  EXPECT_EQ(report.restarted_count(), 1);
  EXPECT_EQ(report.steps_by_pid[0], 5u);  // lifetime count spans both lives
}

TEST(SimRestart, CrashAfterRestartIsTerminal) {
  sim::SimEnv env;
  sim::MwmrRegister<int> reg("reg", 0);
  const auto body = [&reg](sim::Ctx& ctx) {
    for (int i = 0; i < 4; ++i) reg.write(ctx, i);
  };
  env.add_process(body, body);
  FaultPlan plan;
  plan.restart_before_op(0, 2).crash_before_op(0, 5);
  RoundRobinScheduler scheduler;
  const sim::RunReport report = env.run(scheduler, plan);
  EXPECT_EQ(report.outcomes[0], sim::ProcOutcome::kCrashed);
  EXPECT_EQ(report.restarts_by_pid[0], 1);
  EXPECT_EQ(report.steps_by_pid[0], 5u);
}

TEST(SimRestart, RestartWithoutHookIsRejected) {
  sim::SimEnv env;
  sim::MwmrRegister<int> reg("reg", 0);
  env.add_process([&reg](sim::Ctx& ctx) { reg.write(ctx, 1); });  // no hook
  FaultPlan plan;
  plan.restart_before_op(0, 0);
  RoundRobinScheduler scheduler;
  EXPECT_THROW(env.run(scheduler, plan), InvariantError);
}

// ----------------------------------------------------- spurious SC failures

TEST(SpuriousSc, InjectedFailureLeavesLinkIntactAndRetrySucceeds) {
  sim::SimEnv env;
  sim::LlScRegisterK llsc("llsc", 4);
  std::vector<bool> results;
  env.add_process([&llsc, &results](sim::Ctx& ctx) {
    llsc.load_link(ctx);
    results.push_back(llsc.store_conditional(ctx, 1));  // forced spurious
    results.push_back(llsc.store_conditional(ctx, 1));  // link intact: wins
  });
  FaultPlan plan;
  plan.fail_sc(0, 0);
  RoundRobinScheduler scheduler;
  const sim::RunReport report = env.run(scheduler, plan);
  EXPECT_EQ(report.outcomes[0], sim::ProcOutcome::kFinished);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0]);
  EXPECT_TRUE(results[1]);
}

TEST(SpuriousSc, OrdinalLandsInRestartIncarnation) {
  // SC ordinals are LIFETIME coordinates: a restart does not reset the
  // count, so fail_sc(0, 1) addresses the restarted incarnation's first SC
  // (the process's second SC ever).  The failure must be delivered there,
  // and the link must survive it so the in-incarnation retry wins.
  sim::SimEnv env;
  sim::LlScRegisterK llsc("llsc", 4);
  struct Entry {
    int incarnation;
    bool first;
    bool second;
  };
  std::vector<Entry> log;
  const auto body = [&llsc, &log](sim::Ctx& ctx) {
    llsc.load_link(ctx);                                // ops 0 / 2
    const bool first = llsc.store_conditional(ctx, 1);  // op 1: sc #0 / op 3: sc #1
    llsc.load_link(ctx);                                // unwind point / op 4
    const bool second = llsc.store_conditional(ctx, 2);  // op 5: sc #2
    log.push_back({ctx.incarnation(), first, second});
  };
  env.add_process(body, body);
  FaultPlan plan;
  plan.restart_before_op(0, 2).fail_sc(0, 1);
  RoundRobinScheduler scheduler;
  const sim::RunReport report = env.run(scheduler, plan);
  EXPECT_EQ(report.outcomes[0], sim::ProcOutcome::kFinished);
  EXPECT_EQ(report.restarts_by_pid[0], 1);
  // Incarnation 0 succeeded at sc #0 and was unwound at its second LL; only
  // incarnation 1 logged, eating the spurious failure at sc #1.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].incarnation, 1);
  EXPECT_FALSE(log[0].first);
  EXPECT_TRUE(log[0].second);
}

TEST(SpuriousSc, RestartClearsAnInjectedPendingFailure) {
  // Incremental mode: marking a parked SC spurious and then crash-restarting
  // the process abandons the marked operation — the mark dies with the
  // incarnation instead of leaking onto the fresh incarnation's first SC.
  sim::SimEnv env;
  sim::LlScRegisterK llsc("llsc", 4);
  std::vector<std::pair<int, bool>> results;  // (incarnation, sc result)
  const auto body = [&llsc, &results](sim::Ctx& ctx) {
    llsc.load_link(ctx);
    results.emplace_back(ctx.incarnation(), llsc.store_conditional(ctx, 1));
  };
  env.add_process(body, body);
  env.start();
  env.step_process(0);  // LL
  ASSERT_TRUE(env.is_parked(0));
  ASSERT_EQ(env.pending_of(0).op, "sc");
  env.inject_sc_failure(0);
  env.restart_process(0);  // the marked SC is abandoned, never performed
  env.step_process(0);     // fresh incarnation's LL
  ASSERT_EQ(env.pending_of(0).op, "sc");
  env.step_process(0);
  env.finish();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].first, 1);
  EXPECT_TRUE(results[0].second);  // the stale mark must not have fired here
  EXPECT_EQ(env.snapshot_report().restarts_by_pid[0], 1);
}

TEST(SpuriousSc, LlScElectionToleratesOneSpuriousFailurePerProcess) {
  const int k = 4;
  const int n = 6;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FaultPlan plan;
    for (int pid = 0; pid < n; ++pid) plan.fail_sc(pid, seed % 3);
    RandomScheduler scheduler(seed);
    const core::LlScElectionReport report =
        run_llsc_election(k, n, scheduler, plan);
    EXPECT_TRUE(report.consistent) << "seed " << seed;
    EXPECT_TRUE(report.valid) << "seed " << seed;
    EXPECT_EQ(report.run.finished_count(), n) << "seed " << seed;
  }
}

// ------------------------------------------- recoverable election, simulator

TEST(RecoverableElection, HundredSeedCrashRestartStormKeepsAllInvariants) {
  const int k = 4;
  const int n = 6;
  int restarted_runs = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed);
    const FaultPlan plan = FaultPlan::random(n, 0.2, 0.5, 0.0, 30, rng);
    RandomScheduler scheduler(seed * 31 + 7);
    const RecoverableElectionReport report =
        run_recoverable_sim_election(k, n, scheduler, plan);
    const ElectionVerdict verdict = verify_election(report.election);
    EXPECT_TRUE(verdict.ok()) << "seed " << seed << ": " << verdict.diagnosis;
    if (report.election.run.restarted_count() > 0) ++restarted_runs;
  }
  EXPECT_GT(restarted_runs, 25);  // the storm must actually exercise restarts
}

TEST(RecoverableElection, RestartAtEveryDepthOfEveryProcess) {
  const int k = 3;
  const int n = 2;
  for (int victim = 0; victim < n; ++victim) {
    for (std::uint64_t t = 0; t < 10; ++t) {
      FaultPlan plan;
      plan.restart_before_op(victim, t);
      RoundRobinScheduler scheduler;
      const RecoverableElectionReport report =
          run_recoverable_sim_election(k, n, scheduler, plan);
      const ElectionVerdict verdict = verify_election(report.election);
      EXPECT_TRUE(verdict.ok())
          << "victim " << victim << " t=" << t << ": " << verdict.diagnosis;
      EXPECT_EQ(report.restarts_by_pid[static_cast<std::size_t>(victim)], 1);
    }
  }
}

TEST(RecoverableElection, FreshClaimMutantTripsTheRecoveryAudit) {
  // With two processes on the two slots of k=3, the mutant's re-claimed
  // fresh slot collides with the other process's announced identity, so the
  // recovery audit (or the validator) must object in SOME schedule; here we
  // pin one such schedule directly.
  const int k = 3;
  const int n = 2;
  int violations = 0;
  for (std::uint64_t t = 1; t < 8; ++t) {
    FaultPlan plan;
    plan.restart_before_op(0, t);
    RoundRobinScheduler scheduler;
    const RecoverableElectionReport report = run_recoverable_sim_election(
        k, n, scheduler, plan, RestartBehavior::kFreshClaim);
    const ElectionVerdict verdict = verify_election(report.election);
    const bool audit_failed =
        report.election.run.outcomes[0] == sim::ProcOutcome::kFailed;
    if (audit_failed || !verdict.ok()) ++violations;
  }
  EXPECT_GT(violations, 0);
}

// ----------------------------------------- recoverable election, std::thread

TEST(RecoverableElection, HundredSeedConcurrentRestartStorm) {
  const int k = 4;
  const int n = 3;
  int restarted_runs = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const RecoverableConcurrentReport report =
        run_recoverable_concurrent_election(k, n, seed);
    EXPECT_TRUE(report.consistent) << "seed " << seed;
    EXPECT_GE(report.leader, 1000);
    EXPECT_LT(report.leader, 1000 + n);
    for (int t = 0; t < n; ++t) {
      EXPECT_EQ(report.outcomes[static_cast<std::size_t>(t)].leader,
                report.leader)
          << "seed " << seed << " thread " << t;
    }
    for (const int restarts : report.restarts_by_thread) {
      if (restarts > 0) {
        ++restarted_runs;
        break;
      }
    }
  }
  EXPECT_GT(restarted_runs, 25);
}

// ------------------------------------------------ exhaustive fault sweeps

TEST(FaultExplore, ExhaustiveSingleFaultTwoProcessElection) {
  // Every single-crash and single-restart point of the 2-process one-shot
  // election, exhaustively: the fault space at budget 1 is fully covered
  // (exhausted), with zero violations.
  OneShotSystem system(4, 2, core::OneShotMutant::kNone, /*restartable=*/true);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  const ExploreResult result = explore::explore(system, options);
  dump_artifact_on_failure(result, "one_shot_4_2_single_fault");
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_TRUE(result.exhausted);
  EXPECT_GT(result.stats.faults_injected, 0u);
  // 2 processes x 3 ops each: crash points at op counts 0..2 per process
  // plus restart points at the same coordinates.
  EXPECT_EQ(result.stats.fault_points, 12u);
}

TEST(FaultExplore, ExhaustiveSingleFaultThreeProcessElection) {
  OneShotSystem system(4, 3, core::OneShotMutant::kNone, /*restartable=*/true);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  const ExploreResult result = explore::explore(system, options);
  dump_artifact_on_failure(result, "one_shot_4_3_single_fault");
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.stats.fault_points, 18u);  // 3 procs x 3 ops x {crash,restart}
}

TEST(FaultExplore, ExhaustiveSingleCrashFullFvtElection) {
  // The full FirstValueTree algorithm under every single fail-stop point.
  RecoverableFvtSystem system(3, 2);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_restarts = false;
  const ExploreResult result = explore::explore(system, options);
  dump_artifact_on_failure(result, "rfvt_3_2_single_crash");
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.stats.fault_points, 32u);
}

TEST(FaultExplore, BoundedSingleRestartFullFvtElection) {
  // Restarts double the schedule length, so the unbounded sweep is slow;
  // one preemption already reaches nearly every restart point (27 of the
  // 32 the unbounded space has) and every one is violation-free.
  RecoverableFvtSystem system(3, 2);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;
  options.preemption_bound = 1;
  const ExploreResult result = explore::explore(system, options);
  dump_artifact_on_failure(result, "rfvt_3_2_single_restart_pb1");
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_FALSE(result.exhausted);  // preemption-bounded by design
  EXPECT_EQ(result.stats.fault_points, 27u);
}

TEST(FaultExplore, BoundedSpuriousScSweepLlScElection) {
  LlScSystem system(3, 2);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;
  options.explore_restarts = false;
  options.explore_sc_failures = true;
  options.preemption_bound = 2;
  const ExploreResult result = explore::explore(system, options);
  dump_artifact_on_failure(result, "llsc_3_2_spurious_sc_pb2");
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_GT(result.stats.faults_injected, 0u);
  EXPECT_GT(result.stats.fault_points, 0u);
}

TEST(FaultExplore, FaultFreeBudgetMatchesPlainExplorer) {
  // fault_bound = 0 must reproduce the fault-free explorer exactly.
  OneShotSystem system(4, 2);
  ExploreOptions options;
  options.use_por = false;
  const ExploreResult plain = explore::explore(system, options);
  options.fault_bound = 0;
  options.explore_sc_failures = true;  // ignored without a fault budget
  const ExploreResult gated = explore::explore(system, options);
  EXPECT_EQ(plain.stats.schedules, gated.stats.schedules);
  EXPECT_EQ(gated.stats.schedules, 20u);
  EXPECT_EQ(gated.stats.faults_injected, 0u);
  EXPECT_TRUE(gated.exhausted);
}

// ------------------------------------------------- mutant refutation + v2

TEST(FaultExplore, FreshClaimMutantRefutedWithReplayableV2Artifact) {
  RecoverableFvtSystem system(3, 2, RestartBehavior::kFreshClaim);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;  // the bug needs a restart, not a death
  const ExploreResult result = explore::explore(system, options);
  ASSERT_FALSE(result.ok()) << "seeded recovery-unsafe mutant not refuted";
  const Counterexample& cex = result.violations.front();
  EXPECT_GE(cex.fault_count(), 1u);
  EXPECT_LE(cex.decisions.size(), 40u) << "minimization regressed";
  EXPECT_LE(cex.decisions.size(), cex.shrunk_from);

  // The artifact is v2, mentions the restart token, and round-trips.
  const std::string artifact = cex.to_artifact();
  EXPECT_EQ(artifact.rfind("bss-counterexample v2\n", 0), 0u) << artifact;
  EXPECT_NE(artifact.find(" r"), std::string::npos) << artifact;
  const auto parsed = Counterexample::from_artifact(artifact);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->decisions, cex.decisions);
  EXPECT_EQ(parsed->violation, cex.violation);
  EXPECT_EQ(parsed->processes, cex.processes);

  // And the parsed tape replays the violation with ZERO divergences.
  const ReplayOutcome replay =
      explore::replay_counterexample(system, *parsed, options);
  EXPECT_TRUE(replay.violated);
  EXPECT_EQ(replay.divergences, 0u);
  EXPECT_EQ(replay.violation, cex.violation);
}

TEST(FaultExplore, CorrectRecoverableElectionYieldsNoV2Artifacts) {
  // The non-mutant under the same options: zero violations.
  RecoverableFvtSystem system(3, 2);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;
  options.preemption_bound = 1;
  const ExploreResult result = explore::explore(system, options);
  dump_artifact_on_failure(result, "rfvt_3_2_recover_refutation_check");
  EXPECT_TRUE(result.ok()) << result.summary();
}

// ------------------------------------------------------- artifact formats

TEST(Artifact, V1StillParsesAndStaysFaultFree) {
  const std::string v1 =
      "bss-counterexample v1\n"
      "system: one_shot[k=4,n=2,mutant=claim-after-cas]\n"
      "processes: 2\n"
      "shrunk-from: 9\n"
      "violation: inconsistent: p1 elected 1001\n"
      "decisions: 0 1 1 0 0 1\n";
  const auto parsed = Counterexample::from_artifact(v1);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->decisions, (std::vector<int>{0, 1, 1, 0, 0, 1}));
  EXPECT_EQ(parsed->fault_count(), 0u);
  // A fault-free counterexample re-serializes as v1, bit-for-bit.
  EXPECT_EQ(parsed->to_artifact(), v1);
}

TEST(Artifact, V2TokensEncodeEveryFaultKind) {
  Counterexample cex;
  cex.system = "rfvt[k=3,n=2]";
  cex.processes = 2;
  cex.violation = "demo";
  cex.shrunk_from = 6;
  cex.decisions = {0, encode_action(ActionKind::kCrash, 1),
                   encode_action(ActionKind::kRestart, 0),
                   encode_action(ActionKind::kScFailure, 1), 1};
  const std::string artifact = cex.to_artifact();
  EXPECT_EQ(artifact.rfind("bss-counterexample v2\n", 0), 0u);
  EXPECT_NE(artifact.find("decisions: 0 c1 r0 s1 1"), std::string::npos)
      << artifact;
  const auto parsed = Counterexample::from_artifact(artifact);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->decisions, cex.decisions);
  EXPECT_EQ(parsed->fault_count(), 3u);
}

TEST(Artifact, RejectsMalformedFaultTokens) {
  const std::string prefix =
      "bss-counterexample v2\nsystem: x\nprocesses: 2\nshrunk-from: 1\n"
      "violation: v\n";
  EXPECT_FALSE(Counterexample::from_artifact(prefix + "decisions: 0 q1\n"));
  EXPECT_FALSE(Counterexample::from_artifact(prefix + "decisions: c\n"));
  EXPECT_FALSE(Counterexample::from_artifact(prefix + "decisions: r1x\n"));
  EXPECT_FALSE(Counterexample::from_artifact(prefix + "decisions: -3\n"));
  EXPECT_FALSE(
      Counterexample::from_artifact("bss-counterexample v3\n" + prefix));
}

// Regression for a fuzz_counterexample finding: the header-count fields
// went through bare std::stoi/std::stoull, so "processes: x" escaped
// from_artifact as std::invalid_argument (terminate in noexcept callers),
// an out-of-range count threw std::out_of_range, and stoull quietly
// wrapped "shrunk-from: -1" to 2^64-1.  All must now parse to nullopt.
TEST(Artifact, RejectsMalformedHeaderCounts) {
  const auto artifact = [](const std::string& processes,
                           const std::string& shrunk) {
    return "bss-counterexample v1\nsystem: x\nprocesses: " + processes +
           "\nshrunk-from: " + shrunk + "\nviolation: v\ndecisions: 0\n";
  };
  EXPECT_FALSE(Counterexample::from_artifact(artifact("x", "1")));
  EXPECT_FALSE(Counterexample::from_artifact(artifact("", "1")));
  EXPECT_FALSE(Counterexample::from_artifact(artifact("2x", "1")));
  EXPECT_FALSE(Counterexample::from_artifact(artifact("-2", "1")));
  EXPECT_FALSE(Counterexample::from_artifact(artifact("+2", "1")));
  EXPECT_FALSE(Counterexample::from_artifact(artifact(" 2", "1")));
  EXPECT_FALSE(
      Counterexample::from_artifact(artifact("99999999999999999999", "1")));
  EXPECT_FALSE(Counterexample::from_artifact(artifact("2", "-1")));
  EXPECT_FALSE(Counterexample::from_artifact(artifact("2", "1.5")));
  EXPECT_FALSE(
      Counterexample::from_artifact(artifact("2", "99999999999999999999")));
  // The boundary cases stay accepted: zero and kMaxActionPid + 1 processes.
  EXPECT_TRUE(Counterexample::from_artifact(artifact("0", "0")).has_value());
  const auto max_ok = Counterexample::from_artifact(
      artifact(std::to_string(static_cast<long long>(kMaxActionPid) + 1),
               "18446744073709551615"));
  ASSERT_TRUE(max_ok.has_value());
  EXPECT_EQ(max_ok->processes, kMaxActionPid + 1);
}

// Fuzz-corpus replay: tools/fuzz/corpus/counterexample checks in the seeds
// and harvested crashers for fuzz_counterexample (the crash_stoi_* files
// are the exact inputs that used to throw through from_artifact).
TEST(Artifact, FuzzCorpusFilesParseOrRejectWithoutCrashing) {
  const std::string dir =
      std::string(BSS_FUZZ_CORPUS_DIR) + "/counterexample";
  std::size_t seen = 0;
  std::size_t accepted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++seen;
    std::ifstream stream(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    const auto parsed = Counterexample::from_artifact(buffer.str());
    const std::string name = entry.path().filename().string();
    if (name.rfind("crash_", 0) == 0 || name.rfind("wrap_", 0) == 0 ||
        name.rfind("header_", 0) == 0) {
      EXPECT_FALSE(parsed.has_value()) << entry.path();
      continue;
    }
    if (!parsed.has_value()) continue;
    ++accepted;
    const std::string round = parsed->to_artifact();
    const auto reparsed = Counterexample::from_artifact(round);
    ASSERT_TRUE(reparsed.has_value()) << entry.path();
    EXPECT_EQ(reparsed->to_artifact(), round) << entry.path();
  }
  EXPECT_GE(seen, 4u) << "corpus dir unexpectedly empty: " << dir;
  EXPECT_GE(accepted, 2u) << "expected at least the two well-formed seeds";
}

TEST(Artifact, ActionEncodingRoundTrips) {
  for (const auto kind : {ActionKind::kGrant, ActionKind::kCrash,
                          ActionKind::kRestart, ActionKind::kScFailure}) {
    for (int pid = 0; pid < 8; ++pid) {
      const int encoded = encode_action(kind, pid);
      const auto action = decode_action(encoded);
      EXPECT_EQ(action.kind, kind);
      EXPECT_EQ(action.pid, pid);
      EXPECT_EQ(explore::is_fault_action(encoded), kind != ActionKind::kGrant);
    }
  }
}

}  // namespace
}  // namespace bss
