// Telemetry layer tests (DESIGN.md §9): metric primitives and their
// deterministic merge, the bounded event log's two channels, the Chrome
// trace export's track structure, the bss-runreport v1 round-trip and its
// version/schema gates — and the passivity contract: attaching a Telemetry
// sink to explore() must leave every result byte-identical, at every worker
// count, across the whole mutant suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/mutant_elections.h"
#include "core/recoverable_election.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "obs/obs.h"
#include "obs/status.h"
#include "util/checked.h"

namespace bss::obs {
namespace {

using core::OneShotMutant;
using core::RestartBehavior;
using explore::ExplorableSystem;
using explore::ExploreOptions;
using explore::ExploreResult;
using explore::LlScSystem;
using explore::OneShotSystem;
using explore::RecoverableFvtSystem;

// ------------------------------------------------------------- histograms

TEST(Histogram, BoundsAreInclusiveUpperEdges) {
  HistogramData hist({1, 2, 4});
  ASSERT_EQ(hist.counts.size(), 4u);  // 3 bounds + overflow
  hist.observe(0);  // <= 1
  hist.observe(1);  // <= 1 (boundary is inclusive)
  hist.observe(2);  // <= 2 (exact boundary)
  hist.observe(3);  // <= 4
  hist.observe(4);  // <= 4 (exact boundary)
  hist.observe(5);  // overflow bucket
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[1], 1u);
  EXPECT_EQ(hist.counts[2], 2u);
  EXPECT_EQ(hist.counts[3], 1u);
  EXPECT_EQ(hist.count, 6u);
  EXPECT_EQ(hist.sum, 0u + 1 + 2 + 3 + 4 + 5);
}

TEST(Histogram, EmptyBoundsCollapseToOneOverflowBucket) {
  HistogramData hist;
  ASSERT_EQ(hist.counts.size(), 1u);
  hist.observe(0);
  hist.observe(1u << 30);
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.count, 2u);
}

TEST(Histogram, MergeAddsBucketwise) {
  HistogramData a({1, 2});
  HistogramData b({1, 2});
  a.observe(1);
  a.observe(9);
  b.observe(1);
  b.observe(2);
  a.merge_from(b);
  EXPECT_EQ(a.counts[0], 2u);
  EXPECT_EQ(a.counts[1], 1u);
  EXPECT_EQ(a.counts[2], 1u);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 1u + 9 + 1 + 2);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  HistogramData a({1, 2});
  HistogramData b({1, 4});
  EXPECT_THROW(a.merge_from(b), InvariantError);
}

TEST(Histogram, Pow2BoundsShape) {
  const auto bounds = pow2_bounds(4);
  EXPECT_EQ(bounds, (std::vector<std::uint64_t>{1, 2, 4, 8}));
}

// --------------------------------------------------------------- registry

TEST(MetricsRegistry, SnapshotIsShardOrderIndependent) {
  // Two registries fed identical data through shards created and written in
  // opposite orders must produce byte-identical snapshots.
  const auto feed = [](MetricShard& shard, std::uint64_t base) {
    shard.counter("explore.schedules") += base;
    shard.gauge_max("explore.max_depth", 10 * base);
    shard.histogram("depth", {1, 2, 4}).observe(base);
  };
  MetricsRegistry forward;
  feed(forward.shard(0), 1);
  feed(forward.shard(1), 2);
  feed(forward.shard(Event::kCoordinator), 3);
  MetricsRegistry backward;
  feed(backward.shard(Event::kCoordinator), 3);
  feed(backward.shard(1), 2);
  feed(backward.shard(0), 1);

  const std::string lhs = forward.snapshot().to_json().dump(1);
  const std::string rhs = backward.snapshot().to_json().dump(1);
  EXPECT_EQ(lhs, rhs);

  const MetricsSnapshot merged = forward.snapshot();
  EXPECT_EQ(merged.counters.at("explore.schedules"), 6u);   // sums
  EXPECT_EQ(merged.gauges.at("explore.max_depth"), 30u);    // maxes
  EXPECT_EQ(merged.histograms.at("depth").count, 3u);       // bucket-adds
}

TEST(MetricsRegistry, CounterReferenceIsStableForHotLoops) {
  MetricsRegistry registry;
  std::uint64_t& cell = registry.shard(0).counter("hot");
  for (int i = 0; i < 100; ++i) ++cell;
  EXPECT_EQ(registry.snapshot().counters.at("hot"), 100u);
}

// -------------------------------------------------------------- event log

TEST(EventLog, CapacityBoundsDropsAreCountedNeverSilent) {
  EventLog log(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    Event event;
    event.kind = "test.tick";
    event.step = static_cast<std::uint64_t>(i);
    log.emit(std::move(event));
  }
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.emitted(), 5u);
  EXPECT_EQ(log.dropped(), 3u);
}

TEST(EventLog, JsonlSeparatesDeterministicAndTimingChannels) {
  EventLog log;
  Event event;
  event.kind = "violation.found";
  event.step = 0;
  event.fields.emplace_back("violation", "two leaders");
  log.emit(std::move(event));

  std::istringstream lines(log.to_jsonl());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  std::string error;
  const auto parsed = json::Value::parse(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto& object = parsed->as_object();
  EXPECT_EQ(object.at("kind").as_string(), "violation.found");
  EXPECT_EQ(object.at("step").as_int(), 0);
  EXPECT_EQ(object.at("worker").as_int(), Event::kCoordinator);
  EXPECT_EQ(object.at("fields").as_object().at("violation").as_string(),
            "two leaders");
  // The wall clock lives only under "timing".
  const json::Value* timing = parsed->find("timing");
  ASSERT_NE(timing, nullptr);
  EXPECT_NE(timing->find("wall_ns"), nullptr);
  EXPECT_NE(timing->find("seq"), nullptr);
}

// ---------------------------------------------------------------- timeline

TEST(Timeline, ChromeTraceHasOneTrackPerWorkerPlusCoordinator) {
  Timeline timeline;
  const auto span = [&](const char* name, int track) {
    Span s;
    s.name = name;
    s.track = track;
    s.begin_ns = 1000;
    s.end_ns = 2000;
    timeline.record(std::move(s));
  };
  span("job", 0);
  span("job", 1);
  span("enumerate", Timeline::kCoordinatorTrack);

  std::string error;
  const auto parsed = json::Value::parse(timeline.to_chrome_trace(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto& events = parsed->as_object().at("traceEvents").as_array();
  std::set<std::int64_t> named_tracks;
  int complete_events = 0;
  bool coordinator_named = false;
  for (const auto& entry : events) {
    const auto& object = entry.as_object();
    const std::string& phase = object.at("ph").as_string();
    if (phase == "M") {
      named_tracks.insert(object.at("tid").as_int());
      if (object.at("args").as_object().at("name").as_string() ==
          "enumerate+merge") {
        coordinator_named = true;
      }
    } else if (phase == "X") {
      ++complete_events;
    }
  }
  EXPECT_EQ(named_tracks,
            (std::set<std::int64_t>{0, 1, Timeline::kCoordinatorTrack}));
  EXPECT_EQ(complete_events, 3);
  EXPECT_TRUE(coordinator_named);
}

// --------------------------------------------------------------- runreport

ReportBuilder sample_report() {
  ReportBuilder builder("explore", "test");
  builder.set_system("one_shot[k=4,n=2]");
  builder.environment("jobs", 4);
  builder.option("fault_bound", 1);
  builder.stat("schedules", 123);
  builder.coverage("exhausted", true);
  builder.events(7, 0);
  builder.timing("explore_wall_ns", 42);
  return builder;
}

TEST(RunReport, RoundTripsThroughParse) {
  const std::string text = sample_report().to_json();
  std::string error;
  const auto report = RunReport::parse(text, &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(report->kind(), "explore");
  EXPECT_EQ(report->producer(), "test");
  EXPECT_EQ(report->system(), "one_shot[k=4,n=2]");
  EXPECT_EQ(report->stat("schedules"), 123u);
  EXPECT_EQ(report->stat("absent", 9), 9u);
  // dump(parse(text)) is a fixed point — canonical output.
  EXPECT_EQ(report->root.dump(1) + "\n", text);
}

TEST(RunReport, RejectsUnknownSchemaVersion) {
  std::string error;
  EXPECT_FALSE(RunReport::parse(
                   R"({"schema": "bss-runreport v9", "kind": "bench"})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("unknown schema version"), std::string::npos) << error;
}

TEST(RunReport, RejectsMissingSchemaKey) {
  std::string error;
  EXPECT_FALSE(
      RunReport::parse(R"({"kind": "bench", "producer": "x"})", &error)
          .has_value());
}

TEST(RunReport, ValidatorAcceptsBuilderOutput) {
  EXPECT_TRUE(validate_runreport(sample_report().to_json()).empty());
}

TEST(RunReport, ValidatorRejectsUnknownTopLevelKey) {
  auto root = json::Value::parse(sample_report().to_json())->as_object();
  root.emplace("surprise", 1);
  const auto errors = validate_runreport(json::Value(root).dump(1));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("unknown top-level key \"surprise\""),
            std::string::npos)
      << errors[0];
}

TEST(RunReport, ValidatorRejectsNonIntegerStats) {
  auto root = json::Value::parse(sample_report().to_json())->as_object();
  root["stats"].as_object()["schedules"] = json::Value("lots");
  EXPECT_FALSE(validate_runreport(json::Value(root).dump(1)).empty());
}

TEST(RunReport, ValidatorAcceptsServiceStatFamily) {
  auto root = json::Value::parse(sample_report().to_json())->as_object();
  auto& stats = root["stats"].as_object();
  stats["service.leases_acquired"] = json::Value(std::uint64_t{5});
  stats["service.retries"] = json::Value(std::uint64_t{2});
  stats["service.step_downs"] = json::Value(std::uint64_t{4});
  stats["service.takeovers"] = json::Value(std::uint64_t{1});
  stats["service.actions"] = json::Value(std::uint64_t{9});
  const auto errors = validate_runreport(json::Value(root).dump(1));
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

TEST(RunReport, ValidatorRejectsUnknownServiceStat) {
  auto root = json::Value::parse(sample_report().to_json())->as_object();
  auto& stats = root["stats"].as_object();
  stats["service.leases_acquired"] = json::Value(std::uint64_t{1});
  stats["service.retries"] = json::Value(std::uint64_t{0});
  stats["service.step_downs"] = json::Value(std::uint64_t{1});
  stats["service.lease_acquired"] = json::Value(std::uint64_t{1});  // typo
  const auto errors = validate_runreport(json::Value(root).dump(1));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("unknown service stat \"service.lease_acquired\""),
            std::string::npos)
      << errors[0];
}

TEST(RunReport, ValidatorRequiresServiceTrioWhenFamilyPresent) {
  auto root = json::Value::parse(sample_report().to_json())->as_object();
  root["stats"].as_object()["service.renewals"] = json::Value(std::uint64_t{3});
  const auto errors = validate_runreport(json::Value(root).dump(1));
  ASSERT_EQ(errors.size(), 3u);
  for (const char* required :
       {"service.leases_acquired", "service.retries", "service.step_downs"}) {
    bool mentioned = false;
    for (const std::string& error : errors) {
      mentioned |= error.find(required) != std::string::npos;
    }
    EXPECT_TRUE(mentioned) << "no error mentions " << required;
  }
}

// ------------------------------------------------------ explore passivity

/// Byte-level equality of two ExploreResults, the same contract the
/// parallel-determinism suite asserts across worker counts.
void expect_identical(const ExploreResult& reference,
                      const ExploreResult& candidate,
                      const std::string& label) {
  EXPECT_EQ(reference.stats.summary(), candidate.stats.summary()) << label;
  EXPECT_EQ(reference.exhausted, candidate.exhausted) << label;
  ASSERT_EQ(reference.violations.size(), candidate.violations.size()) << label;
  for (std::size_t i = 0; i < reference.violations.size(); ++i) {
    EXPECT_EQ(reference.violations[i].to_artifact(),
              candidate.violations[i].to_artifact())
        << label << " violation " << i;
  }
}

/// Explores `system` without telemetry, then with metrics-only and with the
/// full sink, serial and at jobs=4 — six runs whose results must all be
/// byte-identical to the reference.
void expect_telemetry_passive(const ExplorableSystem& system,
                              ExploreOptions options) {
  options.jobs = 1;
  options.telemetry = nullptr;
  const ExploreResult reference = explore::explore(system, options);
  for (const int jobs : {1, 4}) {
    for (const bool events : {false, true}) {
      Telemetry::Options sink_options;
      sink_options.metrics = true;
      sink_options.events = events;
      sink_options.timeline = events;
      Telemetry telemetry(sink_options);
      ExploreOptions instrumented = options;
      instrumented.jobs = jobs;
      instrumented.telemetry = &telemetry;
      expect_identical(reference, explore::explore(system, instrumented),
                       system.name() + " jobs=" + std::to_string(jobs) +
                           (events ? " metrics+events" : " metrics"));
    }
  }
}

TEST(ObsPassivity, CleanOneShotExhaustiveSweep) {
  expect_telemetry_passive(OneShotSystem(4, 2), {});
}

TEST(ObsPassivity, ClaimAfterCasMutant) {
  expect_telemetry_passive(OneShotSystem(4, 3, OneShotMutant::kClaimAfterCas),
                           {});
}

TEST(ObsPassivity, SplitCasMutant) {
  expect_telemetry_passive(OneShotSystem(4, 2, OneShotMutant::kSplitCas), {});
}

TEST(ObsPassivity, ScBlindLlScMutant) {
  expect_telemetry_passive(LlScSystem(3, 2, /*sc_blind=*/true), {});
}

TEST(ObsPassivity, FaultSweepWithCoverage) {
  OneShotSystem system(4, 2, OneShotMutant::kNone, /*restartable=*/true);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  expect_telemetry_passive(system, options);
}

TEST(ObsPassivity, FreshClaimFaultRefutation) {
  RecoverableFvtSystem system(3, 2, RestartBehavior::kFreshClaim);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;
  expect_telemetry_passive(system, options);
}

// -------------------------------------- passivity under work-stealing

/// The stealing engine's extra instrumentation (worker.steal and
/// worker.checkpoint events, the explore.steals / explore.checkpoints
/// counters) must be as passive as the rest of the sink: at jobs = 4 the
/// results stay byte-identical to the uninstrumented serial run across
/// steal granularities, and with the legacy static engine too.
TEST(ObsPassivity, WorkStealingEngineAtFourJobs) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  ExploreOptions serial;
  serial.jobs = 1;
  const ExploreResult reference = explore::explore(system, serial);
  for (const int depth : {0, 2}) {
    Telemetry::Options sink_options;
    sink_options.metrics = true;
    sink_options.events = true;
    sink_options.timeline = true;
    Telemetry telemetry(sink_options);
    ExploreOptions options;
    options.jobs = 4;
    options.steal_depth = depth;
    options.telemetry = &telemetry;
    expect_identical(reference, explore::explore(system, options),
                     "stealing steal_depth=" + std::to_string(depth));
  }
  Telemetry telemetry;
  ExploreOptions options;
  options.steal = false;
  options.jobs = 4;
  options.shard_depth = 2;
  options.telemetry = &telemetry;
  expect_identical(reference, explore::explore(system, options),
                   "static engine");
}

// ------------------------------------------------- event stream contents

/// The deterministic channel of the merge-time and coordinator events:
/// everything except worker lifecycle (whose fields are legitimately
/// scheduling-dependent), ddmin progress (stamped per speculative
/// minimization, so present in workers' discovery order), and explore.start
/// (which records the jobs/shard_depth configuration under comparison).
std::string deterministic_event_trace(const Telemetry& telemetry) {
  std::string out;
  for (const auto& stamped : telemetry.event_log().events()) {
    const std::string& kind = stamped.event.kind;
    if (kind.rfind("worker.", 0) == 0 || kind.rfind("ddmin.", 0) == 0 ||
        kind.rfind("shrink.", 0) == 0 || kind == "explore.start") {
      continue;
    }
    out += kind + "#" + std::to_string(stamped.event.step);
    for (const auto& [key, value] : stamped.event.fields) {
      out += " " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

TEST(ObsEvents, MergeTimeEventStreamIsWorkerCountInvariant) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  const auto trace_at = [&](int jobs) {
    Telemetry::Options sink_options;
    sink_options.timeline = true;
    Telemetry telemetry(sink_options);
    ExploreOptions options;
    options.jobs = jobs;
    options.telemetry = &telemetry;
    (void)explore::explore(system, options);
    return deterministic_event_trace(telemetry);
  };
  const std::string serial = trace_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_NE(serial.find("violation.found#0"), std::string::npos);
  EXPECT_NE(serial.find("explore.done"), std::string::npos);
  EXPECT_EQ(serial, trace_at(4));
}

TEST(ObsEvents, FaultPointCoverageEventsMatchCoverageCount) {
  OneShotSystem system(4, 2, OneShotMutant::kNone, /*restartable=*/true);
  Telemetry telemetry;
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.telemetry = &telemetry;
  const ExploreResult result = explore::explore(system, options);
  std::uint64_t coverage_events = 0;
  for (const auto& stamped : telemetry.event_log().events()) {
    if (stamped.event.kind == "coverage.fault_point") ++coverage_events;
  }
  EXPECT_EQ(coverage_events, result.stats.fault_points);
}

TEST(ObsEvents, DdminEventsTraceEachMinimization) {
  OneShotSystem system(4, 2, OneShotMutant::kSplitCas);
  Telemetry telemetry;
  ExploreOptions options;
  options.telemetry = &telemetry;
  const ExploreResult result = explore::explore(system, options);
  ASSERT_FALSE(result.violations.empty());
  std::uint64_t starts = 0;
  std::uint64_t ends = 0;
  for (const auto& stamped : telemetry.event_log().events()) {
    if (stamped.event.kind == "ddmin.start") ++starts;
    if (stamped.event.kind == "ddmin.done" ||
        stamped.event.kind == "ddmin.budget_hit") {
      ++ends;
    }
  }
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, ends);
}

TEST(ObsEvents, ReplayAttachesSimEnvFaultEvents) {
  RecoverableFvtSystem system(3, 2, RestartBehavior::kFreshClaim);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;
  const ExploreResult result = explore::explore(system, options);
  ASSERT_FALSE(result.violations.empty());
  ASSERT_GT(result.violations[0].fault_count(), 0u);

  Telemetry telemetry;
  ExploreOptions replay_options = options;
  replay_options.telemetry = &telemetry;
  const auto outcome =
      replay_counterexample(system, result.violations[0], replay_options);
  EXPECT_TRUE(outcome.violated);
  std::uint64_t sim_events = 0;
  for (const auto& stamped : telemetry.event_log().events()) {
    if (stamped.event.kind.rfind("sim.", 0) == 0) ++sim_events;
  }
  EXPECT_EQ(sim_events, result.violations[0].fault_count());
}

// ---------------------------------------------------- explore() runreport

TEST(ObsReport, ExploreEmitsValidRunReport) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  Telemetry telemetry;
  ExploreOptions options;
  options.telemetry = &telemetry;
  const ExploreResult result = explore::explore(system, options);

  ASSERT_FALSE(telemetry.last_report().empty());
  EXPECT_TRUE(validate_runreport(telemetry.last_report()).empty());
  const auto report = RunReport::parse(telemetry.last_report());
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind(), "explore");
  EXPECT_EQ(report->producer(), "explore()");
  EXPECT_EQ(report->system(), system.name());
  EXPECT_EQ(report->stat("schedules"), result.stats.schedules);
  EXPECT_EQ(report->stat("violations"), result.violations.size());
}

// ---------------------------------------------------------------------------
// Fuzz-corpus regressions.  tools/fuzz/corpus/runreport holds the seed and
// harvested inputs for fuzz_runreport; replaying them here keeps each
// malformed shape as a named, debuggable regression even without the fuzz
// driver.  BSS_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt.

std::string read_corpus_file(const std::string& name) {
  const std::string path =
      std::string(BSS_FUZZ_CORPUS_DIR) + "/runreport/" + name;
  std::ifstream stream(path, std::ios::binary);
  EXPECT_TRUE(stream.is_open()) << "missing corpus file: " << path;
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

TEST(RunReportCorpus, MinimalSeedStaysValid) {
  const std::string text = read_corpus_file("minimal.json");
  EXPECT_TRUE(validate_runreport(text).empty());
  ASSERT_TRUE(RunReport::parse(text).has_value());
}

TEST(RunReportCorpus, TruncatedDocumentIsRejectedNotCrashed) {
  const std::string text = read_corpus_file("truncated.json");
  EXPECT_FALSE(RunReport::parse(text).has_value());
  EXPECT_FALSE(validate_runreport(text).empty());
}

TEST(RunReportCorpus, DuplicateKeyIsRejected) {
  const std::string text = read_corpus_file("duplicate_key.json");
  std::string error;
  EXPECT_FALSE(json::Value::parse(text, &error).has_value());
  EXPECT_FALSE(RunReport::parse(text).has_value());
}

TEST(RunReportCorpus, NonFiniteNumberIsRejected) {
  const std::string text = read_corpus_file("huge_number.json");
  std::string error;
  EXPECT_FALSE(json::Value::parse(text, &error).has_value());
  EXPECT_FALSE(RunReport::parse(text).has_value());
}

TEST(RunReportCorpus, EveryCorpusFileParsesOrRejectsWithoutCrashing) {
  const std::string dir = std::string(BSS_FUZZ_CORPUS_DIR) + "/runreport";
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++seen;
    std::ifstream stream(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    const std::string text = buffer.str();
    // The full-validator / parse consistency oracle from fuzz_runreport:
    // a validator-clean artifact must parse.
    const auto report = RunReport::parse(text);
    if (validate_runreport(text).empty()) {
      EXPECT_TRUE(report.has_value()) << entry.path();
    }
    // And the canonical-JSON fixed point, when the text is JSON at all.
    const auto value = json::Value::parse(text);
    if (value.has_value()) {
      const auto again = json::Value::parse(value->dump());
      ASSERT_TRUE(again.has_value()) << entry.path();
      EXPECT_TRUE(*again == *value) << entry.path();
    }
  }
  EXPECT_GE(seen, 4u) << "corpus dir unexpectedly empty: " << dir;
}

// ------------------------------------------------------------ bss-status v1

Status sample_status() {
  Status status;
  status.producer = "test";
  status.system = "one_shot[k=4,n=2]";
  status.seq = 7;
  status.state = "running";
  status.schedules = 1000;
  status.violations = 1;
  status.frontier = 12;
  status.fingerprint_prunes = 250;
  status.fingerprint_hit_rate_ppm = 200'000;
  status.checkpoints = 2;
  status.max_schedules = 5000;
  status.passes = 1;
  status.jobs = 4;
  WorkerStatus worker;
  worker.worker = 0;
  worker.state = "stealing";
  worker.steals = 3;
  worker.schedules = 500;
  status.workers.push_back(worker);
  return status;
}

TEST(StatusArtifact, TypedRoundTripIsAByteFixedPoint) {
  const std::string text = sample_status().to_json();
  EXPECT_TRUE(validate_status(text).empty());
  std::string error;
  const auto parsed = Status::from_artifact(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->to_json(), text);
  EXPECT_EQ(parsed->seq, 7u);
  EXPECT_EQ(parsed->fingerprint_hit_rate_ppm, 200'000u);
  ASSERT_EQ(parsed->workers.size(), 1u);
  EXPECT_EQ(parsed->workers[0].state, "stealing");
  EXPECT_EQ(parsed->workers[0].steals, 3u);
}

TEST(StatusArtifact, EmptySectionsAreOmittedNotEmitted) {
  // Absent ⟺ empty: an empty system / workers / profile / timing section
  // never appears in the document, so the round trip stays a fixed point.
  Status status = sample_status();
  status.system.clear();
  status.workers.clear();
  const std::string text = status.to_json();
  EXPECT_EQ(text.find("\"system\""), std::string::npos);
  EXPECT_EQ(text.find("\"workers\""), std::string::npos);
  EXPECT_TRUE(validate_status(text).empty());
  // And the validator enforces the other direction: present-but-empty
  // sections are schema findings, not style.
  auto root = json::Value::parse(sample_status().to_json())->as_object();
  root["workers"] = json::Value(json::Array{});
  root["profile"] = json::Value(json::Object{});
  const auto errors = validate_status(json::Value(root).dump(1));
  EXPECT_EQ(errors.size(), 2u);
}

TEST(StatusArtifact, ValidatorRejectsBadStates) {
  auto root = json::Value::parse(sample_status().to_json())->as_object();
  root["state"] = json::Value("paused");
  EXPECT_FALSE(validate_status(json::Value(root).dump(1)).empty());
  root = json::Value::parse(sample_status().to_json())->as_object();
  root["workers"].as_array()[0].as_object()["state"] =
      json::Value("moonlighting");
  EXPECT_FALSE(validate_status(json::Value(root).dump(1)).empty());
}

TEST(StatusArtifact, ValidatorRejectsUnknownKeys) {
  auto root = json::Value::parse(sample_status().to_json())->as_object();
  root.emplace("surprise", 1);
  auto errors = validate_status(json::Value(root).dump(1));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("unknown"), std::string::npos) << errors[0];
  root = json::Value::parse(sample_status().to_json())->as_object();
  root["progress"].as_object().emplace("futures", 7);
  EXPECT_FALSE(validate_status(json::Value(root).dump(1)).empty());
}

TEST(StatusArtifact, ValidatorRejectsHitRateAboveOneMillion) {
  auto root = json::Value::parse(sample_status().to_json())->as_object();
  root["progress"].as_object()["fingerprint_hit_rate_ppm"] =
      json::Value(std::uint64_t{1'000'001});
  EXPECT_FALSE(validate_status(json::Value(root).dump(1)).empty());
}

TEST(StatusArtifact, ValidatorRejectsNegativeTimingFields) {
  auto root = json::Value::parse(sample_status().to_json())->as_object();
  json::Object timing;
  timing.emplace("checkpoint_age_ms", -250);
  timing.emplace("schedules_per_second", -42.5);
  root.emplace("timing", json::Value(std::move(timing)));
  EXPECT_EQ(validate_status(json::Value(root).dump(1)).size(), 2u);
}

// ---------------------------------------------------------- status writer

std::string temp_status_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(StatusWriterTest, DisabledWriterIsANoOp) {
  // No path anywhere (ctest runs with BSS_STATUS unset): every method is
  // inert, so the explore() call sites need no enabled() guards.
  StatusWriter writer;
  EXPECT_FALSE(writer.enabled());
  EXPECT_FALSE(writer.due());
  EXPECT_FALSE(writer.write(sample_status()));
}

TEST(StatusWriterTest, PublishesSequencedValidatedSnapshots) {
  const std::string path = temp_status_path("bss_status_writer_test.json");
  StatusWriter writer(path, /*every_ms=*/1);
  writer.note_checkpoint();
  ASSERT_TRUE(writer.write(sample_status()));
  Status final_status = sample_status();
  final_status.state = "complete";
  final_status.schedules = final_status.max_schedules / 2;
  ASSERT_TRUE(writer.write(std::move(final_status)));

  std::ifstream stream(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  const std::string text = buffer.str();
  EXPECT_TRUE(validate_status(text).empty());
  const auto parsed = Status::from_artifact(text);
  ASSERT_TRUE(parsed.has_value());
  // The writer owns seq: caller-supplied values are overwritten 0, 1, …
  EXPECT_EQ(parsed->seq, 1u);
  EXPECT_EQ(parsed->state, "complete");
  // A complete campaign that stopped below max_schedules must not
  // advertise an ETA to a cap it never hit.
  EXPECT_EQ(parsed->timing.find("eta_seconds"), parsed->timing.end());
  EXPECT_NE(parsed->timing.find("elapsed_ms"), parsed->timing.end());
  EXPECT_NE(parsed->timing.find("checkpoint_age_ms"), parsed->timing.end());
  std::filesystem::remove(path);
}

TEST(StatusWriterTest, ResolvesPathAndCadenceFromEnvironment) {
  const std::string path = temp_status_path("bss_status_env_test.json");
  ASSERT_EQ(setenv("BSS_STATUS", path.c_str(), 1), 0);
  ASSERT_EQ(setenv("BSS_STATUS_EVERY_MS", "250", 1), 0);
  const StatusWriter from_env(std::string(), 0);
  EXPECT_TRUE(from_env.enabled());
  EXPECT_EQ(from_env.path(), path);
  EXPECT_EQ(from_env.every_ms(), 250u);
  // Explicit arguments beat the environment.
  const StatusWriter explicit_writer("elsewhere.json", 50);
  EXPECT_EQ(explicit_writer.path(), "elsewhere.json");
  EXPECT_EQ(explicit_writer.every_ms(), 50u);
  ASSERT_EQ(unsetenv("BSS_STATUS"), 0);
  ASSERT_EQ(unsetenv("BSS_STATUS_EVERY_MS"), 0);
  const StatusWriter disabled(std::string(), 0);
  EXPECT_FALSE(disabled.enabled());
}

// ---------------------------------------------------------- phase profiler

TEST(PhaseProfilerTest, InertWithoutASink) {
  // The passivity contract's cheap half: a null profiler means ScopedPhase
  // is two pointer writes and zero clock reads, and the default Telemetry
  // sink hands explore() exactly that null.
  const ScopedPhase inert(nullptr, Phase::kStep);
  Telemetry telemetry;
  EXPECT_EQ(telemetry.profiler(), nullptr);
  Telemetry::Options options;
  options.profile = true;
  Telemetry profiling(options);
  EXPECT_NE(profiling.profiler(), nullptr);
}

TEST(PhaseProfilerTest, AccumulatesPerPhaseCallsAndTime) {
  PhaseProfiler profiler;
  EXPECT_FALSE(profiler.has_data());
  { const ScopedPhase scope(&profiler, Phase::kMerge); }
  { const ScopedPhase scope(&profiler, Phase::kMerge); }
  { const ScopedPhase scope(&profiler, Phase::kStep); }
  EXPECT_TRUE(profiler.has_data());
  EXPECT_EQ(profiler.calls(Phase::kMerge), 2u);
  EXPECT_EQ(profiler.calls(Phase::kStep), 1u);
  EXPECT_EQ(profiler.calls(Phase::kDdmin), 0u);
  const json::Object table = profiler.to_json();
  ASSERT_EQ(table.size(), 2u);  // only phases with calls > 0
  for (const auto& [name, cell] : table) {
    EXPECT_TRUE(is_phase_name(name)) << name;
    EXPECT_GE(cell.as_object().at("calls").as_int(), 1);
  }
}

TEST(ObsReport, ProfileSectionValidatesWhenEnabled) {
  OneShotSystem system(4, 2, OneShotMutant::kSplitCas);
  Telemetry::Options sink_options;
  sink_options.profile = true;
  Telemetry telemetry(sink_options);
  ExploreOptions options;
  options.telemetry = &telemetry;
  (void)explore::explore(system, options);
  ASSERT_FALSE(telemetry.last_report().empty());
  const auto errors = validate_runreport(telemetry.last_report());
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  const auto root = json::Value::parse(telemetry.last_report());
  ASSERT_TRUE(root.has_value());
  const json::Value* profile = root->find("profile");
  ASSERT_NE(profile, nullptr);
  // This run steps schedules and minimizes a counterexample, so both
  // phases must have accumulated intervals.
  EXPECT_NE(profile->find("step"), nullptr);
  EXPECT_NE(profile->find("ddmin"), nullptr);
}

// ------------------------------------------------------- status passivity

/// Explores `system` with the heartbeat off (reference), then with a
/// 0 ms-cadence heartbeat (every pass boundary writes) serial and at
/// jobs=4 under the stealing engine — results must stay byte-identical,
/// and every published snapshot must be schema-clean.
void expect_status_passive(const ExplorableSystem& system,
                           ExploreOptions options) {
  options.jobs = 1;
  const ExploreResult reference = explore::explore(system, options);
  const std::string path = temp_status_path("bss_status_passivity.json");
  for (const int jobs : {1, 4}) {
    ExploreOptions instrumented = options;
    instrumented.jobs = jobs;
    instrumented.status_path = path;
    instrumented.status_every_ms = 1;
    expect_identical(reference, explore::explore(system, instrumented),
                     system.name() + " status jobs=" + std::to_string(jobs));
    std::ifstream stream(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    const auto errors = validate_status(buffer.str());
    EXPECT_TRUE(errors.empty())
        << system.name() << " jobs=" << jobs << ": "
        << (errors.empty() ? "" : errors[0]);
    const auto parsed = Status::from_artifact(buffer.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->state, "complete");
    EXPECT_EQ(parsed->schedules, reference.stats.schedules);
    EXPECT_EQ(parsed->violations, reference.violations.size());
    EXPECT_EQ(parsed->jobs, static_cast<std::uint64_t>(jobs));
    std::filesystem::remove(path);
  }
}

TEST(StatusPassivity, CleanOneShotExhaustiveSweep) {
  expect_status_passive(OneShotSystem(4, 2), {});
}

TEST(StatusPassivity, ClaimAfterCasMutant) {
  expect_status_passive(OneShotSystem(4, 3, OneShotMutant::kClaimAfterCas),
                        {});
}

TEST(StatusPassivity, SplitCasMutantWithFingerprintPrune) {
  // Fingerprint pruning feeds the hit-rate field; status must not perturb
  // the prune sequence either.
  ExploreOptions options;
  options.fingerprint_prune = true;
  expect_status_passive(OneShotSystem(4, 2, OneShotMutant::kSplitCas),
                        options);
}

TEST(StatusPassivity, ScBlindLlScMutantWithFingerprintPrune) {
  ExploreOptions options;
  options.fingerprint_prune = true;
  expect_status_passive(LlScSystem(3, 2, /*sc_blind=*/true), options);
}

TEST(StatusPassivity, FaultSweepWithStatusAndProfiler) {
  // The full observer stack at once: heartbeat + profiling telemetry over
  // a crash-restart fault sweep.
  OneShotSystem system(4, 2, OneShotMutant::kNone, /*restartable=*/true);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  const ExploreResult reference = explore::explore(system, options);
  const std::string path = temp_status_path("bss_status_profiled.json");
  Telemetry::Options sink_options;
  sink_options.profile = true;
  Telemetry telemetry(sink_options);
  ExploreOptions instrumented = options;
  instrumented.jobs = 4;
  instrumented.telemetry = &telemetry;
  instrumented.status_path = path;
  instrumented.status_every_ms = 1;
  expect_identical(reference, explore::explore(system, instrumented),
                   "status+profile fault sweep");
  std::ifstream stream(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  EXPECT_TRUE(validate_status(buffer.str()).empty());
  const auto parsed = Status::from_artifact(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  // The profiler table is mirrored into the heartbeat's profile section.
  EXPECT_FALSE(parsed->profile.empty());
  std::filesystem::remove(path);
}

// ------------------------------------------------- status fuzz corpus

TEST(StatusCorpus, EveryCorpusFileHoldsTheFuzzOracles) {
  const std::string dir = std::string(BSS_FUZZ_CORPUS_DIR) + "/status";
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++seen;
    std::ifstream stream(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    const std::string text = buffer.str();
    // Validator/parse agreement, both directions (the fuzz_status oracle).
    const auto status = Status::from_artifact(text);
    EXPECT_EQ(validate_status(text).empty(), status.has_value())
        << entry.path();
    // Canonical-JSON fixed point when the text is JSON at all.
    if (const auto value = json::Value::parse(text); value.has_value()) {
      const auto again = json::Value::parse(value->dump());
      ASSERT_TRUE(again.has_value()) << entry.path();
      EXPECT_TRUE(*again == *value) << entry.path();
    }
  }
  EXPECT_GE(seen, 8u) << "corpus dir unexpectedly thin: " << dir;
}

}  // namespace
}  // namespace bss::obs
