#include <gtest/gtest.h>

#include "hierarchy/universal.h"
#include "registers/snapshot.h"
#include "runtime/linearizability.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::sim {
namespace {

// ---------------------------------------------------------- checker itself

TEST(Linearizability, AcceptsSequentialHistory) {
  std::vector<IntervalOp> history{
      {0, 0, 0, {}, {0}},
      {0, 1, 1, {}, {1}},
      {1, 2, 2, {}, {2}},
  };
  const auto result = check_linearizable(history, fetch_increment_spec());
  EXPECT_TRUE(result.linearizable);
  EXPECT_EQ(result.witness_order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Linearizability, ReordersOverlappingOps) {
  // Two overlapping increments whose responses force the reverse order.
  std::vector<IntervalOp> history{
      {0, 0, 10, {}, {1}},  // started first but got ticket 1
      {1, 1, 2, {}, {0}},   // nested inside, got ticket 0
  };
  const auto result = check_linearizable(history, fetch_increment_spec());
  EXPECT_TRUE(result.linearizable);
  EXPECT_EQ(result.witness_order, (std::vector<std::size_t>{1, 0}));
}

TEST(Linearizability, RejectsRealTimeViolation) {
  // op0 strictly precedes op1 in real time, yet op1 got the earlier ticket.
  std::vector<IntervalOp> history{
      {0, 0, 1, {}, {1}},
      {1, 5, 6, {}, {0}},
  };
  const auto result = check_linearizable(history, fetch_increment_spec());
  EXPECT_FALSE(result.linearizable);
  EXPECT_FALSE(result.detail.empty());
}

TEST(Linearizability, RejectsDuplicateTickets) {
  std::vector<IntervalOp> history{
      {0, 0, 3, {}, {0}},
      {1, 1, 4, {}, {0}},
  };
  EXPECT_FALSE(check_linearizable(history, fetch_increment_spec()).linearizable);
}

TEST(Linearizability, QueueSpecSemantics) {
  std::vector<IntervalOp> history{
      {0, 0, 1, {1 + 7}, {0}},  // enqueue 7
      {1, 2, 3, {0}, {7}},      // dequeue -> 7
      {1, 4, 5, {0}, {-1}},     // dequeue empty
  };
  EXPECT_TRUE(check_linearizable(history, fifo_queue_spec()).linearizable);
  // Dequeue of a value never enqueued:
  history[1].response = {9};
  EXPECT_FALSE(check_linearizable(history, fifo_queue_spec()).linearizable);
}

// ------------------------------------------- real executions, checked

// Records every snapshot scan/update as an interval op.
TEST(Linearizability, SnapshotScansAreLinearizable) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    constexpr int kComponents = 3;
    AtomicSnapshot snapshot("s", kComponents);
    SimEnv env;
    std::vector<IntervalOp> history;
    // Writers: each updates its own component with increasing values.
    for (int w = 0; w < kComponents; ++w) {
      env.add_process([&, w](Ctx& ctx) {
        for (int round = 1; round <= 3; ++round) {
          const std::uint64_t start = ctx.global_step();
          snapshot.update(ctx, w, round);
          history.push_back(
              {ctx.pid(), start, ctx.global_step(), {w, round}, {}});
        }
      });
    }
    // A scanner.
    env.add_process([&](Ctx& ctx) {
      for (int round = 0; round < 4; ++round) {
        const std::uint64_t start = ctx.global_step();
        const auto view = snapshot.scan(ctx);
        history.push_back({ctx.pid(), start, ctx.global_step(), {}, view});
      }
    });
    RandomScheduler scheduler(seed);
    const auto report = env.run(scheduler);
    ASSERT_TRUE(report.clean());
    const auto result =
        check_linearizable(history, snapshot_spec(kComponents));
    EXPECT_TRUE(result.linearizable)
        << "seed " << seed << ": " << result.detail;
  }
}

TEST(Linearizability, UniversalCounterIsLinearizable) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    constexpr int kProcs = 4;
    bss::hierarchy::UniversalObject counter(
        "counter", bss::hierarchy::counter_spec(), kProcs, kProcs * 4);
    SimEnv env;
    std::vector<IntervalOp> history;
    for (int pid = 0; pid < kProcs; ++pid) {
      env.add_process([&](Ctx& ctx) {
        for (int i = 0; i < 4; ++i) {
          const std::uint64_t start = ctx.global_step();
          const std::int64_t ticket = counter.invoke(ctx, 0);
          history.push_back({ctx.pid(), start, ctx.global_step(), {}, {ticket}});
        }
      });
    }
    RandomScheduler scheduler(100 + seed);
    const auto report = env.run(scheduler);
    ASSERT_TRUE(report.clean());
    const auto result = check_linearizable(history, fetch_increment_spec());
    EXPECT_TRUE(result.linearizable)
        << "seed " << seed << ": " << result.detail;
  }
}

TEST(Linearizability, UniversalQueueIsLinearizable) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    constexpr int kProcs = 3;
    bss::hierarchy::UniversalObject queue(
        "queue", bss::hierarchy::queue_spec(), kProcs, kProcs * 4);
    SimEnv env;
    std::vector<IntervalOp> history;
    for (int pid = 0; pid < kProcs; ++pid) {
      env.add_process([&, pid](Ctx& ctx) {
        for (int i = 0; i < 2; ++i) {
          const std::int64_t op = 1 + pid * 10 + i;  // enqueue
          const std::uint64_t start = ctx.global_step();
          const std::int64_t response = queue.invoke(ctx, op);
          history.push_back(
              {ctx.pid(), start, ctx.global_step(), {op}, {response}});
        }
        for (int i = 0; i < 2; ++i) {
          const std::uint64_t start = ctx.global_step();
          const std::int64_t response = queue.invoke(ctx, 0);  // dequeue
          history.push_back(
              {ctx.pid(), start, ctx.global_step(), {0}, {response}});
        }
      });
    }
    RandomScheduler scheduler(300 + seed);
    const auto report = env.run(scheduler);
    ASSERT_TRUE(report.clean());
    const auto result = check_linearizable(history, fifo_queue_spec());
    EXPECT_TRUE(result.linearizable)
        << "seed " << seed << ": " << result.detail;
  }
}

// A deliberately broken "snapshot" (two independent reads, no double
// collect) must FAIL the checker on some schedule — the checker is not a
// rubber stamp.
TEST(Linearizability, NaiveCollectIsCaught) {
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 64 && !caught; ++seed) {
    constexpr int kComponents = 2;
    // Plain registers, read one after another without validation.
    SimEnv env;
    std::vector<std::int64_t> reg(kComponents, 0);
    std::vector<IntervalOp> history;
    // Writer bumps both components to the SAME value, one write at a time.
    env.add_process([&](Ctx& ctx) {
      for (int round = 1; round <= 3; ++round) {
        for (int component = 0; component < kComponents; ++component) {
          const std::uint64_t start = ctx.global_step();
          ctx.sync({"reg", "write", component, round});
          reg[static_cast<std::size_t>(component)] = round;
          history.push_back(
              {ctx.pid(), start, ctx.global_step(), {component, round}, {}});
        }
      }
    });
    env.add_process([&](Ctx& ctx) {
      for (int round = 0; round < 3; ++round) {
        const std::uint64_t start = ctx.global_step();
        std::vector<std::int64_t> view;
        for (int component = 0; component < kComponents; ++component) {
          ctx.sync({"reg", "read", component, 0});
          view.push_back(reg[static_cast<std::size_t>(component)]);
        }
        history.push_back({ctx.pid(), start, ctx.global_step(), {}, view});
      }
    });
    RandomScheduler scheduler(seed);
    env.run(scheduler);
    const auto result =
        check_linearizable(history, snapshot_spec(kComponents));
    if (!result.linearizable) caught = true;
  }
  EXPECT_TRUE(caught) << "naive collect never produced a torn view in 64 runs";
}

}  // namespace
}  // namespace bss::sim
