// Determinism suite for the work-stealing exploration engine: stealing must
// be invisible in the results.  For clean exhaustive sweeps, seeded
// mutants, fault-budget sweeps and a deliberately skewed-subtree workload,
// every (worker count, steal granularity) combination must produce results
// byte-identical to the serial explorer — same stats summary, same
// exhausted verdict, same violations in the same order with the same
// minimized tapes — and the stealing engine must agree with the legacy
// static-sharding engine.  A telemetry probe additionally proves steals
// actually happen on a busy multi-worker run (the invariance tests would
// pass vacuously if no one ever stole).
#include <gtest/gtest.h>

#include <initializer_list>
#include <string>

#include "core/mutant_elections.h"
#include "explore/election_systems.h"
#include "explore/explore.h"
#include "explore/skewed_system.h"
#include "obs/obs.h"

namespace bss::explore {
namespace {

using core::OneShotMutant;
using core::RestartBehavior;

/// Byte-level equality of two ExploreResults: every stats field (via the
/// summary string, which prints them all), the exhausted verdict, and every
/// violation's full artifact text.
void expect_identical(const ExploreResult& serial, const ExploreResult& other,
                      const std::string& label) {
  EXPECT_EQ(serial.stats.summary(), other.stats.summary()) << label;
  EXPECT_EQ(serial.exhausted, other.exhausted) << label;
  ASSERT_EQ(serial.violations.size(), other.violations.size()) << label;
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].to_artifact(),
              other.violations[i].to_artifact())
        << label << " violation " << i;
  }
}

/// Runs `system` serially, then across every (jobs, steal_depth)
/// combination, asserting byte-identical results each time.
void expect_steal_invariant(const ExplorableSystem& system,
                            ExploreOptions options,
                            std::initializer_list<int> worker_counts,
                            std::initializer_list<int> steal_depths) {
  options.steal = true;
  options.jobs = 1;
  options.steal_depth = 0;
  const ExploreResult serial = explore(system, options);
  for (const int jobs : worker_counts) {
    for (const int depth : steal_depths) {
      ExploreOptions stealing = options;
      stealing.jobs = jobs;
      stealing.steal_depth = depth;
      const ExploreResult result = explore(system, stealing);
      expect_identical(serial, result,
                       system.name() + " jobs=" + std::to_string(jobs) +
                           " steal_depth=" + std::to_string(depth));
    }
  }
}

// ------------------------------------------------- clean exhaustive sweeps

TEST(StealExplore, CleanOneShotPorIdenticalAcrossWorkersAndGranularities) {
  OneShotSystem system(4, 3);
  expect_steal_invariant(system, {}, {2, 4, 8}, {0, 1, 2});
}

TEST(StealExplore, CleanOneShotNaiveCountsExactInterleavings) {
  OneShotSystem system(4, 3);
  ExploreOptions options;
  options.use_por = false;
  options.jobs = 4;
  const ExploreResult result = explore(system, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_TRUE(result.exhausted);
  // 9 steps, 3 per process: 9!/(3!)^3 — the exact serial count.
  EXPECT_EQ(result.stats.schedules, 1680u);
  expect_steal_invariant(system, options, {2, 4}, {0, 2});
}

TEST(StealExplore, IterativePreemptionBoundIdentical) {
  LlScSystem system(3, 2);
  ExploreOptions options;
  options.preemption_bound = 2;
  options.iterative = true;
  expect_steal_invariant(system, options, {4}, {0, 1});
}

// ------------------------------------------------------- mutant refutation

TEST(StealExplore, ClaimAfterCasMutantIdenticalMinimizedArtifact) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  expect_steal_invariant(system, {}, {2, 4}, {0, 1});
}

TEST(StealExplore, SplitCasMutantIdenticalMinimizedArtifact) {
  OneShotSystem system(4, 2, OneShotMutant::kSplitCas);
  expect_steal_invariant(system, {}, {4, 8}, {0, 2});
}

TEST(StealExplore, CollectAllViolationsIdenticalOrderAndTapes) {
  OneShotSystem system(4, 2, OneShotMutant::kSplitCas);
  ExploreOptions options;
  options.stop_at_first_violation = false;
  options.max_violations = 8;
  expect_steal_invariant(system, options, {2, 4}, {0, 1});
}

// ------------------------------------------------------ fault-budget sweeps

TEST(StealExplore, FaultSweepIdenticalIncludingFaultPoints) {
  OneShotSystem system(4, 2, OneShotMutant::kNone, /*restartable=*/true);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  expect_steal_invariant(system, options, {2, 4}, {0, 1});
}

TEST(StealExplore, FreshClaimMutantFaultRefutationIdentical) {
  RecoverableFvtSystem system(3, 2, RestartBehavior::kFreshClaim);
  ExploreOptions options;
  options.fault_bound = 1;
  options.iterative = true;
  options.explore_crashes = false;  // the bug needs a restart, not a death
  expect_steal_invariant(system, options, {4}, {0});
}

// ----------------------------------------------------- skewed-subtree load

// One long writer against three short writers on a single register: every
// operation pair conflicts, so POR prunes nothing and the DFS is violently
// unbalanced — the shape static prefix-depth sharding handles worst and
// stealing exists for.
TEST(StealExplore, SkewedSubtreeWorkloadIdenticalAcrossWorkerCounts) {
  SkewedWriterSystem system(4, 6, 1);
  expect_steal_invariant(system, {}, {2, 4, 8}, {0, 1, 2});
}

TEST(StealExplore, SkewedWorkloadNaiveNoPorIdentical) {
  SkewedWriterSystem system(3, 4, 2);
  ExploreOptions options;
  options.use_por = false;
  expect_steal_invariant(system, options, {4}, {0, 2});
}

// -------------------------------------------- engines agree with each other

TEST(StealExplore, StealAndStaticEnginesAgree) {
  OneShotSystem system(4, 3, OneShotMutant::kClaimAfterCas);
  ExploreOptions steal_options;
  steal_options.steal = true;
  steal_options.jobs = 4;
  const ExploreResult stolen = explore(system, steal_options);
  for (const int depth : {0, 2}) {
    ExploreOptions static_options;
    static_options.steal = false;
    static_options.jobs = 4;
    static_options.shard_depth = depth;
    const ExploreResult sharded = explore(system, static_options);
    expect_identical(stolen, sharded,
                     "static shard_depth=" + std::to_string(depth));
  }
}

// ------------------------------------------------------ steals really occur

// The invariance tests above would pass vacuously if no worker ever stole;
// this probe pins the mechanism: a 4-worker no-POR sweep of a 1680-schedule
// space must record at least one steal (worker 0 cannot drain a 4-process
// root subtree before anyone else wakes up).
TEST(StealExplore, BusyMultiWorkerRunActuallySteals) {
  OneShotSystem system(4, 3);
  obs::Telemetry::Options sink_options;
  sink_options.metrics = true;
  sink_options.events = false;
  obs::Telemetry telemetry(sink_options);
  ExploreOptions options;
  options.use_por = false;
  options.jobs = 4;
  options.telemetry = &telemetry;
  const ExploreResult result = explore(system, options);
  EXPECT_TRUE(result.ok()) << result.summary();
  const obs::MetricsSnapshot snapshot = telemetry.metrics_snapshot();
  const auto it = snapshot.counters.find("explore.steals");
  ASSERT_NE(it, snapshot.counters.end())
      << "no explore.steals counter recorded";
  EXPECT_GE(it->second, 1u);
}

}  // namespace
}  // namespace bss::explore
