#include "burns/burns_election.h"

#include "util/checked.h"

namespace bss::burns {

int single_register_elect(sim::WriteOnceRmwK& reg, sim::Ctx& ctx, int pid) {
  const int k = reg.k();
  expects(pid >= 0 && pid < k - 1,
          "single-register Burns election capacity is k-1");
  const int my_symbol = pid + 1;
  const int previous = reg.read_modify_write(
      ctx, [my_symbol](int v) { return v == 0 ? my_symbol : v; });
  return previous == 0 ? pid : previous - 1;
}

SingleReport run_single_register_election(int k, int n,
                                          sim::Scheduler& scheduler,
                                          const sim::CrashPlan& crashes) {
  expects(n >= 1 && n <= k - 1, "requires 1 <= n <= k-1");
  sim::WriteOnceRmwK reg("burns", k);
  SingleReport report;
  report.elected.resize(static_cast<std::size_t>(n));
  sim::SimEnv env;
  for (int pid = 0; pid < n; ++pid) {
    env.add_process([&reg, &report, pid](sim::Ctx& ctx) {
      report.elected[static_cast<std::size_t>(pid)] =
          single_register_elect(reg, ctx, pid);
    });
  }
  report.run = env.run(scheduler, crashes);
  int leader = -1;
  for (int pid = 0; pid < n; ++pid) {
    if (report.run.outcomes[static_cast<std::size_t>(pid)] !=
        sim::ProcOutcome::kFinished) {
      report.elected[static_cast<std::size_t>(pid)].reset();
      continue;
    }
    const auto& elected = report.elected[static_cast<std::size_t>(pid)];
    if (elected.has_value()) {
      if (leader == -1) leader = *elected;
      if (*elected != leader) report.consistent = false;
    }
  }
  return report;
}

MultiState::MultiState(const std::vector<int>& sizes) {
  expects(!sizes.empty(), "multi-register election needs registers");
  regs.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    expects(sizes[i] >= 2, "register size must be at least 2");
    regs.emplace_back("burns[" + std::to_string(i) + "]", sizes[i]);
  }
}

std::uint64_t MultiState::capacity() const {
  std::uint64_t product = 1;
  for (const auto& reg : regs) {
    product *= static_cast<std::uint64_t>(reg.k() - 1);
  }
  return product;
}

std::uint64_t multi_register_elect(MultiState& state, sim::Ctx& ctx,
                                   std::uint64_t pid) {
  expects(pid < state.capacity(), "pid exceeds the product capacity");
  // Decompose pid into mixed-radix digits, one per register (radix k_i - 1).
  std::uint64_t rest = pid;
  std::uint64_t leader = 0;
  std::uint64_t weight = 1;
  for (auto& reg : state.regs) {
    const auto radix = static_cast<std::uint64_t>(reg.k() - 1);
    const int my_digit = bss::checked_cast<int>(rest % radix);
    rest /= radix;
    const int my_symbol = my_digit + 1;
    const int previous = reg.read_modify_write(
        ctx, [my_symbol](int v) { return v == 0 ? my_symbol : v; });
    const int winning_digit = previous == 0 ? my_digit : previous - 1;
    leader += static_cast<std::uint64_t>(winning_digit) * weight;
    weight *= radix;
  }
  return leader;
}

MultiReport run_multi_register_election(const std::vector<int>& sizes, int n,
                                        sim::Scheduler& scheduler,
                                        const sim::CrashPlan& crashes) {
  MultiState state(sizes);
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= state.capacity(),
          "process count exceeds the product capacity");
  MultiReport report;
  report.elected.resize(static_cast<std::size_t>(n));
  sim::SimEnv env;
  for (int pid = 0; pid < n; ++pid) {
    env.add_process([&state, &report, pid](sim::Ctx& ctx) {
      report.elected[static_cast<std::size_t>(pid)] =
          multi_register_elect(state, ctx, static_cast<std::uint64_t>(pid));
    });
  }
  report.run = env.run(scheduler, crashes);
  std::int64_t leader = -1;
  for (int pid = 0; pid < n; ++pid) {
    if (report.run.outcomes[static_cast<std::size_t>(pid)] !=
        sim::ProcOutcome::kFinished) {
      report.elected[static_cast<std::size_t>(pid)].reset();
      continue;
    }
    const auto& elected = report.elected[static_cast<std::size_t>(pid)];
    if (elected.has_value()) {
      if (leader == -1) leader = bss::checked_cast<std::int64_t>(*elected);
      if (bss::checked_cast<std::int64_t>(*elected) != leader) {
        report.consistent = false;
      }
    }
  }
  return report;
}

// ----------------------------------------------------------- BurnsProtocol

BurnsProtocol::BurnsProtocol(int n, int k) : n_(n), k_(k) {
  expects(n >= 1 && k >= 2, "BurnsProtocol needs n >= 1, k >= 2");
  expects(n <= k, "BurnsProtocol models n <= k (n = k is the refuted case)");
}

std::string BurnsProtocol::name() const {
  return "burns-n" + std::to_string(n_) + "-k" + std::to_string(k_);
}

std::vector<int> BurnsProtocol::initial_locals(int, int input) const {
  return {0, input, 0};
}

std::optional<int> BurnsProtocol::step(int pid, std::span<int> shared,
                                       std::span<int> locals) const {
  // Symbols: pid + 1 for pid < k-1; the overflow process k-1 (present only
  // when n = k) shares symbol 1 with pid 0.
  const int my_symbol = pid < k_ - 1 ? pid + 1 : 1;
  switch (locals[0]) {
    case 0: {  // the single write-once RMW
      int& reg = shared[0];
      const int previous = reg;
      if (previous == 0) reg = my_symbol;
      locals[2] = previous;
      locals[0] = 1;
      return std::nullopt;
    }
    default: {
      // Decisions are pids; check with the input vector {0, 1, ..., n-1} so
      // that "decide pid p" and "decide p's input" coincide (in leader
      // election the input IS the identity).
      const int previous = locals[2];
      if (previous == 0) return pid;  // I won: elect myself
      const int winning_symbol = previous;
      // Owners of winning_symbol among the n processes.
      const int low_owner = winning_symbol - 1;
      const int high_owner = winning_symbol == 1 && n_ == k_ ? k_ - 1 : -1;
      if (winning_symbol == my_symbol) {
        // The other owner won (I lost on my own symbol).
        const int other = pid == low_owner ? high_owner : low_owner;
        // With no collision (other == -1) losing on your own symbol is
        // impossible; guard anyway.
        return other == -1 ? low_owner : other;
      }
      // Deterministic tie-break among owners: the smaller pid.
      return low_owner;
    }
  }
}

}  // namespace bss::burns
