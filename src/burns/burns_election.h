// The Burns-Cruz-Loui comparison model [5] (experiment T4).
//
// Model restrictions, both enforced at runtime: (1) every register is a
// k-valued read-modify-write register that may be CHANGED at most once
// (write-once); (2) the system contains ONLY such registers — no read/write
// helpers (these election routines receive nothing else).  Validity is the
// fail-stop closed-group kind used by Burns et al.: the elected leader is
// one of the n designated processes (not necessarily one that took a step) —
// weaker than the paper's LE validity, which is exactly why the model's
// capacity collapses from (k-1)! to k-1.
//
//   * one k-valued register elects among n <= k-1 processes (tight: the
//     checker refutes the natural n = k protocol, matching their bound);
//   * r registers of sizes k_1..k_r elect among prod (k_i - 1) processes —
//     the multiplicative composition (Burns et al. state the upper bound as
//     the product of the sizes; the algorithm achieves the product of the
//     usable-symbol counts, one symbol per register being the initial ⊥).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "checker/protocol.h"
#include "registers/write_once_rmw.h"
#include "runtime/crash_plan.h"
#include "runtime/scheduler.h"
#include "runtime/sim_env.h"

namespace bss::burns {

/// Single-register election: pid in [0, k-1) claims symbol pid+1 with one
/// RMW; the register's settled value names the leader.  Exactly one shared
/// operation per process.
int single_register_elect(sim::WriteOnceRmwK& reg, sim::Ctx& ctx, int pid);

struct SingleReport {
  sim::RunReport run;
  std::vector<std::optional<int>> elected;  // leader pid, by process
  bool consistent = true;
};

SingleReport run_single_register_election(int k, int n,
                                          sim::Scheduler& scheduler,
                                          const sim::CrashPlan& crashes = {});

/// Multi-register election over registers of sizes `sizes`: capacity
/// prod(sizes[i] - 1).  Process identity = mixed-radix digits, one digit per
/// register; every process performs exactly one RMW per register.
struct MultiState {
  explicit MultiState(const std::vector<int>& sizes);
  std::vector<sim::WriteOnceRmwK> regs;
  std::uint64_t capacity() const;
};

std::uint64_t multi_register_elect(MultiState& state, sim::Ctx& ctx,
                                   std::uint64_t pid);

struct MultiReport {
  sim::RunReport run;
  std::vector<std::optional<std::uint64_t>> elected;
  bool consistent = true;
};

MultiReport run_multi_register_election(const std::vector<int>& sizes, int n,
                                        sim::Scheduler& scheduler,
                                        const sim::CrashPlan& crashes = {});

/// Checker protocol for the single-register model, with n possibly past the
/// k-1 capacity (symbols then collide: pid % (k-1) + 1).  The checker
/// certifies n <= k-1 and refutes n = k — the measured form of the Burns
/// bound.
class BurnsProtocol final : public check::Protocol {
 public:
  BurnsProtocol(int n, int k);
  std::string name() const override;
  int process_count() const override { return n_; }
  int shared_words() const override { return 1; }
  int local_words() const override { return 3; }
  std::vector<int> initial_shared() const override { return {0}; }
  std::vector<int> initial_locals(int pid, int input) const override;
  std::optional<int> step(int pid, std::span<int> shared,
                          std::span<int> locals) const override;

 private:
  int n_;
  int k_;
};

}  // namespace bss::burns
