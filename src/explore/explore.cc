#include "explore/explore.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "audit/commute_check.h"
#include "audit/ledger.h"
#include "obs/obs.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::explore {

bool ops_commute(const sim::OpDesc& a, const sim::OpDesc& b) {
  if (a.object != b.object) return true;
  // Anything that is not a plain read (write, cas, ll, sc, …) may change the
  // object or its hidden state (LL links), so it conflicts with every other
  // access to the same object.
  return a.op == "read" && b.op == "read";
}

namespace {

/// Sentinel for "no choice"; distinct from every encoded action (grants are
/// >= 0, faults are small negatives).
constexpr int kNoChoice = std::numeric_limits<int>::min();

constexpr std::uint64_t pid_bit(int pid) {
  return std::uint64_t{1} << static_cast<unsigned>(pid);
}

/// One node of the DFS tree: the scheduling state after `index` decisions
/// (grants and faults alike).
struct Frame {
  std::vector<int> runnable;           ///< ascending pids runnable here
  std::vector<sim::OpDesc> pending;    ///< by pid; valid for runnable pids
  std::uint64_t restartable = 0;       ///< runnable pids with a restart hook
  std::uint64_t sc_ready = 0;          ///< runnable pids parked on an SC
  std::uint64_t sc_failed_before = 0;  ///< pids already failed spuriously
  std::vector<int> entry_sleep;        ///< sleeping pids on entry (sorted)
  std::vector<int> done;               ///< sibling choices already explored
  int chosen = kNoChoice;              ///< choice taken on the current path
  int prev_grant = -1;                 ///< pid granted most recently before
  int preemptions_before = 0;          ///< preemptions in decisions 0..index-1
  int faults_before = 0;               ///< faults injected in 0..index-1
};

bool contains(const std::vector<int>& values, int value) {
  return std::find(values.begin(), values.end(), value) != values.end();
}

struct PassState {
  std::vector<Frame> frames;
  int budget = -1;        ///< preemption budget; -1 = unbounded
  int fault_budget = 0;   ///< fault budget; 0 = no fault exploration
  bool use_por = true;
  bool explore_crashes = false;
  bool explore_restarts = false;
  bool explore_sc = false;
  /// Subtree floor: advance() never backtracks below this many frames.  0
  /// for the serial walk and the job enumerator; a worker exploring a
  /// sharded subtree sets it to its prefix length so the enumerator keeps
  /// sole ownership of sibling choices above the cut.
  std::size_t floor = 0;
};

/// Fault-site coordinate: (encoded action, victim's lifetime op count).
using FaultPoint = std::pair<int, std::uint64_t>;

/// Snapshot of a unit's cumulative results taken right after a violation is
/// recorded.  When the deterministic merge decides the serial explorer would
/// have stopped at that violation, it folds the checkpoint instead of the
/// full unit, discarding everything the worker explored speculatively past
/// the stop point.
struct UnitCheckpoint {
  ExploreStats stats;
  AuditSummary audit;
  std::set<FaultPoint> fault_points;
  bool budget_limited = false;
  bool fault_limited = false;
};

/// Results of one merge unit: either a sharded subtree job or a maximal run
/// of consecutive inline (enumerator-executed) runs.  Units are merged in
/// DFS order, which makes the parallel explorer byte-identical to the
/// serial one.
struct UnitResult {
  ExploreStats stats;
  AuditSummary audit;
  std::set<FaultPoint> fault_points;
  std::vector<Counterexample> violations;
  std::vector<UnitCheckpoint> checkpoints;  ///< parallel to `violations`
  bool budget_limited = false;  ///< a branch was cut by the preemption budget
  bool fault_limited = false;   ///< a branch was cut by the fault budget
  bool cap_hit = false;         ///< max_schedules fired before some run
  bool stopped = false;         ///< the worker hit its violation quota
  bool skipped = false;         ///< claimed past the stop barrier, never run
};

/// A sharded subtree: the frame stack at the moment the enumerator cut the
/// DFS, `shard_at` frames deep with every `chosen` set.  Sleep sets,
/// explored-sibling sets and budget counters carry across the cut in the
/// frames, so a worker replaying the prefix on a private SimEnv explores
/// the subtree exactly as the serial walk would have.
struct SubtreeJob {
  std::vector<Frame> prefix;
};

struct PassUnit {
  std::optional<SubtreeJob> job;  ///< nullopt for inline units
  UnitResult result;
};

/// Observability context threaded through the hot loop: the sink (null =
/// off), the caller's single-writer metric shard, and the logical worker id
/// events are attributed to.  Strictly passive — nothing here may influence
/// an exploration decision.
struct ObsCtx {
  obs::ObsSink* sink = nullptr;
  obs::MetricShard* shard = nullptr;
  int worker = obs::Event::kCoordinator;
};

ObsCtx make_obs_ctx(obs::ObsSink* sink, int worker) {
  ObsCtx octx;
  octx.sink = sink;
  octx.shard = sink != nullptr ? sink->metric_shard(worker) : nullptr;
  octx.worker = worker;
  return octx;
}

const std::vector<std::uint64_t>& depth_bounds() {
  static const std::vector<std::uint64_t> bounds = obs::pow2_bounds(16);
  return bounds;
}

/// The max_schedules safety valve, shared across enumerator and workers.
struct SharedBudget {
  explicit SharedBudget(std::uint64_t cap) : max_schedules(cap) {}
  std::atomic<std::uint64_t> schedules{0};
  const std::uint64_t max_schedules;
  bool exhausted() const {
    return schedules.load(std::memory_order_relaxed) >= max_schedules;
  }
};

/// Granting away from the most recently granted (still-runnable) process
/// costs one preemption.  Fault actions are not grants: a crash/restart of
/// another process does not preempt the running one.
int choice_cost(const Frame& frame, int grant_pid) {
  if (frame.prev_grant < 0 || grant_pid == frame.prev_grant) return 0;
  return contains(frame.runnable, frame.prev_grant) ? 1 : 0;
}

bool grant_feasible(const Frame& frame, int pid, const PassState& pass) {
  if (contains(frame.done, pid)) return false;
  if (pass.use_por && contains(frame.entry_sleep, pid)) return false;
  if (pass.budget >= 0 &&
      frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
    return false;
  }
  return true;
}

/// First unexplored, feasible choice at `frame`: grants first (continuing
/// prev_grant is free, then ascending pid order), then — fault budget
/// permitting — spurious-SC, crash and restart injections in pid order.
/// Sleep sets apply to plain grants only: a spurious-failing SC has a
/// different effect than the explored grant, so it never sleeps.
int select_choice(const Frame& frame, const PassState& pass) {
  if (contains(frame.runnable, frame.prev_grant) &&
      grant_feasible(frame, frame.prev_grant, pass)) {
    return frame.prev_grant;
  }
  for (const int pid : frame.runnable) {
    if (pid == frame.prev_grant) continue;
    if (grant_feasible(frame, pid, pass)) return pid;
  }
  if (pass.fault_budget > 0 && frame.faults_before < pass.fault_budget) {
    if (pass.explore_sc) {
      for (const int pid : frame.runnable) {
        if ((frame.sc_ready & pid_bit(pid)) == 0) continue;
        if ((frame.sc_failed_before & pid_bit(pid)) != 0) continue;
        const int choice = encode_action(ActionKind::kScFailure, pid);
        if (contains(frame.done, choice)) continue;
        // A spurious SC still performs the (failing) operation, so the
        // preemption cost of granting `pid` applies.
        if (pass.budget >= 0 &&
            frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
          continue;
        }
        return choice;
      }
    }
    if (pass.explore_crashes) {
      for (const int pid : frame.runnable) {
        const int choice = encode_action(ActionKind::kCrash, pid);
        if (!contains(frame.done, choice)) return choice;
      }
    }
    if (pass.explore_restarts) {
      for (const int pid : frame.runnable) {
        if ((frame.restartable & pid_bit(pid)) == 0) continue;
        const int choice = encode_action(ActionKind::kRestart, pid);
        if (!contains(frame.done, choice)) return choice;
      }
    }
  }
  return kNoChoice;
}

/// Materializes the frontier node reached with `runnable` after `parent`
/// took its chosen action (parent == nullptr at the root).
Frame make_frame(const sim::SimEnv& env, std::vector<int> runnable,
                 const PassState& pass, const Frame* parent) {
  Frame frame;
  frame.runnable = std::move(runnable);
  frame.pending.resize(static_cast<std::size_t>(env.process_count()));
  for (const int pid : frame.runnable) {
    frame.pending[static_cast<std::size_t>(pid)] = env.pending_of(pid);
    if (env.restart_supported(pid)) frame.restartable |= pid_bit(pid);
    if (frame.pending[static_cast<std::size_t>(pid)].op == "sc") {
      frame.sc_ready |= pid_bit(pid);
    }
  }
  if (parent == nullptr) return frame;

  const Action parent_action = decode_action(parent->chosen);
  const bool parent_granted = parent_action.kind == ActionKind::kGrant ||
                              parent_action.kind == ActionKind::kScFailure;
  frame.sc_failed_before = parent->sc_failed_before;
  if (parent_action.kind == ActionKind::kScFailure) {
    frame.sc_failed_before |= pid_bit(parent_action.pid);
  }
  frame.faults_before = parent->faults_before +
                        (parent_action.kind == ActionKind::kGrant ? 0 : 1);
  if (parent_granted) {
    frame.prev_grant = parent_action.pid;
    frame.preemptions_before =
        parent->preemptions_before + choice_cost(*parent, parent_action.pid);
    if (pass.use_por) {
      // Sleep-set propagation: everything asleep at the parent (inherited
      // or explored there) stays asleep iff it commutes with the operation
      // the parent's choice just performed.  Only plain grants in the
      // parent's done set count — fault siblings are not operations.
      const auto& parent_op =
          parent->pending[static_cast<std::size_t>(parent_action.pid)];
      const auto inherit = [&](int pid) {
        if (pid == parent_action.pid) return;
        if (ops_commute(parent->pending[static_cast<std::size_t>(pid)],
                        parent_op)) {
          frame.entry_sleep.push_back(pid);
        }
      };
      for (const int pid : parent->entry_sleep) inherit(pid);
      for (const int choice : parent->done) {
        const Action done_action = decode_action(choice);
        if (done_action.kind == ActionKind::kGrant) inherit(done_action.pid);
      }
      std::sort(frame.entry_sleep.begin(), frame.entry_sleep.end());
    }
  } else {
    // Crash/restart: not a shared-memory operation, so the commutation
    // bookkeeping does not extend across it — start this node with an empty
    // sleep set (sound: strictly less pruning).  Continuing the previously
    // granted process after an unrelated fault is still free.
    frame.prev_grant = parent->prev_grant;
    frame.preemptions_before = parent->preemptions_before;
  }
  return frame;
}

/// Accounts the branches the filters cut at a freshly materialized node
/// (all filters are functions of the frame alone, so counting once at
/// creation is exact).
void account_frame(const Frame& frame, const PassState& pass,
                   UnitResult& unit) {
  for (const int pid : frame.runnable) {
    if (pass.use_por && contains(frame.entry_sleep, pid)) {
      ++unit.stats.sleep_set_prunes;
      continue;
    }
    if (pass.budget >= 0 &&
        frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
      ++unit.stats.preemption_prunes;
      unit.budget_limited = true;
    }
  }
  // Note: this must also count at fault_budget == 0 (where every fault
  // choice is cut) — the iterative sweep keys "deepen the fault budget?"
  // off fault_limited.
  const bool faults_enabled =
      pass.explore_crashes || pass.explore_restarts || pass.explore_sc;
  if (faults_enabled && frame.faults_before >= pass.fault_budget) {
    std::uint64_t cut = 0;
    if (pass.explore_crashes) cut += frame.runnable.size();
    for (const int pid : frame.runnable) {
      if (pass.explore_restarts && (frame.restartable & pid_bit(pid)) != 0) {
        ++cut;
      }
      if (pass.explore_sc && (frame.sc_ready & pid_bit(pid)) != 0 &&
          (frame.sc_failed_before & pid_bit(pid)) == 0) {
        ++cut;
      }
    }
    if (cut > 0) {
      unit.stats.fault_prunes += cut;
      unit.fault_limited = true;
    }
  }
}

/// Backtracks to the deepest node above the subtree floor with an
/// unexplored sibling; returns false when the whole space (at this budget
/// pair, within this subtree) is done.
bool advance(PassState& pass) {
  auto& frames = pass.frames;
  while (frames.size() > pass.floor) {
    Frame& frame = frames.back();
    frame.done.push_back(frame.chosen);
    frame.chosen = kNoChoice;
    const int next = select_choice(frame, pass);
    if (next != kNoChoice) {
      frame.chosen = next;
      return true;
    }
    frames.pop_back();
  }
  return false;
}

/// audit == false resolves through BSS_AUDIT (force-on only: the variable
/// can switch the audit layer on under an existing binary — how CI audits
/// the whole suite — but never disable an explicit request).
bool resolve_audit(const ExploreOptions& options) {
  if (options.audit) return true;
  static const bool env_audit = [] {
    const char* raw = std::getenv("BSS_AUDIT");
    return raw != nullptr && raw[0] != '\0' &&
           !(raw[0] == '0' && raw[1] == '\0');
  }();
  return env_audit;
}

/// Worker-count-independent schedule sampling for the commutation
/// cross-check: FNV-1a over the canonical decision tape, so the same
/// schedules are selected no matter how the pass was sharded or merged.
bool commute_sampled(const std::vector<int>& tape, std::uint32_t sample) {
  if (sample == 0) return false;
  if (sample == 1) return true;
  std::uint64_t hash = 1469598103934665603ULL;
  for (const int decision : tape) {
    hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(decision));
    hash *= 1099511628211ULL;
  }
  return hash % sample == 0;
}

std::vector<int> parked_pids(const sim::SimEnv& env) {
  std::vector<int> runnable;
  for (int pid = 0; pid < env.process_count(); ++pid) {
    if (env.is_parked(pid)) runnable.push_back(pid);
  }
  return runnable;
}

struct RunOutcome {
  bool pruned = false;
  bool truncated = false;
  bool sharded = false;  ///< run cut at shard_at decisions; subtree emitted
  std::optional<std::string> violation;
  std::vector<int> decisions;
};

/// Executes one run: replays the frame-stack prefix, then extends it one
/// decision at a time until the run completes, is pruned, or — for the job
/// enumerator, `shard_at > 0` — reaches `shard_at` decisions, at which
/// point the run is abandoned and the frame stack is the subtree job.
///
/// Frame-creation accounting (prune counters, budget/fault-limited flags)
/// commits to `unit` immediately: the serial run that first descends a path
/// accounts its frames, and for a sharded run that is exactly the job's
/// unit.  Execution deltas (transitions, faults, fault points) are buffered
/// and committed only when the run actually finishes — a sharded run's
/// prefix execution is re-run (and re-counted) by the worker, exactly as
/// every serial run re-executes its prefix.
RunOutcome run_one(const ExplorableSystem& system, const ExploreOptions& opts,
                   PassState& pass, UnitResult& unit, std::size_t shard_at,
                   const ObsCtx& octx) {
  RunOutcome outcome;
  std::uint64_t run_transitions = 0;
  std::uint64_t run_faults = 0;
  std::vector<FaultPoint> run_fault_points;
  std::optional<audit::Auditor> auditor;
  if (opts.audit) auditor.emplace();
  // Execution deltas — audit counters included — buffer here and commit
  // only when the run actually finishes; a sharded run's deltas are dropped
  // and re-counted by the worker, keeping parallel results byte-identical.
  const auto commit = [&] {
    unit.stats.transitions += run_transitions;
    unit.stats.faults_injected += run_faults;
    unit.fault_points.insert(run_fault_points.begin(), run_fault_points.end());
    if (auditor.has_value()) {
      unit.audit.windows += auditor->windows();
      unit.audit.accesses += auditor->accesses();
      unit.audit.ledger_violations += auditor->violation_count();
    }
  };
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = opts.record_trace;
  sim::SimEnv env(sim_options);
  instance->populate(env);
  expects(env.process_count() <= 64,
          "the fault-aware explorer supports at most 64 processes");
  if (auditor.has_value()) env.set_access_observer(&*auditor);
  env.start();

  std::vector<int> actions;
  std::size_t depth = 0;
  std::uint64_t granted = 0;
  bool truncated = false;
  for (;;) {
    std::vector<int> runnable = parked_pids(env);
    if (runnable.empty()) break;
    if (granted >= opts.max_depth) {
      truncated = true;
      break;
    }
    if (shard_at > 0 && depth == shard_at) {
      // Enumerator cut: the frame stack (every `chosen` set) IS the job.
      // The buffered execution deltas are dropped — the worker replays this
      // prefix and counts them, exactly as the serial run would have.
      env.finish();
      outcome.sharded = true;
      return outcome;
    }

    int choice = kNoChoice;
    if (depth < pass.frames.size()) {
      // Prefix replay: the factory is deterministic, so the runnable set
      // must match what the previous run recorded here.
      const Frame& frame = pass.frames[depth];
      if (frame.runnable != runnable) {
        throw std::logic_error(
            "schedule exploration diverged on prefix replay: the system "
            "factory is nondeterministic");
      }
      choice = frame.chosen;
    } else {
      const Frame* parent = depth > 0 ? &pass.frames[depth - 1] : nullptr;
      Frame frame = make_frame(env, std::move(runnable), pass, parent);
      account_frame(frame, pass, unit);
      choice = select_choice(frame, pass);
      if (choice == kNoChoice) {
        env.finish();
        commit();
        if (octx.shard != nullptr) ++octx.shard->counter("explore.pruned_runs");
        outcome.pruned = true;  // prune kinds were accounted above
        return outcome;
      }
      frame.chosen = choice;
      pass.frames.push_back(std::move(frame));
    }
    ++depth;

    const Action action = decode_action(choice);
    if (action.kind != ActionKind::kGrant) {
      ++run_faults;
      run_fault_points.emplace_back(choice, env.steps_of(action.pid));
    }
    switch (action.kind) {
      case ActionKind::kGrant:
        env.step_process(action.pid);
        ++granted;
        ++run_transitions;
        break;
      case ActionKind::kScFailure:
        env.inject_sc_failure(action.pid);
        env.step_process(action.pid);
        ++granted;
        ++run_transitions;
        break;
      case ActionKind::kCrash:
        env.kill_process(action.pid);
        break;
      case ActionKind::kRestart:
        env.restart_process(action.pid);
        break;
    }
    actions.push_back(choice);
  }
  env.finish();
  commit();

  ++unit.stats.schedules;
  unit.stats.max_depth_seen = std::max(unit.stats.max_depth_seen, granted);
  if (octx.shard != nullptr) {
    ++octx.shard->counter("explore.schedules");
    octx.shard->counter("explore.transitions") += run_transitions;
    octx.shard->counter("explore.faults_injected") += run_faults;
    octx.shard->gauge_max("explore.max_depth_seen", granted);
    octx.shard->histogram("explore.schedule_depth", depth_bounds())
        .observe(granted);
  }
  if (truncated) {
    ++unit.stats.truncated;
    if (octx.shard != nullptr) ++octx.shard->counter("explore.truncated");
    outcome.truncated = true;
    return outcome;
  }
  const sim::RunReport report = env.snapshot_report();
  outcome.violation = instance->check(env, report);
  if (!outcome.violation.has_value() && auditor.has_value() &&
      !auditor->clean()) {
    // Ledger / footprint violations become ordinary counterexamples (so
    // they minimize and serialize like property violations), but only when
    // the property check is clean — real violations take precedence.
    outcome.violation = auditor->summary();
    for (const auto& violation : auditor->violations()) {
      unit.audit.note(violation.to_string());
    }
  }
  if (outcome.violation.has_value()) {
    outcome.decisions = std::move(actions);
  } else if (auditor.has_value() &&
             commute_sampled(actions, opts.audit_commute_sample)) {
    // Differential cross-check of the POR commutation oracle: replay this
    // schedule with adjacent independent operations swapped; any deviation
    // in the final state refutes ops_commute (and with it the sleep sets).
    const audit::CommuteCheckReport cross = audit::cross_check_commutation(
        system, actions, [](const sim::OpDesc& a, const sim::OpDesc& b) {
          return ops_commute(a, b);
        });
    ++unit.audit.schedules_cross_checked;
    unit.audit.pairs_considered += cross.pairs_considered;
    unit.audit.swaps_replayed += cross.swaps_replayed;
    unit.audit.commute_mismatches += cross.mismatches.size();
    for (const auto& mismatch : cross.mismatches) {
      unit.audit.note("commute mismatch: " + mismatch.detail);
    }
    if (octx.shard != nullptr) {
      ++octx.shard->counter("audit.schedules_cross_checked");
      octx.shard->counter("audit.swaps_replayed") += cross.swaps_replayed;
    }
    if (octx.sink != nullptr && octx.sink->events_enabled()) {
      obs::Event event;
      event.kind = "audit.cross_check";
      event.step = unit.audit.schedules_cross_checked;
      event.worker = octx.worker;
      event.fields.emplace_back("pairs",
                                std::to_string(cross.pairs_considered));
      event.fields.emplace_back("swaps", std::to_string(cross.swaps_replayed));
      event.fields.emplace_back("mismatches",
                                std::to_string(cross.mismatches.size()));
      octx.sink->emit(std::move(event));
    }
  }
  return outcome;
}

/// True iff `decision` can be applied to the current state: the pid is
/// parked, restarts need a hook, spurious SC needs a pending SC.
bool applicable(const sim::SimEnv& env, int decision) {
  const Action action = decode_action(decision);
  if (action.pid < 0 || action.pid >= env.process_count()) return false;
  if (!env.is_parked(action.pid)) return false;
  switch (action.kind) {
    case ActionKind::kGrant:
    case ActionKind::kCrash:
      return true;
    case ActionKind::kRestart:
      return env.restart_supported(action.pid);
    case ActionKind::kScFailure:
      return env.pending_of(action.pid).op == "sc";
  }
  return false;
}

/// Replays `tape` — grants and faults — skipping inapplicable entries and
/// completing round-robin past its end (each counted as a divergence, the
/// ReplayScheduler contract), then re-checks the property.
struct TapeResult {
  bool reproduced = false;
  std::string violation;
  std::vector<int> canonical;
  std::uint64_t divergences = 0;
  bool truncated = false;
  sim::RunReport report;
};

TapeResult run_tape(const ExplorableSystem& system, const ExploreOptions& opts,
                    const std::vector<int>& tape,
                    obs::ObsSink* env_sink = nullptr) {
  TapeResult result;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = true;  // checks may read the trace on replay
  sim::SimEnv env(sim_options);
  instance->populate(env);
  // Fault-injection events (sim.crash / sim.restart / sim.sc_failure) are
  // attached only on explicit replays: exploration re-runs the factory
  // thousands of times and would drown the bounded event log.
  if (env_sink != nullptr) env.set_obs_sink(env_sink);
  const int n = env.process_count();
  std::optional<audit::Auditor> auditor;
  if (opts.audit) {
    // Replays audit too, so audit-found counterexamples reproduce (and
    // minimize) through the same machinery as property violations.
    auditor.emplace();
    env.set_access_observer(&*auditor);
  }
  env.start();

  std::size_t next = 0;
  int rr_cursor = 0;
  std::uint64_t granted = 0;
  for (;;) {
    if (parked_pids(env).empty()) break;
    if (granted >= opts.max_depth) {
      result.truncated = true;
      break;
    }
    int choice = kNoChoice;
    while (next < tape.size()) {
      const int candidate = tape[next++];
      if (applicable(env, candidate)) {
        choice = candidate;
        break;
      }
      ++result.divergences;
    }
    if (choice == kNoChoice) {
      for (int i = 0; i < n; ++i) {
        const int pid = (rr_cursor + i) % n;
        if (env.is_parked(pid)) {
          choice = pid;
          rr_cursor = pid + 1;
          break;
        }
      }
      ++result.divergences;
    }
    const Action action = decode_action(choice);
    switch (action.kind) {
      case ActionKind::kGrant:
        env.step_process(action.pid);
        ++granted;
        break;
      case ActionKind::kScFailure:
        env.inject_sc_failure(action.pid);
        env.step_process(action.pid);
        ++granted;
        break;
      case ActionKind::kCrash:
        env.kill_process(action.pid);
        break;
      case ActionKind::kRestart:
        env.restart_process(action.pid);
        break;
    }
    result.canonical.push_back(choice);
  }
  env.finish();

  result.report = env.snapshot_report();
  result.report.step_limit_hit = result.truncated;
  if (result.truncated) return result;
  const auto violation = instance->check(env, result.report);
  if (violation.has_value()) {
    result.reproduced = true;
    result.violation = *violation;
  } else if (auditor.has_value() && !auditor->clean()) {
    result.reproduced = true;
    result.violation = auditor->summary();
  }
  return result;
}

// ------------------------------------------------- parallel pass machinery

/// Per-pass configuration shared by the enumerator and every worker.
struct PassConfig {
  PassState base;          ///< budgets + filter flags; frames empty, floor 0
  std::size_t shard_at = 0;  ///< 0 = fully inline (serial) pass
  int jobs = 1;
  std::size_t violations_so_far = 0;  ///< result.violations.size() at entry
};

/// What the DFS-ordered merge concluded about a pass.
struct MergeOutcome {
  bool stopped = false;        ///< stop policy met (serial `stopped`)
  bool cap_hit = false;        ///< max_schedules fired (serial `cap_hit`)
  bool budget_limited = false;
  bool fault_limited = false;
};

void fold_unit(UnitResult& into, const UnitResult& from) {
  into.stats.merge_from(from.stats);
  into.audit.merge_from(from.audit);
  into.fault_points.insert(from.fault_points.begin(), from.fault_points.end());
  into.budget_limited |= from.budget_limited;
  into.fault_limited |= from.fault_limited;
}

/// Records a violation plus a checkpoint of the unit's cumulative state, so
/// the merge can cut this unit exactly at any of its violations.
void record_violation(UnitResult& unit, Counterexample cex) {
  unit.violations.push_back(std::move(cex));
  UnitCheckpoint cp;
  cp.stats = unit.stats;
  cp.audit = unit.audit;
  cp.fault_points = unit.fault_points;
  cp.budget_limited = unit.budget_limited;
  cp.fault_limited = unit.fault_limited;
  unit.checkpoints.push_back(std::move(cp));
}

Counterexample build_counterexample(const ExplorableSystem& system,
                                    const ExploreOptions& opts,
                                    RunOutcome&& outcome, ExploreStats& stats,
                                    const ObsCtx& octx) {
  Counterexample cex;
  cex.system = system.name();
  cex.processes = system.process_count();
  cex.violation = std::move(*outcome.violation);
  cex.decisions = std::move(outcome.decisions);
  cex.shrunk_from = cex.decisions.size();
  const std::uint64_t shrink_before = stats.shrink_runs;
  if (opts.minimize) {
    cex = minimize_counterexample(system, std::move(cex), opts, &stats);
  }
  if (octx.shard != nullptr) {
    ++octx.shard->counter("explore.violations_found");
    octx.shard->counter("shrink.replays") += stats.shrink_runs - shrink_before;
  }
  return cex;
}

/// Explores one subtree to completion on the calling thread.  `pass.frames`
/// holds the job prefix (floor set), or is empty for a whole serial pass.
/// `violation_quota` is the most violations the DFS-ordered merge could
/// ever take from one unit, so exceeding it stops the worker early.
void explore_subtree(const ExplorableSystem& system,
                     const ExploreOptions& opts, PassState pass,
                     SharedBudget& budget, std::size_t violation_quota,
                     UnitResult& unit, const ObsCtx& octx) {
  for (;;) {
    if (budget.exhausted()) {
      unit.cap_hit = true;
      break;
    }
    RunOutcome outcome = run_one(system, opts, pass, unit, 0, octx);
    if (!outcome.pruned) {
      budget.schedules.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome.violation.has_value()) {
      record_violation(
          unit, build_counterexample(system, opts, std::move(outcome),
                                     unit.stats, octx));
      if (opts.stop_at_first_violation ||
          unit.violations.size() >= violation_quota) {
        unit.stopped = true;
        break;
      }
    }
    if (!advance(pass)) break;
  }
}

/// Runs one (budget pair) pass: a serial enumerator walks the DFS to
/// `cfg.shard_at` decisions, emitting subtree jobs and executing shallow
/// runs inline (consecutive inline runs coalesce into one unit; a job
/// breaks the chain, preserving DFS order); then a worker pool drains the
/// jobs.  A mutex-guarded completion frontier confirms deterministic stops
/// as early as possible and raises a barrier so jobs past it are skipped
/// (the merge never reads them).
std::vector<PassUnit> run_pass(const ExplorableSystem& system,
                               const ExploreOptions& opts,
                               const PassConfig& cfg, SharedBudget& budget) {
  std::vector<PassUnit> units;
  const auto inline_unit = [&]() -> UnitResult& {
    if (units.empty() || units.back().job.has_value()) {
      units.emplace_back();
    }
    return units.back().result;
  };
  const std::size_t quota =
      opts.max_violations > cfg.violations_so_far
          ? opts.max_violations - cfg.violations_so_far
          : 1;

  obs::ObsSink* sink = opts.telemetry;
  const ObsCtx coordinator = make_obs_ctx(sink, obs::Event::kCoordinator);
  const bool spans = sink != nullptr && sink->timeline_enabled();
  const std::uint64_t enumerate_begin = spans ? sink->now_ns() : 0;

  PassState pass = cfg.base;
  std::size_t inline_recorded = 0;
  for (;;) {
    if (budget.exhausted()) {
      inline_unit().cap_hit = true;
      break;
    }
    UnitResult scratch;
    RunOutcome outcome =
        run_one(system, opts, pass, scratch, cfg.shard_at, coordinator);
    if (outcome.sharded) {
      PassUnit u;
      u.job = SubtreeJob{pass.frames};  // snapshot; the enumerator walks on
      u.result = std::move(scratch);    // frame accounting for the prefix
      units.push_back(std::move(u));
      if (!advance(pass)) break;
      continue;
    }
    UnitResult& unit = inline_unit();
    fold_unit(unit, scratch);
    if (!outcome.pruned) {
      budget.schedules.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome.violation.has_value()) {
      record_violation(
          unit, build_counterexample(system, opts, std::move(outcome),
                                     unit.stats, coordinator));
      ++inline_recorded;
      // Units before this one may already satisfy the stop policy — the
      // merge decides exactly.  But once inline violations alone satisfy
      // it, enumerating further units could only produce discarded work.
      if (opts.stop_at_first_violation ||
          cfg.violations_so_far + inline_recorded >= opts.max_violations) {
        unit.stopped = true;
        break;
      }
    }
    if (!advance(pass)) break;
  }

  if (spans) {
    obs::Span span;
    span.name = "enumerate";
    span.track = obs::Timeline::kCoordinatorTrack;
    span.begin_ns = enumerate_begin;
    span.end_ns = sink->now_ns();
    span.args.emplace_back("units", std::to_string(units.size()));
    sink->record_span(std::move(span));
  }

  std::vector<std::size_t> job_indices;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].job.has_value()) job_indices.push_back(i);
  }
  if (job_indices.empty()) return units;

  // Completion frontier: as the maximal complete unit prefix grows, replay
  // the merge's stop rule over it; on a confirmed stop at unit k, every job
  // with index > k is skippable — the merge will never reach it.
  std::mutex mu;
  std::vector<char> complete(units.size(), 0);
  std::size_t frontier = 0;
  std::size_t frontier_violations = cfg.violations_so_far;
  std::atomic<std::size_t> barrier{units.size()};
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;

  const auto walk_frontier = [&] {  // mu held
    while (frontier < units.size() && complete[frontier] != 0) {
      const UnitResult& unit = units[frontier].result;
      bool stops = unit.cap_hit;
      if (!unit.skipped) {
        for (std::size_t i = 0; i < unit.violations.size() && !stops; ++i) {
          ++frontier_violations;
          if (opts.stop_at_first_violation ||
              frontier_violations >= opts.max_violations) {
            stops = true;
          }
        }
      }
      if (stops) {
        std::size_t cur = barrier.load(std::memory_order_relaxed);
        while (cur > frontier &&
               !barrier.compare_exchange_weak(cur, frontier,
                                              std::memory_order_release)) {
        }
      }
      ++frontier;
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (!units[i].job.has_value()) complete[i] = 1;
    }
    walk_frontier();
  }

  const auto worker = [&](int worker_index) {
    try {
      const ObsCtx octx = make_obs_ctx(sink, worker_index);
      const bool events = sink != nullptr && sink->events_enabled();
      std::uint64_t claims = 0;
      if (events) {
        obs::Event event;
        event.kind = "worker.start";
        event.worker = worker_index;
        sink->emit(std::move(event));
      }
      for (;;) {
        const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= job_indices.size()) break;
        const std::size_t u = job_indices[j];
        const bool past_barrier = u > barrier.load(std::memory_order_acquire);
        if (events) {
          obs::Event event;
          event.kind = "worker.claim";
          event.step = claims;
          event.worker = worker_index;
          event.fields.emplace_back("unit", std::to_string(u));
          event.fields.emplace_back("skipped", past_barrier ? "1" : "0");
          sink->emit(std::move(event));
        }
        ++claims;
        if (past_barrier) {
          units[u].result.skipped = true;
        } else {
          const std::uint64_t job_begin = spans ? sink->now_ns() : 0;
          PassState sub = cfg.base;
          sub.frames = std::move(units[u].job->prefix);
          sub.floor = sub.frames.size();
          explore_subtree(system, opts, std::move(sub), budget, quota,
                          units[u].result, octx);
          if (spans) {
            obs::Span span;
            span.name = "job";
            span.track = worker_index;
            span.begin_ns = job_begin;
            span.end_ns = sink->now_ns();
            span.args.emplace_back("unit", std::to_string(u));
            span.args.emplace_back(
                "schedules",
                std::to_string(units[u].result.stats.schedules));
            sink->record_span(std::move(span));
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        complete[u] = 1;
        walk_frontier();
      }
      if (events) {
        obs::Event event;
        event.kind = "worker.finish";
        event.step = claims;
        event.worker = worker_index;
        sink->emit(std::move(event));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(cfg.jobs, 1)),
                            job_indices.size());
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i) {
    threads.emplace_back(worker, static_cast<int>(i));
  }
  worker(0);  // the calling thread is worker 0
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
  return units;
}

/// Folds a pass's units into `result` in DFS order, reproducing the serial
/// explorer's stop rule exactly: the first violation at which the serial
/// loop would have stopped cuts the merge at that unit's checkpoint, and
/// everything beyond (speculative worker results) is discarded.
/// The `bss-counterexample v2` decision token ("3", "c1", "r0", "s2"), for
/// human-readable event fields.
std::string action_token(int decision) {
  const Action action = decode_action(decision);
  switch (action.kind) {
    case ActionKind::kGrant:
      return std::to_string(action.pid);
    case ActionKind::kCrash:
      return "c" + std::to_string(action.pid);
    case ActionKind::kRestart:
      return "r" + std::to_string(action.pid);
    case ActionKind::kScFailure:
      return "s" + std::to_string(action.pid);
  }
  return std::to_string(decision);
}

MergeOutcome merge_pass(std::vector<PassUnit>& units,
                        const ExploreOptions& opts, ExploreResult& result,
                        std::set<FaultPoint>& fault_points) {
  MergeOutcome out;
  obs::ObsSink* sink = opts.telemetry;
  const bool events = sink != nullptr && sink->events_enabled();
  // Violation and fault-point-first-coverage events are emitted HERE, at
  // merge time, not where workers found them: the merge runs in DFS order
  // on one thread, so the event stream (kind, step, fields) is identical
  // for every worker count — only the timing channel varies.
  const auto note_violation = [&](Counterexample&& cex) {
    if (events) {
      obs::Event event;
      event.kind = "violation.found";
      event.step = result.violations.size();
      event.fields.emplace_back("violation", cex.violation);
      event.fields.emplace_back("decisions",
                                std::to_string(cex.decisions.size()));
      event.fields.emplace_back("faults", std::to_string(cex.fault_count()));
      event.fields.emplace_back("shrunk_from",
                                std::to_string(cex.shrunk_from));
      sink->emit(std::move(event));
    }
    result.violations.push_back(std::move(cex));
  };
  const auto cover_fault_points = [&](const std::set<FaultPoint>& points) {
    for (const FaultPoint& point : points) {
      if (!fault_points.insert(point).second) continue;
      if (events) {
        obs::Event event;
        event.kind = "coverage.fault_point";
        event.step = fault_points.size() - 1;
        event.fields.emplace_back("action", action_token(point.first));
        event.fields.emplace_back("victim_steps",
                                  std::to_string(point.second));
        sink->emit(std::move(event));
      }
    }
  };
  for (auto& pass_unit : units) {
    UnitResult& unit = pass_unit.result;
    expects(!unit.skipped,
            "deterministic merge reached a subtree skipped by the barrier");
    std::optional<std::size_t> cut;
    for (std::size_t i = 0; i < unit.violations.size(); ++i) {
      if (opts.stop_at_first_violation ||
          result.violations.size() + i + 1 >= opts.max_violations) {
        cut = i;
        break;
      }
    }
    if (cut.has_value()) {
      const UnitCheckpoint& cp = unit.checkpoints[*cut];
      result.stats.merge_from(cp.stats);
      result.audit.merge_from(cp.audit);
      cover_fault_points(cp.fault_points);
      out.budget_limited |= cp.budget_limited;
      out.fault_limited |= cp.fault_limited;
      for (std::size_t i = 0; i <= *cut; ++i) {
        note_violation(std::move(unit.violations[i]));
      }
      out.stopped = true;
      break;
    }
    result.stats.merge_from(unit.stats);
    result.audit.merge_from(unit.audit);
    cover_fault_points(unit.fault_points);
    out.budget_limited |= unit.budget_limited;
    out.fault_limited |= unit.fault_limited;
    for (auto& cex : unit.violations) {
      note_violation(std::move(cex));
    }
    if (unit.cap_hit) {
      out.cap_hit = true;
      break;
    }
  }
  return out;
}

/// jobs == 0 resolves through BSS_EXPLORE_JOBS (how CI forces the worker
/// pool through every existing test); explicit values are never overridden.
int resolve_jobs(const ExploreOptions& options) {
  if (options.jobs > 0) return std::min(options.jobs, 64);
  static const int env_jobs = [] {
    const char* raw = std::getenv("BSS_EXPLORE_JOBS");
    if (raw == nullptr) return 1;
    char* end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end == raw || *end != '\0' || parsed < 1) return 1;
    return static_cast<int>(std::min<long>(parsed, 64));
  }();
  return env_jobs;
}

/// Auto shard depth: none when serial; otherwise the smallest depth whose
/// estimated subtree count (branching ^ depth) yields several jobs per
/// worker, so the pool load-balances without enumeration dominating.
std::size_t resolve_shard_depth(const ExploreOptions& options,
                                const ExplorableSystem& system, int jobs) {
  if (options.shard_depth >= 0) {
    return static_cast<std::size_t>(options.shard_depth);
  }
  if (jobs <= 1) return 0;
  const std::uint64_t branching = static_cast<std::uint64_t>(
      std::max(2, std::min(system.process_count(), 4)));
  const std::uint64_t target = std::uint64_t{8} * static_cast<unsigned>(jobs);
  std::uint64_t reach = 1;
  std::size_t depth = 0;
  while (depth < 8 && reach < target) {
    reach *= branching;
    ++depth;
  }
  return depth;
}

}  // namespace

std::size_t Counterexample::fault_count() const {
  return static_cast<std::size_t>(
      std::count_if(decisions.begin(), decisions.end(),
                    [](int decision) { return is_fault_action(decision); }));
}

Counterexample minimize_counterexample(const ExplorableSystem& system,
                                       Counterexample cex,
                                       const ExploreOptions& requested,
                                       ExploreStats* stats) {
  ExploreOptions options = requested;
  options.audit = resolve_audit(requested);
  std::uint64_t used = 0;
  const auto count_run = [&] {
    ++used;
    if (stats != nullptr) ++stats->shrink_runs;
  };
  // ddmin progress events: stamped with the re-execution count *within this
  // minimization*, so the per-counterexample shrink trajectory is
  // deterministic even when several minimizations interleave across workers.
  obs::ObsSink* sink = options.telemetry;
  const bool events = sink != nullptr && sink->events_enabled();
  const auto emit_ddmin = [&](const char* kind, std::size_t from,
                              std::size_t to) {
    if (!events) return;
    obs::Event event;
    event.kind = kind;
    event.step = used;
    event.fields.emplace_back("from", std::to_string(from));
    event.fields.emplace_back("to", std::to_string(to));
    sink->emit(std::move(event));
  };
  // The shrink analogue of max_schedules: ddmin replays on a pathological
  // tape must not run unboundedly after the exploration budget is spent.
  const auto budget_left = [&] {
    return options.shrink_budget == 0 || used < options.shrink_budget;
  };
  // Canonicalize up front and keep `best` canonical throughout: always the
  // *complete* decision sequence of a violating run, so the replayer
  // re-executes the result verbatim — zero divergences, no silent fallback.
  count_run();
  TapeResult current = run_tape(system, options, cex.decisions);
  expects(current.reproduced,
          "counterexample does not reproduce before minimization "
          "(nondeterministic system factory?)");
  std::vector<int> best = std::move(current.canonical);
  std::string violation = std::move(current.violation);
  cex.shrunk_from = std::max(cex.decisions.size(), best.size());
  emit_ddmin("ddmin.start", cex.shrunk_from, best.size());

  // Greedy ddmin-style chunk deletion: drop spans of halving size wherever
  // the violation still reproduces.  The fallback completes a truncated
  // candidate along a possibly *longer* schedule (LL/SC retry loops make
  // step counts schedule-dependent), so a deletion is accepted only when
  // its canonical tape is a strict length win.  Fault entries are ordinary
  // tape entries here: spans containing them are dropped like any other,
  // so a violation that needs fewer faults shrinks to fewer faults.
  bool budget_hit = false;
  for (std::size_t chunk = std::max<std::size_t>(best.size() / 2, 1);;
       chunk /= 2) {
    std::size_t start = 0;
    while (start < best.size()) {
      if (!budget_left()) {
        budget_hit = true;
        break;
      }
      const std::size_t len = std::min(chunk, best.size() - start);
      std::vector<int> candidate;
      candidate.reserve(best.size() - len);
      candidate.insert(candidate.end(), best.begin(),
                       best.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       best.begin() + static_cast<std::ptrdiff_t>(start + len),
                       best.end());
      count_run();
      TapeResult attempt = run_tape(system, options, candidate);
      if (attempt.reproduced && attempt.canonical.size() < best.size()) {
        emit_ddmin("ddmin.accept", best.size(), attempt.canonical.size());
        best = std::move(attempt.canonical);
        violation = std::move(attempt.violation);
        // retry the same start position against the new, shorter tape
      } else {
        start += chunk;
      }
    }
    if (budget_hit || chunk == 1) break;
  }
  if (budget_hit && stats != nullptr) ++stats->shrink_budget_hits;
  emit_ddmin(budget_hit ? "ddmin.budget_hit" : "ddmin.done", cex.shrunk_from,
             best.size());

  cex.decisions = std::move(best);
  cex.violation = std::move(violation);
  return cex;
}

ReplayOutcome replay_counterexample(const ExplorableSystem& system,
                                    const Counterexample& cex,
                                    const ExploreOptions& requested) {
  ExploreOptions options = requested;
  options.audit = resolve_audit(requested);
  TapeResult result = run_tape(system, options, cex.decisions,
                               options.telemetry);
  ReplayOutcome outcome;
  outcome.violated = result.reproduced;
  outcome.violation = std::move(result.violation);
  outcome.divergences = result.divergences;
  outcome.truncated = result.truncated;
  outcome.report = std::move(result.report);
  return outcome;
}

ExploreResult explore(const ExplorableSystem& system,
                      const ExploreOptions& requested) {
  ExploreOptions options = requested;
  options.audit = resolve_audit(requested);
  ExploreResult result;
  result.audit.enabled = options.audit;
  const int jobs = resolve_jobs(options);
  const std::size_t shard_at = resolve_shard_depth(options, system, jobs);

  obs::ObsSink* sink = options.telemetry;
  const bool events = sink != nullptr && sink->events_enabled();
  const bool spans = sink != nullptr && sink->timeline_enabled();
  const auto wall_begin = std::chrono::steady_clock::now();
  if (events) {
    obs::Event event;
    event.kind = "explore.start";
    event.fields.emplace_back("system", system.name());
    event.fields.emplace_back("jobs", std::to_string(jobs));
    event.fields.emplace_back("shard_depth", std::to_string(shard_at));
    sink->emit(std::move(event));
  }
  if (sink != nullptr) {
    if (obs::MetricShard* shard =
            sink->metric_shard(obs::Event::kCoordinator)) {
      shard->gauge_max("explore.jobs", static_cast<std::uint64_t>(jobs));
      shard->gauge_max("explore.shard_depth", shard_at);
    }
  }

  // Chess-style iterative bounding: sweep small budgets first so the
  // simplest refutation surfaces; a budget that cut nothing covered the
  // whole space, making larger budgets redundant.  Fault budgets sweep
  // outermost — a zero-fault refutation beats a one-fault one.  Each
  // (fault, preemption) budget pair is one *pass*: sharding happens within
  // a pass, so fewest-fault-first ordering is preserved.
  std::vector<int> preemption_budgets;
  if (options.preemption_bound >= 0 && options.iterative) {
    for (int b = 0; b <= options.preemption_bound; ++b) {
      preemption_budgets.push_back(b);
    }
  } else {
    preemption_budgets.push_back(options.preemption_bound);
  }
  const bool faults_on =
      options.fault_bound > 0 &&
      (options.explore_crashes || options.explore_restarts ||
       options.explore_sc_failures);
  std::vector<int> fault_budgets;
  if (!faults_on) {
    fault_budgets.push_back(0);
  } else if (options.iterative) {
    for (int b = 0; b <= options.fault_bound; ++b) fault_budgets.push_back(b);
  } else {
    fault_budgets.push_back(options.fault_bound);
  }

  std::set<FaultPoint> fault_points;
  SharedBudget budget_valve(options.max_schedules);
  bool cap_hit = false;
  bool stopped = false;
  bool last_pass_budget_limited = false;
  std::uint64_t pass_ordinal = 0;
  for (const int fault_budget : fault_budgets) {
    bool fault_limited_at_this_budget = false;
    for (const int budget : preemption_budgets) {
      if (events) {
        obs::Event event;
        event.kind = "pass.start";
        event.step = pass_ordinal;
        event.fields.emplace_back("fault_budget",
                                  std::to_string(faults_on ? fault_budget : 0));
        event.fields.emplace_back("preemption_budget", std::to_string(budget));
        sink->emit(std::move(event));
      }
      ++pass_ordinal;
      PassConfig cfg;
      cfg.base.budget = budget;
      cfg.base.fault_budget = faults_on ? fault_budget : 0;
      cfg.base.use_por = options.use_por;
      cfg.base.explore_crashes = faults_on && options.explore_crashes;
      cfg.base.explore_restarts = faults_on && options.explore_restarts;
      cfg.base.explore_sc = faults_on && options.explore_sc_failures;
      cfg.shard_at = shard_at;
      cfg.jobs = jobs;
      cfg.violations_so_far = result.violations.size();
      std::vector<PassUnit> units =
          run_pass(system, options, cfg, budget_valve);
      const std::uint64_t merge_begin = spans ? sink->now_ns() : 0;
      const MergeOutcome merged =
          merge_pass(units, options, result, fault_points);
      if (spans) {
        obs::Span span;
        span.name = "merge";
        span.track = obs::Timeline::kCoordinatorTrack;
        span.begin_ns = merge_begin;
        span.end_ns = sink->now_ns();
        span.args.emplace_back("units", std::to_string(units.size()));
        sink->record_span(std::move(span));
      }
      last_pass_budget_limited = merged.budget_limited;
      fault_limited_at_this_budget = merged.fault_limited;
      cap_hit |= merged.cap_hit;
      stopped |= merged.stopped;
      if (cap_hit || stopped) break;
      if (!merged.budget_limited) break;  // space covered at this budget
    }
    if (cap_hit || stopped) break;
    // A fault budget that cut nothing covered the whole bounded-fault
    // space; deeper fault budgets would only re-explore it.
    if (!fault_limited_at_this_budget) break;
  }

  result.stats.fault_points = fault_points.size();
  result.exhausted = !cap_hit && !stopped && !last_pass_budget_limited &&
                     result.stats.truncated == 0;

  if (sink != nullptr) {
    if (events) {
      obs::Event event;
      event.kind = "explore.done";
      event.fields.emplace_back("schedules",
                                std::to_string(result.stats.schedules));
      event.fields.emplace_back("violations",
                                std::to_string(result.violations.size()));
      event.fields.emplace_back("exhausted", result.exhausted ? "1" : "0");
      sink->emit(std::move(event));
    }
    obs::ReportBuilder report("explore", "explore()");
    report.set_system(system.name());
    report.environment("jobs", jobs);
    report.environment("shard_depth",
                       static_cast<std::uint64_t>(shard_at));
    report.environment("processes", system.process_count());
    report.option("max_depth", options.max_depth);
    report.option("preemption_bound", options.preemption_bound);
    report.option("iterative", options.iterative);
    report.option("use_por", options.use_por);
    report.option("max_schedules", options.max_schedules);
    report.option("stop_at_first_violation", options.stop_at_first_violation);
    report.option("max_violations",
                  static_cast<std::uint64_t>(options.max_violations));
    report.option("minimize", options.minimize);
    report.option("shrink_budget", options.shrink_budget);
    report.option("fault_bound", options.fault_bound);
    report.option("audit", options.audit);
    const ExploreStats& stats = result.stats;
    report.stat("schedules", stats.schedules);
    report.stat("transitions", stats.transitions);
    report.stat("sleep_set_prunes", stats.sleep_set_prunes);
    report.stat("preemption_prunes", stats.preemption_prunes);
    report.stat("truncated", stats.truncated);
    report.stat("max_depth_seen", stats.max_depth_seen);
    report.stat("shrink_runs", stats.shrink_runs);
    report.stat("shrink_budget_hits", stats.shrink_budget_hits);
    report.stat("fault_prunes", stats.fault_prunes);
    report.stat("faults_injected", stats.faults_injected);
    report.stat("fault_points", stats.fault_points);
    report.stat("violations", result.violations.size());
    report.coverage("exhausted", result.exhausted);
    report.coverage("passes", pass_ordinal);
    report.coverage("cap_hit", cap_hit);
    report.coverage("stopped", stopped);
    for (const Counterexample& cex : result.violations) {
      obs::json::Object violation;
      violation.emplace("violation", obs::json::Value(cex.violation));
      violation.emplace(
          "decisions",
          obs::json::Value(static_cast<std::uint64_t>(cex.decisions.size())));
      violation.emplace(
          "faults",
          obs::json::Value(static_cast<std::uint64_t>(cex.fault_count())));
      violation.emplace(
          "shrunk_from",
          obs::json::Value(static_cast<std::uint64_t>(cex.shrunk_from)));
      report.violation(std::move(violation));
    }
    const auto wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
    report.timing("explore_wall_ns",
                  static_cast<std::uint64_t>(wall_ns));
    sink->report(report);
  }
  return result;
}

// ---------------------------------------------------------------- reporting

void ExploreStats::merge_from(const ExploreStats& other) {
  schedules += other.schedules;
  transitions += other.transitions;
  sleep_set_prunes += other.sleep_set_prunes;
  preemption_prunes += other.preemption_prunes;
  truncated += other.truncated;
  max_depth_seen = std::max(max_depth_seen, other.max_depth_seen);
  shrink_runs += other.shrink_runs;
  shrink_budget_hits += other.shrink_budget_hits;
  fault_prunes += other.fault_prunes;
  faults_injected += other.faults_injected;
  // fault_points intentionally untouched: distinct sites dedup through a
  // set and are written once at the end of explore().
}

std::string ExploreStats::summary() const {
  std::ostringstream out;
  out << "schedules=" << schedules << " transitions=" << transitions
      << " sleep-prunes=" << sleep_set_prunes
      << " preemption-prunes=" << preemption_prunes
      << " truncated=" << truncated << " max-depth=" << max_depth_seen
      << " shrink-runs=" << shrink_runs;
  if (shrink_budget_hits > 0) {
    out << " shrink-budget-hits=" << shrink_budget_hits;
  }
  if (faults_injected > 0 || fault_prunes > 0) {
    out << " faults=" << faults_injected << " fault-points=" << fault_points
        << " fault-prunes=" << fault_prunes;
  }
  return out.str();
}

void AuditSummary::note(std::string finding) {
  if (findings.size() < kMaxFindings) findings.push_back(std::move(finding));
}

void AuditSummary::merge_from(const AuditSummary& other) {
  enabled |= other.enabled;
  windows += other.windows;
  accesses += other.accesses;
  ledger_violations += other.ledger_violations;
  schedules_cross_checked += other.schedules_cross_checked;
  pairs_considered += other.pairs_considered;
  swaps_replayed += other.swaps_replayed;
  commute_mismatches += other.commute_mismatches;
  for (const auto& finding : other.findings) note(finding);
}

std::string AuditSummary::summary() const {
  if (!enabled) return "audit: off";
  std::ostringstream out;
  out << "audit: windows=" << windows << " accesses=" << accesses
      << " ledger-violations=" << ledger_violations
      << " cross-checked=" << schedules_cross_checked
      << " pairs=" << pairs_considered << " swaps=" << swaps_replayed
      << " commute-mismatches=" << commute_mismatches;
  if (!findings.empty()) out << "\n  first: " << findings.front();
  return out.str();
}

std::string ExploreResult::summary() const {
  std::ostringstream out;
  out << stats.summary() << (exhausted ? " [exhaustive]" : " [bounded]");
  if (violations.empty()) {
    out << " no violations";
  } else {
    for (const auto& cex : violations) {
      out << "\n  VIOLATION (" << cex.decisions.size() << " decisions, "
          << cex.fault_count() << " faults, from " << cex.shrunk_from
          << "): " << cex.violation;
    }
  }
  return out.str();
}

// ----------------------------------------------------------------- artifact

std::string Counterexample::to_artifact() const {
  std::ostringstream out;
  std::string flat = violation;
  std::replace(flat.begin(), flat.end(), '\n', ' ');
  // v1 (grants only) stays bit-for-bit the historical format; fault tapes
  // need the v2 token syntax.
  out << (fault_count() == 0 ? "bss-counterexample v1\n"
                             : "bss-counterexample v2\n");
  out << "system: " << system << "\n";
  out << "processes: " << processes << "\n";
  out << "shrunk-from: " << shrunk_from << "\n";
  out << "violation: " << flat << "\n";
  out << "decisions:";
  for (const int decision : decisions) {
    const Action action = decode_action(decision);
    switch (action.kind) {
      case ActionKind::kGrant:
        out << ' ' << action.pid;
        break;
      case ActionKind::kCrash:
        out << " c" << action.pid;
        break;
      case ActionKind::kRestart:
        out << " r" << action.pid;
        break;
      case ActionKind::kScFailure:
        out << " s" << action.pid;
        break;
    }
  }
  out << "\n";
  return out.str();
}

std::optional<Counterexample> Counterexample::from_artifact(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      (line != "bss-counterexample v1" && line != "bss-counterexample v2")) {
    return std::nullopt;
  }
  Counterexample cex;
  bool saw_decisions = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (key == "system") {
      cex.system = value;
    } else if (key == "processes") {
      cex.processes = std::stoi(value);
    } else if (key == "shrunk-from") {
      cex.shrunk_from = static_cast<std::size_t>(std::stoull(value));
    } else if (key == "violation") {
      cex.violation = value;
    } else if (key == "decisions") {
      std::istringstream tokens(value);
      std::string token;
      while (tokens >> token) {
        ActionKind kind = ActionKind::kGrant;
        std::size_t offset = 0;
        switch (token.front()) {
          case 'c':
            kind = ActionKind::kCrash;
            offset = 1;
            break;
          case 'r':
            kind = ActionKind::kRestart;
            offset = 1;
            break;
          case 's':
            kind = ActionKind::kScFailure;
            offset = 1;
            break;
          default:
            break;
        }
        int pid = 0;
        try {
          std::size_t used = 0;
          pid = std::stoi(token.substr(offset), &used);
          if (used != token.size() - offset) return std::nullopt;
        } catch (const std::exception&) {
          return std::nullopt;
        }
        if (pid < 0 || pid > kMaxActionPid) return std::nullopt;
        cex.decisions.push_back(encode_action(kind, pid));
      }
      saw_decisions = true;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_decisions) return std::nullopt;
  return cex;
}

}  // namespace bss::explore
