#include "explore/explore.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "audit/commute_check.h"
#include "audit/ledger.h"
#include "explore/checkpoint.h"
#include "obs/obs.h"
#include "obs/status.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::explore {

bool ops_commute(const sim::OpDesc& a, const sim::OpDesc& b) {
  if (a.object != b.object) return true;
  // Anything that is not a plain read (write, cas, ll, sc, …) may change the
  // object or its hidden state (LL links), so it conflicts with every other
  // access to the same object.
  return a.op == "read" && b.op == "read";
}

namespace {

/// Sentinel for "no choice"; distinct from every encoded action (grants are
/// >= 0, faults are small negatives).
constexpr int kNoChoice = std::numeric_limits<int>::min();

constexpr std::uint64_t pid_bit(int pid) {
  return std::uint64_t{1} << static_cast<unsigned>(pid);
}

// ------------------------------------------------- visited-state cache keys
//
// The fingerprint-prune cache (ExploreOptions::fingerprint_prune) keys every
// DFS node on a 128-bit hash of the instance fingerprint plus the
// scheduler-visible SimEnv state.  The preemption/fault counters spent on
// the way to a node are deliberately EXCLUDED: a node cleanly covered at one
// budget is covered at every budget (clean == no budget ever cut below), so
// cross-budget cache hits are exactly the point of the iterative sweep.

/// 128-bit state key: two FNV-1a-64 streams over the same bytes, the second
/// perturbed (different offset basis, bytes xor'd) so the pair behaves like
/// independent hashes.  Collision soundness is validated empirically by the
/// mutant sweep (a colliding prune on a mutant would lose its refutation).
struct FpHash {
  std::uint64_t h1 = 14695981039346656037ULL;
  std::uint64_t h2 = 0x6c62272e07bb0142ULL;
  void byte(unsigned char b) {
    h1 = (h1 ^ b) * 1099511628211ULL;
    h2 = (h2 ^ static_cast<unsigned char>(b ^ 0xa5U)) * 1099511628211ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v & 0xffU));
      v >>= 8U;
    }
  }
  void str(const std::string& s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
};

using FpKey = std::pair<std::uint64_t, std::uint64_t>;
/// Frozen for the duration of a pass; read concurrently without locks.
using FpCache = std::set<FpKey>;

/// One node of the DFS tree: the scheduling state after `index` decisions
/// (grants and faults alike).
struct Frame {
  std::vector<int> runnable;           ///< ascending pids runnable here
  std::vector<sim::OpDesc> pending;    ///< by pid; valid for runnable pids
  std::uint64_t restartable = 0;       ///< runnable pids with a restart hook
  std::uint64_t sc_ready = 0;          ///< runnable pids parked on an SC
  std::uint64_t sc_failed_before = 0;  ///< pids already failed spuriously
  std::vector<int> entry_sleep;        ///< sleeping pids on entry (sorted)
  std::vector<int> done;               ///< sibling choices already explored
  int chosen = kNoChoice;              ///< choice taken on the current path
  int prev_grant = -1;                 ///< pid granted most recently before
  int preemptions_before = 0;          ///< preemptions in decisions 0..index-1
  int faults_before = 0;               ///< faults injected in 0..index-1
  // Visited-state cache accumulator (fingerprint_prune only).  `fp_dirty`
  // records whether anything incomplete happened in this node's subtree
  // while the frame was open — a budget or fault cut, a truncation, a
  // violation.  Every disqualifying event marks EVERY open frame, so by the
  // DFS invariant (all execution happens inside every open frame's subtree)
  // a frame's dirty bit is always a statement about its own subtree; unions
  // of the bit across frame copies (steal splits, shard prefixes) therefore
  // aggregate commutatively to exactly the serial walk's answer.
  std::uint64_t fp_lo = 0;
  std::uint64_t fp_hi = 0;
  bool fp_valid = false;  ///< key computed (fingerprint non-empty)
  bool fp_dirty = false;  ///< subtree coverage incomplete so far
};

bool contains(const std::vector<int>& values, int value) {
  return std::find(values.begin(), values.end(), value) != values.end();
}

struct PassState {
  std::vector<Frame> frames;
  int budget = -1;        ///< preemption budget; -1 = unbounded
  int fault_budget = 0;   ///< fault budget; 0 = no fault exploration
  bool use_por = true;
  bool explore_crashes = false;
  bool explore_restarts = false;
  bool explore_sc = false;
  /// Visited-state pruning: read `fp_cache` (frozen at pass start, never
  /// written during a pass — lock-free shared reads) at every fresh frame.
  bool fp_prune = false;
  const FpCache* fp_cache = nullptr;
  /// Subtree floor: advance() never backtracks below this many frames.  0
  /// for the serial walk and the job enumerator; a worker exploring a
  /// sharded subtree sets it to its prefix length so the enumerator keeps
  /// sole ownership of sibling choices above the cut.
  std::size_t floor = 0;
};

/// Fault-site coordinate: (encoded action, victim's lifetime op count).
using FaultPoint = std::pair<int, std::uint64_t>;

/// Snapshot of a unit's cumulative results taken right after a violation is
/// recorded.  When the deterministic merge decides the serial explorer would
/// have stopped at that violation, it folds the checkpoint instead of the
/// full unit, discarding everything the worker explored speculatively past
/// the stop point.
struct UnitCheckpoint {
  ExploreStats stats;
  AuditSummary audit;
  std::set<FaultPoint> fault_points;
  bool budget_limited = false;
  bool fault_limited = false;
};

/// Results of one merge unit: either a sharded subtree job or a maximal run
/// of consecutive inline (enumerator-executed) runs.  Units are merged in
/// DFS order, which makes the parallel explorer byte-identical to the
/// serial one.
struct UnitResult {
  ExploreStats stats;
  AuditSummary audit;
  std::set<FaultPoint> fault_points;
  std::vector<Counterexample> violations;
  std::vector<UnitCheckpoint> checkpoints;  ///< parallel to `violations`
  /// Visited-state coverage partials (fingerprint_prune only), emitted when
  /// a keyed frame pops and for the still-open below-floor frames when the
  /// unit drains.  Folded per key across all units between passes; dropped
  /// wholesale on stop/cap (the campaign is over — the cache is dead).
  std::vector<FingerprintPartial> fp_partials;
  bool budget_limited = false;  ///< a branch was cut by the preemption budget
  bool fault_limited = false;   ///< a branch was cut by the fault budget
  bool cap_hit = false;         ///< max_schedules fired before some run
  bool stopped = false;         ///< the worker hit its violation quota
  bool skipped = false;         ///< claimed past the stop barrier, never run
};

/// A sharded subtree: the frame stack at the moment the enumerator cut the
/// DFS, `shard_at` frames deep with every `chosen` set.  Sleep sets,
/// explored-sibling sets and budget counters carry across the cut in the
/// frames, so a worker replaying the prefix on a private SimEnv explores
/// the subtree exactly as the serial walk would have.
struct SubtreeJob {
  std::vector<Frame> prefix;
};

struct PassUnit {
  std::optional<SubtreeJob> job;  ///< nullopt for inline units
  UnitResult result;
};

/// Observability context threaded through the hot loop: the sink (null =
/// off), the caller's single-writer metric shard, and the logical worker id
/// events are attributed to.  Strictly passive — nothing here may influence
/// an exploration decision.
struct ObsCtx {
  obs::ObsSink* sink = nullptr;
  obs::MetricShard* shard = nullptr;
  int worker = obs::Event::kCoordinator;
  obs::PhaseProfiler* profiler = nullptr;
};

ObsCtx make_obs_ctx(obs::ObsSink* sink, int worker) {
  ObsCtx octx;
  octx.sink = sink;
  octx.shard = sink != nullptr ? sink->metric_shard(worker) : nullptr;
  octx.worker = worker;
  octx.profiler = sink != nullptr ? sink->profiler() : nullptr;
  return octx;
}

const std::vector<std::uint64_t>& depth_bounds() {
  static const std::vector<std::uint64_t> bounds = obs::pow2_bounds(16);
  return bounds;
}

/// The max_schedules safety valve, shared across enumerator and workers.
struct SharedBudget {
  explicit SharedBudget(std::uint64_t cap) : max_schedules(cap) {}
  std::atomic<std::uint64_t> schedules{0};
  const std::uint64_t max_schedules;
  bool exhausted() const {
    return schedules.load(std::memory_order_relaxed) >= max_schedules;
  }
};

/// Granting away from the most recently granted (still-runnable) process
/// costs one preemption.  Fault actions are not grants: a crash/restart of
/// another process does not preempt the running one.
int choice_cost(const Frame& frame, int grant_pid) {
  if (frame.prev_grant < 0 || grant_pid == frame.prev_grant) return 0;
  return contains(frame.runnable, frame.prev_grant) ? 1 : 0;
}

bool grant_feasible(const Frame& frame, int pid, const PassState& pass) {
  if (contains(frame.done, pid)) return false;
  if (pass.use_por && contains(frame.entry_sleep, pid)) return false;
  if (pass.budget >= 0 &&
      frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
    return false;
  }
  return true;
}

/// First unexplored, feasible choice at `frame`: grants first (continuing
/// prev_grant is free, then ascending pid order), then — fault budget
/// permitting — spurious-SC, crash and restart injections in pid order.
/// Sleep sets apply to plain grants only: a spurious-failing SC has a
/// different effect than the explored grant, so it never sleeps.
int select_choice(const Frame& frame, const PassState& pass) {
  if (contains(frame.runnable, frame.prev_grant) &&
      grant_feasible(frame, frame.prev_grant, pass)) {
    return frame.prev_grant;
  }
  for (const int pid : frame.runnable) {
    if (pid == frame.prev_grant) continue;
    if (grant_feasible(frame, pid, pass)) return pid;
  }
  if (pass.fault_budget > 0 && frame.faults_before < pass.fault_budget) {
    if (pass.explore_sc) {
      for (const int pid : frame.runnable) {
        if ((frame.sc_ready & pid_bit(pid)) == 0) continue;
        if ((frame.sc_failed_before & pid_bit(pid)) != 0) continue;
        const int choice = encode_action(ActionKind::kScFailure, pid);
        if (contains(frame.done, choice)) continue;
        // A spurious SC still performs the (failing) operation, so the
        // preemption cost of granting `pid` applies.
        if (pass.budget >= 0 &&
            frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
          continue;
        }
        return choice;
      }
    }
    if (pass.explore_crashes) {
      for (const int pid : frame.runnable) {
        const int choice = encode_action(ActionKind::kCrash, pid);
        if (!contains(frame.done, choice)) return choice;
      }
    }
    if (pass.explore_restarts) {
      for (const int pid : frame.runnable) {
        if ((frame.restartable & pid_bit(pid)) == 0) continue;
        const int choice = encode_action(ActionKind::kRestart, pid);
        if (!contains(frame.done, choice)) return choice;
      }
    }
  }
  return kNoChoice;
}

/// Per-worker allocation arena for the DFS inner loop: frames popped by
/// advance() park here and make_frame reuses them, so the per-step vector
/// and string capacities (runnable/pending/entry_sleep/done, the OpDesc
/// object/op strings inside `pending`) circulate instead of being
/// reallocated on every node.  Strictly an allocation cache — nothing in
/// here influences an exploration decision.
struct Scratch {
  std::vector<Frame> spare;             ///< recycled frames, fields cleared
  std::vector<int> runnable;            ///< per-step parked-set buffer
  std::vector<int> actions;             ///< per-run decision-tape buffer
  std::vector<FaultPoint> fault_points; ///< per-run fault-site buffer
};

/// Fills `scratch.runnable` with the parked pids (ascending), reusing the
/// buffer's capacity instead of allocating per step.
void fill_parked(const sim::SimEnv& env, std::vector<int>& runnable) {
  runnable.clear();
  for (int pid = 0; pid < env.process_count(); ++pid) {
    if (env.is_parked(pid)) runnable.push_back(pid);
  }
}

/// Pulls a recycled frame from the arena (or default-constructs one): all
/// fields reset, vector/string capacities preserved.
Frame take_frame(Scratch& scratch) {
  if (scratch.spare.empty()) return Frame{};
  Frame frame = std::move(scratch.spare.back());
  scratch.spare.pop_back();
  frame.runnable.clear();
  frame.restartable = 0;
  frame.sc_ready = 0;
  frame.sc_failed_before = 0;
  frame.entry_sleep.clear();
  frame.done.clear();
  frame.chosen = kNoChoice;
  frame.prev_grant = -1;
  frame.preemptions_before = 0;
  frame.faults_before = 0;
  frame.fp_lo = 0;
  frame.fp_hi = 0;
  frame.fp_valid = false;
  frame.fp_dirty = false;
  return frame;
}

/// Materializes the frontier node reached after `parent` took its chosen
/// action (parent == nullptr at the root).  Consumes `scratch.runnable` (by
/// swap, so its capacity returns to the buffer pool with the frame).
Frame make_frame(const sim::SimEnv& env, Scratch& scratch,
                 const PassState& pass, const Frame* parent) {
  Frame frame = take_frame(scratch);
  frame.runnable.swap(scratch.runnable);
  frame.pending.resize(static_cast<std::size_t>(env.process_count()));
  for (const int pid : frame.runnable) {
    frame.pending[static_cast<std::size_t>(pid)] = env.pending_of(pid);
    if (env.restart_supported(pid)) frame.restartable |= pid_bit(pid);
    if (frame.pending[static_cast<std::size_t>(pid)].op == "sc") {
      frame.sc_ready |= pid_bit(pid);
    }
  }
  if (parent == nullptr) return frame;

  const Action parent_action = decode_action(parent->chosen);
  const bool parent_granted = parent_action.kind == ActionKind::kGrant ||
                              parent_action.kind == ActionKind::kScFailure;
  frame.sc_failed_before = parent->sc_failed_before;
  if (parent_action.kind == ActionKind::kScFailure) {
    frame.sc_failed_before |= pid_bit(parent_action.pid);
  }
  frame.faults_before = parent->faults_before +
                        (parent_action.kind == ActionKind::kGrant ? 0 : 1);
  if (parent_granted) {
    frame.prev_grant = parent_action.pid;
    frame.preemptions_before =
        parent->preemptions_before + choice_cost(*parent, parent_action.pid);
    if (pass.use_por) {
      // Sleep-set propagation: everything asleep at the parent (inherited
      // or explored there) stays asleep iff it commutes with the operation
      // the parent's choice just performed.  Only plain grants in the
      // parent's done set count — fault siblings are not operations.
      const auto& parent_op =
          parent->pending[static_cast<std::size_t>(parent_action.pid)];
      const auto inherit = [&](int pid) {
        if (pid == parent_action.pid) return;
        if (ops_commute(parent->pending[static_cast<std::size_t>(pid)],
                        parent_op)) {
          frame.entry_sleep.push_back(pid);
        }
      };
      for (const int pid : parent->entry_sleep) inherit(pid);
      for (const int choice : parent->done) {
        const Action done_action = decode_action(choice);
        if (done_action.kind == ActionKind::kGrant) inherit(done_action.pid);
      }
      std::sort(frame.entry_sleep.begin(), frame.entry_sleep.end());
    }
  } else {
    // Crash/restart: not a shared-memory operation, so the commutation
    // bookkeeping does not extend across it — start this node with an empty
    // sleep set (sound: strictly less pruning).  Continuing the previously
    // granted process after an unrelated fault is still free.
    frame.prev_grant = parent->prev_grant;
    frame.preemptions_before = parent->preemptions_before;
  }
  return frame;
}

/// Accounts the branches the filters cut at a freshly materialized node
/// (all filters are functions of the frame alone, so counting once at
/// creation is exact).  Returns true iff a *budget* filter (preemption or
/// fault) cut anything — the fingerprint cache treats that as incomplete
/// coverage of the node's subtree.  Sleep-set prunes do NOT count: POR
/// pruning is soundness-preserving, so a sleep-pruned subtree is still
/// fully covered by proxy.
bool account_frame(const Frame& frame, const PassState& pass,
                   UnitResult& unit) {
  bool cut_any = false;
  for (const int pid : frame.runnable) {
    if (pass.use_por && contains(frame.entry_sleep, pid)) {
      ++unit.stats.sleep_set_prunes;
      continue;
    }
    if (pass.budget >= 0 &&
        frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
      ++unit.stats.preemption_prunes;
      unit.budget_limited = true;
      cut_any = true;
    }
  }
  // Note: this must also count at fault_budget == 0 (where every fault
  // choice is cut) — the iterative sweep keys "deepen the fault budget?"
  // off fault_limited.
  const bool faults_enabled =
      pass.explore_crashes || pass.explore_restarts || pass.explore_sc;
  if (faults_enabled && frame.faults_before >= pass.fault_budget) {
    std::uint64_t cut = 0;
    if (pass.explore_crashes) cut += frame.runnable.size();
    for (const int pid : frame.runnable) {
      if (pass.explore_restarts && (frame.restartable & pid_bit(pid)) != 0) {
        ++cut;
      }
      if (pass.explore_sc && (frame.sc_ready & pid_bit(pid)) != 0 &&
          (frame.sc_failed_before & pid_bit(pid)) == 0) {
        ++cut;
      }
    }
    if (cut > 0) {
      unit.stats.fault_prunes += cut;
      unit.fault_limited = true;
      cut_any = true;
    }
  }
  return cut_any;
}

/// Marks every open frame's coverage accumulator dirty.  Called whenever
/// the current run hits something that leaves subtree coverage incomplete —
/// a budget/fault cut, a depth truncation, or a violation — because under
/// DFS all execution happens inside every open frame's subtree, so the
/// event taints all of them.  Frames pushed later (after the event) start
/// clean again: the event is not in *their* subtree.
void mark_path_dirty(PassState& pass) {
  for (Frame& frame : pass.frames) frame.fp_dirty = true;
}

/// Computes the visited-state cache key for a freshly materialized frame:
/// a 128-bit hash over the system's semantic fingerprint plus every piece
/// of scheduler-visible env state that influences future exploration from
/// this node (virtual clock, per-pid step counts, parked/pending ops,
/// restartability, SC arming).  Budget positions (preemptions_before,
/// faults_before, prev_grant) are deliberately EXCLUDED — a state first
/// reached under a tight budget and revisited with slack is the same
/// state, and cross-budget hits are where the cache pays.  The sleep set
/// IS included: two visits with different sleep sets cover different
/// subtrees, so conflating them would under-explore.
///
/// Returns false (frame.fp_valid stays false) when the system opts out via
/// the empty default fingerprint — without semantic state the env-only key
/// would alias distinct states.
bool compute_fp_key(SystemInstance& instance, const sim::SimEnv& env,
                    Frame& frame) {
  const std::string fp = instance.fingerprint(env);
  if (fp.empty()) return false;
  FpHash hash;
  hash.str(fp);
  hash.u64(static_cast<std::uint64_t>(env.virtual_now()));
  const int n = env.process_count();
  hash.u64(static_cast<std::uint64_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    const bool parked = env.is_parked(pid);
    hash.byte(parked ? 1 : 0);
    hash.u64(env.steps_of(pid));
    if (parked) {
      const sim::OpDesc& op = frame.pending[static_cast<std::size_t>(pid)];
      hash.str(op.object);
      hash.str(op.op);
      hash.u64(static_cast<std::uint64_t>(op.arg0));
      hash.u64(static_cast<std::uint64_t>(op.arg1));
    }
  }
  hash.u64(frame.restartable);
  hash.u64(frame.sc_ready);
  hash.u64(frame.sc_failed_before);
  hash.u64(static_cast<std::uint64_t>(frame.entry_sleep.size()));
  for (const int pid : frame.entry_sleep) {
    hash.u64(static_cast<std::uint64_t>(pid));
  }
  frame.fp_lo = hash.h1;
  frame.fp_hi = hash.h2;
  frame.fp_valid = true;
  return true;
}

/// Backtracks to the deepest node above the subtree floor with an
/// unexplored sibling; returns false when the whole space (at this budget
/// pair, within this subtree) is done.  A frame popped here has finished
/// its whole subtree segment within this unit, so its coverage partial
/// {key, dirty} is emitted before the frame recycles into the arena.
bool advance(PassState& pass, UnitResult& unit, Scratch& scratch) {
  auto& frames = pass.frames;
  while (frames.size() > pass.floor) {
    Frame& frame = frames.back();
    frame.done.push_back(frame.chosen);
    frame.chosen = kNoChoice;
    const int next = select_choice(frame, pass);
    if (next != kNoChoice) {
      frame.chosen = next;
      return true;
    }
    if (frame.fp_valid) {
      unit.fp_partials.push_back({frame.fp_lo, frame.fp_hi, frame.fp_dirty});
    }
    scratch.spare.push_back(std::move(frames.back()));
    frames.pop_back();
  }
  return false;
}

/// Emits coverage partials for the frames still open when a unit drains
/// normally (the below-floor prefix frames advance() never pops).  Their
/// dirty bits carry whatever this unit's segment of the subtree saw; the
/// per-key OR across all of a pass's units reassembles total subtree dirt
/// no matter how steal splits or shard cuts divided the work.
void emit_open_frames(const PassState& pass, UnitResult& unit) {
  for (const Frame& frame : pass.frames) {
    if (frame.fp_valid) {
      unit.fp_partials.push_back({frame.fp_lo, frame.fp_hi, frame.fp_dirty});
    }
  }
}

/// audit == false resolves through BSS_AUDIT (force-on only: the variable
/// can switch the audit layer on under an existing binary — how CI audits
/// the whole suite — but never disable an explicit request).
bool resolve_audit(const ExploreOptions& options) {
  if (options.audit) return true;
  static const bool env_audit = [] {
    const char* raw = std::getenv("BSS_AUDIT");
    return raw != nullptr && raw[0] != '\0' &&
           !(raw[0] == '0' && raw[1] == '\0');
  }();
  return env_audit;
}

/// fingerprint_prune == false resolves through BSS_EXPLORE_FP (force-on
/// only, the BSS_AUDIT pattern: the variable can switch pruning on under
/// an existing binary — how CI sweeps the suite with the cache engaged —
/// but never disable an explicit request).
bool resolve_fingerprint_prune(const ExploreOptions& options) {
  if (options.fingerprint_prune) return true;
  // Read per campaign (not latched like BSS_AUDIT): one getenv per
  // explore() call is free next to any pass, and it keeps the lever usable
  // from a single process that toggles it between campaigns.
  const char* raw = std::getenv("BSS_EXPLORE_FP");
  return raw != nullptr && raw[0] != '\0' &&
         !(raw[0] == '0' && raw[1] == '\0');
}

/// Worker-count-independent schedule sampling for the commutation
/// cross-check: FNV-1a over the canonical decision tape, so the same
/// schedules are selected no matter how the pass was sharded or merged.
bool commute_sampled(const std::vector<int>& tape, std::uint32_t sample) {
  if (sample == 0) return false;
  if (sample == 1) return true;
  std::uint64_t hash = 1469598103934665603ULL;
  for (const int decision : tape) {
    hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(decision));
    hash *= 1099511628211ULL;
  }
  return hash % sample == 0;
}

bool any_parked(const sim::SimEnv& env) {
  for (int pid = 0; pid < env.process_count(); ++pid) {
    if (env.is_parked(pid)) return true;
  }
  return false;
}

struct RunOutcome {
  bool pruned = false;
  bool truncated = false;
  bool sharded = false;  ///< run cut at shard_at decisions; subtree emitted
  std::optional<std::string> violation;
  std::vector<int> decisions;
};

/// Executes one run: replays the frame-stack prefix, then extends it one
/// decision at a time until the run completes, is pruned, or — for the job
/// enumerator, `shard_at > 0` — reaches `shard_at` decisions, at which
/// point the run is abandoned and the frame stack is the subtree job.
///
/// Frame-creation accounting (prune counters, budget/fault-limited flags)
/// commits to `unit` immediately: the serial run that first descends a path
/// accounts its frames, and for a sharded run that is exactly the job's
/// unit.  Execution deltas (transitions, faults, fault points) are buffered
/// and committed only when the run actually finishes — a sharded run's
/// prefix execution is re-run (and re-counted) by the worker, exactly as
/// every serial run re-executes its prefix.
RunOutcome run_one(const ExplorableSystem& system, const ExploreOptions& opts,
                   PassState& pass, UnitResult& unit, std::size_t shard_at,
                   const ObsCtx& octx, Scratch& scratch) {
  const obs::ScopedPhase step_scope(octx.profiler, obs::Phase::kStep);
  RunOutcome outcome;
  std::uint64_t run_transitions = 0;
  std::uint64_t run_timer_grants = 0;
  std::uint64_t run_faults = 0;
  std::vector<FaultPoint>& run_fault_points = scratch.fault_points;
  run_fault_points.clear();
  std::optional<audit::Auditor> auditor;
  if (opts.audit) auditor.emplace();
  // Execution deltas — audit counters included — buffer here and commit
  // only when the run actually finishes; a sharded run's deltas are dropped
  // and re-counted by the worker, keeping parallel results byte-identical.
  const auto commit = [&] {
    unit.stats.transitions += run_transitions;
    unit.stats.timer_grants += run_timer_grants;
    unit.stats.faults_injected += run_faults;
    unit.fault_points.insert(run_fault_points.begin(), run_fault_points.end());
    if (auditor.has_value()) {
      unit.audit.windows += auditor->windows();
      unit.audit.accesses += auditor->accesses();
      unit.audit.ledger_violations += auditor->violation_count();
    }
  };
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = opts.record_trace;
  sim::SimEnv env(sim_options);
  instance->populate(env);
  expects(env.process_count() <= 64,
          "the fault-aware explorer supports at most 64 processes");
  if (auditor.has_value()) env.set_access_observer(&*auditor);
  env.start();

  std::vector<int>& actions = scratch.actions;
  actions.clear();
  std::size_t depth = 0;
  std::uint64_t granted = 0;
  bool truncated = false;
  for (;;) {
    fill_parked(env, scratch.runnable);
    if (scratch.runnable.empty()) break;
    if (granted >= opts.max_depth) {
      truncated = true;
      break;
    }
    if (shard_at > 0 && depth == shard_at) {
      // Enumerator cut: the frame stack (every `chosen` set) IS the job.
      // The buffered execution deltas are dropped — the worker replays this
      // prefix and counts them, exactly as the serial run would have.
      env.finish();
      outcome.sharded = true;
      return outcome;
    }

    int choice = kNoChoice;
    if (depth < pass.frames.size()) {
      // Prefix replay: the factory is deterministic, so the runnable set
      // must match what the previous run recorded here.
      const Frame& frame = pass.frames[depth];
      if (frame.runnable != scratch.runnable) {
        throw std::logic_error(
            "schedule exploration diverged on prefix replay: the system "
            "factory is nondeterministic");
      }
      choice = frame.chosen;
    } else {
      const Frame* parent = depth > 0 ? &pass.frames[depth - 1] : nullptr;
      Frame frame = make_frame(env, scratch, pass, parent);
      if (pass.fp_prune && compute_fp_key(*instance, env, frame) &&
          pass.fp_cache != nullptr &&
          pass.fp_cache->count({frame.fp_lo, frame.fp_hi}) != 0) {
        // Visited-state hit against the frozen cache: an earlier pass
        // covered this node's full unbounded subtree clean, so nothing
        // below it can change stats, coverage, or violations.  The frame
        // is never pushed (its subtree is skipped wholesale) and its
        // siblings-at-this-node accounting never runs — matching what the
        // serial pruned explorer does, so parallel stays byte-identical.
        ++unit.stats.fingerprint_prunes;
        env.finish();
        commit();
        if (octx.shard != nullptr) {
          ++octx.shard->counter("explore.fingerprint_prunes");
          ++octx.shard->counter("explore.pruned_runs");
        }
        outcome.pruned = true;
        return outcome;
      }
      const bool cut = account_frame(frame, pass, unit);
      if (pass.fp_prune && cut) {
        // A budget/fault filter cut siblings here: this node's subtree is
        // incompletely covered, which taints it and every open ancestor.
        mark_path_dirty(pass);
        frame.fp_dirty = true;
      }
      choice = select_choice(frame, pass);
      if (choice == kNoChoice) {
        env.finish();
        commit();
        if (octx.shard != nullptr) ++octx.shard->counter("explore.pruned_runs");
        outcome.pruned = true;  // prune kinds were accounted above
        return outcome;
      }
      frame.chosen = choice;
      pass.frames.push_back(std::move(frame));
    }
    ++depth;

    const Action action = decode_action(choice);
    if (action.kind != ActionKind::kGrant) {
      ++run_faults;
      run_fault_points.emplace_back(choice, env.steps_of(action.pid));
    }
    switch (action.kind) {
      case ActionKind::kGrant:
        if (env.pending_of(action.pid).op == "timer") ++run_timer_grants;
        env.step_process(action.pid);
        ++granted;
        ++run_transitions;
        break;
      case ActionKind::kScFailure:
        env.inject_sc_failure(action.pid);
        env.step_process(action.pid);
        ++granted;
        ++run_transitions;
        break;
      case ActionKind::kCrash:
        env.kill_process(action.pid);
        break;
      case ActionKind::kRestart:
        env.restart_process(action.pid);
        break;
    }
    actions.push_back(choice);
  }
  env.finish();
  commit();

  ++unit.stats.schedules;
  unit.stats.max_depth_seen = std::max(unit.stats.max_depth_seen, granted);
  if (octx.shard != nullptr) {
    ++octx.shard->counter("explore.schedules");
    octx.shard->counter("explore.transitions") += run_transitions;
    octx.shard->counter("explore.timer_grants") += run_timer_grants;
    octx.shard->counter("explore.faults_injected") += run_faults;
    octx.shard->gauge_max("explore.max_depth_seen", granted);
    octx.shard->histogram("explore.schedule_depth", depth_bounds())
        .observe(granted);
  }
  if (truncated) {
    ++unit.stats.truncated;
    if (octx.shard != nullptr) ++octx.shard->counter("explore.truncated");
    outcome.truncated = true;
    // The depth valve cut this run short: everything on the path is
    // incompletely covered.
    if (pass.fp_prune) mark_path_dirty(pass);
    return outcome;
  }
  const sim::RunReport report = env.snapshot_report();
  outcome.violation = instance->check(env, report);
  if (!outcome.violation.has_value() && auditor.has_value() &&
      !auditor->clean()) {
    // Ledger / footprint violations become ordinary counterexamples (so
    // they minimize and serialize like property violations), but only when
    // the property check is clean — real violations take precedence.
    outcome.violation = auditor->summary();
    for (const auto& violation : auditor->violations()) {
      unit.audit.note(violation.to_string());
    }
  }
  if (outcome.violation.has_value()) {
    // A violating path must never enter the cache clean: pruning it in a
    // later pass would suppress re-finding the violation.
    if (pass.fp_prune) mark_path_dirty(pass);
    outcome.decisions = std::move(actions);
  } else if (auditor.has_value() &&
             commute_sampled(actions, opts.audit_commute_sample)) {
    // Differential cross-check of the POR commutation oracle: replay this
    // schedule with adjacent independent operations swapped; any deviation
    // in the final state refutes ops_commute (and with it the sleep sets).
    const obs::ScopedPhase audit_scope(octx.profiler, obs::Phase::kAudit);
    const audit::CommuteCheckReport cross = audit::cross_check_commutation(
        system, actions, [](const sim::OpDesc& a, const sim::OpDesc& b) {
          return ops_commute(a, b);
        });
    ++unit.audit.schedules_cross_checked;
    unit.audit.pairs_considered += cross.pairs_considered;
    unit.audit.swaps_replayed += cross.swaps_replayed;
    unit.audit.commute_mismatches += cross.mismatches.size();
    for (const auto& mismatch : cross.mismatches) {
      unit.audit.note("commute mismatch: " + mismatch.detail);
    }
    if (octx.shard != nullptr) {
      ++octx.shard->counter("audit.schedules_cross_checked");
      octx.shard->counter("audit.swaps_replayed") += cross.swaps_replayed;
    }
    if (octx.sink != nullptr && octx.sink->events_enabled()) {
      obs::Event event;
      event.kind = "audit.cross_check";
      event.step = unit.audit.schedules_cross_checked;
      event.worker = octx.worker;
      event.fields.emplace_back("pairs",
                                std::to_string(cross.pairs_considered));
      event.fields.emplace_back("swaps", std::to_string(cross.swaps_replayed));
      event.fields.emplace_back("mismatches",
                                std::to_string(cross.mismatches.size()));
      octx.sink->emit(std::move(event));
    }
  }
  return outcome;
}

/// True iff `decision` can be applied to the current state: the pid is
/// parked, restarts need a hook, spurious SC needs a pending SC.
bool applicable(const sim::SimEnv& env, int decision) {
  const Action action = decode_action(decision);
  if (action.pid < 0 || action.pid >= env.process_count()) return false;
  if (!env.is_parked(action.pid)) return false;
  switch (action.kind) {
    case ActionKind::kGrant:
    case ActionKind::kCrash:
      return true;
    case ActionKind::kRestart:
      return env.restart_supported(action.pid);
    case ActionKind::kScFailure:
      return env.pending_of(action.pid).op == "sc";
  }
  return false;
}

/// Replays `tape` — grants and faults — skipping inapplicable entries and
/// completing round-robin past its end (each counted as a divergence, the
/// ReplayScheduler contract), then re-checks the property.
struct TapeResult {
  bool reproduced = false;
  std::string violation;
  std::vector<int> canonical;
  std::uint64_t divergences = 0;
  bool truncated = false;
  sim::RunReport report;
};

TapeResult run_tape(const ExplorableSystem& system, const ExploreOptions& opts,
                    const std::vector<int>& tape,
                    obs::ObsSink* env_sink = nullptr) {
  const obs::ScopedPhase replay_scope(
      opts.telemetry != nullptr ? opts.telemetry->profiler() : nullptr,
      obs::Phase::kReplay);
  TapeResult result;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = true;  // checks may read the trace on replay
  sim::SimEnv env(sim_options);
  instance->populate(env);
  // Fault-injection events (sim.crash / sim.restart / sim.sc_failure) are
  // attached only on explicit replays: exploration re-runs the factory
  // thousands of times and would drown the bounded event log.
  if (env_sink != nullptr) env.set_obs_sink(env_sink);
  const int n = env.process_count();
  std::optional<audit::Auditor> auditor;
  if (opts.audit) {
    // Replays audit too, so audit-found counterexamples reproduce (and
    // minimize) through the same machinery as property violations.
    auditor.emplace();
    env.set_access_observer(&*auditor);
  }
  env.start();

  std::size_t next = 0;
  int rr_cursor = 0;
  std::uint64_t granted = 0;
  for (;;) {
    if (!any_parked(env)) break;
    if (granted >= opts.max_depth) {
      result.truncated = true;
      break;
    }
    int choice = kNoChoice;
    while (next < tape.size()) {
      const int candidate = tape[next++];
      if (applicable(env, candidate)) {
        choice = candidate;
        break;
      }
      ++result.divergences;
    }
    if (choice == kNoChoice) {
      for (int i = 0; i < n; ++i) {
        const int pid = (rr_cursor + i) % n;
        if (env.is_parked(pid)) {
          choice = pid;
          rr_cursor = pid + 1;
          break;
        }
      }
      ++result.divergences;
    }
    const Action action = decode_action(choice);
    switch (action.kind) {
      case ActionKind::kGrant:
        env.step_process(action.pid);
        ++granted;
        break;
      case ActionKind::kScFailure:
        env.inject_sc_failure(action.pid);
        env.step_process(action.pid);
        ++granted;
        break;
      case ActionKind::kCrash:
        env.kill_process(action.pid);
        break;
      case ActionKind::kRestart:
        env.restart_process(action.pid);
        break;
    }
    result.canonical.push_back(choice);
  }
  env.finish();

  result.report = env.snapshot_report();
  result.report.step_limit_hit = result.truncated;
  if (result.truncated) return result;
  const auto violation = instance->check(env, result.report);
  if (violation.has_value()) {
    result.reproduced = true;
    result.violation = *violation;
  } else if (auditor.has_value() && !auditor->clean()) {
    result.reproduced = true;
    result.violation = auditor->summary();
  }
  return result;
}

// ------------------------------------------------- parallel pass machinery

/// Per-pass configuration shared by the enumerator and every worker.
struct PassConfig {
  PassState base;          ///< budgets + filter flags; frames empty, floor 0
  std::size_t shard_at = 0;  ///< 0 = fully inline (serial) pass
  int jobs = 1;
  std::size_t violations_so_far = 0;  ///< result.violations.size() at entry
};

/// What the DFS-ordered merge concluded about a pass.
struct MergeOutcome {
  bool stopped = false;        ///< stop policy met (serial `stopped`)
  bool cap_hit = false;        ///< max_schedules fired (serial `cap_hit`)
  bool budget_limited = false;
  bool fault_limited = false;
};

void fold_unit(UnitResult& into, const UnitResult& from) {
  into.stats.merge_from(from.stats);
  into.audit.merge_from(from.audit);
  into.fault_points.insert(from.fault_points.begin(), from.fault_points.end());
  into.budget_limited |= from.budget_limited;
  into.fault_limited |= from.fault_limited;
  into.fp_partials.insert(into.fp_partials.end(), from.fp_partials.begin(),
                          from.fp_partials.end());
}

/// Records a violation plus a checkpoint of the unit's cumulative state, so
/// the merge can cut this unit exactly at any of its violations.
void record_violation(UnitResult& unit, Counterexample cex) {
  unit.violations.push_back(std::move(cex));
  UnitCheckpoint cp;
  cp.stats = unit.stats;
  cp.audit = unit.audit;
  cp.fault_points = unit.fault_points;
  cp.budget_limited = unit.budget_limited;
  cp.fault_limited = unit.fault_limited;
  unit.checkpoints.push_back(std::move(cp));
}

Counterexample build_counterexample(const ExplorableSystem& system,
                                    const ExploreOptions& opts,
                                    RunOutcome&& outcome, ExploreStats& stats,
                                    const ObsCtx& octx) {
  Counterexample cex;
  cex.system = system.name();
  cex.processes = system.process_count();
  cex.violation = std::move(*outcome.violation);
  cex.decisions = std::move(outcome.decisions);
  cex.shrunk_from = cex.decisions.size();
  const std::uint64_t shrink_before = stats.shrink_runs;
  if (opts.minimize) {
    cex = minimize_counterexample(system, std::move(cex), opts, &stats);
  }
  if (octx.shard != nullptr) {
    ++octx.shard->counter("explore.violations_found");
    octx.shard->counter("shrink.replays") += stats.shrink_runs - shrink_before;
  }
  return cex;
}

/// Explores one subtree to completion on the calling thread.  `pass.frames`
/// holds the job prefix (floor set), or is empty for a whole serial pass.
/// `violation_quota` is the most violations the DFS-ordered merge could
/// ever take from one unit, so exceeding it stops the worker early.
void explore_subtree(const ExplorableSystem& system,
                     const ExploreOptions& opts, PassState pass,
                     SharedBudget& budget, std::size_t violation_quota,
                     UnitResult& unit, const ObsCtx& octx) {
  Scratch scratch;
  for (;;) {
    if (budget.exhausted()) {
      unit.cap_hit = true;
      break;
    }
    RunOutcome outcome = run_one(system, opts, pass, unit, 0, octx, scratch);
    if (!outcome.pruned) {
      budget.schedules.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome.violation.has_value()) {
      record_violation(
          unit, build_counterexample(system, opts, std::move(outcome),
                                     unit.stats, octx));
      if (opts.stop_at_first_violation ||
          unit.violations.size() >= violation_quota) {
        unit.stopped = true;
        break;
      }
    }
    if (!advance(pass, unit, scratch)) {
      // Normal drain: the below-floor prefix frames never pop, so their
      // coverage partials are emitted here.  The cap_hit/stopped breaks
      // above deliberately emit nothing — both end the campaign at the
      // merge, and explore() discards all partials of an ended pass.
      emit_open_frames(pass, unit);
      break;
    }
  }
}

/// Runs one (budget pair) pass: a serial enumerator walks the DFS to
/// `cfg.shard_at` decisions, emitting subtree jobs and executing shallow
/// runs inline (consecutive inline runs coalesce into one unit; a job
/// breaks the chain, preserving DFS order); then a worker pool drains the
/// jobs.  A mutex-guarded completion frontier confirms deterministic stops
/// as early as possible and raises a barrier so jobs past it are skipped
/// (the merge never reads them).
std::vector<PassUnit> run_pass(const ExplorableSystem& system,
                               const ExploreOptions& opts,
                               const PassConfig& cfg, SharedBudget& budget) {
  std::vector<PassUnit> units;
  const auto inline_unit = [&]() -> UnitResult& {
    if (units.empty() || units.back().job.has_value()) {
      units.emplace_back();
    }
    return units.back().result;
  };
  const std::size_t quota =
      opts.max_violations > cfg.violations_so_far
          ? opts.max_violations - cfg.violations_so_far
          : 1;

  obs::ObsSink* sink = opts.telemetry;
  const ObsCtx coordinator = make_obs_ctx(sink, obs::Event::kCoordinator);
  const bool spans = sink != nullptr && sink->timeline_enabled();
  const std::uint64_t enumerate_begin = spans ? sink->now_ns() : 0;

  PassState pass = cfg.base;
  Scratch arena;
  // Coverage partials the enumerator's advance() emits as it pops frames.
  // Which unit carries a partial is irrelevant to the per-key aggregation
  // (commutative OR), so they collect here and fold into the last inline
  // unit once the walk ends.
  UnitResult drained;
  std::size_t inline_recorded = 0;
  for (;;) {
    if (budget.exhausted()) {
      inline_unit().cap_hit = true;
      break;
    }
    UnitResult fresh;
    RunOutcome outcome =
        run_one(system, opts, pass, fresh, cfg.shard_at, coordinator, arena);
    if (outcome.sharded) {
      PassUnit u;
      u.job = SubtreeJob{pass.frames};  // snapshot; the enumerator walks on
      u.result = std::move(fresh);      // frame accounting for the prefix
      units.push_back(std::move(u));
      if (!advance(pass, drained, arena)) break;
      continue;
    }
    UnitResult& unit = inline_unit();
    fold_unit(unit, fresh);
    if (!outcome.pruned) {
      budget.schedules.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome.violation.has_value()) {
      record_violation(
          unit, build_counterexample(system, opts, std::move(outcome),
                                     unit.stats, coordinator));
      ++inline_recorded;
      // Units before this one may already satisfy the stop policy — the
      // merge decides exactly.  But once inline violations alone satisfy
      // it, enumerating further units could only produce discarded work.
      if (opts.stop_at_first_violation ||
          cfg.violations_so_far + inline_recorded >= opts.max_violations) {
        unit.stopped = true;
        break;
      }
    }
    if (!advance(pass, drained, arena)) break;
  }
  if (!drained.fp_partials.empty()) fold_unit(inline_unit(), drained);

  if (spans) {
    obs::Span span;
    span.name = "enumerate";
    span.track = obs::Timeline::kCoordinatorTrack;
    span.begin_ns = enumerate_begin;
    span.end_ns = sink->now_ns();
    span.args.emplace_back("units", std::to_string(units.size()));
    sink->record_span(std::move(span));
  }

  std::vector<std::size_t> job_indices;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].job.has_value()) job_indices.push_back(i);
  }
  if (job_indices.empty()) return units;

  // Completion frontier: as the maximal complete unit prefix grows, replay
  // the merge's stop rule over it; on a confirmed stop at unit k, every job
  // with index > k is skippable — the merge will never reach it.
  std::mutex mu;
  std::vector<char> complete(units.size(), 0);
  std::size_t frontier = 0;
  std::size_t frontier_violations = cfg.violations_so_far;
  std::atomic<std::size_t> barrier{units.size()};
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;

  const auto walk_frontier = [&] {  // mu held
    while (frontier < units.size() && complete[frontier] != 0) {
      const UnitResult& unit = units[frontier].result;
      bool stops = unit.cap_hit;
      if (!unit.skipped) {
        for (std::size_t i = 0; i < unit.violations.size() && !stops; ++i) {
          ++frontier_violations;
          if (opts.stop_at_first_violation ||
              frontier_violations >= opts.max_violations) {
            stops = true;
          }
        }
      }
      if (stops) {
        std::size_t cur = barrier.load(std::memory_order_relaxed);
        while (cur > frontier &&
               !barrier.compare_exchange_weak(cur, frontier,
                                              std::memory_order_release)) {
        }
      }
      ++frontier;
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (!units[i].job.has_value()) complete[i] = 1;
    }
    walk_frontier();
  }

  const auto worker = [&](int worker_index) {
    try {
      const ObsCtx octx = make_obs_ctx(sink, worker_index);
      const bool events = sink != nullptr && sink->events_enabled();
      std::uint64_t claims = 0;
      if (events) {
        obs::Event event;
        event.kind = "worker.start";
        event.worker = worker_index;
        sink->emit(std::move(event));
      }
      for (;;) {
        const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= job_indices.size()) break;
        const std::size_t u = job_indices[j];
        const bool past_barrier = u > barrier.load(std::memory_order_acquire);
        if (events) {
          obs::Event event;
          event.kind = "worker.claim";
          event.step = claims;
          event.worker = worker_index;
          event.fields.emplace_back("unit", std::to_string(u));
          event.fields.emplace_back("skipped", past_barrier ? "1" : "0");
          sink->emit(std::move(event));
        }
        ++claims;
        if (past_barrier) {
          units[u].result.skipped = true;
        } else {
          const std::uint64_t job_begin = spans ? sink->now_ns() : 0;
          PassState sub = cfg.base;
          sub.frames = std::move(units[u].job->prefix);
          sub.floor = sub.frames.size();
          explore_subtree(system, opts, std::move(sub), budget, quota,
                          units[u].result, octx);
          if (spans) {
            obs::Span span;
            span.name = "job";
            span.track = worker_index;
            span.begin_ns = job_begin;
            span.end_ns = sink->now_ns();
            span.args.emplace_back("unit", std::to_string(u));
            span.args.emplace_back(
                "schedules",
                std::to_string(units[u].result.stats.schedules));
            sink->record_span(std::move(span));
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        complete[u] = 1;
        walk_frontier();
      }
      if (events) {
        obs::Event event;
        event.kind = "worker.finish";
        event.step = claims;
        event.worker = worker_index;
        sink->emit(std::move(event));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(cfg.jobs, 1)),
                            job_indices.size());
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i) {
    threads.emplace_back(worker, static_cast<int>(i));
  }
  worker(0);  // the calling thread is worker 0
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
  return units;
}

/// Folds ONE unit into `result` under the serial explorer's stop rule:
/// the first violation at which the serial loop would have stopped cuts the
/// fold at that unit's checkpoint, discarding everything the worker explored
/// speculatively past the stop point.  Returns true when the merge ends AT
/// this unit (violation cut or schedule cap) — later units must not be
/// folded.  With a non-null `sink` the fold emits the deterministic
/// merge-time events (the real merge); the checkpoint snapshot fold passes
/// nullptr and reproduces the exact same fold silently, on copies.
bool merge_one(UnitResult& unit, const ExploreOptions& opts,
               ExploreResult& result, std::set<FaultPoint>& fault_points,
               MergeOutcome& out, obs::ObsSink* sink) {
  const bool events = sink != nullptr && sink->events_enabled();
  // Violation and fault-point-first-coverage events are emitted HERE, at
  // merge time, not where workers found them: the merge runs in DFS order
  // on one thread, so the event stream (kind, step, fields) is identical
  // for every worker count — only the timing channel varies.
  const auto note_violation = [&](Counterexample&& cex) {
    if (events) {
      obs::Event event;
      event.kind = "violation.found";
      event.step = result.violations.size();
      event.fields.emplace_back("violation", cex.violation);
      event.fields.emplace_back("decisions",
                                std::to_string(cex.decisions.size()));
      event.fields.emplace_back("faults", std::to_string(cex.fault_count()));
      event.fields.emplace_back("shrunk_from",
                                std::to_string(cex.shrunk_from));
      sink->emit(std::move(event));
    }
    result.violations.push_back(std::move(cex));
  };
  const auto cover_fault_points = [&](const std::set<FaultPoint>& points) {
    for (const FaultPoint& point : points) {
      if (!fault_points.insert(point).second) continue;
      if (events) {
        obs::Event event;
        event.kind = "coverage.fault_point";
        event.step = fault_points.size() - 1;
        event.fields.emplace_back("action", action_token(point.first));
        event.fields.emplace_back("victim_steps",
                                  std::to_string(point.second));
        sink->emit(std::move(event));
      }
    }
  };
  std::optional<std::size_t> cut;
  for (std::size_t i = 0; i < unit.violations.size(); ++i) {
    if (opts.stop_at_first_violation ||
        result.violations.size() + i + 1 >= opts.max_violations) {
      cut = i;
      break;
    }
  }
  if (cut.has_value()) {
    const UnitCheckpoint& cp = unit.checkpoints[*cut];
    result.stats.merge_from(cp.stats);
    result.audit.merge_from(cp.audit);
    cover_fault_points(cp.fault_points);
    out.budget_limited |= cp.budget_limited;
    out.fault_limited |= cp.fault_limited;
    for (std::size_t i = 0; i <= *cut; ++i) {
      note_violation(std::move(unit.violations[i]));
    }
    out.stopped = true;
    return true;
  }
  result.stats.merge_from(unit.stats);
  result.audit.merge_from(unit.audit);
  cover_fault_points(unit.fault_points);
  out.budget_limited |= unit.budget_limited;
  out.fault_limited |= unit.fault_limited;
  for (auto& cex : unit.violations) {
    note_violation(std::move(cex));
  }
  if (unit.cap_hit) {
    out.cap_hit = true;
    return true;
  }
  return false;
}

/// Folds a pass's units into `result` in DFS order, reproducing the serial
/// explorer's stop rule exactly via merge_one.
MergeOutcome merge_pass(std::vector<PassUnit>& units,
                        const ExploreOptions& opts, ExploreResult& result,
                        std::set<FaultPoint>& fault_points) {
  MergeOutcome out;
  for (auto& pass_unit : units) {
    expects(!pass_unit.result.skipped,
            "deterministic merge reached a subtree skipped by the barrier");
    if (merge_one(pass_unit.result, opts, result, fault_points, out,
                  opts.telemetry)) {
      break;
    }
  }
  return out;
}

// ------------------------------------------------ work-stealing pass engine

/// One unit of the stealing frontier: a contiguous segment of the pass's
/// DFS, owned by at most one worker at a time.  `frames`/`floor`/`result`
/// are the owner's last *published* snapshot (claim, split and checkpoint
/// boundaries); between publishes the owner works on private copies, so a
/// checkpoint taken from the snapshots simply re-explores anything past
/// them on resume — sound, because unit exploration is a pure function of
/// the frames.
struct StealUnit {
  enum class Status { kPending, kRunning, kComplete };
  std::vector<Frame> frames;
  std::size_t floor = 0;
  UnitResult result;
  Status status = Status::kPending;
  bool abort = false;  ///< deterministic stop confirmed before this unit ran
  bool stolen = false;  ///< unit was split off a victim (worker-beat steals)
};

/// Shared state of one stealing pass.  The std::list gives iterator-stable
/// DFS order: a split inserts the thief unit right after its victim, so at
/// every instant the list order IS the serial DFS order — which is what the
/// frontier walk, the checkpoint fold and the final merge all rely on.
struct StealPool {
  std::mutex mu;
  std::condition_variable cv;
  std::list<StealUnit> units;
  std::size_t idle = 0;     ///< workers blocked waiting for a pending unit
  std::size_t running = 0;  ///< units currently owned by a worker
  bool stop_confirmed = false;
  bool halt = false;  ///< halt_after_checkpoints fired (SIGKILL stand-in)
  bool abort_all = false;
  std::exception_ptr error;
  /// The only hot-path coupling: owners poll this with a relaxed load at
  /// run boundaries and take the lock only when it is set (idle thieves,
  /// a due checkpoint, a confirmed stop, halt, or an error).
  std::atomic<bool> attention{false};
  std::atomic<bool> checkpoint_due{false};
  std::atomic<std::uint64_t> last_checkpoint_at{0};
  std::list<StealUnit>::iterator frontier;  ///< first non-merged-prefix unit
  std::size_t frontier_violations = 0;
};

/// Splits the victim's DFS at its shallowest splittable depth >= floor +
/// steal_depth: the thief takes the *rest of the victim's walk* — the
/// unexplored siblings at depth d plus every backtrack below, down to the
/// victim's old floor — while the victim keeps only its current depth-d
/// subtree (its floor rises to d+1).  Both halves stay contiguous DFS
/// segments with the victim's strictly first, so inserting the thief right
/// after the victim preserves global DFS order; a later, necessarily deeper
/// split inserts between them, which is again the DFS order.
bool try_split(PassState& pass, int steal_depth, StealUnit& thief) {
  const std::size_t base =
      pass.floor + static_cast<std::size_t>(std::max(steal_depth, 0));
  for (std::size_t d = base; d < pass.frames.size(); ++d) {
    Frame probe = pass.frames[d];
    probe.done.push_back(probe.chosen);
    probe.chosen = kNoChoice;
    const int next = select_choice(probe, pass);
    if (next == kNoChoice) continue;
    probe.chosen = next;
    thief.frames.assign(pass.frames.begin(),
                        pass.frames.begin() + static_cast<std::ptrdiff_t>(d));
    thief.frames.push_back(std::move(probe));
    thief.floor = pass.floor;
    thief.stolen = true;
    pass.floor = d + 1;
    return true;
  }
  return false;
}

CheckpointUnit serialize_steal_unit(const StealUnit& unit) {
  CheckpointUnit out;
  out.complete = unit.status == StealUnit::Status::kComplete;
  if (!out.complete) {
    out.frames.reserve(unit.frames.size());
    for (const Frame& frame : unit.frames) {
      CheckpointFrame cf;
      cf.chosen = frame.chosen;
      cf.done = frame.done;
      cf.fp_dirty = frame.fp_dirty;  // key recomputed by the resume replay
      out.frames.push_back(std::move(cf));
    }
    out.floor = unit.floor;
  }
  const UnitResult& r = unit.result;
  out.fp_partials = r.fp_partials;
  out.stats = r.stats;
  out.audit = r.audit;
  out.fault_points.assign(r.fault_points.begin(), r.fault_points.end());
  for (std::size_t i = 0; i < r.violations.size(); ++i) {
    CheckpointViolation v;
    v.cex = r.violations[i];
    const UnitCheckpoint& cp = r.checkpoints[i];
    v.stats = cp.stats;
    v.audit = cp.audit;
    v.fault_points.assign(cp.fault_points.begin(), cp.fault_points.end());
    v.budget_limited = cp.budget_limited;
    v.fault_limited = cp.fault_limited;
    out.violations.push_back(std::move(v));
  }
  out.budget_limited = r.budget_limited;
  out.fault_limited = r.fault_limited;
  out.cap_hit = r.cap_hit;
  out.stopped = r.stopped;
  return out;
}

/// Re-materializes a persisted unit: partial results restore directly; the
/// frame stack replays its decisions on a fresh SimEnv, recomputing the
/// runnable sets, pending operations, bitmasks and sleep sets the artifact
/// deliberately does not store.  The replay doubles as an integrity check —
/// an artifact whose decisions do not apply to the system is rejected here.
StealUnit materialize_steal_unit(const ExplorableSystem& system,
                                 const ExploreOptions& opts,
                                 const PassState& base,
                                 const CheckpointUnit& cu) {
  StealUnit unit;
  UnitResult& r = unit.result;
  r.fp_partials = cu.fp_partials;
  r.stats = cu.stats;
  r.audit = cu.audit;
  r.fault_points.insert(cu.fault_points.begin(), cu.fault_points.end());
  for (const CheckpointViolation& v : cu.violations) {
    r.violations.push_back(v.cex);
    UnitCheckpoint cp;
    cp.stats = v.stats;
    cp.audit = v.audit;
    cp.fault_points.insert(v.fault_points.begin(), v.fault_points.end());
    cp.budget_limited = v.budget_limited;
    cp.fault_limited = v.fault_limited;
    r.checkpoints.push_back(std::move(cp));
  }
  r.budget_limited = cu.budget_limited;
  r.fault_limited = cu.fault_limited;
  r.cap_hit = cu.cap_hit;
  r.stopped = cu.stopped;
  if (cu.complete) {
    unit.status = StealUnit::Status::kComplete;
    return unit;
  }
  unit.floor = static_cast<std::size_t>(cu.floor);

  PassState pass = base;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = false;
  sim::SimEnv env(sim_options);
  instance->populate(env);
  expects(env.process_count() <= 64,
          "the fault-aware explorer supports at most 64 processes");
  env.start();
  Scratch scratch;
  for (const CheckpointFrame& cf : cu.frames) {
    fill_parked(env, scratch.runnable);
    expects(!scratch.runnable.empty(),
            "checkpoint frontier replays past quiescence");
    const Frame* parent = pass.frames.empty() ? nullptr : &pass.frames.back();
    Frame frame = make_frame(env, scratch, pass, parent);
    // No account_frame here: the persisted partial stats already charged
    // this frame when it was first materialized.  The cache key is a pure
    // function of the replayed state, so recomputing it (rather than
    // persisting it) keeps the artifact small and doubles as coverage of
    // the key's determinism; only the dirty accumulator needs restoring.
    if (pass.fp_prune) {
      compute_fp_key(*instance, env, frame);
      frame.fp_dirty = cf.fp_dirty;
    }
    frame.done = cf.done;
    expects(applicable(env, cf.chosen),
            "checkpoint frontier decision is not applicable on replay");
    frame.chosen = cf.chosen;
    const Action action = decode_action(cf.chosen);
    switch (action.kind) {
      case ActionKind::kGrant:
        env.step_process(action.pid);
        break;
      case ActionKind::kScFailure:
        env.inject_sc_failure(action.pid);
        env.step_process(action.pid);
        break;
      case ActionKind::kCrash:
        env.kill_process(action.pid);
        break;
      case ActionKind::kRestart:
        env.restart_process(action.pid);
        break;
    }
    pass.frames.push_back(std::move(frame));
  }
  env.finish();
  expects(unit.floor <= pass.frames.size(),
          "checkpoint frontier floor exceeds its frame stack");
  unit.frames = std::move(pass.frames);
  return unit;
}

/// Checkpoint-writer state threaded through a campaign: `seq` numbering
/// spans passes (and resumes), the pass-position fields are refreshed by
/// explore() before each pass, and `merged`/`covered` point at the result
/// accumulated by the between-pass merges (never mutated while a pass
/// runs, so the writer may read them without coordination).
struct CheckpointCtx {
  std::uint64_t seq = 0;
  std::uint64_t written = 0;   ///< all artifacts this explore() call wrote
  std::uint64_t periodic = 0;  ///< periodic (non-final) artifacts only
  std::uint64_t pass_ordinal = 0;
  std::uint64_t fault_index = 0;
  std::uint64_t preemption_index = 0;
  bool cap_hit = false;
  bool stopped = false;
  bool last_pass_budget_limited = false;
  /// MergeOutcome flags restored from a resumed pass's artifact, pre-seeded
  /// into every snapshot fold of that pass.
  bool restored_budget_limited = false;
  bool restored_fault_limited = false;
  const ExploreResult* merged = nullptr;
  const std::set<FaultPoint>* covered = nullptr;
  /// Visited-state cache state (fingerprint_prune only): the cache frozen
  /// at the start of the current pass, and the coverage partials of units
  /// already folded into `merged` (restored from a resumed artifact, then
  /// extended as checkpoints fold more prefix units).  Both null when
  /// pruning is off.
  const FpCache* fp_cache = nullptr;
  const std::vector<FingerprintPartial>* restored_partials = nullptr;
};

/// Fingerprint-prune hit rate in parts per million of all schedule
/// attempts (prunes / (prunes + completed schedules)).  Integer so the
/// status artifact's deterministic channel never carries a double.
std::uint64_t fp_hit_ppm(std::uint64_t prunes, std::uint64_t schedules) {
  const std::uint64_t attempts = prunes + schedules;
  if (attempts == 0) return 0;
  return prunes * 1'000'000 / attempts;
}

/// Heartbeat state threaded through a campaign (ExploreOptions::status_path
/// or BSS_STATUS): the writer's `seq` spans passes, the pass fields are
/// refreshed by explore() before each pass, and `merged`/`ckpt` point at
/// state owned by explore().  Strictly passive — nothing here may feed back
/// into an exploration decision.
struct StatusCtx {
  obs::StatusWriter writer;
  std::string system;
  std::uint64_t max_schedules = 0;
  std::uint64_t jobs = 0;
  std::uint64_t pass_ordinal = 0;
  const ExploreResult* merged = nullptr;
  const CheckpointCtx* ckpt = nullptr;

  StatusCtx(std::string path, std::uint64_t every_ms)
      : writer(std::move(path), every_ms) {}

  /// Snapshot of the merged-prefix counters (between passes these are the
  /// campaign totals; the steal pass's heartbeat thread overlays its live
  /// view on top of this base).
  obs::Status snapshot(std::string state) const {
    obs::Status s;
    s.producer = "explore()";
    s.system = system;
    s.state = std::move(state);
    s.schedules = merged->stats.schedules;
    s.violations = merged->violations.size();
    s.fingerprint_prunes = merged->stats.fingerprint_prunes;
    s.fingerprint_hit_rate_ppm =
        fp_hit_ppm(s.fingerprint_prunes, s.schedules);
    s.checkpoints = ckpt != nullptr ? ckpt->written : 0;
    s.max_schedules = max_schedules;
    s.passes = pass_ordinal;
    s.jobs = jobs;
    return s;
  }
};

/// Per-worker heartbeat cells, allocated only when a status file is on.
/// Workers publish with relaxed stores; the heartbeat thread reads them
/// approximately — nothing here is part of the deterministic result.
struct WorkerBeat {
  static constexpr int kIdle = 0;
  static constexpr int kRunning = 1;
  static constexpr int kStealing = 2;
  std::atomic<int> state{kIdle};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> schedules{0};
};

const char* beat_state_name(int state) {
  switch (state) {
    case WorkerBeat::kRunning:
      return "running";
    case WorkerBeat::kStealing:
      return "stealing";
    default:
      return "idle";
  }
}

struct StealPassOutput {
  std::vector<PassUnit> units;  ///< DFS order, every unit complete
  bool halted = false;          ///< halt_after_checkpoints fired mid-pass
};

/// Runs one (budget pair) pass on the work-stealing engine.  The frontier
/// is a DFS-ordered list of units; idle workers raise the attention flag
/// and owners split their shallowest splittable frame off for them.  A
/// frontier walk over the complete-unit prefix confirms deterministic stops
/// exactly like the static engine's barrier.  With checkpointing on, the
/// owner that observes a due checkpoint persists the folded prefix plus the
/// outstanding frontier snapshots.  `seeds` (non-null on the resumed pass)
/// re-materializes a persisted frontier instead of starting from the root.
/// `status` (non-null when a heartbeat file is on) gets a dedicated thread
/// that periodically overlays the pool's live counters on the merged-prefix
/// base and writes the bss-status artifact — read-only w.r.t. the pool.
StealPassOutput run_steal_pass(const ExplorableSystem& system,
                               const ExploreOptions& opts,
                               const PassConfig& cfg, SharedBudget& budget,
                               const std::vector<CheckpointUnit>* seeds,
                               CheckpointCtx* ckpt, StatusCtx* status) {
  StealPassOutput output;
  StealPool pool;
  if (seeds != nullptr) {
    for (const CheckpointUnit& cu : *seeds) {
      pool.units.push_back(materialize_steal_unit(system, opts, cfg.base, cu));
    }
    if (pool.units.empty()) return output;
  } else {
    pool.units.emplace_back();  // the root unit: empty frames, floor 0
  }
  pool.frontier = pool.units.begin();
  pool.frontier_violations = cfg.violations_so_far;
  pool.last_checkpoint_at.store(
      budget.schedules.load(std::memory_order_relaxed),
      std::memory_order_relaxed);

  obs::ObsSink* sink = opts.telemetry;
  const bool events = sink != nullptr && sink->events_enabled();
  const bool spans = sink != nullptr && sink->timeline_enabled();
  const std::size_t quota =
      opts.max_violations > cfg.violations_so_far
          ? opts.max_violations - cfg.violations_so_far
          : 1;
  const int steal_depth = std::max(opts.steal_depth, 0);
  const int nworkers = std::max(cfg.jobs, 1);
  const bool status_on = status != nullptr && status->writer.enabled();
  std::unique_ptr<WorkerBeat[]> beats;
  if (status_on) {
    beats = std::make_unique<WorkerBeat[]>(static_cast<std::size_t>(nworkers));
  }

  const auto refresh_attention = [&] {  // pool.mu held
    pool.attention.store(
        pool.idle > 0 ||
            pool.checkpoint_due.load(std::memory_order_relaxed) ||
            pool.stop_confirmed || pool.halt || pool.abort_all,
        std::memory_order_release);
  };

  const auto walk_frontier = [&] {  // pool.mu held
    if (pool.stop_confirmed) return;
    while (pool.frontier != pool.units.end() &&
           pool.frontier->status == StealUnit::Status::kComplete) {
      const UnitResult& unit = pool.frontier->result;
      bool stops = unit.cap_hit;
      if (!unit.skipped) {
        for (std::size_t i = 0; i < unit.violations.size() && !stops; ++i) {
          ++pool.frontier_violations;
          if (opts.stop_at_first_violation ||
              pool.frontier_violations >= opts.max_violations) {
            stops = true;
          }
        }
      }
      ++pool.frontier;
      if (stops) {
        // The merge provably ends at this unit: everything after it is
        // discarded work.  Pending units are skipped outright; running
        // owners are told to abandon theirs.
        pool.stop_confirmed = true;
        for (auto it = pool.frontier; it != pool.units.end(); ++it) {
          if (it->status == StealUnit::Status::kPending) {
            it->status = StealUnit::Status::kComplete;
            it->result = UnitResult{};
            it->result.skipped = true;
            it->frames.clear();
          } else if (it->status == StealUnit::Status::kRunning) {
            it->abort = true;
          }
        }
        refresh_attention();
        pool.cv.notify_all();
        break;
      }
    }
  };

  /// Persists the campaign state (pool.mu held).  The completed-unit prefix
  /// is folded the way merge_pass will fold it — on copies, silently — so
  /// the snapshot is exactly the merged result of a serial campaign that
  /// got this far; the rest of the frontier is serialized as outstanding
  /// work.
  const auto write_checkpoint = [&](const ObsCtx& octx) {
    const obs::ScopedPhase checkpoint_scope(octx.profiler,
                                            obs::Phase::kCheckpointWrite);
    Checkpoint cp;
    cp.seq = ckpt->seq++;
    cp.system = system.name();
    cp.processes = system.process_count();
    cp.options = CheckpointOptions::key_of(opts);
    cp.pass_ordinal = ckpt->pass_ordinal;
    cp.fault_index = ckpt->fault_index;
    cp.preemption_index = ckpt->preemption_index;
    cp.cap_hit = ckpt->cap_hit;
    cp.stopped = ckpt->stopped;
    cp.last_pass_budget_limited = ckpt->last_pass_budget_limited;
    ExploreResult folded;
    folded.stats = ckpt->merged->stats;
    folded.audit = ckpt->merged->audit;
    folded.violations = ckpt->merged->violations;
    std::set<FaultPoint> covered = *ckpt->covered;
    MergeOutcome fold;
    fold.budget_limited = ckpt->restored_budget_limited;
    fold.fault_limited = ckpt->restored_fault_limited;
    if (ckpt->restored_partials != nullptr) {
      cp.fp_partials = *ckpt->restored_partials;
    }
    bool prefix_stopped = false;
    auto it = pool.units.begin();
    while (it != pool.units.end() &&
           it->status == StealUnit::Status::kComplete &&
           !it->result.skipped) {
      UnitResult copy = it->result;
      const bool ends = merge_one(copy, opts, folded, covered, fold, nullptr);
      cp.fp_partials.insert(cp.fp_partials.end(), it->result.fp_partials.begin(),
                            it->result.fp_partials.end());
      ++it;
      if (ends) {
        prefix_stopped = true;
        break;
      }
    }
    cp.stopped |= fold.stopped;
    cp.cap_hit |= fold.cap_hit;
    cp.pass_budget_limited = fold.budget_limited;
    cp.pass_fault_limited = fold.fault_limited;
    folded.stats.fault_points = covered.size();
    cp.stats = folded.stats;
    cp.audit = folded.audit;
    cp.violations = std::move(folded.violations);
    for (const FaultPoint& point : covered) {
      cp.fault_points.emplace_back(point.first, point.second);
    }
    if (!prefix_stopped) {
      for (; it != pool.units.end(); ++it) {
        cp.frontier.push_back(serialize_steal_unit(*it));
      }
    }
    if (ckpt->fp_cache != nullptr) {
      // The frozen cache is what the in-progress pass is pruning against;
      // persisting it verbatim (std::set iteration = sorted) lets the
      // resumed pass reproduce every pruning decision bit-for-bit.
      cp.fp_cache.assign(ckpt->fp_cache->begin(), ckpt->fp_cache->end());
    }
    expects(write_checkpoint_file(opts.checkpoint_path, cp.to_artifact()),
            "failed to write checkpoint artifact: " + opts.checkpoint_path);
    ++ckpt->written;
    ++ckpt->periodic;
    if (status != nullptr) status->writer.note_checkpoint();
    pool.last_checkpoint_at.store(
        budget.schedules.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    if (octx.shard != nullptr) ++octx.shard->counter("explore.checkpoints");
    if (events) {
      obs::Event event;
      event.kind = "worker.checkpoint";
      event.step = cp.seq;
      event.worker = octx.worker;
      event.fields.emplace_back("frontier", std::to_string(cp.frontier.size()));
      event.fields.emplace_back("schedules",
                                std::to_string(cp.stats.schedules));
      sink->emit(std::move(event));
    }
  };

  const auto worker = [&](int worker_index) {
    try {
      const ObsCtx octx = make_obs_ctx(sink, worker_index);
      WorkerBeat* const beat =
          beats != nullptr ? &beats[worker_index] : nullptr;
      if (events) {
        obs::Event event;
        event.kind = "worker.start";
        event.worker = worker_index;
        sink->emit(std::move(event));
      }
      std::uint64_t claims = 0;
      bool halted = false;
      Scratch scratch;
      while (!halted) {
        auto self = pool.units.end();
        PassState pass = cfg.base;
        UnitResult local;
        {
          std::unique_lock<std::mutex> lock(pool.mu);
          for (;;) {
            if (pool.abort_all || pool.halt) break;
            for (auto it = pool.units.begin(); it != pool.units.end(); ++it) {
              if (it->status == StealUnit::Status::kPending) {
                self = it;
                break;
              }
            }
            if (self != pool.units.end() || pool.running == 0) break;
            ++pool.idle;
            refresh_attention();
            if (beat != nullptr) {
              beat->state.store(WorkerBeat::kStealing,
                                std::memory_order_relaxed);
            }
            pool.cv.wait(lock);
            --pool.idle;
            refresh_attention();
          }
          if (self == pool.units.end()) {
            pool.cv.notify_all();  // drained/halted: release the others too
            break;
          }
          self->status = StealUnit::Status::kRunning;
          ++pool.running;
          pass.frames = self->frames;
          pass.floor = self->floor;
          local = self->result;
          if (beat != nullptr) {
            beat->state.store(WorkerBeat::kRunning, std::memory_order_relaxed);
            if (self->stolen) {
              beat->steals.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (events) {
          obs::Event event;
          event.kind = "worker.claim";
          event.step = claims;
          event.worker = worker_index;
          event.fields.emplace_back("depth",
                                    std::to_string(pass.frames.size()));
          event.fields.emplace_back("floor", std::to_string(pass.floor));
          sink->emit(std::move(event));
        }
        ++claims;
        const std::uint64_t unit_begin = spans ? sink->now_ns() : 0;
        bool aborted = false;
        for (;;) {
          if (pool.attention.load(std::memory_order_acquire)) {
            std::lock_guard<std::mutex> lock(pool.mu);
            if (pool.abort_all || pool.halt) {
              halted = true;
            } else if (self->abort) {
              aborted = true;
            } else {
              std::size_t splits = 0;
              while (splits < pool.idle) {
                StealUnit thief;
                if (!try_split(pass, steal_depth, thief)) break;
                pool.units.insert(std::next(self), std::move(thief));
                ++splits;
                if (octx.shard != nullptr) {
                  ++octx.shard->counter("explore.steals");
                }
                if (events) {
                  obs::Event event;
                  event.kind = "worker.steal";
                  event.step = pass.floor;  // victim floor == split depth + 1
                  event.worker = worker_index;
                  sink->emit(std::move(event));
                }
                pool.cv.notify_one();
              }
              // Publish the snapshot other threads read: splits moved the
              // floor, and the checkpoint writer serializes running units
              // from exactly these fields.
              self->frames = pass.frames;
              self->floor = pass.floor;
              self->result = local;
              if (ckpt != nullptr &&
                  pool.checkpoint_due.load(std::memory_order_relaxed)) {
                write_checkpoint(octx);
                pool.checkpoint_due.store(false, std::memory_order_relaxed);
                if (opts.halt_after_checkpoints > 0 &&
                    ckpt->periodic >= opts.halt_after_checkpoints) {
                  // Deterministic SIGKILL stand-in for kill-and-resume
                  // tests: stop dead right after the Nth periodic write,
                  // leaving the artifact as the only durable output.
                  pool.halt = true;
                  halted = true;
                  pool.cv.notify_all();
                }
              }
              refresh_attention();
            }
          }
          if (halted || aborted) break;
          if (budget.exhausted()) {
            local.cap_hit = true;
            break;
          }
          RunOutcome outcome =
              run_one(system, opts, pass, local, 0, octx, scratch);
          if (!outcome.pruned) {
            if (beat != nullptr) {
              beat->schedules.fetch_add(1, std::memory_order_relaxed);
            }
            const std::uint64_t claimed =
                budget.schedules.fetch_add(1, std::memory_order_relaxed) + 1;
            if (ckpt != nullptr && opts.checkpoint_every > 0 &&
                claimed - pool.last_checkpoint_at.load(
                              std::memory_order_relaxed) >=
                    opts.checkpoint_every &&
                !pool.checkpoint_due.exchange(true,
                                              std::memory_order_relaxed)) {
              pool.attention.store(true, std::memory_order_release);
            }
          }
          if (outcome.violation.has_value()) {
            record_violation(
                local, build_counterexample(system, opts, std::move(outcome),
                                            local.stats, octx));
            if (opts.stop_at_first_violation ||
                local.violations.size() >= quota) {
              local.stopped = true;
              break;
            }
          }
          if (!advance(pass, local, scratch)) {
            // Normal drain: emit the below-floor prefix frames' coverage
            // partials.  The halted/aborted/cap/stopped breaks above emit
            // nothing — each either abandons the unit's results wholesale
            // or ends the campaign, and explore() discards all partials of
            // an ended pass.
            emit_open_frames(pass, local);
            break;
          }
        }
        if (halted) break;  // unit stays kRunning; the halt abandons the pass
        {
          std::lock_guard<std::mutex> lock(pool.mu);
          --pool.running;
          aborted = aborted || self->abort;
          self->frames.clear();
          self->floor = 0;
          if (aborted) {
            self->result = UnitResult{};
            self->result.skipped = true;
          } else {
            self->result = std::move(local);
          }
          self->status = StealUnit::Status::kComplete;
          walk_frontier();
          pool.cv.notify_all();
        }
        if (spans) {
          obs::Span span;
          span.name = "unit";
          span.track = worker_index;
          span.begin_ns = unit_begin;
          span.end_ns = sink->now_ns();
          span.args.emplace_back(
              "schedules", std::to_string(self->result.stats.schedules));
          sink->record_span(std::move(span));
        }
      }
      if (beat != nullptr) {
        beat->state.store(WorkerBeat::kIdle, std::memory_order_relaxed);
      }
      if (events) {
        obs::Event event;
        event.kind = "worker.finish";
        event.step = claims;
        event.worker = worker_index;
        sink->emit(std::move(event));
      }
    } catch (...) {
      // Any lock held when the exception was raised has already been
      // released by the unwind, so re-locking here is safe.
      std::lock_guard<std::mutex> lock(pool.mu);
      if (!pool.error) pool.error = std::current_exception();
      pool.abort_all = true;
      pool.attention.store(true, std::memory_order_release);
      pool.cv.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lock(pool.mu);
    walk_frontier();  // a restored frontier may already confirm a stop
  }

  // The heartbeat thread: overlays the pool's live counters on the merged
  // prefix and writes the status file whenever the cadence is due.  It only
  // ever reads pool state (under pool.mu) and worker beats (relaxed), so it
  // cannot perturb the exploration — kill it and the campaign is identical.
  std::mutex status_mu;
  std::condition_variable status_cv;
  bool status_stop = false;
  const auto build_status = [&] {
    obs::Status s = status->snapshot("running");
    s.schedules = budget.schedules.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      s.violations = pool.frontier_violations;
      std::uint64_t frontier = 0;
      std::uint64_t prunes = status->merged->stats.fingerprint_prunes;
      for (const StealUnit& unit : pool.units) {
        if (unit.status != StealUnit::Status::kComplete) ++frontier;
        prunes += unit.result.stats.fingerprint_prunes;
      }
      s.frontier = frontier;
      s.fingerprint_prunes = prunes;
      s.checkpoints = status->ckpt != nullptr ? status->ckpt->written : 0;
    }
    s.fingerprint_hit_rate_ppm =
        fp_hit_ppm(s.fingerprint_prunes, s.schedules);
    for (int i = 0; i < nworkers; ++i) {
      obs::WorkerStatus w;
      w.worker = i;
      w.state = beat_state_name(beats[i].state.load(std::memory_order_relaxed));
      w.steals = beats[i].steals.load(std::memory_order_relaxed);
      w.schedules = beats[i].schedules.load(std::memory_order_relaxed);
      s.workers.push_back(std::move(w));
    }
    return s;
  };
  const auto status_loop = [&] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(status_mu);
        status_cv.wait_for(lock, std::chrono::milliseconds(25),
                           [&] { return status_stop; });
        if (status_stop) return;
      }
      if (!status->writer.due()) continue;
      status->writer.write(build_status());
    }
  };
  std::thread status_thread;
  if (status_on) status_thread = std::thread(status_loop);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nworkers - 1));
  for (int i = 1; i < nworkers; ++i) {
    threads.emplace_back(worker, i);
  }
  worker(0);  // the calling thread is worker 0
  for (auto& t : threads) t.join();
  if (status_on) {
    {
      std::lock_guard<std::mutex> lock(status_mu);
      status_stop = true;
    }
    status_cv.notify_all();
    status_thread.join();
  }
  if (pool.error) std::rethrow_exception(pool.error);
  if (pool.halt) {
    output.halted = true;
    return output;
  }
  for (auto& unit : pool.units) {
    expects(unit.status == StealUnit::Status::kComplete,
            "stealing pass ended with an incomplete unit");
    PassUnit pu;
    pu.result = std::move(unit.result);
    output.units.push_back(std::move(pu));
  }
  return output;
}

/// jobs == 0 resolves through BSS_EXPLORE_JOBS (how CI forces the worker
/// pool through every existing test); explicit values are never overridden.
int resolve_jobs(const ExploreOptions& options) {
  if (options.jobs > 0) return std::min(options.jobs, 64);
  static const int env_jobs = [] {
    const char* raw = std::getenv("BSS_EXPLORE_JOBS");
    if (raw == nullptr) return 1;
    char* end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end == raw || *end != '\0' || parsed < 1) return 1;
    return static_cast<int>(std::min<long>(parsed, 64));
  }();
  return env_jobs;
}

/// Auto shard depth: none when serial; otherwise the smallest depth whose
/// estimated subtree count (branching ^ depth) yields several jobs per
/// worker, so the pool load-balances without enumeration dominating.
std::size_t resolve_shard_depth(const ExploreOptions& options,
                                const ExplorableSystem& system, int jobs) {
  if (options.shard_depth >= 0) {
    return static_cast<std::size_t>(options.shard_depth);
  }
  if (jobs <= 1) return 0;
  const std::uint64_t branching = static_cast<std::uint64_t>(
      std::max(2, std::min(system.process_count(), 4)));
  const std::uint64_t target = std::uint64_t{8} * static_cast<unsigned>(jobs);
  std::uint64_t reach = 1;
  std::size_t depth = 0;
  while (depth < 8 && reach < target) {
    reach *= branching;
    ++depth;
  }
  return depth;
}

}  // namespace

std::size_t Counterexample::fault_count() const {
  return static_cast<std::size_t>(
      std::count_if(decisions.begin(), decisions.end(),
                    [](int decision) { return is_fault_action(decision); }));
}

Counterexample minimize_counterexample(const ExplorableSystem& system,
                                       Counterexample cex,
                                       const ExploreOptions& requested,
                                       ExploreStats* stats) {
  ExploreOptions options = requested;
  options.audit = resolve_audit(requested);
  const obs::ScopedPhase ddmin_scope(
      options.telemetry != nullptr ? options.telemetry->profiler() : nullptr,
      obs::Phase::kDdmin);
  std::uint64_t used = 0;
  const auto count_run = [&] {
    ++used;
    if (stats != nullptr) ++stats->shrink_runs;
  };
  // ddmin progress events: stamped with the re-execution count *within this
  // minimization*, so the per-counterexample shrink trajectory is
  // deterministic even when several minimizations interleave across workers.
  obs::ObsSink* sink = options.telemetry;
  const bool events = sink != nullptr && sink->events_enabled();
  const auto emit_ddmin = [&](const char* kind, std::size_t from,
                              std::size_t to) {
    if (!events) return;
    obs::Event event;
    event.kind = kind;
    event.step = used;
    event.fields.emplace_back("from", std::to_string(from));
    event.fields.emplace_back("to", std::to_string(to));
    sink->emit(std::move(event));
  };
  // The shrink analogue of max_schedules: ddmin replays on a pathological
  // tape must not run unboundedly after the exploration budget is spent.
  const auto budget_left = [&] {
    return options.shrink_budget == 0 || used < options.shrink_budget;
  };
  // Canonicalize up front and keep `best` canonical throughout: always the
  // *complete* decision sequence of a violating run, so the replayer
  // re-executes the result verbatim — zero divergences, no silent fallback.
  count_run();
  TapeResult current = run_tape(system, options, cex.decisions);
  expects(current.reproduced,
          "counterexample does not reproduce before minimization "
          "(nondeterministic system factory?)");
  std::vector<int> best = std::move(current.canonical);
  std::string violation = std::move(current.violation);
  cex.shrunk_from = std::max(cex.decisions.size(), best.size());
  emit_ddmin("ddmin.start", cex.shrunk_from, best.size());

  // Greedy ddmin-style chunk deletion: drop spans of halving size wherever
  // the violation still reproduces.  The fallback completes a truncated
  // candidate along a possibly *longer* schedule (LL/SC retry loops make
  // step counts schedule-dependent), so a deletion is accepted only when
  // its canonical tape is a strict length win.  Fault entries are ordinary
  // tape entries here: spans containing them are dropped like any other,
  // so a violation that needs fewer faults shrinks to fewer faults.
  bool budget_hit = false;
  std::vector<int> candidate;  // hoisted: reused across every ddmin replay
  for (std::size_t chunk = std::max<std::size_t>(best.size() / 2, 1);;
       chunk /= 2) {
    std::size_t start = 0;
    while (start < best.size()) {
      if (!budget_left()) {
        budget_hit = true;
        break;
      }
      const std::size_t len = std::min(chunk, best.size() - start);
      candidate.clear();
      candidate.reserve(best.size() - len);
      candidate.insert(candidate.end(), best.begin(),
                       best.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       best.begin() + static_cast<std::ptrdiff_t>(start + len),
                       best.end());
      count_run();
      TapeResult attempt = run_tape(system, options, candidate);
      if (attempt.reproduced && attempt.canonical.size() < best.size()) {
        emit_ddmin("ddmin.accept", best.size(), attempt.canonical.size());
        best = std::move(attempt.canonical);
        violation = std::move(attempt.violation);
        // retry the same start position against the new, shorter tape
      } else {
        start += chunk;
      }
    }
    if (budget_hit || chunk == 1) break;
  }
  if (budget_hit && stats != nullptr) ++stats->shrink_budget_hits;
  emit_ddmin(budget_hit ? "ddmin.budget_hit" : "ddmin.done", cex.shrunk_from,
             best.size());

  cex.decisions = std::move(best);
  cex.violation = std::move(violation);
  return cex;
}

ReplayOutcome replay_counterexample(const ExplorableSystem& system,
                                    const Counterexample& cex,
                                    const ExploreOptions& requested) {
  ExploreOptions options = requested;
  options.audit = resolve_audit(requested);
  TapeResult result = run_tape(system, options, cex.decisions,
                               options.telemetry);
  ReplayOutcome outcome;
  outcome.violated = result.reproduced;
  outcome.violation = std::move(result.violation);
  outcome.divergences = result.divergences;
  outcome.truncated = result.truncated;
  outcome.report = std::move(result.report);
  return outcome;
}

ExploreResult explore(const ExplorableSystem& system,
                      const ExploreOptions& requested) {
  ExploreOptions options = requested;
  options.audit = resolve_audit(requested);
  // Resolved here (not at use sites) so CheckpointOptions::key_of sees the
  // effective value — a resume under a different BSS_EXPLORE_FP is caught.
  options.fingerprint_prune = resolve_fingerprint_prune(requested);
  expects(options.steal ||
              (options.checkpoint_path.empty() && options.resume_path.empty()),
          "checkpoint/resume requires the work-stealing engine (steal=true)");
  ExploreResult result;
  result.audit.enabled = options.audit;
  const int jobs = resolve_jobs(options);
  const std::size_t shard_at =
      options.steal ? 0 : resolve_shard_depth(options, system, jobs);

  obs::ObsSink* sink = options.telemetry;
  const bool events = sink != nullptr && sink->events_enabled();
  const bool spans = sink != nullptr && sink->timeline_enabled();
  obs::PhaseProfiler* const profiler =
      sink != nullptr ? sink->profiler() : nullptr;
  // bss-lint: wallclock-ok(feeds only the runreport "timing" section)
  const auto wall_begin = std::chrono::steady_clock::now();
  if (events) {
    obs::Event event;
    event.kind = "explore.start";
    event.fields.emplace_back("system", system.name());
    event.fields.emplace_back("engine", options.steal ? "steal" : "static");
    event.fields.emplace_back("jobs", std::to_string(jobs));
    event.fields.emplace_back("shard_depth", std::to_string(shard_at));
    event.fields.emplace_back("steal_depth",
                              std::to_string(options.steal_depth));
    sink->emit(std::move(event));
  }
  if (sink != nullptr) {
    if (obs::MetricShard* shard =
            sink->metric_shard(obs::Event::kCoordinator)) {
      shard->gauge_max("explore.jobs", static_cast<std::uint64_t>(jobs));
      shard->gauge_max("explore.shard_depth", shard_at);
    }
  }

  // Chess-style iterative bounding: sweep small budgets first so the
  // simplest refutation surfaces; a budget that cut nothing covered the
  // whole space, making larger budgets redundant.  Fault budgets sweep
  // outermost — a zero-fault refutation beats a one-fault one.  Each
  // (fault, preemption) budget pair is one *pass*: sharding happens within
  // a pass, so fewest-fault-first ordering is preserved.
  std::vector<int> preemption_budgets;
  if (options.preemption_bound >= 0 && options.iterative) {
    for (int b = 0; b <= options.preemption_bound; ++b) {
      preemption_budgets.push_back(b);
    }
  } else {
    preemption_budgets.push_back(options.preemption_bound);
  }
  const bool faults_on =
      options.fault_bound > 0 &&
      (options.explore_crashes || options.explore_restarts ||
       options.explore_sc_failures);
  std::vector<int> fault_budgets;
  if (!faults_on) {
    fault_budgets.push_back(0);
  } else if (options.iterative) {
    for (int b = 0; b <= options.fault_bound; ++b) fault_budgets.push_back(b);
  } else {
    fault_budgets.push_back(options.fault_bound);
  }

  std::set<FaultPoint> fault_points;
  // Visited-state cache (fingerprint_prune only): frozen while a pass runs,
  // extended between passes from the pass's aggregated coverage partials.
  // `restored_fp_partials` carries the partials of units already folded
  // into a resumed campaign's merged prefix — they join the resumed pass's
  // own partials at its between-pass fold, so a killed-and-resumed campaign
  // admits exactly the keys an uninterrupted one would.
  FpCache fp_cache;
  std::vector<FingerprintPartial> restored_fp_partials;
  SharedBudget budget_valve(options.max_schedules);
  bool cap_hit = false;
  bool stopped = false;
  bool last_pass_budget_limited = false;
  std::uint64_t pass_ordinal = 0;

  // Resume: restore the merged snapshot, the campaign position and the
  // schedule valve from the artifact.  Everything result-affecting is
  // cross-checked — a checkpoint from a different system, process count or
  // option fingerprint is rejected, as is an out-of-range pass position.
  std::optional<Checkpoint> resume;
  std::size_t start_fault = 0;
  std::size_t start_preempt = 0;
  bool skip_passes = false;
  if (!options.resume_path.empty()) {
    std::ifstream in(options.resume_path, std::ios::binary);
    expects(static_cast<bool>(in),
            "resume: cannot read checkpoint: " + options.resume_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    resume = Checkpoint::from_artifact(buf.str(), &error);
    expects(resume.has_value(), "resume: invalid checkpoint: " + error);
    expects(resume->system == system.name() &&
                resume->processes == system.process_count(),
            "resume: checkpoint was taken on a different system");
    expects(resume->options == CheckpointOptions::key_of(options),
            "resume: result-affecting exploration options differ from the "
            "checkpointed campaign");
    skip_passes = resume->complete || resume->stopped || resume->cap_hit;
    expects(skip_passes ||
                (resume->fault_index < fault_budgets.size() &&
                 resume->preemption_index < preemption_budgets.size()),
            "resume: checkpoint pass position is out of range");
    result.stats = resume->stats;
    result.audit = resume->audit;
    result.audit.enabled = options.audit;
    result.violations = resume->violations;
    for (const auto& point : resume->fault_points) {
      fault_points.emplace(point.first, point.second);
    }
    cap_hit = resume->cap_hit;
    stopped = resume->stopped;
    last_pass_budget_limited = resume->last_pass_budget_limited;
    for (const auto& key : resume->fp_cache) fp_cache.insert(key);
    restored_fp_partials = resume->fp_partials;
    // The in-progress pass resumes under its own ordinal; a pass that
    // already concluded (stop/cap confirmed in the folded prefix) counts as
    // finished.  A complete artifact stores the final total verbatim.
    pass_ordinal =
        resume->pass_ordinal + ((skip_passes && !resume->complete) ? 1 : 0);
    start_fault = static_cast<std::size_t>(resume->fault_index);
    start_preempt = static_cast<std::size_t>(resume->preemption_index);
    // The valve restores to schedules-merged + schedules-in-frontier: work
    // past the published snapshots re-runs and re-counts on resume, exactly
    // once each, so the valve stays consistent with the re-exploration.
    std::uint64_t consumed = result.stats.schedules;
    for (const CheckpointUnit& cu : resume->frontier) {
      consumed += cu.stats.schedules;
    }
    budget_valve.schedules.store(consumed, std::memory_order_relaxed);
  }

  CheckpointCtx ckpt_state;
  CheckpointCtx* const ckpt =
      options.checkpoint_path.empty() ? nullptr : &ckpt_state;
  if (ckpt != nullptr) {
    ckpt->seq = resume.has_value() ? resume->seq + 1 : 0;
    ckpt->merged = &result;
    ckpt->covered = &fault_points;
    if (options.fingerprint_prune) ckpt->fp_cache = &fp_cache;
  }

  // The heartbeat writer (bss-status v1): enabled by status_path or
  // BSS_STATUS, purely observational.  The seq-0 snapshot goes out before
  // the first pass so monitors see the campaign (and any resumed prefix)
  // immediately.
  StatusCtx status_state(options.status_path, options.status_every_ms);
  StatusCtx* const status =
      status_state.writer.enabled() ? &status_state : nullptr;
  if (status != nullptr) {
    status_state.system = system.name();
    status_state.max_schedules = options.max_schedules;
    status_state.jobs = static_cast<std::uint64_t>(jobs);
    status_state.pass_ordinal = pass_ordinal;
    status_state.merged = &result;
    status_state.ckpt = ckpt;
    status_state.writer.set_profiler(profiler);
    status->writer.write(status->snapshot("running"));
  }

  bool halted = false;
  for (std::size_t fi = start_fault;
       !skip_passes && !halted && fi < fault_budgets.size(); ++fi) {
    const int fault_budget = fault_budgets[fi];
    bool fault_limited_at_this_budget = false;
    for (std::size_t pi = fi == start_fault ? start_preempt : 0;
         pi < preemption_budgets.size(); ++pi) {
      const int budget = preemption_budgets[pi];
      const bool resumed_pass =
          resume.has_value() && fi == start_fault && pi == start_preempt;
      if (events) {
        obs::Event event;
        event.kind = "pass.start";
        event.step = pass_ordinal;
        event.fields.emplace_back("fault_budget",
                                  std::to_string(faults_on ? fault_budget : 0));
        event.fields.emplace_back("preemption_budget", std::to_string(budget));
        sink->emit(std::move(event));
      }
      const std::uint64_t this_pass = pass_ordinal;
      ++pass_ordinal;
      PassConfig cfg;
      cfg.base.budget = budget;
      cfg.base.fault_budget = faults_on ? fault_budget : 0;
      cfg.base.use_por = options.use_por;
      cfg.base.explore_crashes = faults_on && options.explore_crashes;
      cfg.base.explore_restarts = faults_on && options.explore_restarts;
      cfg.base.explore_sc = faults_on && options.explore_sc_failures;
      cfg.base.fp_prune = options.fingerprint_prune;
      if (options.fingerprint_prune) cfg.base.fp_cache = &fp_cache;
      cfg.shard_at = shard_at;
      cfg.jobs = jobs;
      cfg.violations_so_far = result.violations.size();
      if (ckpt != nullptr) {
        ckpt->pass_ordinal = this_pass;
        ckpt->fault_index = fi;
        ckpt->preemption_index = pi;
        ckpt->cap_hit = cap_hit;
        ckpt->stopped = stopped;
        ckpt->last_pass_budget_limited = last_pass_budget_limited;
        ckpt->restored_budget_limited =
            resumed_pass && resume->pass_budget_limited;
        ckpt->restored_fault_limited =
            resumed_pass && resume->pass_fault_limited;
        ckpt->restored_partials =
            resumed_pass ? &restored_fp_partials : nullptr;
      }
      if (status != nullptr) status->pass_ordinal = this_pass;
      std::vector<PassUnit> units;
      if (options.steal) {
        StealPassOutput out = run_steal_pass(
            system, options, cfg, budget_valve,
            resumed_pass ? &resume->frontier : nullptr, ckpt, status);
        if (out.halted) {
          halted = true;
          break;
        }
        units = std::move(out.units);
      } else {
        units = run_pass(system, options, cfg, budget_valve);
      }
      const std::uint64_t merge_begin = spans ? sink->now_ns() : 0;
      MergeOutcome merged;
      {
        const obs::ScopedPhase merge_scope(profiler, obs::Phase::kMerge);
        merged = merge_pass(units, options, result, fault_points);
      }
      if (resumed_pass) {
        // The folded prefix of the resumed pass contributed these flags
        // before the kill; the frontier units cannot re-derive them.
        merged.budget_limited |= resume->pass_budget_limited;
        merged.fault_limited |= resume->pass_fault_limited;
      }
      if (spans) {
        obs::Span span;
        span.name = "merge";
        span.track = obs::Timeline::kCoordinatorTrack;
        span.begin_ns = merge_begin;
        span.end_ns = sink->now_ns();
        span.args.emplace_back("units", std::to_string(units.size()));
        sink->record_span(std::move(span));
      }
      last_pass_budget_limited = merged.budget_limited;
      fault_limited_at_this_budget = merged.fault_limited;
      cap_hit |= merged.cap_hit;
      stopped |= merged.stopped;
      if (options.fingerprint_prune && !cap_hit && !stopped) {
        // Between-pass cache fold: aggregate the pass's coverage partials
        // per key (OR of dirty across every unit — commutative and
        // idempotent, so steal splits and shard prefixes need no
        // reconciliation) and admit the keys that aggregate clean.  A clean
        // key's subtree was explored in full with no budget/fault cut,
        // truncation or violation anywhere below it — that is the whole
        // unbounded reachable tree under the node, so pruning it at ANY
        // later budget loses nothing (which is why budget positions are
        // excluded from the key).  Passes that end the campaign (cap/stop)
        // fold nothing: their partials would never be consulted.
        std::map<FpKey, bool> aggregated;
        if (resumed_pass) {
          for (const FingerprintPartial& p : restored_fp_partials) {
            auto [it, inserted] = aggregated.try_emplace({p.lo, p.hi}, false);
            it->second |= p.dirty;
          }
        }
        for (const PassUnit& u : units) {
          for (const FingerprintPartial& p : u.result.fp_partials) {
            auto [it, inserted] = aggregated.try_emplace({p.lo, p.hi}, false);
            it->second |= p.dirty;
          }
        }
        for (const auto& [key, dirty] : aggregated) {
          if (!dirty) fp_cache.insert(key);
        }
      }
      // Pass-boundary heartbeat (both engines — the static engine has no
      // in-pass writer thread): cadence-gated so tiny passes don't spam.
      if (status != nullptr && status->writer.due()) {
        status->writer.write(status->snapshot("running"));
      }
      if (cap_hit || stopped) break;
      if (!merged.budget_limited) break;  // space covered at this budget
    }
    if (halted || cap_hit || stopped) break;
    // A fault budget that cut nothing covered the whole bounded-fault
    // space; deeper fault budgets would only re-explore it.
    if (!fault_limited_at_this_budget) break;
  }

  if (halted) {
    // halt_after_checkpoints fired: the checkpoint artifact is the durable
    // output; the in-memory partials are deliberately NOT finalized (no
    // merge ran) and no explore.done/runreport is emitted — this return is
    // the deterministic stand-in for a SIGKILL.
    result.halted = true;
    result.checkpoints_written = ckpt != nullptr ? ckpt->written : 0;
    return result;
  }

  result.stats.fault_points = fault_points.size();
  result.exhausted = !cap_hit && !stopped && !last_pass_budget_limited &&
                     result.stats.truncated == 0;

  if (ckpt != nullptr) {
    // The final, `complete` checkpoint: the whole merged result, an empty
    // frontier.  Resuming from it just re-emits the same result.
    const obs::ScopedPhase checkpoint_scope(profiler,
                                            obs::Phase::kCheckpointWrite);
    Checkpoint cp;
    cp.seq = ckpt->seq++;
    cp.system = system.name();
    cp.processes = system.process_count();
    cp.options = CheckpointOptions::key_of(options);
    cp.complete = true;
    cp.exhausted = result.exhausted;
    cp.pass_ordinal = pass_ordinal;
    cp.cap_hit = cap_hit;
    cp.stopped = stopped;
    cp.last_pass_budget_limited = last_pass_budget_limited;
    cp.stats = result.stats;
    cp.audit = result.audit;
    cp.violations = result.violations;
    for (const FaultPoint& point : fault_points) {
      cp.fault_points.emplace_back(point.first, point.second);
    }
    expects(write_checkpoint_file(options.checkpoint_path, cp.to_artifact()),
            "failed to write checkpoint artifact: " + options.checkpoint_path);
    ++ckpt->written;
    result.checkpoints_written = ckpt->written;
    if (status != nullptr) status->writer.note_checkpoint();
  }

  if (sink != nullptr) {
    if (events) {
      obs::Event event;
      event.kind = "explore.done";
      event.fields.emplace_back("schedules",
                                std::to_string(result.stats.schedules));
      event.fields.emplace_back("violations",
                                std::to_string(result.violations.size()));
      event.fields.emplace_back("exhausted", result.exhausted ? "1" : "0");
      sink->emit(std::move(event));
    }
    obs::ReportBuilder report("explore", "explore()");
    report.set_system(system.name());
    report.environment("engine", options.steal ? "steal" : "static");
    report.environment("jobs", jobs);
    report.environment("shard_depth",
                       static_cast<std::uint64_t>(shard_at));
    report.environment("processes", system.process_count());
    report.option("max_depth", options.max_depth);
    report.option("preemption_bound", options.preemption_bound);
    report.option("iterative", options.iterative);
    report.option("use_por", options.use_por);
    report.option("max_schedules", options.max_schedules);
    report.option("stop_at_first_violation", options.stop_at_first_violation);
    report.option("max_violations",
                  static_cast<std::uint64_t>(options.max_violations));
    report.option("minimize", options.minimize);
    report.option("shrink_budget", options.shrink_budget);
    report.option("fault_bound", options.fault_bound);
    report.option("audit", options.audit);
    report.option("fingerprint_prune", options.fingerprint_prune);
    const ExploreStats& stats = result.stats;
    report.stat("schedules", stats.schedules);
    report.stat("transitions", stats.transitions);
    report.stat("timer_grants", stats.timer_grants);
    report.stat("sleep_set_prunes", stats.sleep_set_prunes);
    report.stat("preemption_prunes", stats.preemption_prunes);
    report.stat("truncated", stats.truncated);
    report.stat("max_depth_seen", stats.max_depth_seen);
    report.stat("shrink_runs", stats.shrink_runs);
    report.stat("shrink_budget_hits", stats.shrink_budget_hits);
    report.stat("fault_prunes", stats.fault_prunes);
    report.stat("faults_injected", stats.faults_injected);
    report.stat("fingerprint_prunes", stats.fingerprint_prunes);
    report.stat("fault_points", stats.fault_points);
    report.stat("violations", result.violations.size());
    report.coverage("exhausted", result.exhausted);
    report.coverage("passes", pass_ordinal);
    report.coverage("cap_hit", cap_hit);
    report.coverage("stopped", stopped);
    for (const Counterexample& cex : result.violations) {
      obs::json::Object violation;
      violation.emplace("violation", obs::json::Value(cex.violation));
      violation.emplace(
          "decisions",
          obs::json::Value(static_cast<std::uint64_t>(cex.decisions.size())));
      violation.emplace(
          "faults",
          obs::json::Value(static_cast<std::uint64_t>(cex.fault_count())));
      violation.emplace(
          "shrunk_from",
          obs::json::Value(static_cast<std::uint64_t>(cex.shrunk_from)));
      report.violation(std::move(violation));
    }
    const auto wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // bss-lint: wallclock-ok(runreport "timing" section only)
            std::chrono::steady_clock::now() - wall_begin)
            .count();
    report.timing("explore_wall_ns",
                  static_cast<std::uint64_t>(wall_ns));
    // Schedules/second lives in the quarantined timing channel: it varies
    // run to run, so it must never leak into the canonical sections.
    if (wall_ns > 0) {
      report.timing("schedules_per_second",
                    static_cast<double>(stats.schedules) * 1e9 /
                        static_cast<double>(wall_ns));
    }
    sink->report(report);
  }
  if (status != nullptr) {
    // Terminal heartbeat: unconditional (cadence ignored) so monitors see
    // state == "complete" with the final totals even for sub-cadence runs.
    status->pass_ordinal = pass_ordinal;
    status->writer.write(status->snapshot("complete"));
  }
  return result;
}

// ---------------------------------------------------------------- reporting

void ExploreStats::merge_from(const ExploreStats& other) {
  schedules += other.schedules;
  transitions += other.transitions;
  timer_grants += other.timer_grants;
  sleep_set_prunes += other.sleep_set_prunes;
  preemption_prunes += other.preemption_prunes;
  truncated += other.truncated;
  max_depth_seen = std::max(max_depth_seen, other.max_depth_seen);
  shrink_runs += other.shrink_runs;
  shrink_budget_hits += other.shrink_budget_hits;
  fault_prunes += other.fault_prunes;
  faults_injected += other.faults_injected;
  fingerprint_prunes += other.fingerprint_prunes;
  // fault_points intentionally untouched: distinct sites dedup through a
  // set and are written once at the end of explore().
}

std::string ExploreStats::summary() const {
  std::ostringstream out;
  out << "schedules=" << schedules << " transitions=" << transitions;
  if (timer_grants > 0) out << " timer-grants=" << timer_grants;
  out << " sleep-prunes=" << sleep_set_prunes
      << " preemption-prunes=" << preemption_prunes;
  if (fingerprint_prunes > 0) out << " fp-prunes=" << fingerprint_prunes;
  out << " truncated=" << truncated << " max-depth=" << max_depth_seen
      << " shrink-runs=" << shrink_runs;
  if (shrink_budget_hits > 0) {
    out << " shrink-budget-hits=" << shrink_budget_hits;
  }
  if (faults_injected > 0 || fault_prunes > 0) {
    out << " faults=" << faults_injected << " fault-points=" << fault_points
        << " fault-prunes=" << fault_prunes;
  }
  return out.str();
}

void AuditSummary::note(std::string finding) {
  if (findings.size() < kMaxFindings) findings.push_back(std::move(finding));
}

void AuditSummary::merge_from(const AuditSummary& other) {
  enabled |= other.enabled;
  windows += other.windows;
  accesses += other.accesses;
  ledger_violations += other.ledger_violations;
  schedules_cross_checked += other.schedules_cross_checked;
  pairs_considered += other.pairs_considered;
  swaps_replayed += other.swaps_replayed;
  commute_mismatches += other.commute_mismatches;
  for (const auto& finding : other.findings) note(finding);
}

std::string AuditSummary::summary() const {
  if (!enabled) return "audit: off";
  std::ostringstream out;
  out << "audit: windows=" << windows << " accesses=" << accesses
      << " ledger-violations=" << ledger_violations
      << " cross-checked=" << schedules_cross_checked
      << " pairs=" << pairs_considered << " swaps=" << swaps_replayed
      << " commute-mismatches=" << commute_mismatches;
  if (!findings.empty()) out << "\n  first: " << findings.front();
  return out.str();
}

std::string ExploreResult::summary() const {
  std::ostringstream out;
  out << stats.summary() << (exhausted ? " [exhaustive]" : " [bounded]");
  if (violations.empty()) {
    out << " no violations";
  } else {
    for (const auto& cex : violations) {
      out << "\n  VIOLATION (" << cex.decisions.size() << " decisions, "
          << cex.fault_count() << " faults, from " << cex.shrunk_from
          << "): " << cex.violation;
    }
  }
  return out.str();
}

// ----------------------------------------------------------------- artifact

std::string action_token(int decision) {
  const Action action = decode_action(decision);
  switch (action.kind) {
    case ActionKind::kGrant:
      return std::to_string(action.pid);
    case ActionKind::kCrash:
      return "c" + std::to_string(action.pid);
    case ActionKind::kRestart:
      return "r" + std::to_string(action.pid);
    case ActionKind::kScFailure:
      return "s" + std::to_string(action.pid);
  }
  return std::to_string(decision);
}

std::optional<int> parse_action_token(const std::string& token) {
  if (token.empty()) return std::nullopt;
  ActionKind kind = ActionKind::kGrant;
  std::size_t offset = 0;
  switch (token.front()) {
    case 'c':
      kind = ActionKind::kCrash;
      offset = 1;
      break;
    case 'r':
      kind = ActionKind::kRestart;
      offset = 1;
      break;
    case 's':
      kind = ActionKind::kScFailure;
      offset = 1;
      break;
    default:
      break;
  }
  int pid = 0;
  try {
    std::size_t used = 0;
    pid = std::stoi(token.substr(offset), &used);
    if (used != token.size() - offset) return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (pid < 0 || pid > kMaxActionPid) return std::nullopt;
  return encode_action(kind, pid);
}

namespace {

// Strict base-10 parse for artifact header counts: every byte must be a
// digit (no sign, no whitespace, no trailing junk) and the result must not
// exceed `limit`.  The std::stoi/std::stoull these replace threw straight
// through from_artifact on junk like "processes: x" and silently wrapped
// "shrunk-from: -1" to 2^64-1; a corrupt artifact must parse to nullopt,
// never to a crash or a bogus huge count.  (Found by fuzz_counterexample.)
std::optional<std::uint64_t> parse_artifact_count(const std::string& value,
                                                  std::uint64_t limit) {
  if (value.empty() || value.size() > 20) return std::nullopt;
  std::uint64_t out = 0;
  for (const char ch : value) {
    if (ch < '0' || ch > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(ch - '0');
    if (digit > limit || out > (limit - digit) / 10) return std::nullopt;
    out = out * 10 + digit;
  }
  return out;
}

}  // namespace

std::string Counterexample::to_artifact() const {
  std::ostringstream out;
  std::string flat = violation;
  std::replace(flat.begin(), flat.end(), '\n', ' ');
  // v1 (grants only) stays bit-for-bit the historical format; fault tapes
  // need the v2 token syntax.
  out << (fault_count() == 0 ? "bss-counterexample v1\n"
                             : "bss-counterexample v2\n");
  out << "system: " << system << "\n";
  out << "processes: " << processes << "\n";
  out << "shrunk-from: " << shrunk_from << "\n";
  out << "violation: " << flat << "\n";
  out << "decisions:";
  for (const int decision : decisions) {
    const Action action = decode_action(decision);
    switch (action.kind) {
      case ActionKind::kGrant:
        out << ' ' << action.pid;
        break;
      case ActionKind::kCrash:
        out << " c" << action.pid;
        break;
      case ActionKind::kRestart:
        out << " r" << action.pid;
        break;
      case ActionKind::kScFailure:
        out << " s" << action.pid;
        break;
    }
  }
  out << "\n";
  return out.str();
}

std::optional<Counterexample> Counterexample::from_artifact(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      (line != "bss-counterexample v1" && line != "bss-counterexample v2")) {
    return std::nullopt;
  }
  Counterexample cex;
  bool saw_decisions = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (key == "system") {
      cex.system = value;
    } else if (key == "processes") {
      const auto count = parse_artifact_count(
          value, static_cast<std::uint64_t>(kMaxActionPid) + 1);
      if (!count.has_value()) return std::nullopt;
      cex.processes = static_cast<int>(*count);
    } else if (key == "shrunk-from") {
      const auto count = parse_artifact_count(
          value, std::numeric_limits<std::size_t>::max());
      if (!count.has_value()) return std::nullopt;
      cex.shrunk_from = static_cast<std::size_t>(*count);
    } else if (key == "violation") {
      cex.violation = value;
    } else if (key == "decisions") {
      std::istringstream tokens(value);
      std::string token;
      while (tokens >> token) {
        const std::optional<int> decision = parse_action_token(token);
        if (!decision.has_value()) return std::nullopt;
        cex.decisions.push_back(*decision);
      }
      saw_decisions = true;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_decisions) return std::nullopt;
  return cex;
}

}  // namespace bss::explore
