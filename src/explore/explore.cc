#include "explore/explore.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "runtime/scheduler.h"
#include "util/checked.h"

namespace bss::explore {

bool ops_commute(const sim::OpDesc& a, const sim::OpDesc& b) {
  if (a.object != b.object) return true;
  // Anything that is not a plain read (write, cas, ll, sc, …) may change the
  // object or its hidden state (LL links), so it conflicts with every other
  // access to the same object.
  return a.op == "read" && b.op == "read";
}

namespace {

/// One node of the DFS tree: the scheduling state after `index` decisions.
struct Frame {
  std::vector<int> runnable;           ///< ascending pids runnable here
  std::vector<sim::OpDesc> pending;    ///< by pid; valid for runnable pids
  std::vector<int> entry_sleep;        ///< sleeping pids on entry (sorted)
  std::vector<int> done;               ///< sibling choices already explored
  int chosen = -1;                     ///< choice taken on the current path
  int preemptions_before = 0;          ///< preemptions in decisions 0..index-1
};

/// Thrown out of the scheduler when every choice at a fresh node is pruned;
/// unwinds env.run(), whose destructor reaps the parked process threads.
struct BranchPruned {
  bool by_budget = false;
};

bool contains(const std::vector<int>& pids, int pid) {
  return std::find(pids.begin(), pids.end(), pid) != pids.end();
}

struct PassState {
  std::vector<Frame> frames;
  int budget = -1;          ///< preemption budget; -1 = unbounded
  bool use_por = true;
  bool budget_limited = false;  ///< some branch was cut by the budget
};

/// Scheduling a choice away from the previous (still-runnable) process costs
/// one preemption.
int choice_cost(const Frame& frame, int prev_pid, int choice) {
  if (prev_pid < 0 || choice == prev_pid) return 0;
  return contains(frame.runnable, prev_pid) ? 1 : 0;
}

/// First unexplored, unslept, budget-feasible choice at `frame`; prefers
/// continuing `prev_pid` (free), then ascending pid order.  -1 if none.
int select_choice(const Frame& frame, int prev_pid, const PassState& pass) {
  std::vector<int> order;
  order.reserve(frame.runnable.size());
  if (prev_pid >= 0 && contains(frame.runnable, prev_pid)) {
    order.push_back(prev_pid);
  }
  for (const int pid : frame.runnable) {
    if (pid != prev_pid) order.push_back(pid);
  }
  for (const int pid : order) {
    if (contains(frame.done, pid)) continue;
    if (pass.use_por && contains(frame.entry_sleep, pid)) continue;
    if (pass.budget >= 0 &&
        frame.preemptions_before + choice_cost(frame, prev_pid, pid) >
            pass.budget) {
      continue;
    }
    return pid;
  }
  return -1;
}

/// The exploration adversary: replays the fixed prefix recorded in
/// pass->frames, then extends the frontier one node per step, applying the
/// sleep-set and preemption filters.
class DfsScheduler final : public sim::Scheduler {
 public:
  DfsScheduler(PassState* pass, ExploreStats* stats)
      : pass_(pass), stats_(stats) {}

  std::string name() const override { return "dfs-explore"; }

  int pick(const sim::SchedView& view) override {
    ++stats_->transitions;
    auto& frames = pass_->frames;

    if (step_ < frames.size()) {
      // Prefix replay: the factory is deterministic, so the runnable set
      // must match what the previous run recorded here.
      Frame& frame = frames[step_];
      if (!std::equal(frame.runnable.begin(), frame.runnable.end(),
                      view.runnable.begin(), view.runnable.end())) {
        throw std::logic_error(
            "schedule exploration diverged on prefix replay: the system "
            "factory is nondeterministic");
      }
      ++step_;
      return frame.chosen;
    }

    // Frontier: materialize a new node.
    Frame frame;
    frame.runnable.assign(view.runnable.begin(), view.runnable.end());
    frame.pending.resize(view.processes.size());
    for (const int pid : frame.runnable) {
      frame.pending[static_cast<std::size_t>(pid)] =
          view.processes[static_cast<std::size_t>(pid)].pending;
    }
    const int prev_pid = step_ > 0 ? frames[step_ - 1].chosen : -1;
    if (step_ > 0) {
      const Frame& parent = frames[step_ - 1];
      frame.preemptions_before =
          parent.preemptions_before +
          choice_cost(parent, step_ > 1 ? frames[step_ - 2].chosen : -1,
                      parent.chosen);
      if (pass_->use_por) {
        // Sleep-set propagation: everything asleep at the parent (inherited
        // or explored there) stays asleep iff it commutes with the operation
        // the parent's choice just performed.
        const auto& parent_op =
            parent.pending[static_cast<std::size_t>(parent.chosen)];
        const auto inherit = [&](int pid) {
          if (pid == parent.chosen) return;
          if (ops_commute(parent.pending[static_cast<std::size_t>(pid)],
                          parent_op)) {
            frame.entry_sleep.push_back(pid);
          }
        };
        for (const int pid : parent.entry_sleep) inherit(pid);
        for (const int pid : parent.done) inherit(pid);
        std::sort(frame.entry_sleep.begin(), frame.entry_sleep.end());
      }
    }

    // Account the branches the filters cut at this node (both filters are
    // functions of the frame alone, so counting once at creation is exact).
    bool budget_cut_here = false;
    for (const int pid : frame.runnable) {
      if (pass_->use_por && contains(frame.entry_sleep, pid)) {
        ++stats_->sleep_set_prunes;
        continue;
      }
      if (pass_->budget >= 0 &&
          frame.preemptions_before + choice_cost(frame, prev_pid, pid) >
              pass_->budget) {
        ++stats_->preemption_prunes;
        pass_->budget_limited = true;
        budget_cut_here = true;
      }
    }

    const int choice = select_choice(frame, prev_pid, *pass_);
    if (choice < 0) throw BranchPruned{budget_cut_here};
    frame.chosen = choice;
    frames.push_back(std::move(frame));
    ++step_;
    return choice;
  }

 private:
  PassState* pass_;
  ExploreStats* stats_;
  std::size_t step_ = 0;
};

/// Backtracks to the deepest node with an unexplored sibling; returns false
/// when the whole space (at this budget) is done.
bool advance(PassState& pass) {
  auto& frames = pass.frames;
  while (!frames.empty()) {
    Frame& frame = frames.back();
    frame.done.push_back(frame.chosen);
    frame.chosen = -1;
    const int prev_pid =
        frames.size() > 1 ? frames[frames.size() - 2].chosen : -1;
    const int next = select_choice(frame, prev_pid, pass);
    if (next >= 0) {
      frame.chosen = next;
      return true;
    }
    frames.pop_back();
  }
  return false;
}

struct RunOutcome {
  bool pruned = false;
  bool truncated = false;
  std::optional<std::string> violation;
  std::vector<int> decisions;
};

RunOutcome run_one(const ExplorableSystem& system, const ExploreOptions& opts,
                   PassState& pass, ExploreStats& stats) {
  RunOutcome outcome;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = opts.record_trace;
  sim::SimEnv env(sim_options);
  instance->populate(env);
  DfsScheduler scheduler(&pass, &stats);
  sim::RunReport report;
  try {
    report = env.run(scheduler);
  } catch (const BranchPruned&) {
    outcome.pruned = true;  // prune kind was accounted inside pick()
    return outcome;
  }
  ++stats.schedules;
  stats.max_depth_seen = std::max(stats.max_depth_seen, report.total_steps);
  if (report.step_limit_hit) {
    ++stats.truncated;
    outcome.truncated = true;
    return outcome;
  }
  outcome.violation = instance->check(env, report);
  if (outcome.violation.has_value()) outcome.decisions = env.decisions();
  return outcome;
}

/// Replays `tape` (with round-robin completion past its end) and re-checks.
struct AttemptResult {
  bool reproduced = false;
  std::string violation;
  std::vector<int> canonical;
  std::uint64_t divergences = 0;
};

AttemptResult attempt_tape(const ExplorableSystem& system,
                           const ExploreOptions& opts,
                           const std::vector<int>& tape) {
  AttemptResult result;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = true;  // checks may read the trace on replay
  sim::SimEnv env(sim_options);
  instance->populate(env);
  sim::ReplayScheduler scheduler(tape);
  const sim::RunReport report = env.run(scheduler);
  result.divergences = scheduler.divergences();
  if (report.step_limit_hit) return result;
  const auto violation = instance->check(env, report);
  if (!violation.has_value()) return result;
  result.reproduced = true;
  result.violation = *violation;
  result.canonical = env.decisions();
  return result;
}

}  // namespace

Counterexample minimize_counterexample(const ExplorableSystem& system,
                                       Counterexample cex,
                                       const ExploreOptions& options,
                                       ExploreStats* stats) {
  const auto count_run = [&] {
    if (stats != nullptr) ++stats->shrink_runs;
  };
  // Canonicalize up front and keep `best` canonical throughout: always the
  // *complete* decision sequence of a violating run, so ReplayScheduler
  // re-executes the result verbatim — zero divergences, no silent fallback.
  count_run();
  AttemptResult current = attempt_tape(system, options, cex.decisions);
  expects(current.reproduced,
          "counterexample does not reproduce before minimization "
          "(nondeterministic system factory?)");
  std::vector<int> best = std::move(current.canonical);
  std::string violation = std::move(current.violation);
  cex.shrunk_from = std::max(cex.decisions.size(), best.size());

  // Greedy ddmin-style chunk deletion: drop spans of halving size wherever
  // the violation still reproduces.  The fallback completes a truncated
  // candidate along a possibly *longer* schedule (LL/SC retry loops make
  // step counts schedule-dependent), so a deletion is accepted only when
  // its canonical tape is a strict length win.
  for (std::size_t chunk = std::max<std::size_t>(best.size() / 2, 1);;
       chunk /= 2) {
    std::size_t start = 0;
    while (start < best.size()) {
      const std::size_t len = std::min(chunk, best.size() - start);
      std::vector<int> candidate;
      candidate.reserve(best.size() - len);
      candidate.insert(candidate.end(), best.begin(),
                       best.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       best.begin() + static_cast<std::ptrdiff_t>(start + len),
                       best.end());
      count_run();
      AttemptResult attempt = attempt_tape(system, options, candidate);
      if (attempt.reproduced && attempt.canonical.size() < best.size()) {
        best = std::move(attempt.canonical);
        violation = std::move(attempt.violation);
        // retry the same start position against the new, shorter tape
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
  }

  cex.decisions = std::move(best);
  cex.violation = std::move(violation);
  return cex;
}

ReplayOutcome replay_counterexample(const ExplorableSystem& system,
                                    const Counterexample& cex,
                                    const ExploreOptions& options) {
  ReplayOutcome outcome;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = options.max_depth;
  sim_options.record_trace = true;
  sim::SimEnv env(sim_options);
  instance->populate(env);
  sim::ReplayScheduler scheduler(cex.decisions);
  outcome.report = env.run(scheduler);
  outcome.divergences = scheduler.divergences();
  outcome.truncated = outcome.report.step_limit_hit;
  if (!outcome.truncated) {
    const auto violation = instance->check(env, outcome.report);
    if (violation.has_value()) {
      outcome.violated = true;
      outcome.violation = *violation;
    }
  }
  return outcome;
}

ExploreResult explore(const ExplorableSystem& system,
                      const ExploreOptions& options) {
  ExploreResult result;

  // Chess-style iterative bounding: sweep small budgets first so the
  // simplest refutation surfaces; a budget that cut nothing covered the
  // whole space, making larger budgets redundant.
  std::vector<int> budgets;
  if (options.preemption_bound >= 0 && options.iterative) {
    for (int b = 0; b <= options.preemption_bound; ++b) budgets.push_back(b);
  } else {
    budgets.push_back(options.preemption_bound);
  }

  bool cap_hit = false;
  bool stopped = false;
  bool last_pass_budget_limited = false;
  for (const int budget : budgets) {
    PassState pass;
    pass.budget = budget;
    pass.use_por = options.use_por;
    for (;;) {
      if (result.stats.schedules >= options.max_schedules) {
        cap_hit = true;
        break;
      }
      const RunOutcome outcome = run_one(system, options, pass, result.stats);
      if (outcome.violation.has_value()) {
        Counterexample cex;
        cex.system = system.name();
        cex.processes = system.process_count();
        cex.violation = *outcome.violation;
        cex.decisions = outcome.decisions;
        cex.shrunk_from = outcome.decisions.size();
        if (options.minimize) {
          cex = minimize_counterexample(system, std::move(cex), options,
                                        &result.stats);
        }
        result.violations.push_back(std::move(cex));
        if (options.stop_at_first_violation ||
            result.violations.size() >= options.max_violations) {
          stopped = true;
          break;
        }
      }
      if (!advance(pass)) break;
    }
    last_pass_budget_limited = pass.budget_limited;
    if (cap_hit || stopped) break;
    if (!pass.budget_limited) break;  // space fully covered at this budget
  }

  result.exhausted = !cap_hit && !stopped && !last_pass_budget_limited &&
                     result.stats.truncated == 0;
  return result;
}

// ---------------------------------------------------------------- reporting

std::string ExploreStats::summary() const {
  std::ostringstream out;
  out << "schedules=" << schedules << " transitions=" << transitions
      << " sleep-prunes=" << sleep_set_prunes
      << " preemption-prunes=" << preemption_prunes
      << " truncated=" << truncated << " max-depth=" << max_depth_seen
      << " shrink-runs=" << shrink_runs;
  return out.str();
}

std::string ExploreResult::summary() const {
  std::ostringstream out;
  out << stats.summary() << (exhausted ? " [exhaustive]" : " [bounded]");
  if (violations.empty()) {
    out << " no violations";
  } else {
    for (const auto& cex : violations) {
      out << "\n  VIOLATION (" << cex.decisions.size() << " decisions, from "
          << cex.shrunk_from << "): " << cex.violation;
    }
  }
  return out.str();
}

// ----------------------------------------------------------------- artifact

std::string Counterexample::to_artifact() const {
  std::ostringstream out;
  std::string flat = violation;
  std::replace(flat.begin(), flat.end(), '\n', ' ');
  out << "bss-counterexample v1\n";
  out << "system: " << system << "\n";
  out << "processes: " << processes << "\n";
  out << "shrunk-from: " << shrunk_from << "\n";
  out << "violation: " << flat << "\n";
  out << "decisions:";
  for (const int pid : decisions) out << ' ' << pid;
  out << "\n";
  return out.str();
}

std::optional<Counterexample> Counterexample::from_artifact(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "bss-counterexample v1") {
    return std::nullopt;
  }
  Counterexample cex;
  bool saw_decisions = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (key == "system") {
      cex.system = value;
    } else if (key == "processes") {
      cex.processes = std::stoi(value);
    } else if (key == "shrunk-from") {
      cex.shrunk_from = static_cast<std::size_t>(std::stoull(value));
    } else if (key == "violation") {
      cex.violation = value;
    } else if (key == "decisions") {
      std::istringstream pids(value);
      int pid = 0;
      while (pids >> pid) cex.decisions.push_back(pid);
      saw_decisions = true;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_decisions) return std::nullopt;
  return cex;
}

}  // namespace bss::explore
