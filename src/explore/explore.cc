#include "explore/explore.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::explore {

bool ops_commute(const sim::OpDesc& a, const sim::OpDesc& b) {
  if (a.object != b.object) return true;
  // Anything that is not a plain read (write, cas, ll, sc, …) may change the
  // object or its hidden state (LL links), so it conflicts with every other
  // access to the same object.
  return a.op == "read" && b.op == "read";
}

namespace {

/// Sentinel for "no choice"; distinct from every encoded action (grants are
/// >= 0, faults are small negatives).
constexpr int kNoChoice = std::numeric_limits<int>::min();

constexpr std::uint64_t pid_bit(int pid) {
  return std::uint64_t{1} << static_cast<unsigned>(pid);
}

/// One node of the DFS tree: the scheduling state after `index` decisions
/// (grants and faults alike).
struct Frame {
  std::vector<int> runnable;           ///< ascending pids runnable here
  std::vector<sim::OpDesc> pending;    ///< by pid; valid for runnable pids
  std::uint64_t restartable = 0;       ///< runnable pids with a restart hook
  std::uint64_t sc_ready = 0;          ///< runnable pids parked on an SC
  std::uint64_t sc_failed_before = 0;  ///< pids already failed spuriously
  std::vector<int> entry_sleep;        ///< sleeping pids on entry (sorted)
  std::vector<int> done;               ///< sibling choices already explored
  int chosen = kNoChoice;              ///< choice taken on the current path
  int prev_grant = -1;                 ///< pid granted most recently before
  int preemptions_before = 0;          ///< preemptions in decisions 0..index-1
  int faults_before = 0;               ///< faults injected in 0..index-1
};

bool contains(const std::vector<int>& values, int value) {
  return std::find(values.begin(), values.end(), value) != values.end();
}

struct PassState {
  std::vector<Frame> frames;
  int budget = -1;        ///< preemption budget; -1 = unbounded
  int fault_budget = 0;   ///< fault budget; 0 = no fault exploration
  bool use_por = true;
  bool explore_crashes = false;
  bool explore_restarts = false;
  bool explore_sc = false;
  bool budget_limited = false;  ///< some branch was cut by the preemption budget
  bool fault_limited = false;   ///< some branch was cut by the fault budget
};

/// Granting away from the most recently granted (still-runnable) process
/// costs one preemption.  Fault actions are not grants: a crash/restart of
/// another process does not preempt the running one.
int choice_cost(const Frame& frame, int grant_pid) {
  if (frame.prev_grant < 0 || grant_pid == frame.prev_grant) return 0;
  return contains(frame.runnable, frame.prev_grant) ? 1 : 0;
}

bool grant_feasible(const Frame& frame, int pid, const PassState& pass) {
  if (contains(frame.done, pid)) return false;
  if (pass.use_por && contains(frame.entry_sleep, pid)) return false;
  if (pass.budget >= 0 &&
      frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
    return false;
  }
  return true;
}

/// First unexplored, feasible choice at `frame`: grants first (continuing
/// prev_grant is free, then ascending pid order), then — fault budget
/// permitting — spurious-SC, crash and restart injections in pid order.
/// Sleep sets apply to plain grants only: a spurious-failing SC has a
/// different effect than the explored grant, so it never sleeps.
int select_choice(const Frame& frame, const PassState& pass) {
  if (contains(frame.runnable, frame.prev_grant) &&
      grant_feasible(frame, frame.prev_grant, pass)) {
    return frame.prev_grant;
  }
  for (const int pid : frame.runnable) {
    if (pid == frame.prev_grant) continue;
    if (grant_feasible(frame, pid, pass)) return pid;
  }
  if (pass.fault_budget > 0 && frame.faults_before < pass.fault_budget) {
    if (pass.explore_sc) {
      for (const int pid : frame.runnable) {
        if ((frame.sc_ready & pid_bit(pid)) == 0) continue;
        if ((frame.sc_failed_before & pid_bit(pid)) != 0) continue;
        const int choice = encode_action(ActionKind::kScFailure, pid);
        if (contains(frame.done, choice)) continue;
        // A spurious SC still performs the (failing) operation, so the
        // preemption cost of granting `pid` applies.
        if (pass.budget >= 0 &&
            frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
          continue;
        }
        return choice;
      }
    }
    if (pass.explore_crashes) {
      for (const int pid : frame.runnable) {
        const int choice = encode_action(ActionKind::kCrash, pid);
        if (!contains(frame.done, choice)) return choice;
      }
    }
    if (pass.explore_restarts) {
      for (const int pid : frame.runnable) {
        if ((frame.restartable & pid_bit(pid)) == 0) continue;
        const int choice = encode_action(ActionKind::kRestart, pid);
        if (!contains(frame.done, choice)) return choice;
      }
    }
  }
  return kNoChoice;
}

/// Materializes the frontier node reached with `runnable` after `parent`
/// took its chosen action (parent == nullptr at the root).
Frame make_frame(const sim::SimEnv& env, std::vector<int> runnable,
                 const PassState& pass, const Frame* parent) {
  Frame frame;
  frame.runnable = std::move(runnable);
  frame.pending.resize(static_cast<std::size_t>(env.process_count()));
  for (const int pid : frame.runnable) {
    frame.pending[static_cast<std::size_t>(pid)] = env.pending_of(pid);
    if (env.restart_supported(pid)) frame.restartable |= pid_bit(pid);
    if (frame.pending[static_cast<std::size_t>(pid)].op == "sc") {
      frame.sc_ready |= pid_bit(pid);
    }
  }
  if (parent == nullptr) return frame;

  const Action parent_action = decode_action(parent->chosen);
  const bool parent_granted = parent_action.kind == ActionKind::kGrant ||
                              parent_action.kind == ActionKind::kScFailure;
  frame.sc_failed_before = parent->sc_failed_before;
  if (parent_action.kind == ActionKind::kScFailure) {
    frame.sc_failed_before |= pid_bit(parent_action.pid);
  }
  frame.faults_before = parent->faults_before +
                        (parent_action.kind == ActionKind::kGrant ? 0 : 1);
  if (parent_granted) {
    frame.prev_grant = parent_action.pid;
    frame.preemptions_before =
        parent->preemptions_before + choice_cost(*parent, parent_action.pid);
    if (pass.use_por) {
      // Sleep-set propagation: everything asleep at the parent (inherited
      // or explored there) stays asleep iff it commutes with the operation
      // the parent's choice just performed.  Only plain grants in the
      // parent's done set count — fault siblings are not operations.
      const auto& parent_op =
          parent->pending[static_cast<std::size_t>(parent_action.pid)];
      const auto inherit = [&](int pid) {
        if (pid == parent_action.pid) return;
        if (ops_commute(parent->pending[static_cast<std::size_t>(pid)],
                        parent_op)) {
          frame.entry_sleep.push_back(pid);
        }
      };
      for (const int pid : parent->entry_sleep) inherit(pid);
      for (const int choice : parent->done) {
        const Action done_action = decode_action(choice);
        if (done_action.kind == ActionKind::kGrant) inherit(done_action.pid);
      }
      std::sort(frame.entry_sleep.begin(), frame.entry_sleep.end());
    }
  } else {
    // Crash/restart: not a shared-memory operation, so the commutation
    // bookkeeping does not extend across it — start this node with an empty
    // sleep set (sound: strictly less pruning).  Continuing the previously
    // granted process after an unrelated fault is still free.
    frame.prev_grant = parent->prev_grant;
    frame.preemptions_before = parent->preemptions_before;
  }
  return frame;
}

/// Accounts the branches the filters cut at a freshly materialized node
/// (all filters are functions of the frame alone, so counting once at
/// creation is exact).
void account_frame(const Frame& frame, PassState& pass, ExploreStats& stats) {
  for (const int pid : frame.runnable) {
    if (pass.use_por && contains(frame.entry_sleep, pid)) {
      ++stats.sleep_set_prunes;
      continue;
    }
    if (pass.budget >= 0 &&
        frame.preemptions_before + choice_cost(frame, pid) > pass.budget) {
      ++stats.preemption_prunes;
      pass.budget_limited = true;
    }
  }
  // Note: this must also count at fault_budget == 0 (where every fault
  // choice is cut) — the iterative sweep keys "deepen the fault budget?"
  // off fault_limited.
  const bool faults_enabled =
      pass.explore_crashes || pass.explore_restarts || pass.explore_sc;
  if (faults_enabled && frame.faults_before >= pass.fault_budget) {
    std::uint64_t cut = 0;
    if (pass.explore_crashes) cut += frame.runnable.size();
    for (const int pid : frame.runnable) {
      if (pass.explore_restarts && (frame.restartable & pid_bit(pid)) != 0) {
        ++cut;
      }
      if (pass.explore_sc && (frame.sc_ready & pid_bit(pid)) != 0 &&
          (frame.sc_failed_before & pid_bit(pid)) == 0) {
        ++cut;
      }
    }
    if (cut > 0) {
      stats.fault_prunes += cut;
      pass.fault_limited = true;
    }
  }
}

/// Backtracks to the deepest node with an unexplored sibling; returns false
/// when the whole space (at this budget pair) is done.
bool advance(PassState& pass) {
  auto& frames = pass.frames;
  while (!frames.empty()) {
    Frame& frame = frames.back();
    frame.done.push_back(frame.chosen);
    frame.chosen = kNoChoice;
    const int next = select_choice(frame, pass);
    if (next != kNoChoice) {
      frame.chosen = next;
      return true;
    }
    frames.pop_back();
  }
  return false;
}

std::vector<int> parked_pids(const sim::SimEnv& env) {
  std::vector<int> runnable;
  for (int pid = 0; pid < env.process_count(); ++pid) {
    if (env.is_parked(pid)) runnable.push_back(pid);
  }
  return runnable;
}

/// Fault-site coordinate: (encoded action, victim's lifetime op count).
using FaultPoint = std::pair<int, std::uint64_t>;

struct RunOutcome {
  bool pruned = false;
  bool truncated = false;
  std::optional<std::string> violation;
  std::vector<int> decisions;
};

RunOutcome run_one(const ExplorableSystem& system, const ExploreOptions& opts,
                   PassState& pass, ExploreStats& stats,
                   std::set<FaultPoint>* fault_points) {
  RunOutcome outcome;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = opts.record_trace;
  sim::SimEnv env(sim_options);
  instance->populate(env);
  expects(env.process_count() <= 64,
          "the fault-aware explorer supports at most 64 processes");
  env.start();

  std::vector<int> actions;
  std::size_t depth = 0;
  std::uint64_t granted = 0;
  bool truncated = false;
  for (;;) {
    std::vector<int> runnable = parked_pids(env);
    if (runnable.empty()) break;
    if (granted >= opts.max_depth) {
      truncated = true;
      break;
    }

    int choice = kNoChoice;
    if (depth < pass.frames.size()) {
      // Prefix replay: the factory is deterministic, so the runnable set
      // must match what the previous run recorded here.
      const Frame& frame = pass.frames[depth];
      if (frame.runnable != runnable) {
        throw std::logic_error(
            "schedule exploration diverged on prefix replay: the system "
            "factory is nondeterministic");
      }
      choice = frame.chosen;
    } else {
      const Frame* parent = depth > 0 ? &pass.frames[depth - 1] : nullptr;
      Frame frame = make_frame(env, std::move(runnable), pass, parent);
      account_frame(frame, pass, stats);
      choice = select_choice(frame, pass);
      if (choice == kNoChoice) {
        env.finish();
        outcome.pruned = true;  // prune kinds were accounted above
        return outcome;
      }
      frame.chosen = choice;
      pass.frames.push_back(std::move(frame));
    }
    ++depth;

    const Action action = decode_action(choice);
    if (action.kind != ActionKind::kGrant) {
      ++stats.faults_injected;
      if (fault_points != nullptr) {
        fault_points->emplace(choice, env.steps_of(action.pid));
      }
    }
    switch (action.kind) {
      case ActionKind::kGrant:
        env.step_process(action.pid);
        ++granted;
        ++stats.transitions;
        break;
      case ActionKind::kScFailure:
        env.inject_sc_failure(action.pid);
        env.step_process(action.pid);
        ++granted;
        ++stats.transitions;
        break;
      case ActionKind::kCrash:
        env.kill_process(action.pid);
        break;
      case ActionKind::kRestart:
        env.restart_process(action.pid);
        break;
    }
    actions.push_back(choice);
  }
  env.finish();

  ++stats.schedules;
  stats.max_depth_seen = std::max(stats.max_depth_seen, granted);
  if (truncated) {
    ++stats.truncated;
    outcome.truncated = true;
    return outcome;
  }
  const sim::RunReport report = env.snapshot_report();
  outcome.violation = instance->check(env, report);
  if (outcome.violation.has_value()) outcome.decisions = std::move(actions);
  return outcome;
}

/// True iff `decision` can be applied to the current state: the pid is
/// parked, restarts need a hook, spurious SC needs a pending SC.
bool applicable(const sim::SimEnv& env, int decision) {
  const Action action = decode_action(decision);
  if (action.pid < 0 || action.pid >= env.process_count()) return false;
  if (!env.is_parked(action.pid)) return false;
  switch (action.kind) {
    case ActionKind::kGrant:
    case ActionKind::kCrash:
      return true;
    case ActionKind::kRestart:
      return env.restart_supported(action.pid);
    case ActionKind::kScFailure:
      return env.pending_of(action.pid).op == "sc";
  }
  return false;
}

/// Replays `tape` — grants and faults — skipping inapplicable entries and
/// completing round-robin past its end (each counted as a divergence, the
/// ReplayScheduler contract), then re-checks the property.
struct TapeResult {
  bool reproduced = false;
  std::string violation;
  std::vector<int> canonical;
  std::uint64_t divergences = 0;
  bool truncated = false;
  sim::RunReport report;
};

TapeResult run_tape(const ExplorableSystem& system, const ExploreOptions& opts,
                    const std::vector<int>& tape) {
  TapeResult result;
  auto instance = system.make();
  sim::SimOptions sim_options;
  sim_options.step_limit = opts.max_depth;
  sim_options.record_trace = true;  // checks may read the trace on replay
  sim::SimEnv env(sim_options);
  instance->populate(env);
  const int n = env.process_count();
  env.start();

  std::size_t next = 0;
  int rr_cursor = 0;
  std::uint64_t granted = 0;
  for (;;) {
    if (parked_pids(env).empty()) break;
    if (granted >= opts.max_depth) {
      result.truncated = true;
      break;
    }
    int choice = kNoChoice;
    while (next < tape.size()) {
      const int candidate = tape[next++];
      if (applicable(env, candidate)) {
        choice = candidate;
        break;
      }
      ++result.divergences;
    }
    if (choice == kNoChoice) {
      for (int i = 0; i < n; ++i) {
        const int pid = (rr_cursor + i) % n;
        if (env.is_parked(pid)) {
          choice = pid;
          rr_cursor = pid + 1;
          break;
        }
      }
      ++result.divergences;
    }
    const Action action = decode_action(choice);
    switch (action.kind) {
      case ActionKind::kGrant:
        env.step_process(action.pid);
        ++granted;
        break;
      case ActionKind::kScFailure:
        env.inject_sc_failure(action.pid);
        env.step_process(action.pid);
        ++granted;
        break;
      case ActionKind::kCrash:
        env.kill_process(action.pid);
        break;
      case ActionKind::kRestart:
        env.restart_process(action.pid);
        break;
    }
    result.canonical.push_back(choice);
  }
  env.finish();

  result.report = env.snapshot_report();
  result.report.step_limit_hit = result.truncated;
  if (result.truncated) return result;
  const auto violation = instance->check(env, result.report);
  if (violation.has_value()) {
    result.reproduced = true;
    result.violation = *violation;
  }
  return result;
}

}  // namespace

std::size_t Counterexample::fault_count() const {
  return static_cast<std::size_t>(
      std::count_if(decisions.begin(), decisions.end(),
                    [](int decision) { return is_fault_action(decision); }));
}

Counterexample minimize_counterexample(const ExplorableSystem& system,
                                       Counterexample cex,
                                       const ExploreOptions& options,
                                       ExploreStats* stats) {
  const auto count_run = [&] {
    if (stats != nullptr) ++stats->shrink_runs;
  };
  // Canonicalize up front and keep `best` canonical throughout: always the
  // *complete* decision sequence of a violating run, so the replayer
  // re-executes the result verbatim — zero divergences, no silent fallback.
  count_run();
  TapeResult current = run_tape(system, options, cex.decisions);
  expects(current.reproduced,
          "counterexample does not reproduce before minimization "
          "(nondeterministic system factory?)");
  std::vector<int> best = std::move(current.canonical);
  std::string violation = std::move(current.violation);
  cex.shrunk_from = std::max(cex.decisions.size(), best.size());

  // Greedy ddmin-style chunk deletion: drop spans of halving size wherever
  // the violation still reproduces.  The fallback completes a truncated
  // candidate along a possibly *longer* schedule (LL/SC retry loops make
  // step counts schedule-dependent), so a deletion is accepted only when
  // its canonical tape is a strict length win.  Fault entries are ordinary
  // tape entries here: spans containing them are dropped like any other,
  // so a violation that needs fewer faults shrinks to fewer faults.
  for (std::size_t chunk = std::max<std::size_t>(best.size() / 2, 1);;
       chunk /= 2) {
    std::size_t start = 0;
    while (start < best.size()) {
      const std::size_t len = std::min(chunk, best.size() - start);
      std::vector<int> candidate;
      candidate.reserve(best.size() - len);
      candidate.insert(candidate.end(), best.begin(),
                       best.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       best.begin() + static_cast<std::ptrdiff_t>(start + len),
                       best.end());
      count_run();
      TapeResult attempt = run_tape(system, options, candidate);
      if (attempt.reproduced && attempt.canonical.size() < best.size()) {
        best = std::move(attempt.canonical);
        violation = std::move(attempt.violation);
        // retry the same start position against the new, shorter tape
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
  }

  cex.decisions = std::move(best);
  cex.violation = std::move(violation);
  return cex;
}

ReplayOutcome replay_counterexample(const ExplorableSystem& system,
                                    const Counterexample& cex,
                                    const ExploreOptions& options) {
  TapeResult result = run_tape(system, options, cex.decisions);
  ReplayOutcome outcome;
  outcome.violated = result.reproduced;
  outcome.violation = std::move(result.violation);
  outcome.divergences = result.divergences;
  outcome.truncated = result.truncated;
  outcome.report = std::move(result.report);
  return outcome;
}

ExploreResult explore(const ExplorableSystem& system,
                      const ExploreOptions& options) {
  ExploreResult result;

  // Chess-style iterative bounding: sweep small budgets first so the
  // simplest refutation surfaces; a budget that cut nothing covered the
  // whole space, making larger budgets redundant.  Fault budgets sweep
  // outermost — a zero-fault refutation beats a one-fault one.
  std::vector<int> preemption_budgets;
  if (options.preemption_bound >= 0 && options.iterative) {
    for (int b = 0; b <= options.preemption_bound; ++b) {
      preemption_budgets.push_back(b);
    }
  } else {
    preemption_budgets.push_back(options.preemption_bound);
  }
  const bool faults_on =
      options.fault_bound > 0 &&
      (options.explore_crashes || options.explore_restarts ||
       options.explore_sc_failures);
  std::vector<int> fault_budgets;
  if (!faults_on) {
    fault_budgets.push_back(0);
  } else if (options.iterative) {
    for (int b = 0; b <= options.fault_bound; ++b) fault_budgets.push_back(b);
  } else {
    fault_budgets.push_back(options.fault_bound);
  }

  std::set<FaultPoint> fault_points;
  bool cap_hit = false;
  bool stopped = false;
  bool last_pass_budget_limited = false;
  for (const int fault_budget : fault_budgets) {
    bool fault_limited_at_this_budget = false;
    for (const int budget : preemption_budgets) {
      PassState pass;
      pass.budget = budget;
      pass.fault_budget = faults_on ? fault_budget : 0;
      pass.use_por = options.use_por;
      pass.explore_crashes = faults_on && options.explore_crashes;
      pass.explore_restarts = faults_on && options.explore_restarts;
      pass.explore_sc = faults_on && options.explore_sc_failures;
      for (;;) {
        if (result.stats.schedules >= options.max_schedules) {
          cap_hit = true;
          break;
        }
        const RunOutcome outcome =
            run_one(system, options, pass, result.stats, &fault_points);
        if (outcome.violation.has_value()) {
          Counterexample cex;
          cex.system = system.name();
          cex.processes = system.process_count();
          cex.violation = *outcome.violation;
          cex.decisions = outcome.decisions;
          cex.shrunk_from = outcome.decisions.size();
          if (options.minimize) {
            cex = minimize_counterexample(system, std::move(cex), options,
                                          &result.stats);
          }
          result.violations.push_back(std::move(cex));
          if (options.stop_at_first_violation ||
              result.violations.size() >= options.max_violations) {
            stopped = true;
            break;
          }
        }
        if (!advance(pass)) break;
      }
      last_pass_budget_limited = pass.budget_limited;
      fault_limited_at_this_budget = pass.fault_limited;
      if (cap_hit || stopped) break;
      if (!pass.budget_limited) break;  // space fully covered at this budget
    }
    if (cap_hit || stopped) break;
    // A fault budget that cut nothing covered the whole bounded-fault
    // space; deeper fault budgets would only re-explore it.
    if (!fault_limited_at_this_budget) break;
  }

  result.stats.fault_points = fault_points.size();
  result.exhausted = !cap_hit && !stopped && !last_pass_budget_limited &&
                     result.stats.truncated == 0;
  return result;
}

// ---------------------------------------------------------------- reporting

std::string ExploreStats::summary() const {
  std::ostringstream out;
  out << "schedules=" << schedules << " transitions=" << transitions
      << " sleep-prunes=" << sleep_set_prunes
      << " preemption-prunes=" << preemption_prunes
      << " truncated=" << truncated << " max-depth=" << max_depth_seen
      << " shrink-runs=" << shrink_runs;
  if (faults_injected > 0 || fault_prunes > 0) {
    out << " faults=" << faults_injected << " fault-points=" << fault_points
        << " fault-prunes=" << fault_prunes;
  }
  return out.str();
}

std::string ExploreResult::summary() const {
  std::ostringstream out;
  out << stats.summary() << (exhausted ? " [exhaustive]" : " [bounded]");
  if (violations.empty()) {
    out << " no violations";
  } else {
    for (const auto& cex : violations) {
      out << "\n  VIOLATION (" << cex.decisions.size() << " decisions, "
          << cex.fault_count() << " faults, from " << cex.shrunk_from
          << "): " << cex.violation;
    }
  }
  return out.str();
}

// ----------------------------------------------------------------- artifact

std::string Counterexample::to_artifact() const {
  std::ostringstream out;
  std::string flat = violation;
  std::replace(flat.begin(), flat.end(), '\n', ' ');
  // v1 (grants only) stays bit-for-bit the historical format; fault tapes
  // need the v2 token syntax.
  out << (fault_count() == 0 ? "bss-counterexample v1\n"
                             : "bss-counterexample v2\n");
  out << "system: " << system << "\n";
  out << "processes: " << processes << "\n";
  out << "shrunk-from: " << shrunk_from << "\n";
  out << "violation: " << flat << "\n";
  out << "decisions:";
  for (const int decision : decisions) {
    const Action action = decode_action(decision);
    switch (action.kind) {
      case ActionKind::kGrant:
        out << ' ' << action.pid;
        break;
      case ActionKind::kCrash:
        out << " c" << action.pid;
        break;
      case ActionKind::kRestart:
        out << " r" << action.pid;
        break;
      case ActionKind::kScFailure:
        out << " s" << action.pid;
        break;
    }
  }
  out << "\n";
  return out.str();
}

std::optional<Counterexample> Counterexample::from_artifact(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      (line != "bss-counterexample v1" && line != "bss-counterexample v2")) {
    return std::nullopt;
  }
  Counterexample cex;
  bool saw_decisions = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (key == "system") {
      cex.system = value;
    } else if (key == "processes") {
      cex.processes = std::stoi(value);
    } else if (key == "shrunk-from") {
      cex.shrunk_from = static_cast<std::size_t>(std::stoull(value));
    } else if (key == "violation") {
      cex.violation = value;
    } else if (key == "decisions") {
      std::istringstream tokens(value);
      std::string token;
      while (tokens >> token) {
        ActionKind kind = ActionKind::kGrant;
        std::size_t offset = 0;
        switch (token.front()) {
          case 'c':
            kind = ActionKind::kCrash;
            offset = 1;
            break;
          case 'r':
            kind = ActionKind::kRestart;
            offset = 1;
            break;
          case 's':
            kind = ActionKind::kScFailure;
            offset = 1;
            break;
          default:
            break;
        }
        int pid = 0;
        try {
          std::size_t used = 0;
          pid = std::stoi(token.substr(offset), &used);
          if (used != token.size() - offset) return std::nullopt;
        } catch (const std::exception&) {
          return std::nullopt;
        }
        if (pid < 0) return std::nullopt;
        cex.decisions.push_back(encode_action(kind, pid));
      }
      saw_decisions = true;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_decisions) return std::nullopt;
  return cex;
}

}  // namespace bss::explore
