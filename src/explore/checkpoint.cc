#include "explore/checkpoint.h"

#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "obs/runreport.h"
#include "util/checked.h"

namespace bss::explore {

namespace json = bss::obs::json;

namespace {

// ------------------------------------------------------------- serialization

/// 128-bit cache keys serialize as 32 lowercase hex chars (lo then hi) —
/// fixed width keeps the artifact canonical and the parser strict.
std::string fp_key_to_hex(std::uint64_t lo, std::uint64_t hi) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi));
  return std::string(buf);
}

json::Value fp_partials_to_json(
    const std::vector<FingerprintPartial>& partials) {
  json::Array array;
  for (const FingerprintPartial& partial : partials) {
    json::Array pair;
    pair.emplace_back(fp_key_to_hex(partial.lo, partial.hi));
    pair.emplace_back(partial.dirty);
    array.emplace_back(std::move(pair));
  }
  return json::Value(std::move(array));
}

json::Value stats_to_json(const ExploreStats& stats) {
  json::Object object;
  object.emplace("schedules", json::Value(stats.schedules));
  object.emplace("transitions", json::Value(stats.transitions));
  object.emplace("timer_grants", json::Value(stats.timer_grants));
  object.emplace("sleep_set_prunes", json::Value(stats.sleep_set_prunes));
  object.emplace("preemption_prunes", json::Value(stats.preemption_prunes));
  object.emplace("truncated", json::Value(stats.truncated));
  object.emplace("max_depth_seen", json::Value(stats.max_depth_seen));
  object.emplace("shrink_runs", json::Value(stats.shrink_runs));
  object.emplace("shrink_budget_hits", json::Value(stats.shrink_budget_hits));
  object.emplace("fault_prunes", json::Value(stats.fault_prunes));
  object.emplace("faults_injected", json::Value(stats.faults_injected));
  // Omitted when zero so prune-off artifacts keep their historical byte
  // shape; parses back as zero either way.
  if (stats.fingerprint_prunes > 0) {
    object.emplace("fingerprint_prunes",
                   json::Value(stats.fingerprint_prunes));
  }
  object.emplace("fault_points", json::Value(stats.fault_points));
  return json::Value(std::move(object));
}

json::Value audit_to_json(const AuditSummary& audit) {
  json::Object object;
  object.emplace("enabled", json::Value(audit.enabled));
  object.emplace("windows", json::Value(audit.windows));
  object.emplace("accesses", json::Value(audit.accesses));
  object.emplace("ledger_violations", json::Value(audit.ledger_violations));
  object.emplace("schedules_cross_checked",
                 json::Value(audit.schedules_cross_checked));
  object.emplace("pairs_considered", json::Value(audit.pairs_considered));
  object.emplace("swaps_replayed", json::Value(audit.swaps_replayed));
  object.emplace("commute_mismatches", json::Value(audit.commute_mismatches));
  json::Array findings;
  for (const std::string& finding : audit.findings) {
    findings.emplace_back(finding);
  }
  object.emplace("findings", json::Value(std::move(findings)));
  return json::Value(std::move(object));
}

json::Value fault_points_to_json(
    const std::vector<std::pair<int, std::uint64_t>>& points) {
  json::Array array;
  for (const auto& [action, steps] : points) {
    json::Array pair;
    pair.emplace_back(action_token(action));
    pair.emplace_back(steps);
    array.emplace_back(std::move(pair));
  }
  return json::Value(std::move(array));
}

json::Value options_to_json(const CheckpointOptions& options) {
  json::Object object;
  object.emplace("max_depth", json::Value(options.max_depth));
  object.emplace("preemption_bound", json::Value(options.preemption_bound));
  object.emplace("iterative", json::Value(options.iterative));
  object.emplace("use_por", json::Value(options.use_por));
  object.emplace("max_schedules", json::Value(options.max_schedules));
  object.emplace("stop_at_first_violation",
                 json::Value(options.stop_at_first_violation));
  object.emplace("max_violations", json::Value(options.max_violations));
  object.emplace("minimize", json::Value(options.minimize));
  object.emplace("shrink_budget", json::Value(options.shrink_budget));
  object.emplace("record_trace", json::Value(options.record_trace));
  object.emplace("fault_bound", json::Value(options.fault_bound));
  object.emplace("explore_crashes", json::Value(options.explore_crashes));
  object.emplace("explore_restarts", json::Value(options.explore_restarts));
  object.emplace("explore_sc_failures",
                 json::Value(options.explore_sc_failures));
  object.emplace("audit", json::Value(options.audit));
  object.emplace("audit_commute_sample",
                 json::Value(static_cast<std::uint64_t>(
                     options.audit_commute_sample)));
  // Serialized only when set, so prune-off artifacts keep their historical
  // byte shape (and old artifacts parse as fingerprint_prune == false).
  if (options.fingerprint_prune) {
    object.emplace("fingerprint_prune", json::Value(true));
  }
  return json::Value(std::move(object));
}

json::Value unit_to_json(const CheckpointUnit& unit) {
  json::Object object;
  json::Array frames;
  for (const CheckpointFrame& frame : unit.frames) {
    json::Object frame_object;
    frame_object.emplace("chosen", json::Value(action_token(frame.chosen)));
    json::Array done;
    for (const int decision : frame.done) {
      done.emplace_back(action_token(decision));
    }
    frame_object.emplace("done", json::Value(std::move(done)));
    // Omitted when clean (and always on prune-off campaigns, where it
    // never sets) — historical frame shape preserved.
    if (frame.fp_dirty) frame_object.emplace("fp_dirty", json::Value(true));
    frames.emplace_back(std::move(frame_object));
  }
  object.emplace("frames", json::Value(std::move(frames)));
  object.emplace("floor", json::Value(unit.floor));
  object.emplace("complete", json::Value(unit.complete));
  object.emplace("stats", stats_to_json(unit.stats));
  object.emplace("audit", audit_to_json(unit.audit));
  object.emplace("fault_points", fault_points_to_json(unit.fault_points));
  json::Array violations;
  for (const CheckpointViolation& violation : unit.violations) {
    json::Object violation_object;
    violation_object.emplace("artifact",
                             json::Value(violation.cex.to_artifact()));
    violation_object.emplace("stats", stats_to_json(violation.stats));
    violation_object.emplace("audit", audit_to_json(violation.audit));
    violation_object.emplace("fault_points",
                             fault_points_to_json(violation.fault_points));
    violation_object.emplace("budget_limited",
                             json::Value(violation.budget_limited));
    violation_object.emplace("fault_limited",
                             json::Value(violation.fault_limited));
    violations.emplace_back(std::move(violation_object));
  }
  object.emplace("violations", json::Value(std::move(violations)));
  object.emplace("budget_limited", json::Value(unit.budget_limited));
  object.emplace("fault_limited", json::Value(unit.fault_limited));
  object.emplace("cap_hit", json::Value(unit.cap_hit));
  object.emplace("stopped", json::Value(unit.stopped));
  if (!unit.fp_partials.empty()) {
    object.emplace("fp_partials", fp_partials_to_json(unit.fp_partials));
  }
  return json::Value(std::move(object));
}

// ------------------------------------------------------------------- parsing
//
// Strict shape enforcement mirrors the runreport gate: every listed key is
// required, unknown keys reject (schema drift must bump the version), and
// type/range violations throw InvariantError with the offending location —
// from_artifact catches and surfaces them as one-line errors.

/// Every `required` key must be present; `optional` keys may be absent
/// (how fingerprint-prune fields extend the schema without invalidating
/// pre-existing artifacts); anything else rejects.
void check_keys(const json::Object& object,
                std::initializer_list<const char*> required,
                std::initializer_list<const char*> optional,
                const char* where) {
  for (const char* key : required) {
    expects(object.count(key) != 0,
            std::string(where) + ": missing required key '" + key + "'");
  }
  for (const auto& [key, value] : object) {
    bool known = false;
    for (const char* candidate : required) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    for (const char* candidate : optional) {
      if (known) break;
      if (key == candidate) known = true;
    }
    expects(known, std::string(where) + ": unknown key '" + key + "'");
  }
}

void check_keys(const json::Object& object,
                std::initializer_list<const char*> keys, const char* where) {
  check_keys(object, keys, {}, where);
}

const json::Object& get_object(const json::Object& object,
                               const std::string& key, const char* where) {
  const auto it = object.find(key);
  expects(it != object.end() && it->second.is_object(),
          std::string(where) + ": '" + key + "' must be an object");
  return it->second.as_object();
}

const json::Array& get_array(const json::Object& object,
                             const std::string& key, const char* where) {
  const auto it = object.find(key);
  expects(it != object.end() && it->second.is_array(),
          std::string(where) + ": '" + key + "' must be an array");
  return it->second.as_array();
}

std::uint64_t get_u64(const json::Object& object, const std::string& key,
                      const char* where) {
  const auto it = object.find(key);
  expects(it != object.end() && it->second.is_int() &&
              it->second.as_int() >= 0,
          std::string(where) + ": '" + key +
              "' must be a non-negative integer");
  return static_cast<std::uint64_t>(it->second.as_int());
}

int get_int(const json::Object& object, const std::string& key,
            const char* where) {
  const auto it = object.find(key);
  expects(it != object.end() && it->second.is_int(),
          std::string(where) + ": '" + key + "' must be an integer");
  return checked_cast<int>(it->second.as_int());
}

bool get_bool(const json::Object& object, const std::string& key,
              const char* where) {
  const auto it = object.find(key);
  expects(it != object.end() && it->second.is_bool(),
          std::string(where) + ": '" + key + "' must be a boolean");
  return it->second.as_bool();
}

const std::string& get_string(const json::Object& object,
                              const std::string& key, const char* where) {
  const auto it = object.find(key);
  expects(it != object.end() && it->second.is_string(),
          std::string(where) + ": '" + key + "' must be a string");
  return it->second.as_string();
}

std::uint64_t get_u64_or(const json::Object& object, const std::string& key,
                         std::uint64_t fallback, const char* where) {
  if (object.count(key) == 0) return fallback;
  return get_u64(object, key, where);
}

bool get_bool_or(const json::Object& object, const std::string& key,
                 bool fallback, const char* where) {
  if (object.count(key) == 0) return fallback;
  return get_bool(object, key, where);
}

/// Parses a 32-hex-char cache key back into its (lo, hi) halves; anything
/// but exactly 32 lowercase hex digits rejects.
std::pair<std::uint64_t, std::uint64_t> parse_fp_key(const std::string& text,
                                                     const char* where) {
  expects(text.size() == 32,
          std::string(where) + ": cache key must be 32 hex chars");
  std::uint64_t halves[2] = {0, 0};
  for (std::size_t i = 0; i < 32; ++i) {
    const char c = text[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      expects(false, std::string(where) +
                         ": cache key must be lowercase hex");
    }
    halves[i / 16] = (halves[i / 16] << 4) | digit;
  }
  return {halves[0], halves[1]};
}

std::vector<FingerprintPartial> parse_fp_partials(const json::Object& parent,
                                                  const std::string& key,
                                                  const char* where) {
  std::vector<FingerprintPartial> partials;
  if (parent.count(key) == 0) return partials;  // pre-prune artifacts
  for (const json::Value& entry : get_array(parent, key, where)) {
    expects(entry.is_array() && entry.as_array().size() == 2,
            std::string(where) +
                ": fp partial must be a [key, dirty] pair");
    const json::Value& key_value = entry.as_array()[0];
    expects(key_value.is_string(),
            std::string(where) + ": fp partial key must be a string");
    const auto [lo, hi] = parse_fp_key(key_value.as_string(), where);
    const json::Value& dirty = entry.as_array()[1];
    expects(dirty.is_bool(),
            std::string(where) + ": fp partial dirty must be a boolean");
    FingerprintPartial partial;
    partial.lo = lo;
    partial.hi = hi;
    partial.dirty = dirty.as_bool();
    partials.push_back(partial);
  }
  return partials;
}

/// Decision tokens go through the shared parser plus the process-count
/// range check — an out-of-range pid in a checkpoint must reject exactly
/// like one in a counterexample artifact.
int parse_decision(const json::Value& value, int processes,
                   const char* where) {
  expects(value.is_string(),
          std::string(where) + ": decision token must be a string");
  const std::optional<int> decision = parse_action_token(value.as_string());
  expects(decision.has_value(),
          std::string(where) + ": malformed decision token '" +
              value.as_string() + "'");
  const Action action = decode_action(*decision);
  expects(action.pid < processes,
          std::string(where) + ": decision token pid " +
              std::to_string(action.pid) + " out of range for " +
              std::to_string(processes) + " processes");
  return *decision;
}

ExploreStats parse_stats(const json::Object& parent, const std::string& key,
                         const char* where) {
  const json::Object& object = get_object(parent, key, where);
  check_keys(object,
             {"schedules", "transitions", "timer_grants", "sleep_set_prunes",
              "preemption_prunes", "truncated", "max_depth_seen",
              "shrink_runs", "shrink_budget_hits", "fault_prunes",
              "faults_injected", "fault_points"},
             {"fingerprint_prunes"}, where);
  ExploreStats stats;
  stats.schedules = get_u64(object, "schedules", where);
  stats.transitions = get_u64(object, "transitions", where);
  stats.timer_grants = get_u64(object, "timer_grants", where);
  stats.sleep_set_prunes = get_u64(object, "sleep_set_prunes", where);
  stats.preemption_prunes = get_u64(object, "preemption_prunes", where);
  stats.truncated = get_u64(object, "truncated", where);
  stats.max_depth_seen = get_u64(object, "max_depth_seen", where);
  stats.shrink_runs = get_u64(object, "shrink_runs", where);
  stats.shrink_budget_hits = get_u64(object, "shrink_budget_hits", where);
  stats.fault_prunes = get_u64(object, "fault_prunes", where);
  stats.faults_injected = get_u64(object, "faults_injected", where);
  stats.fingerprint_prunes =
      get_u64_or(object, "fingerprint_prunes", 0, where);
  stats.fault_points = get_u64(object, "fault_points", where);
  return stats;
}

AuditSummary parse_audit(const json::Object& parent, const std::string& key,
                         const char* where) {
  const json::Object& object = get_object(parent, key, where);
  check_keys(object,
             {"enabled", "windows", "accesses", "ledger_violations",
              "schedules_cross_checked", "pairs_considered", "swaps_replayed",
              "commute_mismatches", "findings"},
             where);
  AuditSummary audit;
  audit.enabled = get_bool(object, "enabled", where);
  audit.windows = get_u64(object, "windows", where);
  audit.accesses = get_u64(object, "accesses", where);
  audit.ledger_violations = get_u64(object, "ledger_violations", where);
  audit.schedules_cross_checked =
      get_u64(object, "schedules_cross_checked", where);
  audit.pairs_considered = get_u64(object, "pairs_considered", where);
  audit.swaps_replayed = get_u64(object, "swaps_replayed", where);
  audit.commute_mismatches = get_u64(object, "commute_mismatches", where);
  for (const json::Value& finding : get_array(object, "findings", where)) {
    expects(finding.is_string(),
            std::string(where) + ": audit findings must be strings");
    audit.note(finding.as_string());
  }
  return audit;
}

std::vector<std::pair<int, std::uint64_t>> parse_fault_points(
    const json::Object& parent, const std::string& key, int processes,
    const char* where) {
  std::vector<std::pair<int, std::uint64_t>> points;
  for (const json::Value& entry : get_array(parent, key, where)) {
    expects(entry.is_array() && entry.as_array().size() == 2,
            std::string(where) +
                ": fault point must be a [token, steps] pair");
    const int action = parse_decision(entry.as_array()[0], processes, where);
    expects(is_fault_action(action),
            std::string(where) + ": fault point carries a non-fault token");
    const json::Value& steps = entry.as_array()[1];
    expects(steps.is_int() && steps.as_int() >= 0,
            std::string(where) + ": fault point steps must be non-negative");
    points.emplace_back(action, static_cast<std::uint64_t>(steps.as_int()));
  }
  return points;
}

CheckpointOptions parse_options(const json::Object& parent,
                                const char* where) {
  const json::Object& object = get_object(parent, "options", where);
  check_keys(object,
             {"max_depth", "preemption_bound", "iterative", "use_por",
              "max_schedules", "stop_at_first_violation", "max_violations",
              "minimize", "shrink_budget", "record_trace", "fault_bound",
              "explore_crashes", "explore_restarts", "explore_sc_failures",
              "audit", "audit_commute_sample"},
             {"fingerprint_prune"}, where);
  CheckpointOptions options;
  options.max_depth = get_u64(object, "max_depth", where);
  options.preemption_bound = get_int(object, "preemption_bound", where);
  options.iterative = get_bool(object, "iterative", where);
  options.use_por = get_bool(object, "use_por", where);
  options.max_schedules = get_u64(object, "max_schedules", where);
  options.stop_at_first_violation =
      get_bool(object, "stop_at_first_violation", where);
  options.max_violations = get_u64(object, "max_violations", where);
  options.minimize = get_bool(object, "minimize", where);
  options.shrink_budget = get_u64(object, "shrink_budget", where);
  options.record_trace = get_bool(object, "record_trace", where);
  options.fault_bound = get_int(object, "fault_bound", where);
  options.explore_crashes = get_bool(object, "explore_crashes", where);
  options.explore_restarts = get_bool(object, "explore_restarts", where);
  options.explore_sc_failures =
      get_bool(object, "explore_sc_failures", where);
  options.audit = get_bool(object, "audit", where);
  options.audit_commute_sample = checked_cast<std::uint32_t>(
      get_u64(object, "audit_commute_sample", where));
  options.fingerprint_prune =
      get_bool_or(object, "fingerprint_prune", false, where);
  return options;
}

Counterexample parse_embedded_counterexample(const json::Value& value,
                                             const std::string& system,
                                             int processes,
                                             const char* where) {
  expects(value.is_string(),
          std::string(where) + ": counterexample artifact must be a string");
  const std::optional<Counterexample> cex =
      Counterexample::from_artifact(value.as_string());
  expects(cex.has_value(),
          std::string(where) + ": embedded counterexample does not parse");
  expects(cex->system == system && cex->processes == processes,
          std::string(where) +
              ": embedded counterexample targets a different system");
  for (const int decision : cex->decisions) {
    expects(decode_action(decision).pid < processes,
            std::string(where) +
                ": embedded counterexample pid out of range");
  }
  return *cex;
}

CheckpointUnit parse_unit(const json::Value& value, const std::string& system,
                          int processes) {
  const char* where = "frontier unit";
  expects(value.is_object(), "frontier entries must be objects");
  const json::Object& object = value.as_object();
  check_keys(object,
             {"frames", "floor", "complete", "stats", "audit", "fault_points",
              "violations", "budget_limited", "fault_limited", "cap_hit",
              "stopped"},
             {"fp_partials"}, where);
  CheckpointUnit unit;
  for (const json::Value& frame_value : get_array(object, "frames", where)) {
    expects(frame_value.is_object(), "frontier frames must be objects");
    const json::Object& frame_object = frame_value.as_object();
    check_keys(frame_object, {"chosen", "done"}, {"fp_dirty"},
               "frontier frame");
    CheckpointFrame frame;
    const auto chosen = frame_object.find("chosen");
    frame.chosen =
        parse_decision(chosen->second, processes, "frontier frame chosen");
    for (const json::Value& done :
         get_array(frame_object, "done", "frontier frame")) {
      frame.done.push_back(
          parse_decision(done, processes, "frontier frame done"));
    }
    frame.fp_dirty =
        get_bool_or(frame_object, "fp_dirty", false, "frontier frame");
    unit.frames.push_back(std::move(frame));
  }
  unit.floor = get_u64(object, "floor", where);
  unit.complete = get_bool(object, "complete", where);
  expects(unit.floor <= unit.frames.size(),
          "frontier unit floor exceeds its frame stack");
  expects(!unit.complete || unit.frames.empty(),
          "complete frontier unit still carries frames");
  unit.stats = parse_stats(object, "stats", where);
  unit.audit = parse_audit(object, "audit", where);
  unit.fault_points =
      parse_fault_points(object, "fault_points", processes, where);
  for (const json::Value& violation_value :
       get_array(object, "violations", where)) {
    expects(violation_value.is_object(),
            "frontier unit violations must be objects");
    const json::Object& violation_object = violation_value.as_object();
    check_keys(
        violation_object,
        {"artifact", "stats", "audit", "fault_points", "budget_limited",
         "fault_limited"},
        "frontier violation");
    CheckpointViolation violation;
    violation.cex = parse_embedded_counterexample(
        violation_object.find("artifact")->second, system, processes,
        "frontier violation");
    violation.stats = parse_stats(violation_object, "stats", where);
    violation.audit = parse_audit(violation_object, "audit", where);
    violation.fault_points = parse_fault_points(violation_object,
                                                "fault_points", processes,
                                                where);
    violation.budget_limited = get_bool(violation_object, "budget_limited",
                                        where);
    violation.fault_limited = get_bool(violation_object, "fault_limited",
                                       where);
    unit.violations.push_back(std::move(violation));
  }
  unit.budget_limited = get_bool(object, "budget_limited", where);
  unit.fault_limited = get_bool(object, "fault_limited", where);
  unit.cap_hit = get_bool(object, "cap_hit", where);
  unit.stopped = get_bool(object, "stopped", where);
  unit.fp_partials = parse_fp_partials(object, "fp_partials", where);
  return unit;
}

}  // namespace

CheckpointOptions CheckpointOptions::key_of(const ExploreOptions& options) {
  CheckpointOptions key;
  key.max_depth = options.max_depth;
  key.preemption_bound = options.preemption_bound;
  key.iterative = options.iterative;
  key.use_por = options.use_por;
  key.max_schedules = options.max_schedules;
  key.stop_at_first_violation = options.stop_at_first_violation;
  key.max_violations = static_cast<std::uint64_t>(options.max_violations);
  key.minimize = options.minimize;
  key.shrink_budget = options.shrink_budget;
  key.record_trace = options.record_trace;
  key.fault_bound = options.fault_bound;
  key.explore_crashes = options.explore_crashes;
  key.explore_restarts = options.explore_restarts;
  key.explore_sc_failures = options.explore_sc_failures;
  key.audit = options.audit;
  key.audit_commute_sample = options.audit_commute_sample;
  key.fingerprint_prune = options.fingerprint_prune;
  return key;
}

std::string Checkpoint::to_artifact() const {
  json::Object root;
  root.emplace("schema", json::Value(std::string(kCheckpointSchema)));
  root.emplace("seq", json::Value(seq));
  root.emplace("system", json::Value(system));
  root.emplace("processes", json::Value(processes));
  root.emplace("options", options_to_json(options));
  root.emplace("complete", json::Value(complete));
  root.emplace("exhausted", json::Value(exhausted));
  json::Object progress;
  progress.emplace("pass_ordinal", json::Value(pass_ordinal));
  progress.emplace("fault_index", json::Value(fault_index));
  progress.emplace("preemption_index", json::Value(preemption_index));
  progress.emplace("cap_hit", json::Value(cap_hit));
  progress.emplace("stopped", json::Value(stopped));
  progress.emplace("last_pass_budget_limited",
                   json::Value(last_pass_budget_limited));
  progress.emplace("pass_budget_limited", json::Value(pass_budget_limited));
  progress.emplace("pass_fault_limited", json::Value(pass_fault_limited));
  root.emplace("progress", json::Value(std::move(progress)));
  root.emplace("stats", stats_to_json(stats));
  root.emplace("audit", audit_to_json(audit));
  json::Array violation_artifacts;
  for (const Counterexample& cex : violations) {
    violation_artifacts.emplace_back(cex.to_artifact());
  }
  root.emplace("violations", json::Value(std::move(violation_artifacts)));
  root.emplace("fault_points", fault_points_to_json(fault_points));
  json::Array frontier_array;
  for (const CheckpointUnit& unit : frontier) {
    frontier_array.emplace_back(unit_to_json(unit));
  }
  root.emplace("frontier", json::Value(std::move(frontier_array)));
  if (!fp_cache.empty()) {
    json::Array cache;
    for (const auto& [lo, hi] : fp_cache) {
      cache.emplace_back(fp_key_to_hex(lo, hi));
    }
    root.emplace("fp_cache", json::Value(std::move(cache)));
  }
  if (!fp_partials.empty()) {
    root.emplace("fp_partials", fp_partials_to_json(fp_partials));
  }
  return json::Value(std::move(root)).dump(2) + "\n";
}

std::optional<Checkpoint> Checkpoint::from_artifact(const std::string& text,
                                                    std::string* error) {
  const auto fail = [&](std::string message) -> std::optional<Checkpoint> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  std::string parse_error;
  const std::optional<json::Value> root = json::Value::parse(text,
                                                             &parse_error);
  if (!root.has_value()) return fail("parse error: " + parse_error);
  if (!root->is_object()) return fail("checkpoint must be a JSON object");
  try {
    const json::Object& object = root->as_object();
    const auto schema = object.find("schema");
    expects(schema != object.end() && schema->second.is_string(),
            "missing schema key");
    expects(schema->second.as_string() == kCheckpointSchema,
            "unknown schema version '" + schema->second.as_string() + "'");
    check_keys(object,
               {"schema", "seq", "system", "processes", "options", "complete",
                "exhausted", "progress", "stats", "audit", "violations",
                "fault_points", "frontier"},
               {"fp_cache", "fp_partials"}, "checkpoint");
    Checkpoint checkpoint;
    checkpoint.seq = get_u64(object, "seq", "checkpoint");
    checkpoint.system = get_string(object, "system", "checkpoint");
    checkpoint.processes = get_int(object, "processes", "checkpoint");
    expects(checkpoint.processes >= 1 && checkpoint.processes <= 64,
            "checkpoint process count outside [1, 64]");
    checkpoint.options = parse_options(object, "checkpoint options");
    checkpoint.complete = get_bool(object, "complete", "checkpoint");
    checkpoint.exhausted = get_bool(object, "exhausted", "checkpoint");
    const json::Object& progress =
        get_object(object, "progress", "checkpoint");
    check_keys(progress,
               {"pass_ordinal", "fault_index", "preemption_index", "cap_hit",
                "stopped", "last_pass_budget_limited", "pass_budget_limited",
                "pass_fault_limited"},
               "checkpoint progress");
    checkpoint.pass_ordinal = get_u64(progress, "pass_ordinal", "progress");
    checkpoint.fault_index = get_u64(progress, "fault_index", "progress");
    checkpoint.preemption_index =
        get_u64(progress, "preemption_index", "progress");
    checkpoint.cap_hit = get_bool(progress, "cap_hit", "progress");
    checkpoint.stopped = get_bool(progress, "stopped", "progress");
    checkpoint.last_pass_budget_limited =
        get_bool(progress, "last_pass_budget_limited", "progress");
    checkpoint.pass_budget_limited =
        get_bool(progress, "pass_budget_limited", "progress");
    checkpoint.pass_fault_limited =
        get_bool(progress, "pass_fault_limited", "progress");
    checkpoint.stats = parse_stats(object, "stats", "checkpoint");
    checkpoint.audit = parse_audit(object, "audit", "checkpoint");
    for (const json::Value& value :
         get_array(object, "violations", "checkpoint")) {
      checkpoint.violations.push_back(parse_embedded_counterexample(
          value, checkpoint.system, checkpoint.processes,
          "checkpoint violation"));
    }
    checkpoint.fault_points = parse_fault_points(
        object, "fault_points", checkpoint.processes, "checkpoint");
    for (const json::Value& value :
         get_array(object, "frontier", "checkpoint")) {
      checkpoint.frontier.push_back(
          parse_unit(value, checkpoint.system, checkpoint.processes));
    }
    if (object.count("fp_cache") != 0) {
      for (const json::Value& value :
           get_array(object, "fp_cache", "checkpoint")) {
        expects(value.is_string(),
                "checkpoint: fp_cache entries must be strings");
        checkpoint.fp_cache.push_back(
            parse_fp_key(value.as_string(), "checkpoint fp_cache"));
      }
    }
    checkpoint.fp_partials =
        parse_fp_partials(object, "fp_partials", "checkpoint");
    expects(!checkpoint.complete || checkpoint.frontier.empty(),
            "complete checkpoint still carries a frontier");
    return checkpoint;
  } catch (const std::exception& failure) {
    return fail(failure.what());
  }
}

std::vector<std::string> validate_checkpoint(std::string_view text) {
  std::string error;
  if (!Checkpoint::from_artifact(std::string(text), &error).has_value()) {
    return {error};
  }
  return {};
}

bool write_checkpoint_file(const std::string& path, std::string_view text) {
  const std::string tmp = path + ".tmp";
  if (!obs::write_file(tmp, text)) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace bss::explore
