#include "explore/election_systems.h"

#include <optional>
#include <sstream>
#include <vector>

#include "core/election_validator.h"
#include "core/first_value_tree.h"
#include "core/llsc_election.h"
#include "core/sim_election.h"
#include "util/checked.h"

namespace bss::explore {

namespace {

constexpr std::int64_t kIdBase = 1000;

/// Shared post-run checks: every process finished without throwing, all
/// deciders agree, and the winner was actually proposed.
std::optional<std::string> check_outcomes(
    const sim::RunReport& report, const std::vector<std::int64_t>& elected,
    int n) {
  for (int pid = 0; pid < n; ++pid) {
    const auto outcome = report.outcomes[static_cast<std::size_t>(pid)];
    if (outcome == sim::ProcOutcome::kFailed) {
      return "p" + std::to_string(pid) +
             " failed: " + report.errors[static_cast<std::size_t>(pid)];
    }
    if (outcome != sim::ProcOutcome::kFinished) {
      return "p" + std::to_string(pid) + " never finished";
    }
  }
  std::int64_t leader = -1;
  for (int pid = 0; pid < n; ++pid) {
    const std::int64_t mine = elected[static_cast<std::size_t>(pid)];
    if (leader == -1) leader = mine;
    if (mine != leader) {
      std::ostringstream out;
      out << "inconsistent: p" << pid << " elected " << mine
          << " but an earlier process elected " << leader;
      return out.str();
    }
  }
  if (leader < kIdBase || leader >= kIdBase + n) {
    std::ostringstream out;
    out << "invalid: elected id " << leader << " was never proposed";
    return out.str();
  }
  return std::nullopt;
}

class OneShotInstance final : public SystemInstance {
 public:
  OneShotInstance(int k, int n, core::OneShotMutant mutant)
      : state_(k), n_(n), mutant_(mutant),
        elected_(static_cast<std::size_t>(n), -1) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      env.add_process([this, pid](sim::Ctx& ctx) {
        elected_[static_cast<std::size_t>(pid)] = core::one_shot_elect_mutant(
            state_, ctx, pid, kIdBase + pid, mutant_);
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    return check_outcomes(report, elected_, n_);
  }

 private:
  core::MutantOneShotState state_;
  int n_;
  core::OneShotMutant mutant_;
  std::vector<std::int64_t> elected_;
};

class LlScInstance final : public SystemInstance {
 public:
  LlScInstance(int k, int n, bool sc_blind)
      : state_(k), n_(n), sc_blind_(sc_blind),
        elected_(static_cast<std::size_t>(n), -1) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      env.add_process([this, pid](sim::Ctx& ctx) {
        const auto slot = static_cast<std::uint64_t>(pid);
        core::ElectOutcome outcome;
        if (sc_blind_) {
          core::ScBlindLlScMemory memory(state_.llsc, state_.confirm,
                                         state_.announce, ctx);
          outcome = core::fvt_elect(memory, slot, kIdBase + pid);
        } else {
          core::LlScElectionMemory memory(state_, ctx);
          outcome = core::fvt_elect(memory, slot, kIdBase + pid);
        }
        elected_[static_cast<std::size_t>(pid)] = outcome.leader;
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    return check_outcomes(report, elected_, n_);
  }

 private:
  core::LlScElectionState state_;
  int n_;
  bool sc_blind_;
  std::vector<std::int64_t> elected_;
};

class FvtInstance final : public SystemInstance {
 public:
  FvtInstance(int k, int n)
      : state_(k), k_(k), n_(n), outcomes_(static_cast<std::size_t>(n)) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      env.add_process([this, pid](sim::Ctx& ctx) {
        core::SimElectionMemory memory(state_, ctx);
        outcomes_[static_cast<std::size_t>(pid)] = core::fvt_elect(
            memory, static_cast<std::uint64_t>(pid), kIdBase + pid);
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    for (int pid = 0; pid < n_; ++pid) {
      if (report.outcomes[static_cast<std::size_t>(pid)] ==
          sim::ProcOutcome::kFailed) {
        return "p" + std::to_string(pid) +
               " failed: " + report.errors[static_cast<std::size_t>(pid)];
      }
    }
    core::SimElectionReport election;
    election.k = k_;
    election.processes = n_;
    election.id_base = kIdBase;
    election.run = report;
    election.outcomes = outcomes_;
    election.cas_history = state_.cas.history();
    election.cas_total_accesses = state_.cas.total_accesses();
    for (int pid = 0; pid < n_; ++pid) {
      if (report.outcomes[static_cast<std::size_t>(pid)] !=
          sim::ProcOutcome::kFinished) {
        election.outcomes[static_cast<std::size_t>(pid)].reset();
      }
    }
    const core::ElectionVerdict verdict = core::verify_election(election);
    if (!verdict.ok()) return verdict.diagnosis;
    return std::nullopt;
  }

 private:
  core::SimElectionState state_;
  int k_;
  int n_;
  std::vector<std::optional<core::ElectOutcome>> outcomes_;
};

}  // namespace

OneShotSystem::OneShotSystem(int k, int n, core::OneShotMutant mutant)
    : k_(k), n_(n), mutant_(mutant) {
  expects(n >= 1 && n <= k - 1, "one-shot election requires 1 <= n <= k-1");
}

std::string OneShotSystem::name() const {
  return "one_shot[k=" + std::to_string(k_) + ",n=" + std::to_string(n_) +
         ",mutant=" + core::to_string(mutant_) + "]";
}

std::unique_ptr<SystemInstance> OneShotSystem::make() const {
  return std::make_unique<OneShotInstance>(k_, n_, mutant_);
}

LlScSystem::LlScSystem(int k, int n, bool sc_blind)
    : k_(k), n_(n), sc_blind_(sc_blind) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= core::slot_count(k),
          "LL/SC election capacity is (k-1)!");
}

std::string LlScSystem::name() const {
  return std::string("llsc[k=") + std::to_string(k_) +
         ",n=" + std::to_string(n_) +
         (sc_blind_ ? ",mutant=sc-blind]" : "]");
}

std::unique_ptr<SystemInstance> LlScSystem::make() const {
  return std::make_unique<LlScInstance>(k_, n_, sc_blind_);
}

FvtSystem::FvtSystem(int k, int n) : k_(k), n_(n) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= core::slot_count(k),
          "FirstValueTree capacity is (k-1)!");
}

std::string FvtSystem::name() const {
  return "fvt[k=" + std::to_string(k_) + ",n=" + std::to_string(n_) + "]";
}

std::unique_ptr<SystemInstance> FvtSystem::make() const {
  return std::make_unique<FvtInstance>(k_, n_);
}

}  // namespace bss::explore
