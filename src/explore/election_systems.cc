#include "explore/election_systems.h"

#include <optional>
#include <sstream>
#include <vector>

#include "core/election_validator.h"
#include "core/first_value_tree.h"
#include "core/llsc_election.h"
#include "core/recoverable_election.h"
#include "core/sim_election.h"
#include "util/checked.h"

namespace bss::explore {

namespace {

constexpr std::int64_t kIdBase = 1000;

/// Shared post-run checks: every surviving process finished without
/// throwing, all survivors agree, and the winner was actually proposed.
/// Crashed processes (fail-stop or killed mid-restart by the fault
/// explorer) are exempt — a crash is the adversary's move, not the
/// algorithm's failure — so agreement and validity quantify over the
/// finished processes only.
std::optional<std::string> check_outcomes(
    const sim::RunReport& report, const std::vector<std::int64_t>& elected,
    int n) {
  std::int64_t leader = -1;
  for (int pid = 0; pid < n; ++pid) {
    const auto outcome = report.outcomes[static_cast<std::size_t>(pid)];
    if (outcome == sim::ProcOutcome::kCrashed) continue;
    if (outcome == sim::ProcOutcome::kFailed) {
      return "p" + std::to_string(pid) +
             " failed: " + report.errors[static_cast<std::size_t>(pid)];
    }
    if (outcome != sim::ProcOutcome::kFinished) {
      return "p" + std::to_string(pid) + " never finished";
    }
    const std::int64_t mine = elected[static_cast<std::size_t>(pid)];
    if (leader == -1) leader = mine;
    if (mine != leader) {
      std::ostringstream out;
      out << "inconsistent: p" << pid << " elected " << mine
          << " but an earlier process elected " << leader;
      return out.str();
    }
  }
  if (leader != -1 && (leader < kIdBase || leader >= kIdBase + n)) {
    std::ostringstream out;
    out << "invalid: elected id " << leader << " was never proposed";
    return out.str();
  }
  return std::nullopt;
}

class OneShotInstance final : public SystemInstance {
 public:
  OneShotInstance(int k, int n, core::OneShotMutant mutant, bool restartable)
      : state_(k), n_(n), mutant_(mutant), restartable_(restartable),
        elected_(static_cast<std::size_t>(n), -1) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      const auto body = [this, pid](sim::Ctx& ctx) {
        elected_[static_cast<std::size_t>(pid)] = core::one_shot_elect_mutant(
            state_, ctx, pid, kIdBase + pid, mutant_);
      };
      if (restartable_) {
        // One-shot election is naturally recovery-safe: the claim write
        // precedes the c&s, re-claiming is idempotent, and a re-run c&s that
        // loses to the first incarnation's own install still reads back this
        // process's symbol.  The body IS the restart hook.
        env.add_process(body, body);
      } else {
        env.add_process(body);
      }
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    return check_outcomes(report, elected_, n_);
  }

 private:
  core::MutantOneShotState state_;
  int n_;
  core::OneShotMutant mutant_;
  bool restartable_;
  std::vector<std::int64_t> elected_;
};

class LlScInstance final : public SystemInstance {
 public:
  LlScInstance(int k, int n, bool sc_blind)
      : state_(k), n_(n), sc_blind_(sc_blind),
        elected_(static_cast<std::size_t>(n), -1) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      env.add_process([this, pid](sim::Ctx& ctx) {
        const auto slot = static_cast<std::uint64_t>(pid);
        core::ElectOutcome outcome;
        if (sc_blind_) {
          core::ScBlindLlScMemory memory(state_.llsc, state_.confirm,
                                         state_.announce, ctx);
          outcome = core::fvt_elect(memory, slot, kIdBase + pid);
        } else {
          core::LlScElectionMemory memory(state_, ctx);
          outcome = core::fvt_elect(memory, slot, kIdBase + pid);
        }
        elected_[static_cast<std::size_t>(pid)] = outcome.leader;
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    return check_outcomes(report, elected_, n_);
  }

 private:
  core::LlScElectionState state_;
  int n_;
  bool sc_blind_;
  std::vector<std::int64_t> elected_;
};

class FvtInstance : public SystemInstance {
 public:
  FvtInstance(int k, int n)
      : state_(k), k_(k), n_(n), outcomes_(static_cast<std::size_t>(n)) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      env.add_process([this, pid](sim::Ctx& ctx) {
        core::SimElectionMemory memory(state_, ctx);
        outcomes_[static_cast<std::size_t>(pid)] = core::fvt_elect(
            memory, static_cast<std::uint64_t>(pid), kIdBase + pid);
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    for (int pid = 0; pid < n_; ++pid) {
      if (report.outcomes[static_cast<std::size_t>(pid)] ==
          sim::ProcOutcome::kFailed) {
        return "p" + std::to_string(pid) +
               " failed: " + report.errors[static_cast<std::size_t>(pid)];
      }
    }
    core::SimElectionReport election;
    election.k = k_;
    election.processes = n_;
    election.id_base = kIdBase;
    election.run = report;
    election.outcomes = outcomes_;
    election.cas_history = state_.cas.history();
    election.cas_total_accesses = state_.cas.total_accesses();
    for (int pid = 0; pid < n_; ++pid) {
      if (report.outcomes[static_cast<std::size_t>(pid)] !=
          sim::ProcOutcome::kFinished) {
        election.outcomes[static_cast<std::size_t>(pid)].reset();
      }
    }
    const core::ElectionVerdict verdict = core::verify_election(election);
    if (!verdict.ok()) return verdict.diagnosis;
    return std::nullopt;
  }

 protected:
  core::SimElectionState state_;
  int k_;
  int n_;
  std::vector<std::optional<core::ElectOutcome>> outcomes_;
};

/// FvtInstance with crash-restartable processes: each process's program is
/// its own restart hook (recovery-safe elections re-derive everything from
/// shared state), and the seeded kFreshClaim mutant mints a fresh slot and
/// identity per incarnation.  The paper-grade check is inherited unchanged.
class RecoverableFvtInstance final : public FvtInstance {
 public:
  RecoverableFvtInstance(int k, int n, core::RestartBehavior behavior)
      : FvtInstance(k, n), behavior_(behavior) {}

  void populate(sim::SimEnv& env) override {
    const std::uint64_t slots = core::slot_count(k_);
    for (int pid = 0; pid < n_; ++pid) {
      const auto program = [this, pid, slots](sim::Ctx& ctx) {
        auto my_slot = static_cast<std::uint64_t>(pid);
        std::int64_t my_id = kIdBase + pid;
        if (behavior_ == core::RestartBehavior::kFreshClaim &&
            ctx.incarnation() > 0) {
          // BUG (seeded): rejoin as a brand-new participant.
          const auto incarnation =
              static_cast<std::uint64_t>(ctx.incarnation());
          my_slot = (my_slot + incarnation) % slots;
          my_id += core::kFreshClaimIdStride * ctx.incarnation();
        }
        core::SimElectionMemory memory(state_, ctx);
        outcomes_[static_cast<std::size_t>(pid)] =
            core::recoverable_elect(memory, my_slot, my_id);
      };
      env.add_process(program, program);
    }
  }

 private:
  core::RestartBehavior behavior_;
};

}  // namespace

OneShotSystem::OneShotSystem(int k, int n, core::OneShotMutant mutant,
                             bool restartable)
    : k_(k), n_(n), mutant_(mutant), restartable_(restartable) {
  expects(n >= 1 && n <= k - 1, "one-shot election requires 1 <= n <= k-1");
}

std::string OneShotSystem::name() const {
  return "one_shot[k=" + std::to_string(k_) + ",n=" + std::to_string(n_) +
         ",mutant=" + core::to_string(mutant_) +
         (restartable_ ? ",restartable]" : "]");
}

std::unique_ptr<SystemInstance> OneShotSystem::make() const {
  return std::make_unique<OneShotInstance>(k_, n_, mutant_, restartable_);
}

LlScSystem::LlScSystem(int k, int n, bool sc_blind)
    : k_(k), n_(n), sc_blind_(sc_blind) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= core::slot_count(k),
          "LL/SC election capacity is (k-1)!");
}

std::string LlScSystem::name() const {
  return std::string("llsc[k=") + std::to_string(k_) +
         ",n=" + std::to_string(n_) +
         (sc_blind_ ? ",mutant=sc-blind]" : "]");
}

std::unique_ptr<SystemInstance> LlScSystem::make() const {
  return std::make_unique<LlScInstance>(k_, n_, sc_blind_);
}

FvtSystem::FvtSystem(int k, int n) : k_(k), n_(n) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= core::slot_count(k),
          "FirstValueTree capacity is (k-1)!");
}

std::string FvtSystem::name() const {
  return "fvt[k=" + std::to_string(k_) + ",n=" + std::to_string(n_) + "]";
}

std::unique_ptr<SystemInstance> FvtSystem::make() const {
  return std::make_unique<FvtInstance>(k_, n_);
}

RecoverableFvtSystem::RecoverableFvtSystem(int k, int n,
                                           core::RestartBehavior behavior)
    : k_(k), n_(n), behavior_(behavior) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= core::slot_count(k),
          "FirstValueTree capacity is (k-1)!");
}

std::string RecoverableFvtSystem::name() const {
  std::string name =
      "rfvt[k=" + std::to_string(k_) + ",n=" + std::to_string(n_);
  if (behavior_ != core::RestartBehavior::kRecover) {
    name += std::string(",mutant=") + core::to_string(behavior_);
  }
  return name + "]";
}

std::unique_ptr<SystemInstance> RecoverableFvtSystem::make() const {
  return std::make_unique<RecoverableFvtInstance>(k_, n_, behavior_);
}

}  // namespace bss::explore
