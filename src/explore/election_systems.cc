#include "explore/election_systems.h"

#include <optional>
#include <sstream>
#include <vector>

#include "core/election_validator.h"
#include "core/first_value_tree.h"
#include "core/llsc_election.h"
#include "core/recoverable_election.h"
#include "core/sim_election.h"
#include "util/checked.h"

namespace bss::explore {

namespace {

constexpr std::int64_t kIdBase = 1000;

/// Serializes a final shared-state component into the commute cross-check
/// fingerprint.  Every instance funnels its register peeks and per-process
/// results through this so the format stays uniform and deterministic.
template <class T>
void fp_field(std::ostringstream& out, const char* label, const T& value) {
  out << label << '=' << value << ';';
}

template <class Register>
void fp_peeks(std::ostringstream& out, const char* label,
              const std::vector<Register>& registers) {
  out << label << "=[";
  for (const auto& reg : registers) out << reg.peek() << ',';
  out << "];";
}

template <class T>
void fp_values(std::ostringstream& out, const char* label,
               const std::vector<T>& values) {
  out << label << "=[";
  for (const auto& value : values) out << value << ',';
  out << "];";
}

/// Shared post-run checks: every surviving process finished without
/// throwing, all survivors agree, and the winner was actually proposed.
/// Crashed processes (fail-stop or killed mid-restart by the fault
/// explorer) are exempt — a crash is the adversary's move, not the
/// algorithm's failure — so agreement and validity quantify over the
/// finished processes only.
std::optional<std::string> check_outcomes(
    const sim::RunReport& report, const std::vector<std::int64_t>& elected,
    int n) {
  std::int64_t leader = -1;
  for (int pid = 0; pid < n; ++pid) {
    const auto outcome = report.outcomes[static_cast<std::size_t>(pid)];
    if (outcome == sim::ProcOutcome::kCrashed) continue;
    if (outcome == sim::ProcOutcome::kFailed) {
      return "p" + std::to_string(pid) +
             " failed: " + report.errors[static_cast<std::size_t>(pid)];
    }
    if (outcome != sim::ProcOutcome::kFinished) {
      return "p" + std::to_string(pid) + " never finished";
    }
    const std::int64_t mine = elected[static_cast<std::size_t>(pid)];
    if (leader == -1) leader = mine;
    if (mine != leader) {
      std::ostringstream out;
      out << "inconsistent: p" << pid << " elected " << mine
          << " but an earlier process elected " << leader;
      return out.str();
    }
  }
  if (leader != -1 && (leader < kIdBase || leader >= kIdBase + n)) {
    std::ostringstream out;
    out << "invalid: elected id " << leader << " was never proposed";
    return out.str();
  }
  return std::nullopt;
}

class OneShotInstance final : public SystemInstance {
 public:
  OneShotInstance(int k, int n, core::OneShotMutant mutant, bool restartable)
      : state_(k), n_(n), mutant_(mutant), restartable_(restartable),
        elected_(static_cast<std::size_t>(n), -1) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      const auto body = [this, pid](sim::Ctx& ctx) {
        elected_[static_cast<std::size_t>(pid)] = core::one_shot_elect_mutant(
            state_, ctx, pid, kIdBase + pid, mutant_);
      };
      if (restartable_) {
        // One-shot election is naturally recovery-safe: the claim write
        // precedes the c&s, re-claiming is idempotent, and a re-run c&s that
        // loses to the first incarnation's own install still reads back this
        // process's symbol.  The body IS the restart hook.
        env.add_process(body, body);
      } else {
        env.add_process(body);
      }
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    return check_outcomes(report, elected_, n_);
  }

  std::string fingerprint(const sim::SimEnv&) override {
    std::ostringstream out;
    fp_field(out, "cas", state_.cas.peek());
    fp_field(out, "cas_transitions", state_.cas.history().size());
    fp_field(out, "weak", state_.weak.peek());
    fp_peeks(out, "claim", state_.claim);
    fp_values(out, "elected", elected_);
    return out.str();
  }

 private:
  core::MutantOneShotState state_;
  int n_;
  core::OneShotMutant mutant_;
  bool restartable_;
  std::vector<std::int64_t> elected_;
};

class LlScInstance final : public SystemInstance {
 public:
  LlScInstance(int k, int n, bool sc_blind)
      : state_(k), n_(n), sc_blind_(sc_blind),
        elected_(static_cast<std::size_t>(n), -1) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      env.add_process([this, pid](sim::Ctx& ctx) {
        const auto slot = static_cast<std::uint64_t>(pid);
        core::ElectOutcome outcome;
        if (sc_blind_) {
          core::ScBlindLlScMemory memory(state_.llsc, state_.confirm,
                                         state_.announce, ctx);
          outcome = core::fvt_elect(memory, slot, kIdBase + pid);
        } else {
          core::LlScElectionMemory memory(state_, ctx);
          outcome = core::fvt_elect(memory, slot, kIdBase + pid);
        }
        elected_[static_cast<std::size_t>(pid)] = outcome.leader;
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    return check_outcomes(report, elected_, n_);
  }

  std::string fingerprint(const sim::SimEnv&) override {
    std::ostringstream out;
    fp_field(out, "llsc", state_.llsc.peek());
    fp_peeks(out, "confirm", state_.confirm);
    fp_peeks(out, "announce", state_.announce);
    fp_values(out, "elected", elected_);
    return out.str();
  }

 private:
  core::LlScElectionState state_;
  int n_;
  bool sc_blind_;
  std::vector<std::int64_t> elected_;
};

class FvtInstance : public SystemInstance {
 public:
  FvtInstance(int k, int n)
      : state_(k), k_(k), n_(n), outcomes_(static_cast<std::size_t>(n)) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      env.add_process([this, pid](sim::Ctx& ctx) {
        core::SimElectionMemory memory(state_, ctx);
        outcomes_[static_cast<std::size_t>(pid)] = core::fvt_elect(
            memory, static_cast<std::uint64_t>(pid), kIdBase + pid);
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    for (int pid = 0; pid < n_; ++pid) {
      if (report.outcomes[static_cast<std::size_t>(pid)] ==
          sim::ProcOutcome::kFailed) {
        return "p" + std::to_string(pid) +
               " failed: " + report.errors[static_cast<std::size_t>(pid)];
      }
    }
    core::SimElectionReport election;
    election.k = k_;
    election.processes = n_;
    election.id_base = kIdBase;
    election.run = report;
    election.outcomes = outcomes_;
    election.cas_history = state_.cas.history();
    election.cas_total_accesses = state_.cas.total_accesses();
    for (int pid = 0; pid < n_; ++pid) {
      if (report.outcomes[static_cast<std::size_t>(pid)] !=
          sim::ProcOutcome::kFinished) {
        election.outcomes[static_cast<std::size_t>(pid)].reset();
      }
    }
    const core::ElectionVerdict verdict = core::verify_election(election);
    if (!verdict.ok()) return verdict.diagnosis;
    return std::nullopt;
  }

  std::string fingerprint(const sim::SimEnv&) override {
    std::ostringstream out;
    fp_field(out, "cas", state_.cas.peek());
    fp_field(out, "cas_transitions", state_.cas.history().size());
    fp_peeks(out, "confirm", state_.confirm);
    fp_peeks(out, "announce", state_.announce);
    out << "leaders=[";
    for (const auto& outcome : outcomes_) {
      if (outcome.has_value()) {
        out << outcome->leader;
      } else {
        out << '?';
      }
      out << ',';
    }
    out << "];";
    return out.str();
  }

 protected:
  core::SimElectionState state_;
  int k_;
  int n_;
  std::vector<std::optional<core::ElectOutcome>> outcomes_;
};

/// FvtInstance with crash-restartable processes: each process's program is
/// its own restart hook (recovery-safe elections re-derive everything from
/// shared state), and the seeded kFreshClaim mutant mints a fresh slot and
/// identity per incarnation.  The paper-grade check is inherited unchanged.
class RecoverableFvtInstance final : public FvtInstance {
 public:
  RecoverableFvtInstance(int k, int n, core::RestartBehavior behavior)
      : FvtInstance(k, n), behavior_(behavior) {}

  void populate(sim::SimEnv& env) override {
    const std::uint64_t slots = core::slot_count(k_);
    for (int pid = 0; pid < n_; ++pid) {
      const auto program = [this, pid, slots](sim::Ctx& ctx) {
        auto my_slot = static_cast<std::uint64_t>(pid);
        std::int64_t my_id = kIdBase + pid;
        if (behavior_ == core::RestartBehavior::kFreshClaim &&
            ctx.incarnation() > 0) {
          // BUG (seeded): rejoin as a brand-new participant.
          const auto incarnation =
              static_cast<std::uint64_t>(ctx.incarnation());
          my_slot = (my_slot + incarnation) % slots;
          my_id += core::kFreshClaimIdStride * ctx.incarnation();
        }
        core::SimElectionMemory memory(state_, ctx);
        outcomes_[static_cast<std::size_t>(pid)] =
            core::recoverable_elect(memory, my_slot, my_id);
      };
      env.add_process(program, program);
    }
  }

 private:
  core::RestartBehavior behavior_;
};

/// Host for the seeded audit mutants: n processes each performing one
/// operation on the lying register (plus, for kUnsyncedPeek, one pre-sync
/// peek by p0).  The property check passes on every schedule — these bugs
/// are invisible to it by construction — so any refutation must come from
/// the audit layer.
class AuditMutantInstance final : public SystemInstance {
 public:
  AuditMutantInstance(core::AuditMutant mutant, int n)
      : mutant_(mutant), n_(n), hidden_("hidden"), stealth_("counter"),
        cell_("cell", 0), seen_(static_cast<std::size_t>(n), -1) {}

  void populate(sim::SimEnv& env) override {
    for (int pid = 0; pid < n_; ++pid) {
      env.add_process([this, pid](sim::Ctx& ctx) {
        auto& mine = seen_[static_cast<std::size_t>(pid)];
        switch (mutant_) {
          case core::AuditMutant::kHiddenScratch:
            mine = hidden_.read(ctx);
            break;
          case core::AuditMutant::kUnsyncedPeek:
            if (pid == 0) {
              // BUG: inspect shared state before the first sync — no
              // granted window is open, so this read raced the launch.
              ctx.access_token().read("cell");
              peeked_ = cell_.peek();
            }
            mine = cell_.read(ctx);
            break;
          case core::AuditMutant::kStealthCounter:
            mine = stealth_.read(ctx);
            break;
        }
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    for (int pid = 0; pid < n_; ++pid) {
      if (report.outcomes[static_cast<std::size_t>(pid)] ==
          sim::ProcOutcome::kFailed) {
        return "p" + std::to_string(pid) +
               " failed: " + report.errors[static_cast<std::size_t>(pid)];
      }
    }
    return std::nullopt;
  }

  std::string fingerprint(const sim::SimEnv&) override {
    std::ostringstream out;
    fp_field(out, "hidden", hidden_.peek());
    fp_field(out, "scratch", hidden_.scratch());
    fp_field(out, "served", stealth_.peek());
    fp_field(out, "cell", cell_.peek());
    fp_field(out, "peeked", peeked_);
    fp_values(out, "seen", seen_);
    return out.str();
  }

 private:
  core::AuditMutant mutant_;
  int n_;
  core::HiddenScratchRegister hidden_;
  core::StealthCounterRegister stealth_;
  sim::MwmrRegister<std::int64_t> cell_;
  std::int64_t peeked_ = -1;
  std::vector<std::int64_t> seen_;
};

}  // namespace

OneShotSystem::OneShotSystem(int k, int n, core::OneShotMutant mutant,
                             bool restartable)
    : k_(k), n_(n), mutant_(mutant), restartable_(restartable) {
  expects(n >= 1 && n <= k - 1, "one-shot election requires 1 <= n <= k-1");
}

std::string OneShotSystem::name() const {
  return "one_shot[k=" + std::to_string(k_) + ",n=" + std::to_string(n_) +
         ",mutant=" + core::to_string(mutant_) +
         (restartable_ ? ",restartable]" : "]");
}

std::unique_ptr<SystemInstance> OneShotSystem::make() const {
  return std::make_unique<OneShotInstance>(k_, n_, mutant_, restartable_);
}

LlScSystem::LlScSystem(int k, int n, bool sc_blind)
    : k_(k), n_(n), sc_blind_(sc_blind) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= core::slot_count(k),
          "LL/SC election capacity is (k-1)!");
}

std::string LlScSystem::name() const {
  return std::string("llsc[k=") + std::to_string(k_) +
         ",n=" + std::to_string(n_) +
         (sc_blind_ ? ",mutant=sc-blind]" : "]");
}

std::unique_ptr<SystemInstance> LlScSystem::make() const {
  return std::make_unique<LlScInstance>(k_, n_, sc_blind_);
}

FvtSystem::FvtSystem(int k, int n) : k_(k), n_(n) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= core::slot_count(k),
          "FirstValueTree capacity is (k-1)!");
}

std::string FvtSystem::name() const {
  return "fvt[k=" + std::to_string(k_) + ",n=" + std::to_string(n_) + "]";
}

std::unique_ptr<SystemInstance> FvtSystem::make() const {
  return std::make_unique<FvtInstance>(k_, n_);
}

RecoverableFvtSystem::RecoverableFvtSystem(int k, int n,
                                           core::RestartBehavior behavior)
    : k_(k), n_(n), behavior_(behavior) {
  expects(n >= 1 && static_cast<std::uint64_t>(n) <= core::slot_count(k),
          "FirstValueTree capacity is (k-1)!");
}

std::string RecoverableFvtSystem::name() const {
  std::string name =
      "rfvt[k=" + std::to_string(k_) + ",n=" + std::to_string(n_);
  if (behavior_ != core::RestartBehavior::kRecover) {
    name += std::string(",mutant=") + core::to_string(behavior_);
  }
  return name + "]";
}

std::unique_ptr<SystemInstance> RecoverableFvtSystem::make() const {
  return std::make_unique<RecoverableFvtInstance>(k_, n_, behavior_);
}

AuditMutantSystem::AuditMutantSystem(core::AuditMutant mutant, int n)
    : mutant_(mutant), n_(n) {
  expects(n >= 1, "audit mutant system needs at least one process");
}

std::string AuditMutantSystem::name() const {
  return "audit[mutant=" + core::to_string(mutant_) +
         ",n=" + std::to_string(n_) + "]";
}

std::unique_ptr<SystemInstance> AuditMutantSystem::make() const {
  return std::make_unique<AuditMutantInstance>(mutant_, n_);
}

}  // namespace bss::explore
