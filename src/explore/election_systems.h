// Elections as explorable systems: adapters binding the repository's
// election algorithms (and their deliberately-buggy mutants) to the
// ExplorableSystem interface, so the schedule explorer can quantify over
// every interleaving instead of the five hand-written adversaries.
//
// Every factory here is thread-safe (the parallel explorer calls make()
// concurrently from its workers): construction fixes an immutable (k, n,
// mutant/behavior) configuration and make() only reads it, allocating all
// per-run state inside the fresh instance.
#pragma once

#include <memory>
#include <string>

#include "core/mutant_elections.h"
#include "core/recoverable_election.h"
#include "explore/system.h"

namespace bss::explore {

/// One-shot election (core/one_shot_election.h), optionally mutated
/// (core/mutant_elections.h).  Property: every surviving process finishes
/// cleanly, all survivors elect the same identity, and that identity was
/// proposed.  With `restartable`, processes register their body as their
/// restart hook (one-shot election is naturally recovery-safe), making the
/// system eligible for the explorer's crash-*restart* decisions.
class OneShotSystem final : public ExplorableSystem {
 public:
  OneShotSystem(int k, int n,
                core::OneShotMutant mutant = core::OneShotMutant::kNone,
                bool restartable = false);

  std::string name() const override;
  int process_count() const override { return n_; }
  std::unique_ptr<SystemInstance> make() const override;

 private:
  int k_;
  int n_;
  core::OneShotMutant mutant_;
  bool restartable_;
};

/// FirstValueTree election on the LL/SC register
/// (core/llsc_election.h), optionally with the SC-failure-ignored mutant.
/// Property: clean finish, consistency, validity.
class LlScSystem final : public ExplorableSystem {
 public:
  LlScSystem(int k, int n, bool sc_blind = false);

  std::string name() const override;
  int process_count() const override { return n_; }
  std::unique_ptr<SystemInstance> make() const override;

 private:
  int k_;
  int n_;
  bool sc_blind_;
};

/// Full FirstValueTree election over the compare&swap-(k)
/// (core/sim_election.h), checked with the paper-grade validator
/// (core/election_validator.h): consistency, validity, bounded
/// wait-freedom, label soundness.
class FvtSystem final : public ExplorableSystem {
 public:
  FvtSystem(int k, int n);

  std::string name() const override;
  int process_count() const override { return n_; }
  std::unique_ptr<SystemInstance> make() const override;

 private:
  int k_;
  int n_;
};

/// Crash-*recoverable* FirstValueTree election
/// (core/recoverable_election.h): every process registers its program as
/// its restart hook, so the fault explorer may crash-restart it at any
/// operation boundary.  RestartBehavior::kFreshClaim selects the seeded
/// recovery-unsafe mutant (each incarnation mints a fresh slot and
/// identity), which the fault explorer must refute.  Checked with the
/// paper-grade validator, crashed processes exempt.
class RecoverableFvtSystem final : public ExplorableSystem {
 public:
  RecoverableFvtSystem(
      int k, int n,
      core::RestartBehavior behavior = core::RestartBehavior::kRecover);

  std::string name() const override;
  int process_count() const override { return n_; }
  std::unique_ptr<SystemInstance> make() const override;

 private:
  int k_;
  int n_;
  core::RestartBehavior behavior_;
};

/// Seeded soundness bugs for the access-ledger auditor
/// (core/mutant_elections.h, AuditMutant): tiny systems whose registers lie
/// to the exploration infrastructure — an undeclared scratch write, a peek
/// outside any granted window, a "read" that mutates hidden state.  Their
/// property check is clean on every schedule; only the audit layer
/// (ExploreOptions::audit) refutes them.  The control (audit off) must
/// explore them without violations — the determinism tests rely on it.
class AuditMutantSystem final : public ExplorableSystem {
 public:
  explicit AuditMutantSystem(core::AuditMutant mutant, int n = 2);

  std::string name() const override;
  int process_count() const override { return n_; }
  std::unique_ptr<SystemInstance> make() const override;

 private:
  core::AuditMutant mutant_;
  int n_;
};

}  // namespace bss::explore
