// `bss-checkpoint v1` — durable exploration state for the work-stealing
// engine (explore.h: checkpoint_path / resume_path).
//
// The artifact is one canonical-JSON document pairing a *snapshot* (the
// merged DFS-prefix result: stats, audit, violations, fault-point coverage,
// pass position) with a *log* of outstanding work (the frontier: every unit
// not yet folded into the prefix, serialized as its replayable frame stack —
// the `chosen` decision plus explored-sibling `done` set per frame, in
// `bss-counterexample v2` token syntax).  Runnable sets, pending operations
// and sleep sets are deliberately NOT stored: the system factory is
// deterministic, so resume re-materializes each frame by replaying its
// decisions on a fresh SimEnv and recomputing the derived state — which
// doubles as an integrity check (an artifact that does not replay is
// rejected).
//
// Consistency model: workers publish unit snapshots at claim, split and
// checkpoint boundaries, so a checkpoint captures a frontier the serial
// explorer could have reached.  Work done after the last published snapshot
// is simply re-explored on resume — sound because unit exploration is a pure
// function of the frames.  A resumed campaign therefore ends byte-identical
// to an uninterrupted run.
//
// Version policy is the `bss-counterexample` / `bss-runreport` one: parsers
// hard-reject a missing or unknown schema string, unknown keys, wrong-typed
// values, out-of-range pid tokens, and frontiers that fail structural
// validation.  tools/report_check gates both runreports and checkpoints by
// sniffing the schema string.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "explore/explore.h"

namespace bss::explore {

inline constexpr std::string_view kCheckpointSchema = "bss-checkpoint v1";

/// The result-affecting option fingerprint stored in the artifact.  Resume
/// rejects a mismatch: exploring half a campaign under one sleep-set rule or
/// fault budget and half under another would not be byte-identical to
/// anything.  Scheduling knobs (jobs, steal_depth, shard_depth, checkpoint
/// cadence) are excluded — they never change results.
struct CheckpointOptions {
  std::uint64_t max_depth = 0;
  int preemption_bound = 0;
  bool iterative = false;
  bool use_por = false;
  std::uint64_t max_schedules = 0;
  bool stop_at_first_violation = false;
  std::uint64_t max_violations = 0;
  bool minimize = false;
  std::uint64_t shrink_budget = 0;
  bool record_trace = false;
  int fault_bound = 0;
  bool explore_crashes = false;
  bool explore_restarts = false;
  bool explore_sc_failures = false;
  bool audit = false;
  std::uint32_t audit_commute_sample = 0;
  /// Result-affecting: pruned passes cover the same space but count
  /// different stats, so half-pruned campaigns are not byte-identical to
  /// anything.  Serialized only when true (old artifacts parse as false).
  bool fingerprint_prune = false;

  /// Extracts the fingerprint (options.audit must already be resolved —
  /// explore() resolves BSS_AUDIT before checkpointing, so a resume under a
  /// different environment is caught).
  static CheckpointOptions key_of(const ExploreOptions& options);
  bool operator==(const CheckpointOptions&) const = default;
};

/// One visited-state coverage partial (fingerprint_prune campaigns only):
/// a 128-bit state-key hash plus whether the emitting unit saw anything
/// incomplete (budget/fault cut, truncation, violation) in that node's
/// subtree segment.  Partials aggregate per key with OR-of-dirty across all
/// units of a pass — commutative and idempotent, so frame copies made by
/// steal splits and shard prefixes need no reconciliation — and keys that
/// aggregate clean enter the frozen cache for the NEXT pass.
struct FingerprintPartial {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool dirty = false;
};

/// One DFS frame of a persisted unit: the decision taken on the current
/// path and the sibling decisions already explored at this node.
/// `fp_dirty` (fingerprint_prune campaigns only) carries the frame's
/// coverage accumulator across a kill — the key itself is recomputed by the
/// resume replay.
struct CheckpointFrame {
  int chosen = 0;
  std::vector<int> done;
  bool fp_dirty = false;
};

/// A violation recorded inside a not-yet-folded unit, with the snapshot of
/// the unit's cumulative state at the moment it was recorded — the merge
/// cuts a unit exactly at a violation, so the cut state must survive the
/// round-trip too.
struct CheckpointViolation {
  Counterexample cex;
  ExploreStats stats;
  AuditSummary audit;
  std::vector<std::pair<int, std::uint64_t>> fault_points;
  bool budget_limited = false;
  bool fault_limited = false;
};

/// One outstanding unit: its replayable frame stack (empty when `complete`),
/// backtrack floor, and the partial results accumulated so far.
struct CheckpointUnit {
  std::vector<CheckpointFrame> frames;
  std::uint64_t floor = 0;
  bool complete = false;  ///< fully explored, waiting on the merge
  ExploreStats stats;
  AuditSummary audit;
  std::vector<std::pair<int, std::uint64_t>> fault_points;
  std::vector<CheckpointViolation> violations;
  bool budget_limited = false;
  bool fault_limited = false;
  bool cap_hit = false;
  bool stopped = false;
  /// Coverage partials the unit emitted before the snapshot
  /// (fingerprint_prune campaigns only).
  std::vector<FingerprintPartial> fp_partials;
};

struct Checkpoint {
  std::uint64_t seq = 0;  ///< monotone across a campaign, resumes included
  std::string system;     ///< ExplorableSystem::name() of the target
  int processes = 0;
  CheckpointOptions options;
  bool complete = false;   ///< exploration finished; `frontier` is empty
  bool exhausted = false;  ///< final coverage flag (meaningful iff complete)
  // Pass position: indices into the iterative budget sweeps plus the flags
  // explore()'s pass loop carries across passes.
  std::uint64_t pass_ordinal = 0;
  std::uint64_t fault_index = 0;
  std::uint64_t preemption_index = 0;
  bool cap_hit = false;
  bool stopped = false;
  bool last_pass_budget_limited = false;
  /// MergeOutcome of the folded prefix of the in-progress pass; OR-ed into
  /// the resumed pass's merge result.
  bool pass_budget_limited = false;
  bool pass_fault_limited = false;
  // The merged DFS-prefix result.
  ExploreStats stats;
  AuditSummary audit;
  std::vector<Counterexample> violations;
  std::vector<std::pair<int, std::uint64_t>> fault_points;
  std::vector<CheckpointUnit> frontier;  ///< DFS order
  // Visited-state cache state (fingerprint_prune campaigns only, so
  // prune-off artifacts keep their historical shape): the cache frozen at
  // the start of the in-progress pass, plus the partials already folded
  // into the merged prefix.  Together with the per-unit/per-frame partials
  // above they make a resumed campaign's between-pass cache fold — and so
  // its pruning decisions — byte-identical to an uninterrupted run's.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fp_cache;
  std::vector<FingerprintPartial> fp_partials;

  /// Canonical JSON with a trailing newline; dump(parse(text)) is a fixed
  /// point, so round-trip tests assert byte equality.
  std::string to_artifact() const;
  /// Strict parse + structural validation; nullopt (with a one-line reason
  /// in `error`) on schema/version/type/range violations.
  static std::optional<Checkpoint> from_artifact(const std::string& text,
                                                 std::string* error = nullptr);
};

/// Full validation for the CI gate (tools/report_check): every error is
/// human-readable; empty result == valid.
std::vector<std::string> validate_checkpoint(std::string_view text);

/// Atomically replaces `path` with `text`: write to `path`.tmp, fsync-free
/// close, rename over the target — a reader (or a resume after SIGKILL)
/// sees either the previous checkpoint or the new one, never a torn file.
bool write_checkpoint_file(const std::string& path, std::string_view text);

}  // namespace bss::explore
