// A deliberately skewed exploration workload: one long writer and several
// short writers hammering ONE shared multi-writer register.  Every pair of
// operations conflicts (same object, all writes), so sleep-set POR prunes
// nothing and the DFS branches fully at every node — but the long writer's
// subtrees are far deeper than the short writers', so a static prefix-depth
// sharding produces wildly unequal jobs.  This is the stress shape the
// work-stealing engine exists for, and the workload the steal/scaling tests
// and bench_explore's scaling table measure.
#pragma once

#include <memory>
#include <string>

#include "explore/system.h"

namespace bss::explore {

/// `long_writes` operations by process 0 and `short_writes` by each of the
/// other `n - 1` processes, all on one MwmrRegister.  The property checks
/// that every process finished cleanly and the register holds some
/// process's final value — trivially true, so exploration is violation-free
/// and every schedule counts (the jobs-invariance tests compare exact
/// schedule totals across worker counts).
class SkewedWriterSystem final : public ExplorableSystem {
 public:
  SkewedWriterSystem(int n, int long_writes, int short_writes);

  std::string name() const override;
  int process_count() const override { return n_; }
  std::unique_ptr<SystemInstance> make() const override;

 private:
  int n_;
  int long_writes_;
  int short_writes_;
};

}  // namespace bss::explore
