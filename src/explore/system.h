// The explorable-system interface: what the schedule-space explorer needs
// from a system under test.
//
// An ExplorableSystem is a *factory*: every explored schedule re-runs the
// system from scratch, so make() must return a fresh, fully independent
// instance (fresh shared registers, fresh per-run accumulators).  The
// factory must be deterministic — two instances driven by the same decision
// sequence must behave identically — which every simulator-backed system in
// this repository already is (SimEnv executions are a pure function of the
// scheduler's decisions).
//
// With parallel exploration (ExploreOptions::jobs > 1) make() is called
// CONCURRENTLY from explorer worker threads, so factories must also be
// thread-safe: const member functions only, no mutable shared state, no
// lazily initialized caches.  Instances themselves are never shared — each
// worker drives its own instance on its own private SimEnv — so only the
// factory (and anything it captures by reference) needs the guarantee.
//
// Properties are pluggable through SystemInstance::check: election safety
// (core/election_validator.h), linearizability (runtime/linearizability.h),
// or any user invariant phrased over the finished run.  check() returns a
// human-readable violation description, or nullopt when the run is correct.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "runtime/sim_env.h"

namespace bss::explore {

/// One run-worth of system state plus its property check.
class SystemInstance {
 public:
  virtual ~SystemInstance() = default;

  /// Registers the process bodies into `env`.  Called exactly once, before
  /// the run; bodies may capture this instance's shared state by reference.
  virtual void populate(sim::SimEnv& env) = 0;

  /// Post-run property check.  `env` still holds the trace (if recorded) and
  /// the shared objects captured by the bodies.  Never called on truncated
  /// (step-limited) runs.  Returns the violation, or nullopt if correct.
  virtual std::optional<std::string> check(const sim::SimEnv& env,
                                           const sim::RunReport& report) = 0;

  /// Deterministic serialization of the instance's final state — shared
  /// register values plus per-process results — for the audit layer's
  /// differential commutation cross-check (src/audit/commute_check.h),
  /// which demands byte-identical fingerprints after swapping independent
  /// operations.  Two runs reaching the same final state must return the
  /// same string.  The default (empty) opts out: the cross-check then
  /// compares traces, reports and verdicts only.
  virtual std::string fingerprint(const sim::SimEnv& env) {
    (void)env;
    return {};
  }
};

/// A named, repeatable source of fresh SystemInstances.
class ExplorableSystem {
 public:
  virtual ~ExplorableSystem() = default;
  virtual std::string name() const = 0;
  virtual int process_count() const = 0;
  virtual std::unique_ptr<SystemInstance> make() const = 0;
};

/// Instance helper for ad-hoc systems (tests, user invariants): owns a State
/// and forwards populate/check to callables bound to it.
template <class State>
class StatefulInstance final : public SystemInstance {
 public:
  using Populate = std::function<void(State&, sim::SimEnv&)>;
  using Check = std::function<std::optional<std::string>(
      State&, const sim::SimEnv&, const sim::RunReport&)>;
  using Fingerprint = std::function<std::string(State&, const sim::SimEnv&)>;

  StatefulInstance(std::unique_ptr<State> state, Populate populate,
                   Check check, Fingerprint fingerprint = {})
      : state_(std::move(state)),
        populate_(std::move(populate)),
        check_(std::move(check)),
        fingerprint_(std::move(fingerprint)) {}

  void populate(sim::SimEnv& env) override { populate_(*state_, env); }
  std::optional<std::string> check(const sim::SimEnv& env,
                                   const sim::RunReport& report) override {
    return check_(*state_, env, report);
  }
  /// Forwards to the bound fingerprint callable; without one, keeps the
  /// base-class empty opt-out (no commute cross-check, no prune cache).
  std::string fingerprint(const sim::SimEnv& env) override {
    return fingerprint_ ? fingerprint_(*state_, env)
                        : SystemInstance::fingerprint(env);
  }

 private:
  std::unique_ptr<State> state_;
  Populate populate_;
  Check check_;
  Fingerprint fingerprint_;
};

/// System helper wrapping a plain factory callable.
class FactorySystem final : public ExplorableSystem {
 public:
  using Factory = std::function<std::unique_ptr<SystemInstance>()>;

  FactorySystem(std::string name, int processes, Factory factory)
      : name_(std::move(name)),
        processes_(processes),
        factory_(std::move(factory)) {}

  std::string name() const override { return name_; }
  int process_count() const override { return processes_; }
  std::unique_ptr<SystemInstance> make() const override { return factory_(); }

 private:
  std::string name_;
  int processes_;
  Factory factory_;
};

}  // namespace bss::explore
