// Systematic schedule-space exploration over SimEnv.
//
// The simulator executes a system as a pure function of the scheduler's
// decision sequence, which is exactly the hook a stateless model checker
// needs: this module re-runs a system factory under every decision sequence
// (depth-first, re-executing the deterministic prefix each time) and checks
// a property after every complete run.  Three levers bound the search:
//
//  * Depth bound — schedules longer than `max_depth` steps are truncated
//    (the run is killed at the bound, counted, and not property-checked).
//
//  * Preemption bound (Chess-style, Musuvathi & Qadeer) — a *preemption* is
//    scheduling away from a process that is still runnable.  Most
//    concurrency bugs need only a handful, so bounding them makes even big
//    systems tractable; `iterative = true` sweeps budgets 0, 1, …, bound,
//    surfacing the simplest buggy schedule first.
//
//  * Sleep-set partial-order reduction (Godefroid) — two pending operations
//    commute unless they touch the same object and at least one writes (the
//    OpDesc footprint rule).  After a branch is explored, its choice goes to
//    sleep for the sibling branches and stays asleep while every executed
//    operation commutes with it; exploring a sleeping process would only
//    re-reach a state some explored interleaving already covered.  Sound for
//    all properties invariant under commuting independent operations —
//    which every trace/outcome property in this repository is.
//
//  * Fault bound — with `fault_bound >= 1`, fault injections become
//    scheduler decisions too: fail-stop a parked process, crash-restart it
//    (if it registered a restart hook), or fail its pending
//    store-conditional spuriously.  Each injection consumes fault budget,
//    mirroring the preemption bound, so exhaustive single- and double-fault
//    sweeps terminate; `iterative` sweeps fault budgets 0..fault_bound
//    outermost (fewest-fault refutation first).
//
// On a violation the explorer emits a Counterexample and greedily shrinks it
// (ddmin-style chunk deletion over the decision tape, re-running each
// candidate, bounded by a per-counterexample shrink budget), then
// *canonicalizes* the survivor into the exact decision sequence of its run —
// an artifact that the replayer re-executes verbatim with zero divergences.
// Fault-free counterexamples serialize as `bss-counterexample v1` (grants
// only, as always); tapes carrying fault decisions serialize as
// `bss-counterexample v2`, whose decision list mixes plain grants with
// `c<pid>` (crash), `r<pid>` (restart) and `s<pid>` (spurious SC failure)
// tokens.  Both versions parse.
//
// Parallel exploration (`ExploreOptions::jobs`): every run is a pure
// function of the decision tape, so the schedule space shards cleanly.  The
// default engine is a *work-stealing frontier*: each pass starts as one unit
// (the whole space) owned by one worker, and whenever a worker goes idle a
// busy victim splits its own replayable frame stack at the shallowest frame
// that still has unexplored siblings — those siblings become a new unit,
// inserted immediately after the victim's in a DFS-ordered unit list, and
// the victim's backtrack floor rises past the cut.  Sleep sets,
// explored-sibling sets and budget counters carry across the cut in the
// frames, so the thief explores exactly the branches the serial walk would
// have explored after backtracking there.  Because units always partition
// the DFS into contiguous ordered segments, the results merge in DFS order
// with a deterministic cutoff rule, making the merged ExploreResult
// **byte-identical to the serial explorer's** for every worker count, steal
// granularity and completion order — including early-stopped runs, where
// work a worker did beyond the deterministic stop point is discarded rather
// than folded in.  The one exception is the `max_schedules` safety valve:
// with jobs > 1 the shared schedule budget is claimed concurrently, so
// *which* schedules fit under a cap that actually fires depends on timing
// (the run is flagged not exhausted either way).  `steal = false` selects
// the legacy static engine (a serial enumerator cuts the DFS at
// `shard_depth` decisions into fixed subtree jobs) — kept as the
// bench_explore baseline; its results are byte-identical too.
//
// Durable exploration state (`checkpoint_path` / `resume_path`): the
// stealing engine periodically persists a `bss-checkpoint v1` artifact
// (src/explore/checkpoint.h) — the merged DFS-prefix result plus every
// outstanding unit's replayable frame stack — so a campaign killed
// mid-exploration resumes from the artifact and ends byte-identical to an
// uninterrupted run (work past the last consistent snapshot is simply
// re-explored; determinism makes the re-exploration exact).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "explore/system.h"
#include "runtime/trace.h"
#include "util/checked.h"

namespace bss::obs {
class ObsSink;
}  // namespace bss::obs

namespace bss::explore {

// ------------------------------------------------------------ decision tape
//
// A decision tape entry is either a plain grant (the pid, >= 0) or an
// encoded fault action (< 0).  The encoding is dense so ddmin shrinking and
// the artifact round-trip treat faults as ordinary tape entries.

enum class ActionKind : int {
  kGrant = 0,      ///< grant the pid one shared-memory step
  kCrash = 1,      ///< fail-stop the pid (terminal)
  kRestart = 2,    ///< crash-restart the pid (needs a restart hook)
  kScFailure = 3,  ///< grant the pid's pending SC, forcing spurious failure
};

struct Action {
  ActionKind kind = ActionKind::kGrant;
  int pid = 0;
};

/// Largest pid the dense encoding carries without overflowing int: the
/// fault encoding maps (kind, pid) to -(pid*3 + kind-1) - 1, so pid*3 + 2
/// must stay representable.  Far above the explorer's own 64-process cap;
/// the guard exists so silent wrap-around can never corrupt a tape.
constexpr int kMaxActionPid = (std::numeric_limits<int>::max() - 3) / 3;

/// Encodes an action onto the decision tape.  Throws InvariantError for
/// pids outside [0, kMaxActionPid] (compile error when evaluated constexpr)
/// instead of silently wrapping into some other action's encoding.
constexpr int encode_action(ActionKind kind, int pid) {
  if (pid < 0 || pid > kMaxActionPid) {
    throw InvariantError("encode_action: pid outside the dense encoding's range");
  }
  return kind == ActionKind::kGrant
             ? pid
             : -(pid * 3 + (static_cast<int>(kind) - 1)) - 1;
}

constexpr Action decode_action(int decision) {
  if (decision >= 0) return Action{ActionKind::kGrant, decision};
  const int index = -decision - 1;
  return Action{static_cast<ActionKind>(index % 3 + 1), index / 3};
}

constexpr bool is_fault_action(int decision) { return decision < 0; }

/// The `bss-counterexample v2` decision-token spelling of an encoded action:
/// plain grants print as the pid ("3"), faults as "c1" (crash), "r0"
/// (restart) and "s2" (spurious SC failure).  Shared by the counterexample
/// artifact, event fields and the `bss-checkpoint v1` frontier encoding.
std::string action_token(int decision);

/// Parses one decision token back to its dense encoding; nullopt on
/// malformed tokens or pids outside [0, kMaxActionPid] (the same guard the
/// counterexample artifact parser applies — out-of-range pids must never
/// silently wrap into another action's encoding).
std::optional<int> parse_action_token(const std::string& token);

struct ExploreOptions {
  /// Kill any single schedule after this many steps (counted, not checked).
  std::uint64_t max_depth = 4096;
  /// Maximum preemptions per schedule; -1 explores the full space.
  int preemption_bound = -1;
  /// Chess-style iterative bounding: sweep budgets 0..preemption_bound
  /// instead of exploring only at the final budget.
  bool iterative = false;
  /// Sleep-set partial-order reduction.
  bool use_por = true;
  /// Stop after this many complete schedules (safety valve).
  std::uint64_t max_schedules = 1'000'000;
  /// Stop at the first violation (otherwise keep exploring, collecting up to
  /// max_violations counterexamples).  In parallel mode both limits are
  /// enforced per subtree job and again — exactly — by the DFS-ordered
  /// merge, so the reported violations are always the serial explorer's
  /// first ones regardless of worker count.
  bool stop_at_first_violation = true;
  std::size_t max_violations = 8;
  /// Shrink counterexamples before reporting them.
  bool minimize = true;
  /// Maximum re-executions minimize_counterexample may spend per
  /// counterexample (the shrink analogue of max_schedules: ddmin replays on
  /// a pathological tape must not run unboundedly after the exploration
  /// budget is spent).  The canonicalization run always happens; when the
  /// budget runs dry mid-shrink the best tape so far is returned — still
  /// canonical, still replaying with zero divergences — and
  /// ExploreStats::shrink_budget_hits records the cut.  0 means unlimited.
  std::uint64_t shrink_budget = 4096;
  /// Record traces during exploration runs (needed only if check() reads
  /// env.trace(); off saves allocation in the hot loop).
  bool record_trace = false;
  /// Maximum injected faults per schedule (crashes, restarts and spurious
  /// SC failures combined).  0 disables fault exploration entirely — the
  /// search space and results are then identical to the fault-free
  /// explorer.  With `iterative`, fault budgets 0..fault_bound are swept
  /// outermost, so the simplest (fewest-fault) refutation surfaces first.
  int fault_bound = 0;
  /// Offer fail-stop decisions at every parked process.
  bool explore_crashes = true;
  /// Offer crash-restart decisions (only at processes with restart hooks).
  bool explore_restarts = true;
  /// Offer spurious-failure decisions at pending store-conditionals (at
  /// most one per process per schedule — the slack the LL/SC c&s adapter's
  /// retry bound tolerates).
  bool explore_sc_failures = false;
  /// Worker threads for subtree-sharded exploration.  1 explores serially;
  /// N > 1 shards the DFS at `shard_depth` and explores subtrees
  /// concurrently (each worker replays its prefix on a private SimEnv).
  /// 0 — the default — resolves to the BSS_EXPLORE_JOBS environment
  /// variable when set (how CI race-checks the pool) and to 1 otherwise.
  /// Results are byte-identical across all values; see the header comment.
  int jobs = 0;
  /// Decision depth at which the DFS is cut into independent subtree jobs.
  /// Only the legacy static engine (`steal = false`) reads it: -1 picks
  /// automatically (no sharding when jobs resolves to 1, else a depth sized
  /// to yield several jobs per worker); 0 disables sharding outright.  Any
  /// value produces identical results — the knob trades enumeration
  /// overhead against load balance.
  int shard_depth = -1;
  /// Work-stealing frontier engine (the default): idle workers steal the
  /// shallowest unexplored siblings from busy victims, so skewed subtrees
  /// load-balance without a pre-chosen shard depth.  false selects the
  /// legacy static `shard_depth` engine (the bench_explore scaling
  /// baseline).  Results are byte-identical either way.
  bool steal = true;
  /// Steal granularity: a victim only splits at frames at least this many
  /// decisions below its current subtree floor, so larger values hand out
  /// smaller (deeper) subtrees.  Any value produces identical results — the
  /// knob trades steal frequency against per-steal work size.
  int steal_depth = 0;
  /// Visited-state cache (the step-loop fast path): key every DFS node on
  /// SystemInstance::fingerprint plus the scheduler-visible SimEnv state
  /// (parked set, pending operations, per-process step counts, virtual
  /// clock, sleep set, spent spurious-SC set) and prune nodes whose key was
  /// *cleanly covered* by an earlier iterative pass — "cleanly" meaning the
  /// covering subtree was cut by no budget, no fault bound, no truncation
  /// and contained no violation, so it equals the full unbounded subtree
  /// and re-exploring it at a deeper budget cannot add coverage.  The cache
  /// is frozen for the duration of each pass and clean keys are folded in
  /// between passes from per-frame coverage partials that aggregate
  /// commutatively, so pruning decisions — and therefore stats, violations
  /// and artifacts — stay byte-identical at every worker count, steal
  /// granularity and shard depth.  Systems whose fingerprint() returns the
  /// empty default opt out frame-by-frame (full exploration).  Sound for
  /// properties that are a function of the fingerprinted state (the same
  /// assumption class as sleep-set POR); the seeded mutant suite asserts no
  /// refutation is lost.  A pass may conclude the space exhausted *earlier*
  /// than an unpruned run (budget cuts inside covered regions are
  /// suppressed) — coverage is identical, pass counts may not be.  false
  /// resolves through the BSS_EXPLORE_FP environment variable (force-on
  /// only, how CI sweeps the suite with pruning engaged).
  bool fingerprint_prune = false;
  /// When non-empty, the stealing engine periodically writes a
  /// `bss-checkpoint v1` artifact here (atomically: tmp file + rename): the
  /// merged DFS-prefix result plus every outstanding unit's replayable
  /// frame stack.  A final `complete` checkpoint is written when
  /// exploration ends.  Requires `steal` (the static engine has no
  /// consistent frontier to persist).
  std::string checkpoint_path;
  /// Checkpoint cadence: a snapshot is written every time this many more
  /// schedules have been claimed since the last one.  0 disables periodic
  /// checkpoints (only the final `complete` artifact is written).
  std::uint64_t checkpoint_every = 4096;
  /// When non-empty, exploration resumes from the `bss-checkpoint v1`
  /// artifact at this path instead of starting fresh: the merged-prefix
  /// result is restored and only the persisted frontier is explored.
  /// Throws InvariantError when the artifact is malformed, carries a
  /// different system/options fingerprint, or does not replay against this
  /// system.  The end state is byte-identical to an uninterrupted run.
  std::string resume_path;
  /// Testing/ops valve for kill-and-resume coverage: stop the engine
  /// (ExploreResult::halted) right after writing this many periodic
  /// checkpoints, leaving the checkpoint artifact as the only durable
  /// output — a deterministic stand-in for SIGKILL.  0 never halts.
  std::uint64_t halt_after_checkpoints = 0;
  /// When non-empty, explore() periodically publishes a `bss-status v1`
  /// heartbeat here (atomically: tmp file + rename) — live progress,
  /// throughput, per-worker state, checkpoint age; see src/obs/status.h.
  /// Empty resolves through the BSS_STATUS environment variable.  Like the
  /// telemetry sink, the heartbeat is passive: every field outside its
  /// `timing`/`profile` sections derives from the deterministic counters,
  /// and results are byte-identical with status on or off.
  std::string status_path;
  /// Heartbeat cadence in milliseconds.  0 — the default — resolves through
  /// BSS_STATUS_EVERY_MS when set and to 1000 otherwise.
  std::uint64_t status_every_ms = 0;
  /// Soundness audit (src/audit): attach an access-ledger auditor to every
  /// run — flagging unsynchronized register access, wrong-process access and
  /// declared-footprint violations — and differentially cross-check the POR
  /// commutation oracle on sampled schedules (replay with adjacent
  /// independent operations swapped; final states must match).  The layer is
  /// determinism-preserving: on audit-clean systems, audit on/off yields
  /// byte-identical schedules, stats and artifacts.  Ledger and footprint
  /// findings surface as ordinary Counterexamples (property violations take
  /// precedence); oracle refutations and counters surface through
  /// ExploreResult::audit.  false resolves through the BSS_AUDIT
  /// environment variable (force-on only, how CI audits the whole suite).
  bool audit = false;
  /// Cross-check one in this many completed schedules, selected by an
  /// FNV-1a hash of the canonical decision tape — the same schedules are
  /// picked for every worker count and shard depth.  1 checks every
  /// schedule; 0 disables the cross-check.
  std::uint32_t audit_commute_sample = 16;
  /// Telemetry sink (src/obs): per-worker metric shards, the structured
  /// event log, worker timelines and the bss-runreport artifact.  nullptr —
  /// the default — disables observability entirely.  The layer is
  /// passive: stats, violations, artifacts and `exhausted` are
  /// byte-identical with the sink attached or not, at every worker count
  /// (metrics measure work *performed*, speculation included, so metric
  /// values themselves are not worker-count invariant; see DESIGN.md §9).
  obs::ObsSink* telemetry = nullptr;
};

/// Aggregated audit-layer results (ExploreOptions::audit).  Deliberately
/// kept OUT of ExploreStats and ExploreResult::summary(): the explorer's
/// ordinary output must stay byte-identical with the audit on or off, so
/// audit results are read explicitly from ExploreResult::audit.
struct AuditSummary {
  bool enabled = false;                 ///< the audit layer was attached
  std::uint64_t windows = 0;            ///< granted op windows observed
  std::uint64_t accesses = 0;           ///< token-reported register accesses
  std::uint64_t ledger_violations = 0;  ///< races + footprint violations
                                        ///< observed (prefix replays count)
  std::uint64_t schedules_cross_checked = 0;
  std::uint64_t pairs_considered = 0;   ///< adjacent independent pairs seen
  std::uint64_t swaps_replayed = 0;
  std::uint64_t commute_mismatches = 0; ///< commutation-oracle refutations
  /// First findings, human-readable (ledger violations that became
  /// counterexamples, commutation mismatches); capped at kMaxFindings.
  static constexpr std::size_t kMaxFindings = 32;
  std::vector<std::string> findings;

  bool clean() const {
    return ledger_violations == 0 && commute_mismatches == 0;
  }
  void note(std::string finding);
  void merge_from(const AuditSummary& other);
  std::string summary() const;
};

struct ExploreStats {
  std::uint64_t schedules = 0;         ///< complete executions checked
  std::uint64_t transitions = 0;       ///< total granted steps
  std::uint64_t timer_grants = 0;      ///< granted virtual-timer firings
  std::uint64_t sleep_set_prunes = 0;  ///< branches cut by POR
  std::uint64_t preemption_prunes = 0; ///< branches cut by the budget
  std::uint64_t truncated = 0;         ///< schedules cut by max_depth
  std::uint64_t max_depth_seen = 0;    ///< longest schedule encountered
  std::uint64_t shrink_runs = 0;       ///< re-executions spent minimizing
  std::uint64_t shrink_budget_hits = 0; ///< minimizations cut by shrink_budget
  std::uint64_t fault_prunes = 0;      ///< fault branches cut by the budget
  std::uint64_t faults_injected = 0;   ///< fault decisions taken, all runs
  /// DFS nodes pruned by the visited-state cache
  /// (ExploreOptions::fingerprint_prune); each prune skips the node's whole
  /// already-covered subtree.  Deterministic at every worker count.
  std::uint64_t fingerprint_prunes = 0;
  /// Distinct fault sites covered: (action, victim's lifetime op count)
  /// pairs — "every single-crash point" means every such pair was hit.
  std::uint64_t fault_points = 0;

  /// Folds `other` into this: counters add, max_depth_seen maxes.  The
  /// parallel merge applies this to per-subtree stats in DFS order;
  /// fault_points is NOT summed (distinct sites dedup through a set and are
  /// written once at the end of explore()).
  void merge_from(const ExploreStats& other);

  std::string summary() const;
};

/// A refutation: a decision sequence that drives the system factory into a
/// property violation.  After minimization the sequence is *canonical*: it
/// is the complete decision tape of a violating run, so ReplayScheduler
/// re-executes it verbatim (zero divergences).
struct Counterexample {
  std::string system;          ///< ExplorableSystem::name() of the target
  int processes = 0;
  std::string violation;       ///< check()'s description
  std::vector<int> decisions;  ///< canonical replay tape (grants + faults)
  std::size_t shrunk_from = 0; ///< decision count before minimization

  /// Fault decisions on the tape; 0 means a schedule-only counterexample.
  std::size_t fault_count() const;

  /// Plain-text artifact round-trip (README: "Reproducing a counterexample").
  /// Emits `bss-counterexample v1` when the tape is fault-free (bit-for-bit
  /// the historical format) and `v2` when it carries fault decisions.
  std::string to_artifact() const;
  static std::optional<Counterexample> from_artifact(const std::string& text);
};

struct ExploreResult {
  ExploreStats stats;
  std::vector<Counterexample> violations;
  /// Audit-layer results; all-zero (enabled == false) when the audit is off.
  AuditSummary audit;
  /// True iff the schedule space was fully covered: no preemption-budget
  /// prune, no depth truncation, no schedule cap, exploration ran to
  /// completion.  With use_por the coverage is up to commutation
  /// equivalence.  Fault-budget cuts do NOT clear this flag: the bounded
  /// fault space (at most fault_bound injections) is the declared search
  /// domain, and within it coverage is complete.
  bool exhausted = false;
  /// True iff the run stopped early at the halt_after_checkpoints valve; the
  /// partial stats/violations are then meaningless — the checkpoint artifact
  /// is the durable output and a resume completes the campaign.
  bool halted = false;
  /// `bss-checkpoint v1` artifacts written by THIS call (periodic + final).
  /// Deliberately outside summary(): checkpointing must not perturb the
  /// byte-identical result contract.
  std::uint64_t checkpoints_written = 0;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Explores `system`'s schedule space under `options`.
ExploreResult explore(const ExplorableSystem& system,
                      const ExploreOptions& options = {});

/// Outcome of re-executing a counterexample artifact.
struct ReplayOutcome {
  bool violated = false;        ///< check() reported a violation again
  std::string violation;
  std::uint64_t divergences = 0;  ///< replay departures from the tape
  bool truncated = false;         ///< hit ExploreOptions::max_depth
  sim::RunReport report;
};

/// Re-runs `system` under cex.decisions — grants AND faults — and re-checks
/// the property.  Tape entries that are not applicable in the current state
/// are skipped (each counted as a divergence), and a tape that ends before
/// the system quiesces is completed round-robin (also counted), exactly the
/// ReplayScheduler contract.  A healthy minimized counterexample reproduces
/// its violation with zero divergences.
ReplayOutcome replay_counterexample(const ExplorableSystem& system,
                                    const Counterexample& cex,
                                    const ExploreOptions& options = {});

/// Greedy decision-tape shrinking (exposed for tests; explore() calls it
/// when options.minimize).  Returns the canonicalized counterexample;
/// `stats`, when given, accumulates the re-execution count.
Counterexample minimize_counterexample(const ExplorableSystem& system,
                                       Counterexample cex,
                                       const ExploreOptions& options = {},
                                       ExploreStats* stats = nullptr);

/// The POR commutation rule, exposed for tests: pending operations commute
/// unless they touch the same object and at least one of them writes.
bool ops_commute(const sim::OpDesc& a, const sim::OpDesc& b);

}  // namespace bss::explore
