// Systematic schedule-space exploration over SimEnv.
//
// The simulator executes a system as a pure function of the scheduler's
// decision sequence, which is exactly the hook a stateless model checker
// needs: this module re-runs a system factory under every decision sequence
// (depth-first, re-executing the deterministic prefix each time) and checks
// a property after every complete run.  Three levers bound the search:
//
//  * Depth bound — schedules longer than `max_depth` steps are truncated
//    (the run is killed at the bound, counted, and not property-checked).
//
//  * Preemption bound (Chess-style, Musuvathi & Qadeer) — a *preemption* is
//    scheduling away from a process that is still runnable.  Most
//    concurrency bugs need only a handful, so bounding them makes even big
//    systems tractable; `iterative = true` sweeps budgets 0, 1, …, bound,
//    surfacing the simplest buggy schedule first.
//
//  * Sleep-set partial-order reduction (Godefroid) — two pending operations
//    commute unless they touch the same object and at least one writes (the
//    OpDesc footprint rule).  After a branch is explored, its choice goes to
//    sleep for the sibling branches and stays asleep while every executed
//    operation commutes with it; exploring a sleeping process would only
//    re-reach a state some explored interleaving already covered.  Sound for
//    all properties invariant under commuting independent operations —
//    which every trace/outcome property in this repository is.
//
// On a violation the explorer emits a Counterexample and greedily shrinks it
// (ddmin-style chunk deletion over the decision tape, re-running each
// candidate), then *canonicalizes* the survivor into the exact decision
// sequence of its run — an artifact that ReplayScheduler re-executes
// verbatim with zero divergences.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "explore/system.h"
#include "runtime/trace.h"

namespace bss::explore {

struct ExploreOptions {
  /// Kill any single schedule after this many steps (counted, not checked).
  std::uint64_t max_depth = 4096;
  /// Maximum preemptions per schedule; -1 explores the full space.
  int preemption_bound = -1;
  /// Chess-style iterative bounding: sweep budgets 0..preemption_bound
  /// instead of exploring only at the final budget.
  bool iterative = false;
  /// Sleep-set partial-order reduction.
  bool use_por = true;
  /// Stop after this many complete schedules (safety valve).
  std::uint64_t max_schedules = 1'000'000;
  /// Stop at the first violation (otherwise keep exploring, collecting up to
  /// max_violations counterexamples).
  bool stop_at_first_violation = true;
  std::size_t max_violations = 8;
  /// Shrink counterexamples before reporting them.
  bool minimize = true;
  /// Record traces during exploration runs (needed only if check() reads
  /// env.trace(); off saves allocation in the hot loop).
  bool record_trace = false;
};

struct ExploreStats {
  std::uint64_t schedules = 0;         ///< complete executions checked
  std::uint64_t transitions = 0;       ///< total granted steps
  std::uint64_t sleep_set_prunes = 0;  ///< branches cut by POR
  std::uint64_t preemption_prunes = 0; ///< branches cut by the budget
  std::uint64_t truncated = 0;         ///< schedules cut by max_depth
  std::uint64_t max_depth_seen = 0;    ///< longest schedule encountered
  std::uint64_t shrink_runs = 0;       ///< re-executions spent minimizing

  std::string summary() const;
};

/// A refutation: a decision sequence that drives the system factory into a
/// property violation.  After minimization the sequence is *canonical*: it
/// is the complete decision tape of a violating run, so ReplayScheduler
/// re-executes it verbatim (zero divergences).
struct Counterexample {
  std::string system;          ///< ExplorableSystem::name() of the target
  int processes = 0;
  std::string violation;       ///< check()'s description
  std::vector<int> decisions;  ///< canonical replay tape
  std::size_t shrunk_from = 0; ///< decision count before minimization

  /// Plain-text artifact round-trip (README: "Reproducing a counterexample").
  std::string to_artifact() const;
  static std::optional<Counterexample> from_artifact(const std::string& text);
};

struct ExploreResult {
  ExploreStats stats;
  std::vector<Counterexample> violations;
  /// True iff the schedule space was fully covered: no preemption-budget
  /// prune, no depth truncation, no schedule cap, exploration ran to
  /// completion.  With use_por the coverage is up to commutation
  /// equivalence.
  bool exhausted = false;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Explores `system`'s schedule space under `options`.
ExploreResult explore(const ExplorableSystem& system,
                      const ExploreOptions& options = {});

/// Outcome of re-executing a counterexample artifact.
struct ReplayOutcome {
  bool violated = false;        ///< check() reported a violation again
  std::string violation;
  std::uint64_t divergences = 0;  ///< ReplayScheduler departures from tape
  bool truncated = false;         ///< hit ExploreOptions::max_depth
  sim::RunReport report;
};

/// Re-runs `system` under ReplayScheduler(cex.decisions) and re-checks the
/// property.  A healthy minimized counterexample reproduces its violation
/// with zero divergences.
ReplayOutcome replay_counterexample(const ExplorableSystem& system,
                                    const Counterexample& cex,
                                    const ExploreOptions& options = {});

/// Greedy decision-tape shrinking (exposed for tests; explore() calls it
/// when options.minimize).  Returns the canonicalized counterexample;
/// `stats`, when given, accumulates the re-execution count.
Counterexample minimize_counterexample(const ExplorableSystem& system,
                                       Counterexample cex,
                                       const ExploreOptions& options = {},
                                       ExploreStats* stats = nullptr);

/// The POR commutation rule, exposed for tests: pending operations commute
/// unless they touch the same object and at least one of them writes.
bool ops_commute(const sim::OpDesc& a, const sim::OpDesc& b);

}  // namespace bss::explore
