#include "explore/snapshot_system.h"

#include <cstdint>
#include <sstream>
#include <vector>

#include "registers/snapshot.h"
#include "runtime/linearizability.h"
#include "util/checked.h"

namespace bss::explore {

namespace {

class SnapshotInstance final : public SystemInstance {
 public:
  SnapshotInstance(int writers, int rounds)
      : snapshot_("s", writers), writers_(writers), rounds_(rounds) {}

  void populate(sim::SimEnv& env) override {
    for (int w = 0; w < writers_; ++w) {
      env.add_process([this, w](sim::Ctx& ctx) {
        for (int round = 1; round <= rounds_; ++round) {
          const std::uint64_t start = ctx.global_step();
          snapshot_.update(ctx, w, round);
          history_.push_back(
              {ctx.pid(), start, ctx.global_step(), {w, round}, {}});
        }
      });
    }
    env.add_process([this](sim::Ctx& ctx) {
      for (int round = 0; round <= rounds_; ++round) {
        const std::uint64_t start = ctx.global_step();
        const auto view = snapshot_.scan(ctx);
        history_.push_back({ctx.pid(), start, ctx.global_step(), {}, view});
      }
    });
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    if (!report.clean()) return "run not clean: " + report.summary();
    const auto result =
        sim::check_linearizable(history_, sim::snapshot_spec(writers_));
    if (!result.linearizable) {
      return "scan history not linearizable: " + result.detail;
    }
    return std::nullopt;
  }

  std::string fingerprint(const sim::SimEnv&) override {
    std::ostringstream out;
    out << "cells=[";
    for (const std::int64_t value : snapshot_.peek()) out << value << ',';
    out << "];ops=" << history_.size() << ';';
    return out.str();
  }

 private:
  sim::AtomicSnapshot snapshot_;
  int writers_;
  int rounds_;
  std::vector<sim::IntervalOp> history_;
};

}  // namespace

SnapshotScanSystem::SnapshotScanSystem(int writers, int rounds)
    : writers_(writers), rounds_(rounds) {
  expects(writers >= 1 && rounds >= 1, "snapshot system needs work to do");
}

std::string SnapshotScanSystem::name() const {
  return "snapshot[w=" + std::to_string(writers_) +
         ",rounds=" + std::to_string(rounds_) + "]";
}

std::unique_ptr<SystemInstance> SnapshotScanSystem::make() const {
  return std::make_unique<SnapshotInstance>(writers_, rounds_);
}

}  // namespace bss::explore
