// The AADGMS atomic snapshot as an explorable system, property-checked with
// the Wing&Gong linearizability checker (runtime/linearizability.h): each
// update/scan is recorded as an interval op, and after every explored
// schedule the checker searches for a legal linearization.  This is the
// explorer's second property family (after election safety) and the model
// for plugging any interval-history object into it.
//
// The factory is thread-safe (the parallel explorer calls make()
// concurrently from its workers): (writers, rounds) is fixed at
// construction and make() only reads it — all mutable state lives in the
// per-run instance.
#pragma once

#include <memory>
#include <string>

#include "explore/system.h"

namespace bss::explore {

class SnapshotScanSystem final : public ExplorableSystem {
 public:
  /// `writers` processes update their own component `rounds` times each; one
  /// extra process scans `rounds + 1` times.
  SnapshotScanSystem(int writers, int rounds);

  std::string name() const override;
  int process_count() const override { return writers_ + 1; }
  std::unique_ptr<SystemInstance> make() const override;

 private:
  int writers_;
  int rounds_;
};

}  // namespace bss::explore
