#include "explore/skewed_system.h"

#include <cstdint>
#include <string>

#include "registers/mwmr_register.h"
#include "util/checked.h"

namespace bss::explore {

namespace {

class SkewedWriterInstance final : public SystemInstance {
 public:
  SkewedWriterInstance(int n, int long_writes, int short_writes)
      : reg_("skew", 0), n_(n), long_writes_(long_writes),
        short_writes_(short_writes) {}

  void populate(sim::SimEnv& env) override {
    for (int p = 0; p < n_; ++p) {
      const int writes = p == 0 ? long_writes_ : short_writes_;
      env.add_process([this, p, writes](sim::Ctx& ctx) {
        for (int i = 1; i <= writes; ++i) {
          reg_.write(ctx, encode(p, i));
        }
      });
    }
  }

  std::optional<std::string> check(const sim::SimEnv&,
                                   const sim::RunReport& report) override {
    if (!report.clean()) return "run not clean: " + report.summary();
    const std::int64_t last = reg_.peek();
    const int writer = static_cast<int>(last / 1000);
    const int count = static_cast<int>(last % 1000);
    const int expected = writer == 0 ? long_writes_ : short_writes_;
    if (writer < 0 || writer >= n_ || count != expected) {
      return "register holds a non-final value: " + std::to_string(last);
    }
    return std::nullopt;
  }

  std::string fingerprint(const sim::SimEnv&) override {
    return "skew=" + std::to_string(reg_.peek()) + ";";
  }

 private:
  static std::int64_t encode(int pid, int i) {
    return static_cast<std::int64_t>(pid) * 1000 + i;
  }

  sim::MwmrRegister<std::int64_t> reg_;
  int n_;
  int long_writes_;
  int short_writes_;
};

}  // namespace

SkewedWriterSystem::SkewedWriterSystem(int n, int long_writes,
                                       int short_writes)
    : n_(n), long_writes_(long_writes), short_writes_(short_writes) {
  expects(n >= 2, "the skewed workload needs a long and a short writer");
  expects(long_writes >= 1 && short_writes >= 1 &&
              long_writes < 1000 && short_writes < 1000,
          "skewed write counts must be in [1, 999]");
}

std::string SkewedWriterSystem::name() const {
  return "skewed[n=" + std::to_string(n_) +
         ",long=" + std::to_string(long_writes_) +
         ",short=" + std::to_string(short_writes_) + "]";
}

std::unique_ptr<SystemInstance> SkewedWriterSystem::make() const {
  return std::make_unique<SkewedWriterInstance>(n_, long_writes_,
                                                short_writes_);
}

}  // namespace bss::explore
