// Write-once k-valued read-modify-write register — the Burns-Cruz-Loui model
// [5].  Their two assumptions, enforced here at runtime:
//   (1) each register may be *written* (changed) at most once;
//   (2) systems in this model contain only such registers, no R/W registers
//       (enforced by src/burns, which builds systems exclusively from these).
// Under those assumptions a k-valued register elects a leader among at most
// k-1 processes, and several registers compose multiplicatively — the
// baseline the paper contrasts with its own (k-1)! algorithm to conclude
// that adding read/write registers increases the power of a bounded object.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "registers/footprint.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::sim {

class WriteOnceRmwK {
  BSS_FOOTPRINT(WriteOnceRmwK, rmw1);

 public:
  WriteOnceRmwK(std::string name, int k, int initial = 0)
      : name_(std::move(name)), k_(k), value_(initial) {
    expects(k >= 1, "write-once RMW needs at least one value");
    expects(initial >= 0 && initial < k, "initial value outside domain");
  }

  /// Atomically applies f; if f changes the value, this must be the first
  /// change ever (write-once), otherwise an invariant violation is raised.
  /// Identity applications (reads in RMW form) are always allowed.
  int read_modify_write(Ctx& ctx, const std::function<int(int)>& f) {
    ctx.sync({name_, "rmw1", 0, 0});
    ctx.access_token().write(name_);
    const int prev = value_;
    const int next = f(prev);
    expects(next >= 0 && next < k_, "RMW modification left the value domain");
    if (next != prev) {
      expects(!written_, "write-once RMW register changed twice");
      written_ = true;
      value_ = next;
      writer_ = ctx.pid();
    }
    ctx.note_result(prev);
    return prev;
  }

  int k() const { return k_; }
  const std::string& name() const { return name_; }
  int peek() const { return value_; }
  bool written() const { return written_; }
  int writer() const { return writer_; }

 private:
  std::string name_;
  int k_;
  int value_;
  bool written_ = false;
  int writer_ = -1;
};

}  // namespace bss::sim
