// Atomic swap register — consensus number 2, like test&set and fetch&add.
// Rounds out the hierarchy's level-2 row: three different level-2 objects,
// all certified/refuted identically by the checker.
#pragma once

#include <cstdint>
#include <string>

#include "registers/footprint.h"
#include "runtime/sim_env.h"

namespace bss::sim {

class SwapRegister {
  BSS_FOOTPRINT(SwapRegister, read, swap);

 public:
  SwapRegister(std::string name, std::int64_t initial = 0)
      : name_(std::move(name)), value_(initial) {}

  /// Atomically writes `next` and returns the previous value.
  std::int64_t swap(Ctx& ctx, std::int64_t next) {
    ctx.sync({name_, "swap", next, 0});
    ctx.access_token().write(name_);
    const std::int64_t prev = value_;
    value_ = next;
    ctx.note_result(prev);
    return prev;
  }

  std::int64_t read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    ctx.note_result(value_);
    return value_;
  }

  const std::string& name() const { return name_; }
  std::int64_t peek() const { return value_; }

 private:
  std::string name_;
  std::int64_t value_;
};

}  // namespace bss::sim
