#include "registers/cas_register_k.h"

#include "registers/footprint.h"
#include "util/checked.h"

namespace bss::sim {

BSS_FOOTPRINT(CasRegisterK, cas, read);

CasRegisterK::CasRegisterK(std::string name, int k)
    : name_(std::move(name)), k_(k) {
  expects(k >= 2, "compare&swap-(k) needs at least two values");
}

void CasRegisterK::check_symbol(int symbol, const char* what) const {
  expects(symbol >= 0 && symbol < k_,
          std::string("compare&swap-(") + std::to_string(k_) + "): " + what +
              " symbol " + std::to_string(symbol) + " outside value domain");
}

void CasRegisterK::count_access(int pid) const {
  if (pid >= 0) {
    const auto index = static_cast<std::size_t>(pid);
    if (accesses_.size() <= index) accesses_.resize(index + 1, 0);
    ++accesses_[index];
  }
  ++total_accesses_;
}

int CasRegisterK::compare_and_swap(Ctx& ctx, int expect, int next) {
  check_symbol(expect, "expected");
  check_symbol(next, "new");
  ctx.sync({name_, "cas", expect, next});
  ctx.access_token().write(name_);
  count_access(ctx.pid());
  const int prev = value_;
  if (prev == expect && next != prev) {
    value_ = next;
    history_.push_back({ctx.pid(), prev, next});
  }
  ctx.note_result(prev);
  return prev;
}

int CasRegisterK::read(Ctx& ctx) const {
  ctx.sync({name_, "read", 0, 0});
  ctx.access_token().read(name_);
  count_access(ctx.pid());
  ctx.note_result(value_);
  return value_;
}

std::uint64_t CasRegisterK::accesses_by(int pid) const {
  const auto index = static_cast<std::size_t>(pid);
  return index < accesses_.size() ? accesses_[index] : 0;
}

}  // namespace bss::sim
