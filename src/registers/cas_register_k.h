// compare&swap-(k): the paper's object of study.
//
// A compare&swap register whose value domain is Σ = {⊥, 0, 1, …, k-2},
// represented here as the integers {0, 1, …, k-1} with 0 playing ⊥.  The
// operation is exactly the paper's definition:
//
//   c&s(a -> b)(r):  prev := r;  if prev = a then r := b;  return prev
//
// An operation *succeeds* if it changes the register's value.  The register
// enforces its value domain at runtime — feeding it a symbol outside Σ is an
// invariant violation, which is how "bounded size" is made a hard constraint
// rather than a convention.  The register also records its transition
// history (the sequence of successful operations), which is the "history" /
// "label" backbone of Section 3; validators use it to check that election
// runs never reuse a symbol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/sim_env.h"

namespace bss::sim {

class CasRegisterK {
 public:
  /// The initial symbol ⊥.
  static constexpr int kBottom = 0;

  struct Transition {
    int pid = -1;
    int from = 0;
    int to = 0;
  };

  /// Constructs a register holding `k` distinct values (k >= 2).
  CasRegisterK(std::string name, int k);

  /// The paper's c&s(expect -> next); returns the previous value.
  int compare_and_swap(Ctx& ctx, int expect, int next);

  /// Plain read, provided for convenience (equivalent to a c&s(x -> x) for
  /// any x; counts as one access to the object).
  int read(Ctx& ctx) const;

  int k() const { return k_; }
  const std::string& name() const { return name_; }

  // --- checker access (no simulation step) ---
  int peek() const { return value_; }
  /// All successful operations, in order: the object's value history.
  const std::vector<Transition>& history() const { return history_; }
  /// Total accesses (successful or not) performed by `pid`.
  std::uint64_t accesses_by(int pid) const;
  std::uint64_t total_accesses() const { return total_accesses_; }

 private:
  void check_symbol(int symbol, const char* what) const;
  void count_access(int pid) const;

  std::string name_;
  int k_;
  int value_ = kBottom;
  std::vector<Transition> history_;
  mutable std::vector<std::uint64_t> accesses_;  // grown on demand, by pid
  mutable std::uint64_t total_accesses_ = 0;
};

}  // namespace bss::sim
