// Multi-writer multi-reader atomic register.
//
// Constructible from SWMR registers (Peterson-Burns [19], Bloom [3]); the
// simulator provides it directly since every granted operation is atomic.
// Still consensus number 1.
#pragma once

#include <string>
#include <utility>

#include "registers/footprint.h"
#include "registers/value.h"
#include "runtime/sim_env.h"

namespace bss::sim {

template <class T>
class MwmrRegister {
  BSS_FOOTPRINT(MwmrRegister, read, write);

 public:
  MwmrRegister(std::string name, T initial)
      : name_(std::move(name)), value_(std::move(initial)) {}

  T read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    ctx.note_result(trace_encode(value_));
    return value_;
  }

  void write(Ctx& ctx, T value) {
    ctx.sync({name_, "write", trace_encode(value), 0});
    ctx.access_token().write(name_);
    value_ = std::move(value);
  }

  const std::string& name() const { return name_; }
  const T& peek() const { return value_; }

 private:
  std::string name_;
  T value_;
};

}  // namespace bss::sim
