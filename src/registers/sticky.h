// Plotkin's sticky bit / sticky register [20] — the classic universal
// write-once object.  A sticky register accepts the first value proposed to
// it and rejects (but reveals the winner on) every later proposal; it is a
// one-shot consensus object for any number of processes.
#pragma once

#include <cstdint>
#include <string>

#include "registers/footprint.h"
#include "runtime/sim_env.h"

namespace bss::sim {

class StickyRegister {
  BSS_FOOTPRINT(StickyRegister, propose, read);

 public:
  static constexpr std::int64_t kUnset = -1;

  explicit StickyRegister(std::string name) : name_(std::move(name)) {}

  /// Proposes `value` (must be >= 0).  Returns the value the register stuck
  /// at — `value` itself iff this proposal won.
  std::int64_t propose(Ctx& ctx, std::int64_t value) {
    ctx.sync({name_, "propose", value, 0});
    ctx.access_token().write(name_);
    if (value_ == kUnset) value_ = value;
    ctx.note_result(value_);
    return value_;
  }

  std::int64_t read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    ctx.note_result(value_);
    return value_;
  }

  const std::string& name() const { return name_; }
  std::int64_t peek() const { return value_; }

 private:
  std::string name_;
  std::int64_t value_ = kUnset;
};

}  // namespace bss::sim
