// fetch&add register — consensus number 2 in Herlihy's hierarchy.
//
// Included for hierarchy-table completeness and as a ticket dispenser for
// examples; unbounded (no value-domain cap), unlike the paper's bounded
// objects.
#pragma once

#include <cstdint>
#include <string>

#include "registers/footprint.h"
#include "runtime/sim_env.h"

namespace bss::sim {

class FetchAdd {
  BSS_FOOTPRINT(FetchAdd, faa, read);

 public:
  FetchAdd(std::string name, std::int64_t initial = 0)
      : name_(std::move(name)), value_(initial) {}

  /// Atomically adds `delta`; returns the previous value.
  std::int64_t fetch_add(Ctx& ctx, std::int64_t delta) {
    ctx.sync({name_, "faa", delta, 0});
    ctx.access_token().write(name_);
    const std::int64_t prev = value_;
    value_ += delta;
    ctx.note_result(prev);
    return prev;
  }

  std::int64_t read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    ctx.note_result(value_);
    return value_;
  }

  const std::string& name() const { return name_; }
  std::int64_t peek() const { return value_; }

 private:
  std::string name_;
  std::int64_t value_;
};

}  // namespace bss::sim
