// BSS_FOOTPRINT — the machine-readable half of a register's OpDesc contract.
//
// Every register class stamps audit tokens (Ctx::access_token) and declares
// each operation to the scheduler via `ctx.sync({name, "op", …})`.  The POR
// sleep sets, the audit layer's footprint diff, and the commutation oracle
// all trust those declared op names, so the declaration and the
// implementation must never drift apart.  BSS_FOOTPRINT puts the declared
// op-name set next to the code that stamps it:
//
//   BSS_FOOTPRINT(SwmrRegister, read, write);
//
// The macro compiles to nothing; `tools/bss_lint` (rule `footprint-declared`)
// cross-checks, per file under src/registers/, the ops listed here against
// the op-name literals in the file's `ctx.sync({…})` calls.  A sync op with
// no BSS_FOOTPRINT entry, an entry with no sync op, or a token-stamping file
// with no annotation at all is a lint error.
#pragma once

// Expands to a harmless declaration so the annotation can sit at class or
// namespace scope and still require its trailing semicolon.
#define BSS_FOOTPRINT(...) static_assert(true, "bss footprint annotation")
