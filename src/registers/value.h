// Trace-encoding helper for register values.
//
// Registers are templates over their value type; the trace stores int64
// arguments.  Integral values are encoded faithfully, anything else is
// traced as 0 (the trace still shows object/op/pid, which is what the
// validators key on).
#pragma once

#include <cstdint>
#include <type_traits>

namespace bss::sim {

template <class T>
std::int64_t trace_encode(const T& value) {
  if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
    return static_cast<std::int64_t>(value);
  } else {
    (void)value;
    return 0;
  }
}

}  // namespace bss::sim
