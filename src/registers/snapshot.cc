#include "registers/snapshot.h"

#include "registers/footprint.h"
#include "util/checked.h"

namespace bss::sim {

BSS_FOOTPRINT(AtomicSnapshot, read, write);

AtomicSnapshot::AtomicSnapshot(std::string name, int n,
                               bool enforce_single_writer)
    : name_(std::move(name)),
      n_(n),
      enforce_single_writer_(enforce_single_writer),
      cells_(static_cast<std::size_t>(n)),
      owners_(static_cast<std::size_t>(n), -1) {
  expects(n >= 1, "snapshot needs at least one component");
}

std::vector<AtomicSnapshot::Cell> AtomicSnapshot::collect(Ctx& ctx) const {
  std::vector<Cell> copy(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const std::string cell = name_ + "[" + std::to_string(i) + "]";
    ctx.sync({cell, "read", 0, 0});
    ctx.access_token().read(cell);
    copy[static_cast<std::size_t>(i)] = cells_[static_cast<std::size_t>(i)];
    const auto pid = static_cast<std::size_t>(ctx.pid());
    if (last_scan_reads_.size() <= pid) last_scan_reads_.resize(pid + 1, 0);
    ++last_scan_reads_[pid];
  }
  return copy;
}

void AtomicSnapshot::update(Ctx& ctx, int component, std::int64_t value) {
  expects(component >= 0 && component < n_, "snapshot component out of range");
  if (enforce_single_writer_) {
    int& owner = owners_[static_cast<std::size_t>(component)];
    if (owner == -1) owner = ctx.pid();
    expects(owner == ctx.pid(),
            "snapshot component updated by a second writer");
  }
  // Embed a scan so that slow scanners can borrow a view from a fast
  // updater; this is what makes scan() wait-free.
  std::vector<std::int64_t> view = scan(ctx);
  Cell& cell = cells_[static_cast<std::size_t>(component)];
  const std::string cell_name = name_ + "[" + std::to_string(component) + "]";
  ctx.sync({cell_name, "write", value, 0});
  ctx.access_token().write(cell_name);
  cell.value = value;
  ++cell.seq;
  cell.writer = ctx.pid();
  cell.view = std::move(view);
}

std::vector<std::int64_t> AtomicSnapshot::scan(Ctx& ctx) const {
  {
    const auto pid = static_cast<std::size_t>(ctx.pid());
    if (last_scan_reads_.size() <= pid) last_scan_reads_.resize(pid + 1, 0);
    last_scan_reads_[pid] = 0;
  }
  std::vector<bool> moved(static_cast<std::size_t>(n_), false);
  std::vector<Cell> previous = collect(ctx);
  for (;;) {
    std::vector<Cell> current = collect(ctx);
    bool identical = true;
    for (int i = 0; i < n_; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (previous[idx].seq != current[idx].seq) {
        identical = false;
        if (moved[idx]) {
          // Component i moved twice inside our window; its embedded view was
          // produced entirely within the window, hence linearizable here.
          return current[idx].view;
        }
        moved[idx] = true;
      }
    }
    if (identical) {
      std::vector<std::int64_t> values(static_cast<std::size_t>(n_));
      for (int i = 0; i < n_; ++i) {
        values[static_cast<std::size_t>(i)] =
            current[static_cast<std::size_t>(i)].value;
      }
      return values;
    }
    previous = std::move(current);
  }
}

std::vector<std::int64_t> AtomicSnapshot::peek() const {
  std::vector<std::int64_t> values(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    values[static_cast<std::size_t>(i)] =
        cells_[static_cast<std::size_t>(i)].value;
  }
  return values;
}

std::uint64_t AtomicSnapshot::reads_in_last_scan(int pid) const {
  const auto index = static_cast<std::size_t>(pid);
  return index < last_scan_reads_.size() ? last_scan_reads_[index] : 0;
}

}  // namespace bss::sim
