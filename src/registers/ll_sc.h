// Load-link / store-conditional — the other top-of-hierarchy object the paper
// names ("compare&swap, or load-link-store-conditional").  Bounded to k
// values like CasRegisterK.  By default this is the idealized LL/SC (SC
// fails iff some other store-conditional succeeded since this process's
// load-link); a FaultPlan (fail_sc) or SimEnv::inject_sc_failure relaxes it
// to the hardware-faithful variant where an individual SC may also fail
// *spuriously* — reported as failure although nothing intervened and the
// link stays intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "registers/footprint.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::sim {

class LlScRegisterK {
  BSS_FOOTPRINT(LlScRegisterK, ll, sc);

 public:
  LlScRegisterK(std::string name, int k, int initial = 0)
      : name_(std::move(name)), k_(k), value_(initial) {
    expects(k >= 1, "LL/SC register needs at least one value");
    expects(initial >= 0 && initial < k, "LL/SC initial value outside domain");
  }

  /// load-link: reads the value and links this process to the current
  /// version.
  int load_link(Ctx& ctx) {
    ctx.sync({name_, "ll", 0, 0});
    // An LL mutates the object's hidden link state, so it is a write for
    // commutation purposes — exactly how ops_commute treats it.
    ctx.access_token().write(name_);
    link(ctx.pid()) = version_;
    ctx.note_result(value_);
    return value_;
  }

  /// store-conditional: writes iff no successful SC intervened since this
  /// process's last LL — unless the engine marked this SC as a spurious
  /// failure, in which case it fails with the link left intact (a retry
  /// after a fresh LL may succeed).  Returns true on success.
  bool store_conditional(Ctx& ctx, int next) {
    expects(next >= 0 && next < k_, "LL/SC store outside value domain");
    ctx.sync({name_, "sc", next, 0});
    ctx.access_token().write(name_);
    const bool spurious = ctx.take_sc_failure();
    const bool ok = !spurious && link(ctx.pid()) == version_;
    if (ok) {
      value_ = next;
      ++version_;
    }
    ctx.note_result(ok ? 1 : 0);
    return ok;
  }

  int k() const { return k_; }
  const std::string& name() const { return name_; }
  int peek() const { return value_; }

 private:
  std::uint64_t& link(int pid) {
    const auto index = static_cast<std::size_t>(pid);
    if (links_.size() <= index) links_.resize(index + 1, kNeverLinked);
    return links_[index];
  }

  static constexpr std::uint64_t kNeverLinked = ~std::uint64_t{0};

  std::string name_;
  int k_;
  int value_;
  std::uint64_t version_ = 0;
  std::vector<std::uint64_t> links_;
};

}  // namespace bss::sim
