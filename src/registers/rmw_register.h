// Generic bounded read-modify-write register.
//
// The paper: "we see [compare&swap] as a test case and believe that the
// results can be generalized to an arbitrary read-modify-write register
// type."  RmwRegisterK is that arbitrary type: the caller supplies the
// modification function per operation; the register enforces a k-value
// domain, like CasRegisterK, and keeps the same transition history.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "registers/footprint.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::sim {

class RmwRegisterK {
  BSS_FOOTPRINT(RmwRegisterK, read, rmw);

 public:
  struct Transition {
    int pid = -1;
    int from = 0;
    int to = 0;
  };

  RmwRegisterK(std::string name, int k, int initial = 0)
      : name_(std::move(name)), k_(k), value_(initial) {
    expects(k >= 1, "RMW register needs at least one value");
    expects(initial >= 0 && initial < k, "RMW initial value outside domain");
  }

  /// Atomically replaces the value v with f(v); returns the previous value.
  /// f's result must stay inside the k-value domain.
  int read_modify_write(Ctx& ctx, const std::function<int(int)>& f) {
    ctx.sync({name_, "rmw", 0, 0});
    ctx.access_token().write(name_);
    const int prev = value_;
    const int next = f(prev);
    expects(next >= 0 && next < k_, "RMW modification left the value domain");
    if (next != prev) {
      value_ = next;
      history_.push_back({ctx.pid(), prev, next});
    }
    ctx.note_result(prev);
    return prev;
  }

  int read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    ctx.note_result(value_);
    return value_;
  }

  int k() const { return k_; }
  const std::string& name() const { return name_; }
  int peek() const { return value_; }
  const std::vector<Transition>& history() const { return history_; }

 private:
  std::string name_;
  int k_;
  int value_;
  std::vector<Transition> history_;
};

}  // namespace bss::sim
