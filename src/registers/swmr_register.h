// Single-writer multi-reader atomic register.
//
// The weakest object in the model: consensus number 1 (FLP/Loui-Abu-Amara),
// and the building block everything else layers on.  The paper assumes
// w.l.o.g. that all of algorithm A's read/write registers are SWMR [3,17,19,
// 22]; we enforce the single-writer discipline at runtime.
#pragma once

#include <string>
#include <utility>

#include "registers/footprint.h"
#include "registers/value.h"
#include "runtime/sim_env.h"
#include "util/checked.h"

namespace bss::sim {

template <class T>
class SwmrRegister {
  BSS_FOOTPRINT(SwmrRegister, read, write);

 public:
  /// `writer` is the only pid allowed to write; pass kAnyWriter to defer the
  /// binding to the first write (the writer is then fixed forever).
  static constexpr int kAnyWriter = -1;

  SwmrRegister(std::string name, int writer, T initial)
      : name_(std::move(name)), writer_(writer), value_(std::move(initial)) {}

  T read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    ctx.note_result(trace_encode(value_));
    return value_;
  }

  void write(Ctx& ctx, T value) {
    ctx.sync({name_, "write", trace_encode(value), 0});
    ctx.access_token().write(name_);
    if (writer_ == kAnyWriter) writer_ = ctx.pid();
    expects(writer_ == ctx.pid(), "SWMR register written by a second writer");
    value_ = std::move(value);
  }

  const std::string& name() const { return name_; }
  /// Checker access: current value without taking a simulation step.
  const T& peek() const { return value_; }

 private:
  std::string name_;
  int writer_;
  T value_;
};

}  // namespace bss::sim
