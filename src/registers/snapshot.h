// Wait-free atomic snapshot from SWMR registers
// (Afek, Attiya, Dolev, Gafni, Merritt, Shavit, JACM '93).
//
// The emulation of Section 3 begins every iteration with
// `SnapShot(T, G)` — an atomic read of all shared data structures.  Atomic
// snapshots are implementable wait-free from plain SWMR registers, so using
// them costs the reduction nothing; this module is that implementation, kept
// faithful (double collect + borrowed embedded scans) rather than exploiting
// the simulator's step atomicity.
//
// Each of the n components is owned (written) by one process.  update()
// embeds a full scan in the written cell; scan() double-collects until either
// two identical collects appear (a clean snapshot) or some component is seen
// to move twice, whose embedded view — taken entirely inside this scan's
// window — is borrowed.  Either way the result is linearizable, and the scan
// finishes within O(n^2) reads: bounded wait-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/sim_env.h"

namespace bss::sim {

class AtomicSnapshot {
 public:
  /// `n` components, indexed 0..n-1; component i may be updated by any
  /// process but only one at a time owns it in the intended SWMR usage
  /// (enforce_single_writer controls whether that discipline is checked).
  AtomicSnapshot(std::string name, int n, bool enforce_single_writer = true);

  /// Writes `value` to component `component` (embedding a fresh scan).
  void update(Ctx& ctx, int component, std::int64_t value);

  /// Returns a linearizable view of all n components.
  std::vector<std::int64_t> scan(Ctx& ctx) const;

  int component_count() const { return n_; }
  const std::string& name() const { return name_; }

  /// Checker access: current values without simulation steps.
  std::vector<std::int64_t> peek() const;
  /// Number of physical register reads the last scan by `pid` needed
  /// (instrumentation for bench_primitives).
  std::uint64_t reads_in_last_scan(int pid) const;

 private:
  struct Cell {
    std::int64_t value = 0;
    std::uint64_t seq = 0;
    int writer = -1;
    std::vector<std::int64_t> view;  // embedded scan at time of update
  };

  // One collect: reads every cell, one simulation step each.
  std::vector<Cell> collect(Ctx& ctx) const;

  std::string name_;
  int n_;
  bool enforce_single_writer_;
  std::vector<Cell> cells_;
  std::vector<int> owners_;  // fixed at first update when enforcing SWMR
  mutable std::vector<std::uint64_t> last_scan_reads_;  // by pid
};

}  // namespace bss::sim
