// Single-bit test&set — consensus number exactly 2.
//
// The paper's introduction: with test&set, 2 processes can elect a leader and
// solve consensus, 3 can do neither [10,13,18].  Both facts are exercised in
// src/hierarchy and verified exhaustively in src/checker.
#pragma once

#include <string>

#include "registers/footprint.h"
#include "runtime/sim_env.h"

namespace bss::sim {

class TestAndSet {
  BSS_FOOTPRINT(TestAndSet, read, tas);

 public:
  explicit TestAndSet(std::string name) : name_(std::move(name)) {}

  /// Atomically sets the bit; returns the *previous* value (false for the
  /// unique winner).
  bool test_and_set(Ctx& ctx) {
    ctx.sync({name_, "tas", 0, 0});
    ctx.access_token().write(name_);
    const bool prev = set_;
    set_ = true;
    ctx.note_result(prev ? 1 : 0);
    return prev;
  }

  bool read(Ctx& ctx) const {
    ctx.sync({name_, "read", 0, 0});
    ctx.access_token().read(name_);
    ctx.note_result(set_ ? 1 : 0);
    return set_;
  }

  const std::string& name() const { return name_; }
  bool peek() const { return set_; }

 private:
  std::string name_;
  bool set_ = false;
};

}  // namespace bss::sim
