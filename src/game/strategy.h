// Strategies for the move/jump game, and the play() driver.
//
// The Lemma bounds ANY strategy; these provide the two sides of the check:
//   * RandomStrategy / GreedyDescentStrategy push games as long as they can
//     (the greedy one walks agents down a fixed ladder and jumps back up on
//     every enabling move — the longest-run heuristic);
//   * play() runs a strategy to exhaustion and returns the move count, which
//     tests compare against m^k.
// The exact maxima for tiny instances come from exhaustive.h.
#pragma once

#include <cstdint>
#include <optional>

#include "game/game.h"
#include "util/rng.h"

namespace bss::game {

class Strategy {
 public:
  virtual ~Strategy() = default;
  /// The next action, or nullopt to resign.  Returned actions must be legal
  /// and (for moves) not close a cycle — play() stops on violations.
  virtual std::optional<Action> next(const MoveJumpGame& game) = 0;
};

/// Uniformly random legal non-cycle-closing action, with moves preferred
/// over jumps `move_bias` of the time.
class RandomStrategy final : public Strategy {
 public:
  explicit RandomStrategy(std::uint64_t seed, double move_bias = 0.7)
      : rng_(seed), move_bias_(move_bias) {}
  std::optional<Action> next(const MoveJumpGame& game) override;

 private:
  bss::Rng rng_;
  double move_bias_;
};

/// Ladder heuristic: treat node indices as the intended topological order;
/// always take an enabled upward jump first (recovering potential), else
/// move the highest agent one rung down; else any legal non-closing move.
class GreedyDescentStrategy final : public Strategy {
 public:
  std::optional<Action> next(const MoveJumpGame& game) override;
};

struct PlayResult {
  std::uint64_t moves = 0;
  std::uint64_t jumps = 0;
  bool resigned = false;  // strategy gave up before closing a cycle
};

/// Runs `strategy` until it resigns, a move would close a cycle, or
/// `max_actions` is hit (a safety net; the Lemma says it cannot be hit with
/// max_actions > m^k + jump budget).
PlayResult play(MoveJumpGame& game, Strategy& strategy,
                std::uint64_t max_actions = 1'000'000);

}  // namespace bss::game
