#include "game/exhaustive.h"

#include <unordered_map>
#include <vector>

namespace bss::game {

namespace {

// Mutable mirror of the game state tuned for search (the public engine keeps
// a log; the search needs cheap do/undo and hashing instead).
struct SearchState {
  int k = 0;
  int m = 0;
  std::vector<int> positions;
  std::vector<bool> painted;       // k*k
  std::vector<bool> tokens;        // m*k

  bool edge(int from, int to) const {
    return painted[static_cast<std::size_t>(from * k + to)];
  }

  bool reaches(int from, int to) const {
    if (from == to) return true;
    std::vector<bool> seen(static_cast<std::size_t>(k), false);
    std::vector<int> stack{from};
    seen[static_cast<std::size_t>(from)] = true;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      for (int next = 0; next < k; ++next) {
        if (!edge(node, next) || seen[static_cast<std::size_t>(next)]) continue;
        if (next == to) return true;
        seen[static_cast<std::size_t>(next)] = true;
        stack.push_back(next);
      }
    }
    return false;
  }

  std::uint64_t encode() const {
    // Dense bit packing; guarded by expects() in solve_exhaustive.
    std::uint64_t code = 0;
    for (const int position : positions) {
      code = code * static_cast<std::uint64_t>(k) +
             static_cast<std::uint64_t>(position);
    }
    for (const bool bit : painted) code = (code << 1) | (bit ? 1u : 0u);
    for (const bool bit : tokens) code = (code << 1) | (bit ? 1u : 0u);
    return code;
  }
};

class Solver {
 public:
  Solver(SearchState state, const ExhaustiveLimits& limits)
      : state_(std::move(state)), limits_(limits) {}

  std::uint64_t solve() { return best_from_here(); }
  std::uint64_t states_explored() const { return memo_.size(); }

 private:
  std::uint64_t best_from_here() {
    const std::uint64_t code = state_.encode();
    if (const auto it = memo_.find(code); it != memo_.end()) {
      expects(it->second != kInProgress,
              "move/jump state cycle found: this would refute Lemma 1.1");
      return it->second;
    }
    expects(memo_.size() < limits_.max_states,
            "exhaustive game search exceeded its state budget");
    memo_[code] = kInProgress;

    std::uint64_t best = 0;
    const int k = state_.k;
    const int m = state_.m;
    for (int agent = 0; agent < m; ++agent) {
      const int from = state_.positions[static_cast<std::size_t>(agent)];
      for (int to = 0; to < k; ++to) {
        if (to == from) continue;
        // Move, unless it closes a cycle (painting from->to with to ~> from).
        const bool already = state_.edge(from, to);
        if (already || !state_.reaches(to, from)) {
          const auto undo = apply_move(agent, from, to, already);
          best = std::max(best, 1 + best_from_here());
          undo_move(agent, from, to, undo);
        }
        // Jump.
        if (state_.tokens[static_cast<std::size_t>(agent * k + to)]) {
          const auto undo = apply_jump(agent, from, to);
          best = std::max(best, best_from_here());
          undo_jump(agent, from, to, undo);
        }
      }
    }
    memo_[code] = best;
    return best;
  }

  struct MoveUndo {
    std::vector<bool> prior_tokens;  // tokens[*][to] before the move
    bool painted_now = false;        // this move painted a fresh edge
  };

  MoveUndo apply_move(int agent, int from, int to, bool already_painted) {
    MoveUndo undo;
    const int k = state_.k;
    if (!already_painted) {
      state_.painted[static_cast<std::size_t>(from * k + to)] = true;
      undo.painted_now = true;
    }
    undo.prior_tokens.resize(static_cast<std::size_t>(state_.m));
    for (int other = 0; other < state_.m; ++other) {
      undo.prior_tokens[static_cast<std::size_t>(other)] =
          state_.tokens[static_cast<std::size_t>(other * k + to)];
      if (other != agent) {
        state_.tokens[static_cast<std::size_t>(other * k + to)] = true;
      }
    }
    // Arrival consumes the mover's own token at the destination.
    state_.tokens[static_cast<std::size_t>(agent * k + to)] = false;
    state_.positions[static_cast<std::size_t>(agent)] = to;
    return undo;
  }

  void undo_move(int agent, int from, int to, const MoveUndo& undo) {
    const int k = state_.k;
    state_.positions[static_cast<std::size_t>(agent)] = from;
    for (int other = 0; other < state_.m; ++other) {
      state_.tokens[static_cast<std::size_t>(other * k + to)] =
          undo.prior_tokens[static_cast<std::size_t>(other)];
    }
    if (undo.painted_now) {
      state_.painted[static_cast<std::size_t>(from * k + to)] = false;
    }
  }

  struct JumpUndo {};

  JumpUndo apply_jump(int agent, int from, int to) {
    (void)from;
    state_.tokens[static_cast<std::size_t>(agent * state_.k + to)] = false;
    state_.positions[static_cast<std::size_t>(agent)] = to;
    return {};
  }

  void undo_jump(int agent, int from, int to, JumpUndo) {
    state_.tokens[static_cast<std::size_t>(agent * state_.k + to)] = true;
    state_.positions[static_cast<std::size_t>(agent)] = from;
  }

  static constexpr std::uint64_t kInProgress = ~std::uint64_t{0};

  SearchState state_;
  ExhaustiveLimits limits_;
  std::unordered_map<std::uint64_t, std::uint64_t> memo_;
};

}  // namespace

ExhaustiveResult solve_exhaustive(const MoveJumpGame& game,
                                  const ExhaustiveLimits& limits) {
  const int k = game.k();
  const int m = game.m();
  // encode() packs m*log2(k) + k^2 + m*k bits into 64.
  double bits = static_cast<double>(k * k + m * k);
  for (int i = 0; i < m; ++i) bits += 2;  // k <= 4 in practice
  expects(k * k + m * k + 2 * m <= 60,
          "instance too large for exhaustive search encoding");
  (void)bits;

  SearchState state;
  state.k = k;
  state.m = m;
  state.positions.resize(static_cast<std::size_t>(m));
  for (int agent = 0; agent < m; ++agent) {
    state.positions[static_cast<std::size_t>(agent)] = game.position(agent);
  }
  state.painted.assign(static_cast<std::size_t>(k * k), false);
  for (int from = 0; from < k; ++from) {
    for (int to = 0; to < k; ++to) {
      state.painted[static_cast<std::size_t>(from * k + to)] =
          game.edge_painted(from, to);
    }
  }
  // Fresh games have no enabled tokens; mid-game states are not supported
  // (the engine does not expose its token table), so require a fresh game.
  expects(game.move_count() == 0 && game.log().empty(),
          "solve_exhaustive expects an unplayed game");
  state.tokens.assign(static_cast<std::size_t>(m * k), false);

  Solver solver(std::move(state), limits);
  ExhaustiveResult result;
  result.max_moves = solver.solve();
  result.states_explored = solver.states_explored();
  return result;
}

}  // namespace bss::game
