#include "game/game.h"

#include <sstream>

namespace bss::game {

MoveJumpGame::MoveJumpGame(int k, int m, int start)
    : MoveJumpGame(k, m,
                   std::vector<int>(static_cast<std::size_t>(m),
                                    start == -1 ? k - 1 : start)) {}

MoveJumpGame::MoveJumpGame(int k, int m, std::vector<int> positions)
    : k_(k),
      m_(m),
      positions_(std::move(positions)),
      painted_(static_cast<std::size_t>(k),
               std::vector<bool>(static_cast<std::size_t>(k), false)),
      jump_enabled_(static_cast<std::size_t>(m),
                    std::vector<bool>(static_cast<std::size_t>(k), false)) {
  expects(k >= 2, "game needs at least 2 nodes");
  expects(m >= 1, "game needs at least 1 agent");
  expects(positions_.size() == static_cast<std::size_t>(m),
          "one starting node per agent");
  for (const int node : positions_) {
    expects(node >= 0 && node < k, "starting node out of range");
  }
}

std::uint64_t MoveJumpGame::bound() const {
  std::uint64_t value = 1;
  for (int i = 0; i < k_; ++i) {
    expects(value <= ~std::uint64_t{0} / static_cast<std::uint64_t>(m_),
            "m^k overflows uint64 for this instance");
    value *= static_cast<std::uint64_t>(m_);
  }
  return value;
}

int MoveJumpGame::position(int agent) const {
  expects(agent >= 0 && agent < m_, "agent out of range");
  return positions_[static_cast<std::size_t>(agent)];
}

bool MoveJumpGame::edge_painted(int from, int to) const {
  return painted_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

bool MoveJumpGame::reachable(int from, int to) const {
  if (from == to) return true;
  std::vector<bool> seen(static_cast<std::size_t>(k_), false);
  std::vector<int> stack{from};
  seen[static_cast<std::size_t>(from)] = true;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (int next = 0; next < k_; ++next) {
      if (!painted_[static_cast<std::size_t>(node)][static_cast<std::size_t>(next)] ||
          seen[static_cast<std::size_t>(next)]) {
        continue;
      }
      if (next == to) return true;
      seen[static_cast<std::size_t>(next)] = true;
      stack.push_back(next);
    }
  }
  return false;
}

bool MoveJumpGame::can_move(int agent, int to) const {
  if (cycle_closed_) return false;
  if (agent < 0 || agent >= m_ || to < 0 || to >= k_) return false;
  return positions_[static_cast<std::size_t>(agent)] != to;
}

bool MoveJumpGame::move_closes_cycle(int agent, int to) const {
  const int from = position(agent);
  if (edge_painted(from, to)) return false;  // nothing new is painted
  // Painting from -> to closes a cycle iff to already reaches from.
  return reachable(to, from);
}

bool MoveJumpGame::can_jump(int agent, int to) const {
  if (cycle_closed_) return false;
  if (agent < 0 || agent >= m_ || to < 0 || to >= k_) return false;
  if (positions_[static_cast<std::size_t>(agent)] == to) return false;
  return jump_enabled_[static_cast<std::size_t>(agent)][static_cast<std::size_t>(to)];
}

void MoveJumpGame::arrive(int agent, int node) {
  positions_[static_cast<std::size_t>(agent)] = node;
  // The agent is now visiting `node`; only a future move into it by another
  // agent can re-enable a jump back.
  jump_enabled_[static_cast<std::size_t>(agent)][static_cast<std::size_t>(node)] =
      false;
}

bool MoveJumpGame::move(int agent, int to) {
  expects(can_move(agent, to), "illegal move");
  const int from = position(agent);
  if (move_closes_cycle(agent, to)) {
    cycle_closed_ = true;
    return false;  // the cycle-closing move is not counted
  }
  painted_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] = true;
  ++move_count_;
  log_.push_back({ActionKind::kMove, agent, from, to});
  // This move enables every OTHER agent to jump to `to`.
  for (int other = 0; other < m_; ++other) {
    if (other != agent) {
      jump_enabled_[static_cast<std::size_t>(other)][static_cast<std::size_t>(to)] =
          true;
    }
  }
  arrive(agent, to);
  return true;
}

void MoveJumpGame::jump(int agent, int to) {
  expects(can_jump(agent, to), "illegal jump");
  const int from = position(agent);
  log_.push_back({ActionKind::kJump, agent, from, to});
  arrive(agent, to);
}

std::string MoveJumpGame::to_string() const {
  std::ostringstream out;
  out << "game k=" << k_ << " m=" << m_ << " moves=" << move_count_
      << (cycle_closed_ ? " (cycle closed)" : "") << "\n  positions:";
  for (int agent = 0; agent < m_; ++agent) {
    out << " a" << agent << "@" << positions_[static_cast<std::size_t>(agent)];
  }
  out << "\n  painted:";
  for (int from = 0; from < k_; ++from) {
    for (int to = 0; to < k_; ++to) {
      if (edge_painted(from, to)) out << " " << from << "->" << to;
    }
  }
  return out.str();
}

}  // namespace bss::game
