// The move/jump agent game of Lemma 1.1 (proof due to Noga Alon).
//
// A complete directed graph on k nodes holds m agents.  Repeatedly, an agent
// may either
//   Move: travel from its node v to another node u, painting edge v -> u;
//   Jump: teleport to node u, allowed only if some OTHER agent has moved
//         into u since this agent's last visit to u (or ever, if unvisited).
// The question: how many Moves can happen before the painted edges contain a
// (directed) cycle?  Lemma 1.1: at most m^k — the combinatorial heart of the
// paper's key invariant (every tree node keeps heavy excess-graph paths to
// its ancestors), i.e. the reason UpdateC&S's threshold walk terminates.
//
// This module is the exact game: legality of both actions, painted-edge
// bookkeeping, cycle detection, and a full event log that the potential
// analysis (potential.h) replays.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/checked.h"

namespace bss::game {

enum class ActionKind { kMove, kJump };

struct Action {
  ActionKind kind = ActionKind::kMove;
  int agent = -1;
  int from = -1;
  int to = -1;
};

class MoveJumpGame {
 public:
  /// All agents start at node `start` (default: the top node k-1).
  MoveJumpGame(int k, int m, int start = -1);
  /// Arbitrary initial placement: positions[a] = starting node of agent a.
  MoveJumpGame(int k, int m, std::vector<int> positions);

  int k() const { return k_; }
  int m() const { return m_; }

  /// Lemma 1.1's bound on the number of Moves: m^k.
  std::uint64_t bound() const;

  int position(int agent) const;
  bool edge_painted(int from, int to) const;
  /// True once the painted edges contain a directed cycle; no further
  /// actions are accepted after this.
  bool cycle_closed() const { return cycle_closed_; }
  std::uint64_t move_count() const { return move_count_; }
  const std::vector<Action>& log() const { return log_; }

  /// Move legality: agent is at `from` != `to`, and the game is live.  Note
  /// a move may be legal and still close a cycle; strategies that want to
  /// stay alive should also consult move_closes_cycle().
  bool can_move(int agent, int to) const;
  /// Whether painting (position(agent) -> to) would close a cycle.
  bool move_closes_cycle(int agent, int to) const;
  /// Jump legality: another agent moved into `to` since this agent's last
  /// visit there (visits by moves, jumps or initial placement all count).
  bool can_jump(int agent, int to) const;

  /// Performs the action; returns false (and rejects the action) if a Move
  /// closed a cycle — the game then ends and that move is not counted, per
  /// the Lemma's phrasing ("moves ... before the painted edges contain a
  /// cycle").
  bool move(int agent, int to);
  void jump(int agent, int to);

  std::string to_string() const;

 private:
  void arrive(int agent, int node);
  bool reachable(int from, int to) const;  // over painted edges

  int k_;
  int m_;
  std::vector<int> positions_;
  std::vector<std::vector<bool>> painted_;       // [from][to]
  std::vector<std::vector<bool>> jump_enabled_;  // [agent][node]
  bool cycle_closed_ = false;
  std::uint64_t move_count_ = 0;
  std::vector<Action> log_;
};

}  // namespace bss::game
