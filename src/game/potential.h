// Alon's potential-function analysis of the move/jump game, replayable.
//
// Topologically sort the FINAL painted (acyclic) graph so every painted edge
// goes from a higher-indexed node to a lower-indexed one; give an agent at
// topological index i the weight m^i, and let Φ be the sum of agent weights.
// Then:  Φ_start <= m * m^(k-1) = m^k,  Φ >= m * m^0 > 0 always,  and every
// Move strictly decreases Φ (for m >= 2): the mover descends from index i to
// index j < i, losing m^i - m^j >= m^j (m-1) — enough to pay for the at most
// m-1 jumps into j that the move enables, with 1 left over.  Hence at most
// m^k moves.  PotentialReplay recomputes Φ along a finished game's log and
// exposes each of those inequalities for the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "game/game.h"

namespace bss::game {

struct PotentialReplay {
  /// Topological index of each node in the final painted graph (higher index
  /// = earlier in every painted edge).
  std::vector<int> topo_index;
  /// Φ before any action, and after each logged action.
  std::vector<std::uint64_t> phi;
  /// For each logged Move: Φ decrease of the mover alone (>= 1 when m >= 2).
  std::vector<std::uint64_t> move_drops;
  std::uint64_t phi_start = 0;
  std::uint64_t bound = 0;  // m^k
  bool all_moves_descend = false;  // every move goes down in topo order
};

/// Analyzes a finished (or abandoned) game; the painted graph must be
/// acyclic, which it is whenever the game engine was used (cycle-closing
/// moves are rejected).
PotentialReplay analyze_potential(const MoveJumpGame& game);

}  // namespace bss::game
