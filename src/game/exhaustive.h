// Exact solution of tiny move/jump instances by exhaustive search.
//
// Lemma 1.1 gives the upper bound m^k; this module computes the TRUE maximum
// number of moves for small (k, m) by memoized depth-first search over the
// full game-state graph (positions × painted edges × jump tokens).  The
// bench's T2 table prints exact maxima next to the bound; tests assert
// max <= m^k and that the search agrees with hand-checked instances.
//
// A revisited state on the current search path would mean an unbounded-move
// play exists — a refutation of the Lemma — and is reported as an invariant
// violation rather than looped over.  (Jump-only cycles are impossible:
// every jump strictly consumes a token.)
#pragma once

#include <cstdint>

#include "game/game.h"

namespace bss::game {

struct ExhaustiveResult {
  std::uint64_t max_moves = 0;
  std::uint64_t states_explored = 0;
};

struct ExhaustiveLimits {
  /// Abort (by invariant error) past this many distinct states — keeps an
  /// accidentally huge instance from hanging the test suite.
  std::uint64_t max_states = 50'000'000;
};

/// Exact maximum move count over all plays of the game from its current
/// state.  Feasible roughly for k*m <= 8 (state space grows as
/// k^m * 2^(k(k-1)) * 2^(km)).
ExhaustiveResult solve_exhaustive(const MoveJumpGame& game,
                                  const ExhaustiveLimits& limits = {});

}  // namespace bss::game
