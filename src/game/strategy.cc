#include "game/strategy.h"

#include <vector>

namespace bss::game {

namespace {

std::vector<Action> legal_moves(const MoveJumpGame& game) {
  std::vector<Action> actions;
  for (int agent = 0; agent < game.m(); ++agent) {
    for (int to = 0; to < game.k(); ++to) {
      if (game.can_move(agent, to) && !game.move_closes_cycle(agent, to)) {
        actions.push_back({ActionKind::kMove, agent, game.position(agent), to});
      }
    }
  }
  return actions;
}

std::vector<Action> legal_jumps(const MoveJumpGame& game) {
  std::vector<Action> actions;
  for (int agent = 0; agent < game.m(); ++agent) {
    for (int to = 0; to < game.k(); ++to) {
      if (game.can_jump(agent, to)) {
        actions.push_back({ActionKind::kJump, agent, game.position(agent), to});
      }
    }
  }
  return actions;
}

}  // namespace

std::optional<Action> RandomStrategy::next(const MoveJumpGame& game) {
  const std::vector<Action> moves = legal_moves(game);
  const std::vector<Action> jumps = legal_jumps(game);
  if (moves.empty() && jumps.empty()) return std::nullopt;
  const bool pick_move =
      !moves.empty() && (jumps.empty() || rng_.next_double() < move_bias_);
  const auto& pool = pick_move ? moves : jumps;
  return pool[static_cast<std::size_t>(
      rng_.next_int(static_cast<int>(pool.size())))];
}

std::optional<Action> GreedyDescentStrategy::next(const MoveJumpGame& game) {
  // 1. Upward jumps first — they restore potential for free.
  std::optional<Action> best_jump;
  for (int agent = 0; agent < game.m(); ++agent) {
    for (int to = game.k() - 1; to > game.position(agent); --to) {
      if (game.can_jump(agent, to)) {
        if (!best_jump.has_value() || to > best_jump->to) {
          best_jump = Action{ActionKind::kJump, agent, game.position(agent), to};
        }
      }
    }
  }
  if (best_jump.has_value()) return best_jump;
  // 2. Walk the highest agent one rung down the ladder (never closes a
  //    cycle: ladder edges all point downward).
  int highest = -1;
  for (int agent = 0; agent < game.m(); ++agent) {
    if (highest == -1 || game.position(agent) > game.position(highest)) {
      highest = agent;
    }
  }
  if (game.position(highest) > 0) {
    const int to = game.position(highest) - 1;
    if (!game.move_closes_cycle(highest, to)) {
      return Action{ActionKind::kMove, highest, game.position(highest), to};
    }
  }
  // 3. Any remaining legal move.
  const std::vector<Action> moves = legal_moves(game);
  if (!moves.empty()) return moves.front();
  return std::nullopt;
}

PlayResult play(MoveJumpGame& game, Strategy& strategy,
                std::uint64_t max_actions) {
  PlayResult result;
  for (std::uint64_t i = 0; i < max_actions; ++i) {
    const std::optional<Action> action = strategy.next(game);
    if (!action.has_value()) {
      result.resigned = true;
      break;
    }
    if (action->kind == ActionKind::kMove) {
      if (!game.move(action->agent, action->to)) break;  // cycle: game over
      ++result.moves;
    } else {
      game.jump(action->agent, action->to);
      ++result.jumps;
    }
  }
  return result;
}

}  // namespace bss::game
