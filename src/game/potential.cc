#include "game/potential.h"

#include <algorithm>

namespace bss::game {

namespace {

// Topological order of the painted graph with edges from high to low index.
std::vector<int> topological_index(const MoveJumpGame& game) {
  const int k = game.k();
  std::vector<int> out_degree(static_cast<std::size_t>(k), 0);
  for (int from = 0; from < k; ++from) {
    for (int to = 0; to < k; ++to) {
      if (game.edge_painted(from, to)) {
        ++out_degree[static_cast<std::size_t>(from)];
      }
    }
  }
  // Kahn's algorithm from the sinks up: nodes with no outgoing painted edge
  // get the lowest indices.
  std::vector<int> index(static_cast<std::size_t>(k), -1);
  std::vector<int> ready;
  for (int node = 0; node < k; ++node) {
    if (out_degree[static_cast<std::size_t>(node)] == 0) ready.push_back(node);
  }
  int next_index = 0;
  while (!ready.empty()) {
    // Deterministic: smallest node id first.
    std::sort(ready.begin(), ready.end(), std::greater<int>());
    const int node = ready.back();
    ready.pop_back();
    index[static_cast<std::size_t>(node)] = next_index++;
    for (int from = 0; from < k; ++from) {
      if (game.edge_painted(from, node)) {
        if (--out_degree[static_cast<std::size_t>(from)] == 0) {
          ready.push_back(from);
        }
      }
    }
  }
  expects(next_index == k, "painted graph contains a cycle");
  return index;
}

std::uint64_t weight(int m, int topo) {
  std::uint64_t value = 1;
  for (int i = 0; i < topo; ++i) value *= static_cast<std::uint64_t>(m);
  return value;
}

}  // namespace

PotentialReplay analyze_potential(const MoveJumpGame& game) {
  PotentialReplay replay;
  replay.topo_index = topological_index(game);
  replay.bound = game.bound();

  const int m = game.m();
  // Reconstruct starting positions by rewinding the log.
  std::vector<int> position(static_cast<std::size_t>(m), -1);
  for (auto it = game.log().rbegin(); it != game.log().rend(); ++it) {
    position[static_cast<std::size_t>(it->agent)] = it->from;
  }
  for (int agent = 0; agent < m; ++agent) {
    if (position[static_cast<std::size_t>(agent)] == -1) {
      position[static_cast<std::size_t>(agent)] = game.position(agent);
    }
  }

  const auto phi_of = [&](const std::vector<int>& positions) {
    std::uint64_t phi = 0;
    for (const int node : positions) {
      phi += weight(m, replay.topo_index[static_cast<std::size_t>(node)]);
    }
    return phi;
  };

  replay.phi_start = phi_of(position);
  replay.phi.push_back(replay.phi_start);
  replay.all_moves_descend = true;
  for (const Action& action : game.log()) {
    const auto agent = static_cast<std::size_t>(action.agent);
    if (action.kind == ActionKind::kMove) {
      const int from_topo =
          replay.topo_index[static_cast<std::size_t>(action.from)];
      const int to_topo = replay.topo_index[static_cast<std::size_t>(action.to)];
      if (to_topo >= from_topo) replay.all_moves_descend = false;
      const std::uint64_t drop =
          weight(m, from_topo) -
          (to_topo < from_topo ? weight(m, to_topo) : weight(m, from_topo));
      replay.move_drops.push_back(drop);
    }
    position[agent] = action.to;
    replay.phi.push_back(phi_of(position));
  }
  return replay;
}

}  // namespace bss::game
