#include "obs/metrics.h"

#include <algorithm>

#include "util/checked.h"

namespace bss::obs {

HistogramData::HistogramData(std::vector<std::uint64_t> upper_bounds)
    : bounds(std::move(upper_bounds)), counts(bounds.size() + 1, 0) {
  expects(std::is_sorted(bounds.begin(), bounds.end()) &&
              std::adjacent_find(bounds.begin(), bounds.end()) == bounds.end(),
          "histogram bounds must be strictly ascending");
}

void HistogramData::observe(std::uint64_t value) {
  // First bucket whose inclusive upper bound admits the value; past the
  // last bound, the overflow bucket.
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  counts[static_cast<std::size_t>(it - bounds.begin())] += 1;
  count += 1;
  sum += value;
}

void HistogramData::merge_from(const HistogramData& other) {
  expects(bounds == other.bounds,
          "histogram merge requires identical bounds");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
}

json::Value HistogramData::to_json() const {
  json::Array bounds_json;
  for (const std::uint64_t b : bounds) bounds_json.emplace_back(b);
  json::Array counts_json;
  for (const std::uint64_t c : counts) counts_json.emplace_back(c);
  return json::Object{
      {"bounds", json::Value(std::move(bounds_json))},
      {"counts", json::Value(std::move(counts_json))},
      {"count", json::Value(count)},
      {"sum", json::Value(sum)},
  };
}

std::vector<std::uint64_t> pow2_bounds(int buckets) {
  expects(buckets >= 1 && buckets <= 63, "pow2_bounds: 1..63 buckets");
  std::vector<std::uint64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(buckets));
  for (int i = 0; i < buckets; ++i) {
    bounds.push_back(std::uint64_t{1} << static_cast<unsigned>(i));
  }
  return bounds;
}

std::uint64_t& MetricShard::counter(const std::string& name) {
  return counters_[name];  // value-initialized to 0 on first use
}

void MetricShard::gauge_max(const std::string& name, std::uint64_t value) {
  auto& cell = gauges_[name];
  cell = std::max(cell, value);
}

HistogramData& MetricShard::histogram(
    const std::string& name, const std::vector<std::uint64_t>& bounds) {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return histograms_.emplace(name, HistogramData(bounds)).first->second;
  }
  expects(it->second.bounds == bounds,
          "histogram re-registered with different bounds: " + name);
  return it->second;
}

MetricShard& MetricsRegistry::shard(int id) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = shards_[id];
  if (slot == nullptr) slot = std::make_unique<MetricShard>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot merged;
  for (const auto& [id, shard] : shards_) {
    for (const auto& [name, value] : shard->counters_) {
      merged.counters[name] += value;
    }
    for (const auto& [name, value] : shard->gauges_) {
      auto& cell = merged.gauges[name];
      cell = std::max(cell, value);
    }
    for (const auto& [name, histogram] : shard->histograms_) {
      const auto it = merged.histograms.find(name);
      if (it == merged.histograms.end()) {
        merged.histograms.emplace(name, histogram);
      } else {
        it->second.merge_from(histogram);
      }
    }
  }
  return merged;
}

json::Value MetricsSnapshot::to_json() const {
  json::Object counters_json;
  for (const auto& [name, value] : counters) {
    counters_json.emplace(name, json::Value(value));
  }
  json::Object gauges_json;
  for (const auto& [name, value] : gauges) {
    gauges_json.emplace(name, json::Value(value));
  }
  json::Object histograms_json;
  for (const auto& [name, histogram] : histograms) {
    histograms_json.emplace(name, histogram.to_json());
  }
  return json::Object{
      {"counters", json::Value(std::move(counters_json))},
      {"gauges", json::Value(std::move(gauges_json))},
      {"histograms", json::Value(std::move(histograms_json))},
  };
}

}  // namespace bss::obs
