// Structured event log for exploration campaigns: schedule milestones,
// violations, ddmin progress, fault-point first coverage, audit cross-check
// samples, worker lifecycle, SimEnv crash/restart injections.
//
// Two channels, kept strictly apart so telemetry can be diffed across runs:
//
//  * The DETERMINISTIC channel is the Event itself — kind, a monotonic step
//    stamp, the logical worker id, and string key/value fields.  Every
//    field is a pure function of the exploration's deterministic state
//    (decision tapes, merge order, per-unit counters), never of the clock.
//    Worker lifecycle events are the one deliberate exception: which worker
//    claimed which job IS scheduling-dependent, but their stamps are still
//    logical claim counters, never clock readings.
//
//  * The TIMING channel is attached at emit(): an arrival sequence number
//    and a wall-clock offset.  Both depend on thread interleaving and
//    machine speed, which is why they are quarantined under a separate
//    "timing" key in the JSONL export instead of being mixed into fields.
//
// The step stamp is monotonic PER (kind, emitter): violation events count
// violations in merge order, ddmin events count shrink re-executions within
// one minimization, SimEnv events carry the global step counter.  See
// DESIGN.md §9 for the full taxonomy.
//
// The log is bounded: past `capacity` events the payload is dropped (the
// drop is counted, never silent) so a runaway campaign cannot turn the
// telemetry layer into an allocator stress test.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bss::obs {

struct Event {
  /// Logical worker id for events not tied to a worker-pool thread.
  static constexpr int kCoordinator = -1;

  std::string kind;
  std::uint64_t step = 0;  ///< deterministic monotonic stamp (per kind/emitter)
  int worker = kCoordinator;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// An Event plus its timing channel.
struct StampedEvent {
  Event event;
  std::uint64_t seq = 0;      ///< arrival order across all emitters
  std::uint64_t wall_ns = 0;  ///< steady-clock offset from log creation
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = std::size_t{1} << 16);

  /// Thread-safe append.  Beyond `capacity` the event is counted as
  /// dropped and its payload discarded.
  void emit(Event event);

  std::vector<StampedEvent> events() const;
  std::uint64_t emitted() const;  ///< total emit() calls, drops included
  std::uint64_t dropped() const;

  /// One JSON object per line:
  /// {"kind":…,"step":…,"worker":…,"fields":{…},"timing":{"seq":…,"wall_ns":…}}
  std::string to_jsonl() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<StampedEvent> events_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace bss::obs
