// Phase self-profiler (DESIGN.md §12): scoped wall-time accumulation into a
// closed set of engine phases, answering "where did the time go" for a
// campaign without touching the deterministic channel.  The accumulated
// table is emitted as the `profile` section of `bss-runreport v1` and
// mirrored into the live `bss-status v1` heartbeat.
//
// Passivity contract: a ScopedPhase constructed against a null profiler is
// inert — one pointer test, zero timer calls, no allocation — so hot loops
// can be instrumented unconditionally.  Wall-clock readings live only in
// the accumulated nanosecond totals, which are quarantined alongside the
// `timing` sections of the artifacts that carry them; phases nest and
// overlap (step includes the audit cross-check, ddmin includes its replay
// runs), so the table is orientation, not a disjoint accounting.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

#include "obs/json.h"

namespace bss::obs {

/// The closed phase set.  Adding a phase means adding an enumerator here,
/// a JSON name in kPhaseNames, and a validator row — the runreport and
/// status validators reject names outside this list.
enum class Phase : int {
  kReplay = 0,       ///< re-running a recorded tape through the simulator
  kStep,             ///< executing one fresh schedule (run_one)
  kMerge,            ///< folding per-worker partial results
  kDdmin,            ///< counterexample minimization
  kAudit,            ///< access-ledger commutation cross-checks
  kCheckpointWrite,  ///< serializing + renaming a checkpoint artifact
  kStatusWrite,      ///< serializing + renaming a status heartbeat
};

inline constexpr int kPhaseCount = 7;

inline constexpr std::array<std::string_view, kPhaseCount> kPhaseNames = {
    "replay",  "step",  "merge", "ddmin",
    "audit",   "checkpoint_write", "status_write",
};

/// True iff `name` is one of the closed phase names above.
constexpr bool is_phase_name(std::string_view name) {
  for (const std::string_view known : kPhaseNames) {
    if (known == name) return true;
  }
  return false;
}

/// Thread-safe accumulator: per-phase {calls, ns} cells bumped with relaxed
/// atomics (totals are exact, cross-phase ordering is irrelevant).  One
/// instance is shared by every worker of a run.
class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  void add(Phase phase, std::uint64_t ns) {
    Cell& cell = cells_[static_cast<std::size_t>(phase)];
    cell.calls.fetch_add(1, std::memory_order_relaxed);
    cell.ns.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t calls(Phase phase) const {
    return cells_[static_cast<std::size_t>(phase)].calls.load(
        std::memory_order_relaxed);
  }
  std::uint64_t ns(Phase phase) const {
    return cells_[static_cast<std::size_t>(phase)].ns.load(
        std::memory_order_relaxed);
  }

  /// True once any phase has recorded at least one interval.
  bool has_data() const;

  /// { "<phase>": {"calls": N, "ns": N}, … } for every phase with calls > 0
  /// — the `profile` section shape shared by runreport and status.
  json::Object to_json() const;

  /// Monotonic nanoseconds for interval measurement.  Non-inline so the
  /// clock read (and its lint suppression) lives in exactly one place.
  static std::uint64_t now_ns();

 private:
  struct Cell {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> ns{0};
  };
  std::array<Cell, kPhaseCount> cells_;
};

/// RAII interval: records [construction, destruction) into `profiler` under
/// `phase`.  Null profiler == fully inert (the passivity contract).
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase),
        begin_ns_(profiler ? PhaseProfiler::now_ns() : 0) {}
  ~ScopedPhase() {
    if (profiler_ != nullptr) {
      profiler_->add(phase_, PhaseProfiler::now_ns() - begin_ns_);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
  std::uint64_t begin_ns_;
};

}  // namespace bss::obs
