#include "obs/runreport.h"

#include <cstdio>

#include "obs/profile.h"
#include "util/checked.h"

namespace bss::obs {

namespace {

json::Object& member_object(json::Object& root, const std::string& key) {
  auto it = root.find(key);
  if (it == root.end()) {
    it = root.emplace(key, json::Value(json::Object{})).first;
  }
  return it->second.as_object();
}

json::Array& member_array(json::Object& root, const std::string& key) {
  auto it = root.find(key);
  if (it == root.end()) {
    it = root.emplace(key, json::Value(json::Array{})).first;
  }
  return it->second.as_array();
}

}  // namespace

ReportBuilder::ReportBuilder(std::string kind, std::string producer) {
  root_.emplace("schema", json::Value(std::string(kRunReportSchema)));
  root_.emplace("kind", json::Value(std::move(kind)));
  root_.emplace("producer", json::Value(std::move(producer)));
}

void ReportBuilder::set_system(std::string system) {
  root_["system"] = json::Value(std::move(system));
}

void ReportBuilder::environment(const std::string& key, json::Value value) {
  member_object(root_, "environment")[key] = std::move(value);
}

void ReportBuilder::option(const std::string& key, json::Value value) {
  member_object(root_, "options")[key] = std::move(value);
}

void ReportBuilder::stat(const std::string& key, std::uint64_t value) {
  member_object(root_, "stats")[key] = json::Value(value);
}

void ReportBuilder::coverage(const std::string& key, json::Value value) {
  member_object(root_, "coverage")[key] = std::move(value);
}

void ReportBuilder::violation(json::Object summary) {
  member_array(root_, "violations").emplace_back(std::move(summary));
}

void ReportBuilder::row(json::Object row) {
  member_array(root_, "rows").emplace_back(std::move(row));
}

void ReportBuilder::metrics(const MetricsSnapshot& snapshot) {
  root_["metrics"] = snapshot.to_json();
}

void ReportBuilder::events(std::uint64_t emitted, std::uint64_t dropped) {
  root_["events"] = json::Object{
      {"emitted", json::Value(emitted)},
      {"dropped", json::Value(dropped)},
  };
}

void ReportBuilder::profile(json::Object table) {
  root_["profile"] = json::Value(std::move(table));
}

void ReportBuilder::timing(const std::string& key, json::Value value) {
  member_object(root_, "timing")[key] = std::move(value);
}

json::Value ReportBuilder::build() const { return json::Value(root_); }

std::string ReportBuilder::to_json() const { return build().dump(1) + "\n"; }

std::optional<RunReport> RunReport::parse(std::string_view text,
                                          std::string* error) {
  auto value = json::Value::parse(text, error);
  if (!value.has_value()) return std::nullopt;
  if (!value->is_object()) {
    if (error != nullptr) *error = "runreport: document is not an object";
    return std::nullopt;
  }
  const json::Value* schema = value->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    if (error != nullptr) *error = "runreport: missing schema version";
    return std::nullopt;
  }
  if (schema->as_string() != kRunReportSchema) {
    if (error != nullptr) {
      *error = "runreport: unknown schema version '" + schema->as_string() +
               "' (this build understands '" + std::string(kRunReportSchema) +
               "')";
    }
    return std::nullopt;
  }
  return RunReport{std::move(*value)};
}

namespace {
std::string string_member(const json::Value& root, const std::string& key) {
  const json::Value* member = root.find(key);
  return member != nullptr && member->is_string() ? member->as_string() : "";
}
}  // namespace

std::string RunReport::kind() const { return string_member(root, "kind"); }
std::string RunReport::producer() const {
  return string_member(root, "producer");
}
std::string RunReport::system() const { return string_member(root, "system"); }

const json::Object* RunReport::stats() const {
  const json::Value* member = root.find("stats");
  return member != nullptr && member->is_object() ? &member->as_object()
                                                  : nullptr;
}

const json::Array* RunReport::rows() const {
  const json::Value* member = root.find("rows");
  return member != nullptr && member->is_array() ? &member->as_array()
                                                 : nullptr;
}

std::uint64_t RunReport::stat(const std::string& name,
                              std::uint64_t fallback) const {
  const json::Object* stats_object = stats();
  if (stats_object == nullptr) return fallback;
  const auto it = stats_object->find(name);
  if (it == stats_object->end() || !it->second.is_int() ||
      it->second.as_int() < 0) {
    return fallback;
  }
  return static_cast<std::uint64_t>(it->second.as_int());
}

std::vector<std::string> validate_runreport(std::string_view text) {
  std::vector<std::string> errors;
  std::string parse_error;
  const auto value = json::Value::parse(text, &parse_error);
  if (!value.has_value()) {
    errors.push_back("parse error: " + parse_error);
    return errors;
  }
  if (!value->is_object()) {
    errors.emplace_back("document is not a JSON object");
    return errors;
  }
  const json::Object& root = value->as_object();

  const json::Value* schema = value->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    errors.emplace_back("missing schema version key \"schema\"");
  } else if (schema->as_string() != kRunReportSchema) {
    errors.push_back("unknown schema version '" + schema->as_string() + "'");
  }

  // key -> required kind.  Anything outside this table is schema drift.
  struct KnownKey {
    std::string_view name;
    json::Kind kind;
    bool required;
  };
  static constexpr KnownKey kKnown[] = {
      {"schema", json::Kind::kString, true},
      {"kind", json::Kind::kString, true},
      {"producer", json::Kind::kString, true},
      {"system", json::Kind::kString, false},
      {"environment", json::Kind::kObject, false},
      {"options", json::Kind::kObject, false},
      {"stats", json::Kind::kObject, false},
      {"coverage", json::Kind::kObject, false},
      {"violations", json::Kind::kArray, false},
      {"rows", json::Kind::kArray, false},
      {"metrics", json::Kind::kObject, false},
      {"events", json::Kind::kObject, false},
      {"profile", json::Kind::kObject, false},
      {"timing", json::Kind::kObject, false},
  };
  for (const KnownKey& known : kKnown) {
    const auto it = root.find(std::string(known.name));
    if (it == root.end()) {
      if (known.required) {
        errors.push_back("missing required key \"" + std::string(known.name) +
                         "\"");
      }
      continue;
    }
    if (it->second.kind() != known.kind) {
      errors.push_back("key \"" + std::string(known.name) +
                       "\" has the wrong type");
    }
  }
  for (const auto& [key, member] : root) {
    (void)member;
    bool known = false;
    for (const KnownKey& candidate : kKnown) {
      if (candidate.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      errors.push_back("unknown top-level key \"" + key +
                       "\" (schema drift? bump the version)");
    }
  }
  if (const json::Value* stats = value->find("stats");
      stats != nullptr && stats->is_object()) {
    // The "service." stat family is a closed namespace (the lease service's
    // LeaseStats counters): an unrecognized name there is a typo or schema
    // drift, not a new ad-hoc counter.  And a report that mentions the
    // family at all must carry its load-bearing trio — acquisitions,
    // retries, step-downs — since a soak that reports renewals but hides
    // how often the service gave ground is not auditable.
    static constexpr std::string_view kServiceStats[] = {
        "service.leases_acquired", "service.takeovers",
        "service.renewals",        "service.renew_failures",
        "service.retries",         "service.step_downs",
        "service.expirations",     "service.give_ups",
        "service.actions",
    };
    bool any_service = false;
    for (const auto& [name, stat] : stats->as_object()) {
      if (!stat.is_int()) {
        errors.push_back("stat \"" + name + "\" is not an integer");
      }
      if (name.rfind("service.", 0) != 0) continue;
      any_service = true;
      bool known = false;
      for (std::string_view candidate : kServiceStats) {
        known |= candidate == name;
      }
      if (!known) {
        errors.push_back("unknown service stat \"" + name +
                         "\" (not a LeaseStats counter)");
      }
    }
    if (any_service) {
      for (std::string_view required : {"service.leases_acquired",
                                        "service.retries",
                                        "service.step_downs"}) {
        if (stats->as_object().find(std::string(required)) ==
            stats->as_object().end()) {
          errors.push_back("service stats present but missing \"" +
                           std::string(required) + "\"");
        }
      }
    }
  }
  if (const json::Value* profile = value->find("profile");
      profile != nullptr && profile->is_object()) {
    // The profile section is keyed by the closed phase set (obs/profile.h):
    // an unknown phase name is schema drift, and each cell is exactly the
    // {calls, ns} pair the profiler emits.
    for (const auto& [name, cell] : profile->as_object()) {
      if (!is_phase_name(name)) {
        errors.push_back("unknown profile phase \"" + name +
                         "\" (not in the closed phase set)");
        continue;
      }
      if (!cell.is_object()) {
        errors.push_back("profile phase \"" + name + "\" is not an object");
        continue;
      }
      const json::Object& fields = cell.as_object();
      for (const std::string_view field : {"calls", "ns"}) {
        const auto it = fields.find(std::string(field));
        if (it == fields.end() || !it->second.is_int() ||
            it->second.as_int() < 0) {
          errors.push_back("profile phase \"" + name + "\" field \"" +
                           std::string(field) +
                           "\" is missing or not a non-negative integer");
        }
      }
      for (const auto& [field, member] : fields) {
        (void)member;
        if (field != "calls" && field != "ns") {
          errors.push_back("profile phase \"" + name +
                           "\" has unknown field \"" + field + "\"");
        }
      }
    }
  }
  if (const json::Value* timing = value->find("timing");
      timing != nullptr && timing->is_object()) {
    // Timing is the quarantined non-canonical channel, so entries are free
    // form — but a rate that parses as negative or non-finite is a producer
    // bug, not noise, and would poison any downstream aggregation.
    if (const json::Value* rate = timing->find("schedules_per_second");
        rate != nullptr) {
      if (!rate->is_number()) {
        errors.emplace_back("timing \"schedules_per_second\" is not a number");
      } else {
        const double parsed = rate->as_double();
        if (!(parsed >= 0.0) || parsed > 1e308) {
          errors.emplace_back(
              "timing \"schedules_per_second\" is negative or not finite");
        }
      }
    }
  }
  return errors;
}

bool write_file(const std::string& path, std::string_view text) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool ok = written == text.size() && std::fclose(file) == 0;
  if (written != text.size()) std::fclose(file);
  return ok;
}

}  // namespace bss::obs
