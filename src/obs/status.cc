#include "obs/status.h"

#include <cstdio>
#include <cstdlib>

#include "obs/runreport.h"  // write_file

namespace bss::obs {

namespace {

constexpr std::uint64_t kPpmScale = 1'000'000;

constexpr std::string_view kStates[] = {"running", "complete"};
constexpr std::string_view kWorkerStates[] = {"running", "stealing", "idle"};

bool name_in(std::string_view name, const std::string_view* table,
             std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    if (table[i] == name) return true;
  }
  return false;
}

/// A non-negative integer (the only number type the deterministic channel
/// admits — doubles would break the byte fixed point).
bool counter_ok(const json::Value& value) {
  return value.is_int() && value.as_int() >= 0;
}

void check_progress(const json::Object& progress,
                    std::vector<std::string>& errors) {
  static constexpr std::string_view kCounters[] = {
      "schedules",         "violations", "frontier",
      "fingerprint_prunes", "fingerprint_hit_rate_ppm",
      "checkpoints",       "max_schedules", "passes", "jobs",
  };
  for (const std::string_view name : kCounters) {
    const auto it = progress.find(std::string(name));
    if (it == progress.end()) {
      errors.push_back("progress missing counter \"" + std::string(name) +
                       "\"");
      continue;
    }
    if (!counter_ok(it->second)) {
      errors.push_back("progress counter \"" + std::string(name) +
                       "\" is not a non-negative integer");
    }
  }
  for (const auto& [name, value] : progress) {
    (void)value;
    if (!name_in(name, kCounters,
                 sizeof(kCounters) / sizeof(kCounters[0]))) {
      errors.push_back("unknown progress counter \"" + name +
                       "\" (schema drift? bump the version)");
    }
  }
  if (const auto it = progress.find("fingerprint_hit_rate_ppm");
      it != progress.end() && counter_ok(it->second) &&
      static_cast<std::uint64_t>(it->second.as_int()) > kPpmScale) {
    errors.emplace_back(
        "progress \"fingerprint_hit_rate_ppm\" exceeds one million");
  }
}

void check_workers(const json::Array& workers,
                   std::vector<std::string>& errors) {
  if (workers.empty()) {
    errors.emplace_back("\"workers\" is present but empty (omit it instead)");
  }
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const std::string row = "workers[" + std::to_string(i) + "]";
    if (!workers[i].is_object()) {
      errors.push_back(row + " is not an object");
      continue;
    }
    const json::Object& worker = workers[i].as_object();
    for (const std::string_view field : {"worker", "steals", "schedules"}) {
      const auto it = worker.find(std::string(field));
      if (it == worker.end() || !counter_ok(it->second)) {
        errors.push_back(row + " field \"" + std::string(field) +
                         "\" is missing or not a non-negative integer");
      }
    }
    const auto state = worker.find("state");
    if (state == worker.end() || !state->second.is_string() ||
        !name_in(state->second.as_string(), kWorkerStates,
                 sizeof(kWorkerStates) / sizeof(kWorkerStates[0]))) {
      errors.push_back(row +
                       " \"state\" is not running / stealing / idle");
    }
    for (const auto& [name, value] : worker) {
      (void)value;
      if (name != "worker" && name != "state" && name != "steals" &&
          name != "schedules") {
        errors.push_back(row + " has unknown field \"" + name + "\"");
      }
    }
  }
}

void check_profile(const json::Object& profile,
                   std::vector<std::string>& errors) {
  if (profile.empty()) {
    errors.emplace_back("\"profile\" is present but empty (omit it instead)");
  }
  for (const auto& [name, cell] : profile) {
    if (!is_phase_name(name)) {
      errors.push_back("unknown profile phase \"" + name +
                       "\" (not in the closed phase set)");
      continue;
    }
    if (!cell.is_object()) {
      errors.push_back("profile phase \"" + name + "\" is not an object");
      continue;
    }
    const json::Object& fields = cell.as_object();
    for (const std::string_view field : {"calls", "ns"}) {
      const auto it = fields.find(std::string(field));
      if (it == fields.end() || !counter_ok(it->second)) {
        errors.push_back("profile phase \"" + name + "\" field \"" +
                         std::string(field) +
                         "\" is missing or not a non-negative integer");
      }
    }
    for (const auto& [field, value] : fields) {
      (void)value;
      if (field != "calls" && field != "ns") {
        errors.push_back("profile phase \"" + name +
                         "\" has unknown field \"" + field + "\"");
      }
    }
  }
}

void check_timing(const json::Object& timing,
                  std::vector<std::string>& errors) {
  // Timing is the quarantined wall-clock channel, so extra entries are free
  // form (the runreport policy) — but the fields bss_top renders must not
  // lie: ages and rates that parse as negative or non-finite are producer
  // bugs, not noise.
  if (timing.empty()) {
    errors.emplace_back("\"timing\" is present but empty (omit it instead)");
  }
  for (const std::string_view age : {"elapsed_ms", "checkpoint_age_ms"}) {
    if (const auto it = timing.find(std::string(age)); it != timing.end()) {
      if (!counter_ok(it->second)) {
        errors.push_back("timing \"" + std::string(age) +
                         "\" is not a non-negative integer");
      }
    }
  }
  for (const std::string_view rate :
       {"schedules_per_second", "window_schedules_per_second",
        "eta_seconds"}) {
    const auto it = timing.find(std::string(rate));
    if (it == timing.end()) continue;
    if (!it->second.is_number()) {
      errors.push_back("timing \"" + std::string(rate) + "\" is not a number");
      continue;
    }
    const double parsed = it->second.as_double();
    if (!(parsed >= 0.0) || parsed > 1e308) {
      errors.push_back("timing \"" + std::string(rate) +
                       "\" is negative or not finite");
    }
  }
}

std::vector<std::string> validate_parsed(const json::Value& value) {
  std::vector<std::string> errors;
  if (!value.is_object()) {
    errors.emplace_back("document is not a JSON object");
    return errors;
  }
  const json::Object& root = value.as_object();

  const json::Value* schema = value.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    errors.emplace_back("missing schema version key \"schema\"");
  } else if (schema->as_string() != kStatusSchema) {
    errors.push_back("unknown schema version '" + schema->as_string() + "'");
  }

  struct KnownKey {
    std::string_view name;
    json::Kind kind;
    bool required;
  };
  static constexpr KnownKey kKnown[] = {
      {"schema", json::Kind::kString, true},
      {"producer", json::Kind::kString, true},
      {"system", json::Kind::kString, false},
      {"seq", json::Kind::kInt, true},
      {"state", json::Kind::kString, true},
      {"progress", json::Kind::kObject, true},
      {"workers", json::Kind::kArray, false},
      {"profile", json::Kind::kObject, false},
      {"timing", json::Kind::kObject, false},
  };
  for (const KnownKey& known : kKnown) {
    const auto it = root.find(std::string(known.name));
    if (it == root.end()) {
      if (known.required) {
        errors.push_back("missing required key \"" + std::string(known.name) +
                         "\"");
      }
      continue;
    }
    if (it->second.kind() != known.kind) {
      errors.push_back("key \"" + std::string(known.name) +
                       "\" has the wrong type");
    }
  }
  for (const auto& [key, member] : root) {
    (void)member;
    bool known = false;
    for (const KnownKey& candidate : kKnown) {
      known |= candidate.name == key;
    }
    if (!known) {
      errors.push_back("unknown top-level key \"" + key +
                       "\" (schema drift? bump the version)");
    }
  }

  if (const json::Value* seq = value.find("seq");
      seq != nullptr && seq->is_int() && seq->as_int() < 0) {
    errors.emplace_back("\"seq\" is negative");
  }
  if (const json::Value* state = value.find("state");
      state != nullptr && state->is_string() &&
      !name_in(state->as_string(), kStates, 2)) {
    errors.emplace_back("\"state\" is not \"running\" or \"complete\"");
  }
  // An empty system string would be indistinguishable from an omitted one
  // after a typed round trip, so it is rejected rather than canonicalized.
  if (const json::Value* system = value.find("system");
      system != nullptr && system->is_string() &&
      system->as_string().empty()) {
    errors.emplace_back("\"system\" is present but empty (omit it instead)");
  }

  if (const json::Value* progress = value.find("progress");
      progress != nullptr && progress->is_object()) {
    check_progress(progress->as_object(), errors);
  }
  if (const json::Value* workers = value.find("workers");
      workers != nullptr && workers->is_array()) {
    check_workers(workers->as_array(), errors);
  }
  if (const json::Value* profile = value.find("profile");
      profile != nullptr && profile->is_object()) {
    check_profile(profile->as_object(), errors);
  }
  if (const json::Value* timing = value.find("timing");
      timing != nullptr && timing->is_object()) {
    check_timing(timing->as_object(), errors);
  }
  return errors;
}

std::uint64_t uint_member(const json::Object& object, const char* key) {
  return static_cast<std::uint64_t>(object.at(key).as_int());
}

}  // namespace

std::string Status::to_json() const {
  json::Object root;
  root.emplace("schema", json::Value(std::string(kStatusSchema)));
  root.emplace("producer", json::Value(producer));
  if (!system.empty()) root.emplace("system", json::Value(system));
  root.emplace("seq", json::Value(seq));
  root.emplace("state", json::Value(state));

  json::Object progress;
  progress.emplace("schedules", json::Value(schedules));
  progress.emplace("violations", json::Value(violations));
  progress.emplace("frontier", json::Value(frontier));
  progress.emplace("fingerprint_prunes", json::Value(fingerprint_prunes));
  progress.emplace("fingerprint_hit_rate_ppm",
                   json::Value(fingerprint_hit_rate_ppm));
  progress.emplace("checkpoints", json::Value(checkpoints));
  progress.emplace("max_schedules", json::Value(max_schedules));
  progress.emplace("passes", json::Value(passes));
  progress.emplace("jobs", json::Value(jobs));
  root.emplace("progress", json::Value(std::move(progress)));

  if (!workers.empty()) {
    json::Array rows;
    rows.reserve(workers.size());
    for (const WorkerStatus& worker : workers) {
      json::Object row;
      row.emplace("worker", json::Value(worker.worker));
      row.emplace("state", json::Value(worker.state));
      row.emplace("steals", json::Value(worker.steals));
      row.emplace("schedules", json::Value(worker.schedules));
      rows.emplace_back(std::move(row));
    }
    root.emplace("workers", json::Value(std::move(rows)));
  }
  if (!profile.empty()) root.emplace("profile", json::Value(profile));
  if (!timing.empty()) root.emplace("timing", json::Value(timing));
  return json::Value(std::move(root)).dump(1) + "\n";
}

std::optional<Status> Status::from_artifact(std::string_view text,
                                            std::string* error) {
  std::string parse_error;
  auto value = json::Value::parse(text, &parse_error);
  if (!value.has_value()) {
    if (error != nullptr) *error = "status: parse error: " + parse_error;
    return std::nullopt;
  }
  const auto errors = validate_parsed(*value);
  if (!errors.empty()) {
    if (error != nullptr) *error = "status: " + errors.front();
    return std::nullopt;
  }

  const json::Object& root = value->as_object();
  Status status;
  status.producer = root.at("producer").as_string();
  if (const auto it = root.find("system"); it != root.end()) {
    status.system = it->second.as_string();
  }
  status.seq = static_cast<std::uint64_t>(root.at("seq").as_int());
  status.state = root.at("state").as_string();

  const json::Object& progress = root.at("progress").as_object();
  status.schedules = uint_member(progress, "schedules");
  status.violations = uint_member(progress, "violations");
  status.frontier = uint_member(progress, "frontier");
  status.fingerprint_prunes = uint_member(progress, "fingerprint_prunes");
  status.fingerprint_hit_rate_ppm =
      uint_member(progress, "fingerprint_hit_rate_ppm");
  status.checkpoints = uint_member(progress, "checkpoints");
  status.max_schedules = uint_member(progress, "max_schedules");
  status.passes = uint_member(progress, "passes");
  status.jobs = uint_member(progress, "jobs");

  if (const auto it = root.find("workers"); it != root.end()) {
    for (const json::Value& entry : it->second.as_array()) {
      const json::Object& row = entry.as_object();
      WorkerStatus worker;
      worker.worker = static_cast<int>(row.at("worker").as_int());
      worker.state = row.at("state").as_string();
      worker.steals = uint_member(row, "steals");
      worker.schedules = uint_member(row, "schedules");
      status.workers.push_back(std::move(worker));
    }
  }
  if (const auto it = root.find("profile"); it != root.end()) {
    status.profile = it->second.as_object();
  }
  if (const auto it = root.find("timing"); it != root.end()) {
    status.timing = it->second.as_object();
  }
  return status;
}

std::vector<std::string> validate_status(std::string_view text) {
  std::string parse_error;
  const auto value = json::Value::parse(text, &parse_error);
  if (!value.has_value()) {
    return {"parse error: " + parse_error};
  }
  return validate_parsed(*value);
}

bool write_status_file(const std::string& path, std::string_view text) {
  const std::string tmp = path + ".tmp";
  if (!write_file(tmp, text)) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

StatusWriter::StatusWriter(std::string path, std::uint64_t every_ms)
    : path_(std::move(path)), every_ms_(every_ms) {
  if (path_.empty()) {
    if (const char* env = std::getenv("BSS_STATUS"); env != nullptr) {
      path_ = env;
    }
  }
  if (every_ms_ == 0) {
    if (const char* env = std::getenv("BSS_STATUS_EVERY_MS");
        env != nullptr) {
      every_ms_ = std::strtoull(env, nullptr, 10);
    }
    if (every_ms_ == 0) every_ms_ = 1000;
  }
  if (enabled()) {
    begin_ns_ = PhaseProfiler::now_ns();
    last_write_ns_ = begin_ns_;
  }
}

bool StatusWriter::due() const {
  if (!enabled()) return false;
  return PhaseProfiler::now_ns() - last_write_ns_ >= every_ms_ * 1'000'000;
}

bool StatusWriter::write(Status status) {
  if (!enabled()) return false;
  ScopedPhase scope(profiler_, Phase::kStatusWrite);
  const std::uint64_t now = PhaseProfiler::now_ns();
  status.seq = seq_++;

  json::Object timing;
  const std::uint64_t elapsed_ns = now - begin_ns_;
  timing.emplace("elapsed_ms", json::Value(elapsed_ns / 1'000'000));
  double rate = 0.0;
  if (elapsed_ns > 0) {
    rate = static_cast<double>(status.schedules) * 1e9 /
           static_cast<double>(elapsed_ns);
    timing.emplace("schedules_per_second", json::Value(rate));
  }
  if (const std::uint64_t window_ns = now - last_write_ns_;
      window_ns > 0 && status.schedules >= last_schedules_) {
    timing.emplace(
        "window_schedules_per_second",
        json::Value(static_cast<double>(status.schedules - last_schedules_) *
                    1e9 / static_cast<double>(window_ns)));
  }
  // ETA only while running: a completed campaign that exhausted its space
  // under the valve would otherwise advertise time-to-a-cap it never hit.
  if (status.state == "running" && status.max_schedules > 0 &&
      status.schedules > 0 && status.schedules < status.max_schedules &&
      rate > 0.0) {
    timing.emplace(
        "eta_seconds",
        json::Value(
            static_cast<double>(status.max_schedules - status.schedules) /
            rate));
  }
  if (const std::uint64_t checkpoint_ns =
          checkpoint_ns_.load(std::memory_order_relaxed);
      checkpoint_ns != 0 && now >= checkpoint_ns) {
    timing.emplace("checkpoint_age_ms",
                   json::Value((now - checkpoint_ns) / 1'000'000));
  }
  status.timing = std::move(timing);
  if (profiler_ != nullptr && profiler_->has_data()) {
    status.profile = profiler_->to_json();
  }
  last_write_ns_ = now;
  last_schedules_ = status.schedules;
  return write_status_file(path_, status.to_json());
}

}  // namespace bss::obs
