// Low-overhead metrics for the exploration stack: counters, max-gauges and
// bounded histograms, kept in per-worker *shards* so the hot path never
// takes a lock or touches an atomic.  A shard is single-writer (one worker
// thread at a time); the registry hands shards out under a mutex and merges
// them into one deterministic snapshot after the run quiesces.
//
// Determinism contract: the merged snapshot is a pure fold over shard
// contents with commutative, associative operations (counters/histograms
// add, gauges max) and name-sorted output, so it never depends on thread
// completion order.  What the *values* mean is a different contract:
// metrics measure work actually performed — including speculative subtree
// work the deterministic merge later discards — so, unlike ExploreStats,
// they are NOT invariant across worker counts.  That is the point: the gap
// between metrics and merged stats is exactly the wasted speculation a
// telemetry consumer wants to see.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace bss::obs {

/// A bounded histogram: `bounds` are ascending inclusive upper bounds, and
/// counts has bounds.size() + 1 buckets — the last one catches everything
/// above the largest bound, so the memory footprint is fixed no matter the
/// observed range.
struct HistogramData {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  explicit HistogramData(std::vector<std::uint64_t> upper_bounds = {});
  void observe(std::uint64_t value);
  /// Adds `other` bucket-wise; InvariantError when the bounds differ.
  void merge_from(const HistogramData& other);
  json::Value to_json() const;
};

/// Exponential (power-of-two) bounds 1, 2, 4, …, 2^(buckets-1) — the
/// default shape for step counts and tape lengths.
std::vector<std::uint64_t> pow2_bounds(int buckets);

/// One worker's private metric shard.  Methods are NOT synchronized: a
/// shard must only ever be written by the thread that owns it (worker
/// shards by their worker, the coordinator shard by the explore() thread).
class MetricShard {
 public:
  /// Named counter cell; the reference stays valid for the shard's
  /// lifetime, so hot loops can hoist the lookup.
  std::uint64_t& counter(const std::string& name);
  /// Named max-gauge: merged with max, not sum.
  void gauge_max(const std::string& name, std::uint64_t value);
  /// Named histogram; creates it with `bounds` on first use and verifies
  /// the same bounds on every later one.
  HistogramData& histogram(const std::string& name,
                           const std::vector<std::uint64_t>& bounds);

 private:
  friend class MetricsRegistry;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> gauges_;
  std::map<std::string, HistogramData> histograms_;
};

/// Deterministically merged view of every shard.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  json::Value to_json() const;
};

class MetricsRegistry {
 public:
  /// Shard for `id` (workers use their worker index; Event::kCoordinator
  /// for the coordinator), created on first use.  Thread-safe; the
  /// returned reference is stable.
  MetricShard& shard(int id);

  /// Folds every shard into one snapshot (counters/histograms add, gauges
  /// max, names sorted).  Call after the instrumented run quiesces — the
  /// registry does not synchronize with shard writers.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<int, std::unique_ptr<MetricShard>> shards_;
};

}  // namespace bss::obs
