// Worker timelines for parallel exploration, exported in the Chrome
// trace-event format (loadable in Perfetto or chrome://tracing): one track
// per worker plus a coordinator track carrying the enumeration and merge
// spans, so shard imbalance and merge stalls are visible at a glance.
//
// Spans live entirely in the TIMING channel — wall-clock begin/end measured
// on the recording thread — and never feed back into exploration, so the
// timeline can disagree across runs while results stay byte-identical.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bss::obs {

struct Span {
  std::string name;
  /// Track id: the worker index, or kCoordinatorTrack for the enumerator /
  /// merge spans that run on the explore() thread.
  int track = 0;
  std::uint64_t begin_ns = 0;  ///< Timeline::now_ns() at span start
  std::uint64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class Timeline {
 public:
  /// Track for the single-threaded engine work (enumerate, merge).  Large
  /// so it sorts after any plausible worker count.
  static constexpr int kCoordinatorTrack = 1000;

  Timeline();

  /// Monotonic nanoseconds since timeline creation, for Span stamps.
  std::uint64_t now_ns() const;

  /// Thread-safe append of a completed span.
  void record(Span span);

  std::vector<Span> spans() const;

  /// Chrome trace-event JSON: complete ("ph":"X") events in microseconds,
  /// plus thread_name metadata naming each track ("worker N", and
  /// "enumerate+merge" for the coordinator).
  std::string to_chrome_trace() const;

 private:
  std::uint64_t epoch_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

}  // namespace bss::obs
