#include "obs/obs.h"

#include <utility>

namespace bss::obs {

Telemetry::Telemetry(Options options)
    : options_(std::move(options)), events_(options_.event_capacity) {}

MetricShard* Telemetry::metric_shard(int worker) {
  if (!options_.metrics) return nullptr;
  return &metrics_.shard(worker);
}

bool Telemetry::events_enabled() const { return options_.events; }

void Telemetry::emit(Event event) {
  if (!options_.events) return;
  events_.emit(std::move(event));
}

bool Telemetry::timeline_enabled() const { return options_.timeline; }

std::uint64_t Telemetry::now_ns() const {
  if (!options_.timeline) return 0;
  return timeline_.now_ns();
}

void Telemetry::record_span(Span span) {
  if (!options_.timeline) return;
  timeline_.record(std::move(span));
}

void Telemetry::report(ReportBuilder& builder) {
  if (options_.metrics) builder.metrics(metrics_.snapshot());
  if (options_.events) builder.events(events_.emitted(), events_.dropped());
  if (options_.profile && profiler_.has_data()) {
    builder.profile(profiler_.to_json());
  }
  last_report_ = builder.to_json();
  if (!options_.report_path.empty()) {
    write_file(options_.report_path, last_report_);
  }
  if (!options_.trace_path.empty()) {
    write_file(options_.trace_path, timeline_.to_chrome_trace());
  }
}

MetricsSnapshot Telemetry::metrics_snapshot() const {
  return metrics_.snapshot();
}

}  // namespace bss::obs
