// The telemetry facade the exploration stack talks to.  Hot loops are
// instrumented against the small `ObsSink` interface — a null sink pointer
// means observability is off and the instrumented code must behave (and
// produce results) byte-identically.  `Telemetry` is the production sink:
// it owns a MetricsRegistry, a bounded EventLog and a Timeline, with each
// subsystem independently switchable so overhead can be measured in layers
// (off / metrics-only / metrics+events; see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/runreport.h"
#include "obs/timeline.h"

namespace bss::obs {

/// Abstract telemetry sink.  All methods are thread-safe; the shard
/// returned by metric_shard() is single-writer per the MetricShard rules.
class ObsSink {
 public:
  virtual ~ObsSink() = default;

  /// The metric shard for logical worker `worker` (Event::kCoordinator for
  /// the explore() thread), or nullptr when metrics are off — callers skip
  /// all metric work on nullptr.
  virtual MetricShard* metric_shard(int worker) = 0;

  /// True when emit() actually records; lets callers skip building Event
  /// payloads (string formatting) that would be discarded.
  virtual bool events_enabled() const = 0;
  virtual void emit(Event event) = 0;

  /// True when record_span() actually records; now_ns() is only meaningful
  /// when enabled (returns 0 otherwise).
  virtual bool timeline_enabled() const = 0;
  virtual std::uint64_t now_ns() const = 0;
  virtual void record_span(Span span) = 0;

  /// Called once at the end of an instrumented run with the deterministic
  /// payload already filled in; the sink appends its own summaries
  /// (metrics, event counts, timing) and disposes of the document —
  /// Telemetry writes report/trace files when paths are configured.
  virtual void report(ReportBuilder& builder) = 0;

  /// The phase profiler to accumulate into, or nullptr when phase timing
  /// is off — ScopedPhase on nullptr is fully inert, so instrumented code
  /// pays one pointer test.
  virtual PhaseProfiler* profiler() { return nullptr; }
};

/// The standard sink: metrics + events + timeline, each independently
/// enabled, plus optional artifact paths written by report().
class Telemetry final : public ObsSink {
 public:
  struct Options {
    bool metrics = true;
    bool events = true;
    bool timeline = false;
    /// Accumulate per-phase wall time and emit it as the runreport's
    /// `profile` section (quarantined alongside `timing`).
    bool profile = false;
    std::size_t event_capacity = std::size_t{1} << 16;
    /// When non-empty, report() writes the bss-runreport v1 document here.
    std::string report_path;
    /// When non-empty, report() writes the Chrome trace here (needs
    /// timeline = true to contain any spans).
    std::string trace_path;
  };

  Telemetry() : Telemetry(Options{}) {}
  explicit Telemetry(Options options);

  MetricShard* metric_shard(int worker) override;
  bool events_enabled() const override;
  void emit(Event event) override;
  bool timeline_enabled() const override;
  std::uint64_t now_ns() const override;
  void record_span(Span span) override;
  void report(ReportBuilder& builder) override;
  PhaseProfiler* profiler() override {
    return options_.profile ? &profiler_ : nullptr;
  }

  const Options& options() const { return options_; }
  MetricsSnapshot metrics_snapshot() const;
  const EventLog& event_log() const { return events_; }
  const Timeline& timeline() const { return timeline_; }
  /// The last report() document (empty string before the first report).
  const std::string& last_report() const { return last_report_; }

 private:
  Options options_;
  MetricsRegistry metrics_;
  EventLog events_;
  Timeline timeline_;
  PhaseProfiler profiler_;
  std::string last_report_;
};

}  // namespace bss::obs
