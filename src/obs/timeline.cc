#include "obs/timeline.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "obs/json.h"

namespace bss::obs {

namespace {
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Timeline::Timeline() : epoch_ns_(steady_now_ns()) {}

std::uint64_t Timeline::now_ns() const { return steady_now_ns() - epoch_ns_; }

void Timeline::record(Span span) {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<Span> Timeline::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string Timeline::to_chrome_trace() const {
  std::vector<Span> spans = this->spans();
  // Stable display order: by track, then by start time.
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.track != b.track ? a.track < b.track : a.begin_ns < b.begin_ns;
  });

  json::Array events;
  std::set<int> tracks;
  for (const Span& span : spans) tracks.insert(span.track);
  {
    json::Object process_meta{
        {"name", json::Value("process_name")},
        {"ph", json::Value("M")},
        {"pid", json::Value(0)},
        {"tid", json::Value(0)},
        {"args", json::Value(json::Object{{"name", json::Value("bss")}})},
    };
    events.emplace_back(std::move(process_meta));
  }
  for (const int track : tracks) {
    const std::string name =
        track == kCoordinatorTrack ? "enumerate+merge"
                                   : "worker " + std::to_string(track);
    json::Object thread_meta{
        {"name", json::Value("thread_name")},
        {"ph", json::Value("M")},
        {"pid", json::Value(0)},
        {"tid", json::Value(track)},
        {"args", json::Value(json::Object{{"name", json::Value(name)}})},
    };
    events.emplace_back(std::move(thread_meta));
  }
  for (const Span& span : spans) {
    json::Object args;
    for (const auto& [key, value] : span.args) {
      args.emplace(key, json::Value(value));
    }
    const std::uint64_t duration =
        span.end_ns >= span.begin_ns ? span.end_ns - span.begin_ns : 0;
    json::Object event{
        {"name", json::Value(span.name)},
        {"ph", json::Value("X")},
        {"pid", json::Value(0)},
        {"tid", json::Value(span.track)},
        // Chrome trace timestamps are microseconds; keep sub-microsecond
        // resolution as fractional values.
        {"ts", json::Value(static_cast<double>(span.begin_ns) / 1000.0)},
        {"dur", json::Value(static_cast<double>(duration) / 1000.0)},
        {"args", json::Value(std::move(args))},
    };
    events.emplace_back(std::move(event));
  }

  const json::Value trace(json::Object{
      {"displayTimeUnit", json::Value("ms")},
      {"traceEvents", json::Value(std::move(events))},
  });
  return trace.dump(1) + "\n";
}

}  // namespace bss::obs
