// `bss-status v1` — the live heartbeat artifact (DESIGN.md §12).  A
// campaign (explore(), a bench_* campaign loop, the leader_worker_pool
// soak) periodically snapshots its progress into one small JSON file via
// atomic tmp+rename, so `tools/bss_top` (or any `watch cat`) can follow a
// run that is otherwise a black box between checkpoints.
//
// Top-level document shape:
//
//   {
//     "schema": "bss-status v1",         // required, exact string
//     "producer": "explore()" | …,       // required
//     "system": "one_shot[…]",           // optional explored-system name
//     "seq": N,                          // required, write sequence number
//     "state": "running" | "complete",   // required
//     "progress": {                      // required; ALL keys required
//       "schedules": N, "violations": N, "frontier": N,
//       "fingerprint_prunes": N, "fingerprint_hit_rate_ppm": N,  // <= 1e6
//       "checkpoints": N, "max_schedules": N, "passes": N, "jobs": N
//     },
//     "workers": [                       // optional, non-empty when present
//       {"worker": N, "state": "running"|"stealing"|"idle",
//        "steals": N, "schedules": N}, …
//     ],
//     "profile": { "<phase>": {"calls": N, "ns": N}, … },  // optional
//     "timing": { "elapsed_ms": N, "schedules_per_second": R,
//                 "window_schedules_per_second": R, "eta_seconds": R,
//                 "checkpoint_age_ms": N }                  // optional
//   }
//
// Everything outside "timing" and "profile" derives from deterministic
// counters; those two sections are the quarantined wall-clock channel,
// exactly the runreport split.  `progress` is integer-only (the hit rate is
// parts-per-million, not a double) so the typed round trip is a byte fixed
// point.  Consumers reject unknown schema versions and unknown keys — the
// `bss-counterexample v2` / runreport policy.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/profile.h"

namespace bss::obs {

inline constexpr std::string_view kStatusSchema = "bss-status v1";

/// One row of the `workers` section.
struct WorkerStatus {
  int worker = 0;
  std::string state = "idle";  ///< "running" | "stealing" | "idle"
  std::uint64_t steals = 0;
  std::uint64_t schedules = 0;
};

/// A typed heartbeat snapshot.  to_json()/from_artifact() are exact
/// inverses on valid documents: from_artifact succeeds iff validate_status
/// reports no findings, and to_json of the parsed value reproduces the
/// canonical bytes.
struct Status {
  std::string producer;
  std::string system;  ///< omitted from the document when empty
  std::uint64_t seq = 0;
  std::string state = "running";  ///< "running" | "complete"

  // progress — deterministic counters, byte-identical with status on/off.
  std::uint64_t schedules = 0;
  std::uint64_t violations = 0;
  std::uint64_t frontier = 0;
  std::uint64_t fingerprint_prunes = 0;
  std::uint64_t fingerprint_hit_rate_ppm = 0;  ///< prunes per million probes
  std::uint64_t checkpoints = 0;
  std::uint64_t max_schedules = 0;  ///< 0 == unbounded (no ETA)
  std::uint64_t passes = 0;
  std::uint64_t jobs = 0;

  std::vector<WorkerStatus> workers;  ///< omitted when empty
  json::Object profile;               ///< omitted when empty
  json::Object timing;                ///< omitted when empty

  /// Pretty-printed document with a trailing newline (file-ready).
  std::string to_json() const;

  /// Strict parse + full validation; rejects exactly what validate_status
  /// rejects.
  static std::optional<Status> from_artifact(std::string_view text,
                                             std::string* error = nullptr);
};

/// Full schema validation for the CI gate (tools/report_check): parse
/// failure, wrong schema version, unknown or missing keys, wrong types,
/// out-of-range counters (negative values, a hit rate above one million,
/// a negative checkpoint age or rate) each produce one human-readable
/// error.  Empty result == valid.
std::vector<std::string> validate_status(std::string_view text);

/// Atomic publish: write `path`.tmp, then rename over `path`, so a reader
/// (or a SIGKILL) never observes a torn document.  False on I/O failure.
bool write_status_file(const std::string& path, std::string_view text);

/// The heartbeat driver: owns the path, the cadence, and the wall-clock
/// bookkeeping (rates, ETA, checkpoint age) so callers only supply the
/// deterministic counters.  An empty path resolves through BSS_STATUS and
/// a zero cadence through BSS_STATUS_EVERY_MS (default 1000 ms); when the
/// path stays empty the writer is disabled and every method is a no-op.
///
/// Threading: write()/due() belong to one driver thread at a time;
/// note_checkpoint() may race them from worker threads (it only stamps an
/// atomic).  All clock reads go through PhaseProfiler::now_ns(), the
/// quarantined monotonic source.
class StatusWriter {
 public:
  StatusWriter() : StatusWriter(std::string(), 0) {}
  StatusWriter(std::string path, std::uint64_t every_ms);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  std::uint64_t every_ms() const { return every_ms_; }

  /// True when at least every_ms of wall time has passed since the last
  /// write (always false when disabled).
  bool due() const;

  /// Stamp "a checkpoint just landed" for the checkpoint_age_ms field.
  void note_checkpoint() {
    checkpoint_ns_.store(PhaseProfiler::now_ns(), std::memory_order_relaxed);
  }

  /// Attach the profiler whose table write() mirrors into the document
  /// (write() also records its own cost under the status_write phase).
  void set_profiler(PhaseProfiler* profiler) { profiler_ = profiler; }

  /// Fill the wall-clock channel (seq, timing, profile mirror) of
  /// `status` and publish it atomically.  Best-effort: returns false on
  /// I/O failure, true otherwise; no-op false when disabled.
  bool write(Status status);

 private:
  std::string path_;
  std::uint64_t every_ms_ = 1000;
  std::uint64_t seq_ = 0;
  PhaseProfiler* profiler_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t last_write_ns_ = 0;
  std::uint64_t last_schedules_ = 0;
  std::atomic<std::uint64_t> checkpoint_ns_{0};
};

}  // namespace bss::obs
