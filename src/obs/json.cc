#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/checked.h"

namespace bss::obs::json {

Value::Value(std::uint64_t value) {
  if (value <= static_cast<std::uint64_t>(
                   std::numeric_limits<std::int64_t>::max())) {
    kind_ = Kind::kInt;
    int_ = static_cast<std::int64_t>(value);
  } else {
    kind_ = Kind::kDouble;
    double_ = static_cast<double>(value);
  }
}

bool Value::as_bool() const {
  expects(is_bool(), "json::Value::as_bool on non-bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  expects(is_int(), "json::Value::as_int on non-integer");
  return int_;
}

double Value::as_double() const {
  expects(is_number(), "json::Value::as_double on non-number");
  return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& Value::as_string() const {
  expects(is_string(), "json::Value::as_string on non-string");
  return string_;
}

const Array& Value::as_array() const {
  expects(is_array(), "json::Value::as_array on non-array");
  return array_;
}

const Object& Value::as_object() const {
  expects(is_object(), "json::Value::as_object on non-object");
  return object_;
}

Array& Value::as_array() {
  expects(is_array(), "json::Value::as_array on non-array");
  return array_;
}

Object& Value::as_object() {
  expects(is_object(), "json::Value::as_object on non-object");
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) {
    // Numeric cross-kind equality (1 == 1.0) would make round-trip tests
    // lie about representation; require exact kind.
    return false;
  }
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kInt:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kObject:
      return object_ == other.object_;
  }
  return false;
}

void append_quoted(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

void append_double(std::string& out, double value) {
  expects(std::isfinite(value), "json: NaN/Inf cannot be serialized");
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, result.ptr);
  // Keep doubles visibly doubles: "1" would re-parse as an integer and
  // break the round-trip fixed point.
  std::string_view written(buf, static_cast<std::size_t>(result.ptr - buf));
  if (written.find('.') == std::string_view::npos &&
      written.find('e') == std::string_view::npos &&
      written.find("inf") == std::string_view::npos) {
    out += ".0";
  }
}

void dump_value(const Value& value, std::string& out, int indent, int depth) {
  const auto newline_pad = [&](int levels) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (value.kind()) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      const auto result =
          std::to_chars(buf, buf + sizeof buf, value.as_int());
      out.append(buf, result.ptr);
      break;
    }
    case Kind::kDouble:
      append_double(out, value.as_double());
      break;
    case Kind::kString:
      append_quoted(out, value.as_string());
      break;
    case Kind::kArray: {
      const Array& array = value.as_array();
      if (array.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Value& element : array) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        dump_value(element, out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      const Object& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : object) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        append_quoted(out, key);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        dump_value(member, out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

// ------------------------------------------------------------------ parser

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_literal(std::string_view literal) {
    if (text.substr(pos, literal.size()) == literal) {
      pos += literal.size();
      return true;
    }
    return fail("invalid literal");
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape digit");
      }
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return fail("truncated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos + 1 >= text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty() || token == "-") return fail("invalid number");
    const bool integral =
        token.find('.') == std::string_view::npos &&
        token.find('e') == std::string_view::npos &&
        token.find('E') == std::string_view::npos;
    if (integral) {
      std::int64_t value = 0;
      const auto result =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (result.ec == std::errc() &&
          result.ptr == token.data() + token.size()) {
        out = Value(value);
        return true;
      }
      // Out-of-int64-range integers fall through to double.
    }
    double value = 0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc() ||
        result.ptr != token.data() + token.size() || !std::isfinite(value)) {
      return fail("invalid number");
    }
    out = Value(value);
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case 'n':
        if (!parse_literal("null")) return false;
        out = Value(nullptr);
        return true;
      case 't':
        if (!parse_literal("true")) return false;
        out = Value(true);
        return true;
      case 'f':
        if (!parse_literal("false")) return false;
        out = Value(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case '[': {
        ++pos;
        Array array;
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          out = Value(std::move(array));
          return true;
        }
        for (;;) {
          Value element;
          if (!parse_value(element, depth + 1)) return false;
          array.push_back(std::move(element));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (!consume(']')) return false;
          out = Value(std::move(array));
          return true;
        }
      }
      case '{': {
        ++pos;
        Object object;
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          out = Value(std::move(object));
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          Value member;
          if (!parse_value(member, depth + 1)) return false;
          if (!object.emplace(std::move(key), std::move(member)).second) {
            return fail("duplicate object key");
          }
          skip_ws();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (!consume('}')) return false;
          out = Value(std::move(object));
          return true;
        }
      }
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail("unexpected character");
    }
  }
};

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  Parser parser{text, 0, {}};
  Value value;
  if (!parser.parse_value(value, 0)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    parser.fail("trailing garbage after document");
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  return value;
}

}  // namespace bss::obs::json
