// Minimal JSON for the telemetry layer's artifacts (the `bss-runreport v1`
// document, the JSONL event log, the Chrome trace export): a variant value
// type, a writer with canonical output, and a strict parser for round-trips
// and CI schema validation.
//
// Canonical output means byte-stable for equal values: object members are
// stored in a sorted map (so key order never depends on insertion order),
// integers print as integers, and doubles print shortest-round-trip via
// std::to_chars.  parse(dump(v)) == v and dump(parse(t)) is a fixed point,
// which is what lets tests assert artifact round-trips by string equality.
//
// Deliberately not a general-purpose library: no comments, no trailing
// commas, no NaN/Inf (rejected on write and parse), numbers outside int64
// fall back to double.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bss::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(google-explicit-constructor)
  Value(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  Value(std::int64_t value) : kind_(Kind::kInt), int_(value) {}  // NOLINT
  Value(int value) : kind_(Kind::kInt), int_(value) {}  // NOLINT
  Value(std::uint64_t value);  // NOLINT  int64 when it fits, else double
  Value(double value) : kind_(Kind::kDouble), double_(value) {}  // NOLINT
  Value(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}  // NOLINT
  Value(const char* value) : kind_(Kind::kString), string_(value) {}  // NOLINT
  Value(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}  // NOLINT
  Value(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}  // NOLINT

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; InvariantError on kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  ///< accepts kInt too (widening)
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  bool operator==(const Value& other) const;

  /// Canonical serialization.  indent == 0 is compact (no whitespace);
  /// indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Strict parse of exactly one JSON document (trailing garbage is an
  /// error).  On failure returns nullopt and, when `error` is non-null,
  /// stores a one-line description with the byte offset.
  static std::optional<Value> parse(std::string_view text,
                                    std::string* error = nullptr);

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Appends the JSON escaping of `text` (quotes included) to `out`.
void append_quoted(std::string& out, std::string_view text);

}  // namespace bss::obs::json
