#include "obs/events.h"

#include <chrono>

#include "obs/json.h"

namespace bss::obs {

namespace {
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity), epoch_ns_(steady_now_ns()) {}

void EventLog::emit(Event event) {
  const std::uint64_t now = steady_now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  ++emitted_;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  StampedEvent stamped;
  stamped.event = std::move(event);
  stamped.seq = emitted_ - 1;
  stamped.wall_ns = now - epoch_ns_;
  events_.push_back(std::move(stamped));
}

std::vector<StampedEvent> EventLog::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t EventLog::emitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

std::uint64_t EventLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string EventLog::to_jsonl() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const StampedEvent& stamped : events_) {
    // Deterministic channel first, timing channel quarantined at the end.
    out += "{\"kind\":";
    json::append_quoted(out, stamped.event.kind);
    out += ",\"step\":" + std::to_string(stamped.event.step);
    out += ",\"worker\":" + std::to_string(stamped.event.worker);
    out += ",\"fields\":{";
    bool first = true;
    for (const auto& [key, value] : stamped.event.fields) {
      if (!first) out.push_back(',');
      first = false;
      json::append_quoted(out, key);
      out.push_back(':');
      json::append_quoted(out, value);
    }
    out += "},\"timing\":{\"seq\":" + std::to_string(stamped.seq);
    out += ",\"wall_ns\":" + std::to_string(stamped.wall_ns);
    out += "}}\n";
  }
  return out;
}

}  // namespace bss::obs
