#include "obs/profile.h"

#include <chrono>
#include <string>

namespace bss::obs {

bool PhaseProfiler::has_data() const {
  for (int phase = 0; phase < kPhaseCount; ++phase) {
    if (calls(static_cast<Phase>(phase)) > 0) return true;
  }
  return false;
}

json::Object PhaseProfiler::to_json() const {
  json::Object out;
  for (int index = 0; index < kPhaseCount; ++index) {
    const auto phase = static_cast<Phase>(index);
    const std::uint64_t phase_calls = calls(phase);
    if (phase_calls == 0) continue;
    json::Object cell;
    cell.emplace("calls", phase_calls);
    cell.emplace("ns", ns(phase));
    out.emplace(std::string(kPhaseNames[static_cast<std::size_t>(index)]),
                json::Value(std::move(cell)));
  }
  return out;
}

std::uint64_t PhaseProfiler::now_ns() {
  // The profiler IS the wall-clock channel: everything it measures flows
  // only into the quarantined `profile` sections of runreport and status.
  // bss-lint: wallclock-ok(profiler interval source, quarantined output)
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace bss::obs
