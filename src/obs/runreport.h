// `bss-runreport v1` — the schema-versioned run artifact of the telemetry
// layer, written next to `bss-counterexample` artifacts and emitted by both
// explore() and every bench binary, so benchmark trajectories and
// exploration campaigns diff under ONE schema across PRs.
//
// Top-level document shape (all keys optional unless marked required):
//
//   {
//     "schema": "bss-runreport v1",      // required, exact string
//     "kind": "explore" | "bench",       // required
//     "producer": "explore()" | "bench_explore" | …,   // required
//     "system": "one_shot[…]",           // explored system, "" for benches
//     "environment": { … },              // host/config facts (jobs, threads)
//     "options": { … },                  // the knobs the run was given
//     "stats": { name: integer, … },     // deterministic result counters
//     "coverage": { … },                 // fault points, exhausted, …
//     "violations": [ { … }, … ],        // per-counterexample summaries
//     "rows": [ { … }, … ],              // bench table rows, one object each
//     "metrics": { counters/gauges/histograms },   // MetricsSnapshot
//     "events": { "emitted": N, "dropped": N },
//     "profile": { "<phase>": {"calls": N, "ns": N}, … },  // PhaseProfiler
//     "timing": { "wall_seconds": … }    // wall-clock channel, quarantined
//   }
//
// Everything outside "timing" and "profile" is the deterministic channel;
// those two sections are the only places wall-clock may appear ("profile"
// carries the phase self-profiler's accumulated nanoseconds, keyed by the
// closed phase set in obs/profile.h).  Consumers must reject documents whose
// schema line is missing or names a version they do not understand —
// exactly the `bss-counterexample v2` policy — and the CI gate
// (tools/report_check) additionally rejects unknown top-level keys so
// schema drift fails loudly instead of silently forking the format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace bss::obs {

inline constexpr std::string_view kRunReportSchema = "bss-runreport v1";

/// Incremental builder; every setter feeds the deterministic channel except
/// timing().  build()/to_json() may be called repeatedly.
class ReportBuilder {
 public:
  ReportBuilder(std::string kind, std::string producer);

  void set_system(std::string system);
  void environment(const std::string& key, json::Value value);
  void option(const std::string& key, json::Value value);
  void stat(const std::string& key, std::uint64_t value);
  void coverage(const std::string& key, json::Value value);
  void violation(json::Object summary);
  void row(json::Object row);
  void metrics(const MetricsSnapshot& snapshot);
  void events(std::uint64_t emitted, std::uint64_t dropped);
  /// Phase wall-time table (PhaseProfiler::to_json()) — quarantined like
  /// timing().
  void profile(json::Object table);
  /// Wall-clock channel — nondeterministic, like profile().
  void timing(const std::string& key, json::Value value);

  json::Value build() const;
  /// Pretty-printed document with a trailing newline (file-ready).
  std::string to_json() const;

 private:
  json::Object root_;
};

/// A parsed report.  parse() enforces the version gate: a missing schema
/// key or any value other than `kRunReportSchema` is a hard reject (the
/// artifact may be a future version this binary cannot interpret).
struct RunReport {
  json::Value root;

  static std::optional<RunReport> parse(std::string_view text,
                                        std::string* error = nullptr);

  std::string kind() const;
  std::string producer() const;
  std::string system() const;
  /// stats[name], or `fallback` when absent/mistyped.
  std::uint64_t stat(const std::string& name, std::uint64_t fallback = 0) const;
  const json::Object* stats() const;
  const json::Array* rows() const;
};

/// Full schema validation for the CI gate: parse failure, missing/unknown
/// schema version, unknown top-level keys, or wrong-typed known keys each
/// produce one human-readable error.  Empty result == valid.
std::vector<std::string> validate_runreport(std::string_view text);

/// Writes `text` to `path` atomically enough for artifacts (truncate +
/// write + close); returns false on any I/O failure.
bool write_file(const std::string& path, std::string_view text);

}  // namespace bss::obs
