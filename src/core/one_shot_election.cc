#include "core/one_shot_election.h"

#include "util/checked.h"

namespace bss::core {

OneShotState::OneShotState(int k) : cas("cas", k) {
  claim.reserve(static_cast<std::size_t>(k));
  for (int symbol = 0; symbol < k; ++symbol) {
    claim.emplace_back("claim[" + std::to_string(symbol) + "]",
                       sim::SwmrRegister<std::int64_t>::kAnyWriter,
                       std::int64_t{-1});
  }
}

std::int64_t one_shot_elect(OneShotState& state, sim::Ctx& ctx, int pid,
                            std::int64_t id) {
  const int k = state.cas.k();
  expects(pid >= 0 && pid < k - 1, "one-shot election capacity is k-1");
  const int my_symbol = pid + 1;
  // Claim my symbol before racing: whoever wins, their claim register is
  // already readable (validity).
  state.claim[static_cast<std::size_t>(my_symbol)].write(ctx, id);
  const int prev =
      state.cas.compare_and_swap(ctx, sim::CasRegisterK::kBottom, my_symbol);
  const int winner_symbol =
      prev == sim::CasRegisterK::kBottom ? my_symbol : prev;
  const std::int64_t winner =
      state.claim[static_cast<std::size_t>(winner_symbol)].read(ctx);
  expects(winner >= 0, "one-shot election: winner symbol unclaimed");
  return winner;
}

OneShotReport run_one_shot_election(int k, int n, sim::Scheduler& scheduler,
                                    const sim::CrashPlan& crashes) {
  expects(n >= 1 && n <= k - 1, "one-shot election requires 1 <= n <= k-1");
  OneShotState state(k);
  OneShotReport report;
  report.elected.resize(static_cast<std::size_t>(n));

  sim::SimEnv env;
  for (int pid = 0; pid < n; ++pid) {
    env.add_process([&state, &report, pid](sim::Ctx& ctx) {
      report.elected[static_cast<std::size_t>(pid)] =
          one_shot_elect(state, ctx, pid, 1000 + pid);
    });
  }
  report.run = env.run(scheduler, crashes);
  std::int64_t leader = -1;
  for (int pid = 0; pid < n; ++pid) {
    if (report.run.outcomes[static_cast<std::size_t>(pid)] !=
        sim::ProcOutcome::kFinished) {
      report.elected[static_cast<std::size_t>(pid)].reset();
      continue;
    }
    const auto& elected = report.elected[static_cast<std::size_t>(pid)];
    if (elected.has_value()) {
      if (leader == -1) leader = *elected;
      if (*elected != leader) report.consistent = false;
    }
  }
  return report;
}

}  // namespace bss::core
